"""Tests for conformity levels and the alias-method sampler."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.sampling.alias import AliasSampler
from repro.core.sampling.conformity import SCHEME_CONFORMITY, ConformityLevel


class TestConformityLevels:
    def test_hierarchy_ordering(self):
        assert ConformityLevel.CONFORM < ConformityLevel.BOUNDED
        assert ConformityLevel.BOUNDED < ConformityLevel.LONG_TERM
        assert ConformityLevel.LONG_TERM < ConformityLevel.NON_CONFORM

    def test_l1_implies_l2_implies_l3(self):
        assert ConformityLevel.CONFORM.satisfies(ConformityLevel.BOUNDED)
        assert ConformityLevel.CONFORM.satisfies(ConformityLevel.LONG_TERM)
        assert ConformityLevel.BOUNDED.satisfies(ConformityLevel.LONG_TERM)

    def test_weaker_does_not_satisfy_stronger(self):
        assert not ConformityLevel.BOUNDED.satisfies(ConformityLevel.CONFORM)
        assert not ConformityLevel.NON_CONFORM.satisfies(ConformityLevel.LONG_TERM)

    def test_every_level_satisfies_itself_and_non_conform(self):
        for level in ConformityLevel:
            assert level.satisfies(level)
            assert level.satisfies(ConformityLevel.NON_CONFORM)

    def test_rank(self):
        assert [level.rank for level in ConformityLevel] == [1, 2, 3, 4]

    def test_from_name(self):
        assert ConformityLevel.from_name("bounded") is ConformityLevel.BOUNDED
        assert ConformityLevel.from_name("LONG-TERM") is ConformityLevel.LONG_TERM
        assert ConformityLevel.from_name(" conform ") is ConformityLevel.CONFORM

    def test_from_name_rejects_unknown(self):
        with pytest.raises(ValueError):
            ConformityLevel.from_name("super-conform")

    def test_scheme_conformity_matches_table_1(self):
        """Table 1 of the paper."""
        assert SCHEME_CONFORMITY["independent"] is ConformityLevel.CONFORM
        assert SCHEME_CONFORMITY["sample_reuse"] is ConformityLevel.BOUNDED
        assert SCHEME_CONFORMITY["sample_reuse_postponing"] is ConformityLevel.LONG_TERM
        assert SCHEME_CONFORMITY["local"] is ConformityLevel.NON_CONFORM
        assert SCHEME_CONFORMITY["direct_access_repurposing"] is ConformityLevel.NON_CONFORM


class TestAliasSampler:
    def test_rejects_bad_probabilities(self):
        with pytest.raises(ValueError):
            AliasSampler(np.array([]))
        with pytest.raises(ValueError):
            AliasSampler(np.array([0.5, -0.1]))
        with pytest.raises(ValueError):
            AliasSampler(np.array([0.0, 0.0]))
        with pytest.raises(ValueError):
            AliasSampler(np.array([[0.5, 0.5]]))

    def test_normalizes_weights(self):
        sampler = AliasSampler(np.array([2.0, 6.0]))
        np.testing.assert_allclose(sampler.probabilities, [0.25, 0.75])

    def test_sample_size_zero(self):
        sampler = AliasSampler(np.array([1.0, 1.0]))
        assert len(sampler.sample(np.random.default_rng(0), 0)) == 0

    def test_sample_negative_size_rejected(self):
        sampler = AliasSampler(np.array([1.0, 1.0]))
        with pytest.raises(ValueError):
            sampler.sample(np.random.default_rng(0), -1)

    def test_degenerate_distribution(self):
        sampler = AliasSampler(np.array([0.0, 1.0, 0.0]))
        samples = sampler.sample(np.random.default_rng(0), 1000)
        assert set(samples.tolist()) == {1}

    def test_uniform_distribution_statistics(self):
        sampler = AliasSampler(np.ones(10))
        samples = sampler.sample(np.random.default_rng(1), 50_000)
        counts = np.bincount(samples, minlength=10) / 50_000
        np.testing.assert_allclose(counts, 0.1, atol=0.01)

    def test_skewed_distribution_statistics(self):
        probabilities = np.array([0.6, 0.3, 0.09, 0.01])
        sampler = AliasSampler(probabilities)
        samples = sampler.sample(np.random.default_rng(2), 100_000)
        counts = np.bincount(samples, minlength=4) / 100_000
        np.testing.assert_allclose(counts, probabilities, atol=0.01)

    def test_reproducible_with_same_rng_seed(self):
        sampler = AliasSampler(np.arange(1, 6, dtype=float))
        a = sampler.sample(np.random.default_rng(3), 100)
        b = sampler.sample(np.random.default_rng(3), 100)
        np.testing.assert_array_equal(a, b)

    @settings(deadline=None, max_examples=25)
    @given(st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=50)
           .filter(lambda w: sum(w) > 1e-6))
    def test_samples_always_within_support(self, weights):
        sampler = AliasSampler(np.asarray(weights))
        samples = sampler.sample(np.random.default_rng(0), 500)
        assert samples.min() >= 0
        assert samples.max() < len(weights)
        # Zero-probability categories are never sampled.
        zero_categories = {i for i, w in enumerate(weights) if w == 0.0}
        assert zero_categories.isdisjoint(set(samples.tolist()))

    @settings(deadline=None, max_examples=10)
    @given(st.integers(min_value=2, max_value=30))
    def test_empirical_distribution_matches_target(self, num_categories):
        """First-order inclusion probabilities match the target (chi-square-ish)."""
        rng = np.random.default_rng(num_categories)
        weights = rng.uniform(0.1, 1.0, size=num_categories)
        target = weights / weights.sum()
        sampler = AliasSampler(weights)
        samples = sampler.sample(np.random.default_rng(0), 30_000)
        empirical = np.bincount(samples, minlength=num_categories) / 30_000
        np.testing.assert_allclose(empirical, target, atol=0.02)
