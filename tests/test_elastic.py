"""Tests for elastic membership and partition tolerance (repro.elastic)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.elastic import (
    AutoscaleStorm,
    ElasticConfig,
    ElasticityController,
    NetworkPartition,
    PartitionState,
    ScaleIn,
    ScaleOut,
)
from repro.faults import (
    FaultConfig,
    FaultTolerantParameterServer,
    PartitionedOwnerError,
    RemovedOwnerError,
)
from repro.ps.classic import ClassicPS
from repro.ps.relocation import RelocationPS
from repro.ps.replication import ReplicationProtocol, ReplicationPS
from repro.ps.storage import ParameterStore
from repro.runner.config import ExperimentConfig
from repro.runner.experiment import run_experiment
from repro.runner.systems import make_ps_factory
from repro.runner.workloads import make_task
from repro.scenarios import SCENARIO_PRESETS, make_scenario
from repro.simulation.cluster import Cluster, ClusterConfig
from repro.simulation.network import NetworkModel

NUM_KEYS = 60
VALUE_LENGTH = 2


def _network() -> NetworkModel:
    return NetworkModel(latency=10e-6, bandwidth=1e9,
                        message_handling_cost=1e-6, local_access_cost=1e-7,
                        compute_per_step=20e-6)


def _cluster(num_nodes=3, workers_per_node=2) -> Cluster:
    return Cluster(ClusterConfig(num_nodes=num_nodes,
                                 workers_per_node=workers_per_node,
                                 network=_network()))


def _build(kind="classic", num_nodes=3):
    cluster = _cluster(num_nodes=num_nodes)
    store = ParameterStore(NUM_KEYS, VALUE_LENGTH, seed=3, init_scale=0.1)
    if kind == "classic":
        ps = ClassicPS(store, cluster)
    elif kind == "relocation":
        ps = RelocationPS(store, cluster)
    elif kind == "replication":
        ps = ReplicationPS(store, cluster, protocol=ReplicationProtocol.ESSP,
                           staleness=2)
    else:  # pragma: no cover
        raise ValueError(kind)
    return ps, cluster, store


def _ownership_covers_active(ps, cluster):
    owned = [np.asarray(ps.keys_owned_by(n), dtype=np.int64)
             for n in cluster.active_nodes]
    np.testing.assert_array_equal(
        np.sort(np.concatenate(owned)), np.arange(ps.store.num_keys)
    )


# ------------------------------------------------------------ ElasticConfig
class TestElasticConfig:
    def test_defaults_are_valid(self):
        config = ElasticConfig()
        assert config.join_delay > 0

    def test_rejects_negative_join_delay(self):
        with pytest.raises(ValueError):
            ElasticConfig(join_delay=-1e-3)


# ----------------------------------------------------- ElasticityController
class TestScaleOut:
    @pytest.mark.parametrize("kind", ["classic", "relocation", "replication"])
    def test_new_node_takes_over_key_share(self, kind):
        ps, cluster, store = _build(kind)
        controller = ElasticityController(ps)
        node_id = controller.scale_out(now=0.0)
        assert node_id == 3
        assert cluster.membership_epoch == 1
        _ownership_covers_active(ps, cluster)
        assert len(ps.keys_owned_by(node_id)) > 0
        assert cluster.metrics.get("elastic.scale_outs") == 1
        assert cluster.metrics.get("elastic.migrated_keys") > 0
        # The migration transfer occupies the new node's background thread.
        assert cluster.node(node_id).background_clock.now > 0.0

    def test_relocation_arrival_gating(self):
        ps, cluster, store = _build("relocation")
        controller = ElasticityController(ps)
        node_id = controller.scale_out(now=0.0)
        moved = ps.local_keys(node_id)
        assert len(moved) > 0
        # The re-homed keys arrive only after the transfer.
        assert np.all(ps.arrival_time[moved] > 0.0)
        np.testing.assert_array_equal(ps.current_owner[moved], node_id)


class TestScaleIn:
    @pytest.mark.parametrize("kind", ["classic", "relocation", "replication"])
    def test_planned_removal_rehomes_keys(self, kind):
        ps, cluster, store = _build(kind)
        controller = ElasticityController(ps)
        summary = controller.scale_in(1, now=0.0)
        assert summary["lost_updates"] == 0
        assert summary["moved_keys"] > 0
        assert cluster.is_removed(1)
        _ownership_covers_active(ps, cluster)
        assert len(ps.keys_owned_by(1)) == 0 or 1 not in cluster.active_nodes
        assert cluster.metrics.get("elastic.scale_ins") == 1

    def test_drain_flushes_buffered_updates(self):
        """Replication buffers flush on drain: zero acknowledged loss."""
        ps, cluster, store = _build("replication")
        worker = cluster.worker(1, 0)
        keys = np.array([0, 1, 2], dtype=np.int64)
        before = store.get(keys).copy()
        deltas = np.full((3, VALUE_LENGTH), 0.5, dtype=np.float32)
        ps.push(worker, keys, deltas)
        controller = ElasticityController(ps)
        summary = controller.scale_in(1, now=0.0)
        assert summary["drained_updates"] >= 3
        np.testing.assert_allclose(store.get(keys), before + 0.5, rtol=1e-6)

    def test_headline_planned_vs_crash(self):
        """A planned scale-in drains what a crash would lose."""
        from repro.faults import FaultController

        # Crash path: push, crash before any checkpoint refresh, recover.
        ps, cluster, store = _build("classic")
        fc = FaultController(ps, FaultConfig(recovery="checkpoint",
                                             checkpoint_interval=10.0))
        worker = cluster.worker(1, 0)
        keys = np.asarray(ps.keys_owned_by(1)[:3], dtype=np.int64)
        ps.push(worker, keys, np.full((len(keys), VALUE_LENGTH), 0.5,
                                      dtype=np.float32))
        fc.crash_node(1, now=0.001)
        lost = cluster.metrics.get("faults.lost_updates")
        assert lost > 0

        # Planned path, same write pattern: nothing lost.
        ps2, cluster2, store2 = _build("classic")
        worker2 = cluster2.worker(1, 0)
        keys2 = np.asarray(ps2.keys_owned_by(1)[:3], dtype=np.int64)
        before = store2.get(keys2).copy()
        ps2.push(worker2, keys2, np.full((len(keys2), VALUE_LENGTH), 0.5,
                                         dtype=np.float32))
        controller = ElasticityController(ps2)
        summary = controller.scale_in(1, now=0.001)
        assert summary["lost_updates"] == 0
        assert cluster2.metrics.get("elastic.lost_updates") == 0
        np.testing.assert_allclose(store2.get(keys2), before + 0.5, rtol=1e-6)


# ------------------------------------------------------------ PartitionState
class TestPartitionState:
    def test_rejects_empty_or_majority_minority(self):
        ps, cluster, _ = _build("classic")
        with pytest.raises(ValueError):
            PartitionState(ps, [], now=0.0)
        with pytest.raises(ValueError):
            PartitionState(ps, [0, 1], now=0.0)  # 2 of 3 is not a minority

    def test_minority_reads_are_bounded_stale(self):
        ps, cluster, store = _build("classic")
        state = PartitionState(ps, [2], now=0.0)
        worker = cluster.worker(2, 0)
        keys = np.array([0, 1], dtype=np.int64)
        snapshot = store.get(keys).copy()
        # The majority moves on; the minority still serves the snapshot.
        store.add(keys, np.full((2, VALUE_LENGTH), 9.0, dtype=np.float32))
        np.testing.assert_allclose(state.degraded_pull(worker, keys), snapshot)
        # ... merged with the minority's own buffered writes.
        state.degraded_push(worker, keys,
                            np.full((2, VALUE_LENGTH), 0.25, dtype=np.float32))
        np.testing.assert_allclose(state.degraded_pull(worker, keys),
                                   snapshot + 0.25)
        assert cluster.metrics.get("elastic.stale_reads") == 4
        assert cluster.metrics.get("elastic.buffered_writes") == 2

    def test_heal_replays_and_counts_divergence(self):
        ps, cluster, store = _build("classic")
        state = PartitionState(ps, [2], now=0.0)
        worker = cluster.worker(2, 0)
        keys = np.array([3, 4], dtype=np.int64)
        before = store.get(keys).copy()
        state.degraded_push(worker, keys,
                            np.full((2, VALUE_LENGTH), 1.0, dtype=np.float32))
        # Key 3 also written on the majority side: divergent.
        state.record_majority_writes(np.array([3], dtype=np.int64))
        summary = state.heal(now=0.01)
        assert summary["replayed_keys"] == 2
        assert summary["divergent_keys"] == 1
        # Replay is additive: no update from either side is lost.
        np.testing.assert_allclose(store.get(keys), before + 1.0, rtol=1e-6)
        assert cluster.metrics.get("elastic.partition_heals") == 1


# ------------------------------------------------------------ proxy guards
class TestPartitionGuard:
    def test_majority_access_to_minority_keys_defers(self):
        ps, cluster, store = _build("classic")
        proxy = FaultTolerantParameterServer(ps)
        proxy.partition = PartitionState(ps, [2], now=0.0)
        majority_worker = cluster.worker(0, 0)
        minority_keys = np.asarray(ps.keys_owned_by(2)[:2], dtype=np.int64)
        with pytest.raises(PartitionedOwnerError):
            proxy.pull(majority_worker, minority_keys)
        with pytest.raises(PartitionedOwnerError):
            proxy.push(majority_worker, minority_keys,
                       np.zeros((2, VALUE_LENGTH), dtype=np.float32))
        # Majority keys stay accessible.
        majority_keys = np.asarray(ps.keys_owned_by(0)[:2], dtype=np.int64)
        values = proxy.pull(majority_worker, majority_keys)
        assert values.shape == (2, VALUE_LENGTH)

    def test_minority_worker_degrades_instead_of_failing(self):
        ps, cluster, store = _build("classic")
        proxy = FaultTolerantParameterServer(ps)
        state = PartitionState(ps, [2], now=0.0)
        proxy.partition = state
        minority_worker = cluster.worker(2, 0)
        keys = np.asarray(ps.keys_owned_by(0)[:2], dtype=np.int64)
        values = proxy.pull(minority_worker, keys)  # stale, not an error
        assert values.shape == (2, VALUE_LENGTH)
        proxy.push(minority_worker, keys,
                   np.ones((2, VALUE_LENGTH), dtype=np.float32))
        assert state.buffered_writes == 2

    def test_localize_drops_unreachable_hints(self):
        ps, cluster, store = _build("relocation")
        proxy = FaultTolerantParameterServer(ps)
        proxy.partition = PartitionState(ps, [2], now=0.0)
        majority_worker = cluster.worker(0, 0)
        minority_keys = np.asarray(ps.keys_owned_by(2)[:2], dtype=np.int64)
        proxy.localize(majority_worker, minority_keys)  # dropped, no raise
        np.testing.assert_array_equal(ps.current_owner[minority_keys], 2)


class TestRemovedOwnerFastFail:
    def test_stale_routing_fails_fast_with_epochs(self):
        """An access at a removed owner names the membership epochs."""
        ps, cluster, store = _build("classic")
        proxy = FaultTolerantParameterServer(ps)
        victim_keys = np.asarray(ps.keys_owned_by(1)[:2], dtype=np.int64)
        # Remove the node from membership *without* re-homing its keys:
        # exactly the stale-routing state the gate must catch.
        cluster.remove_node(1)
        with pytest.raises(RemovedOwnerError, match="membership epoch 1"):
            proxy.pull(cluster.worker(0, 0), victim_keys)
        assert cluster.metrics.get("elastic.removed_owner_errors") == 1

    def test_no_false_positive_after_proper_scale_in(self):
        ps, cluster, store = _build("classic")
        proxy = FaultTolerantParameterServer(ps)
        victim_keys = np.asarray(ps.keys_owned_by(1)[:2], dtype=np.int64)
        ElasticityController(ps).scale_in(1, now=0.0)
        values = proxy.pull(cluster.worker(0, 0), victim_keys)
        assert values.shape == (2, VALUE_LENGTH)


class TestRetryJitter:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            FaultConfig(retry_jitter=-0.1)
        with pytest.raises(ValueError):
            FaultConfig(retry_seed=-1)

    def test_jitter_is_seeded_and_reproducible(self):
        def factors(seed, jitter, count=5):
            ps, cluster, _ = _build("classic")
            from repro.faults import FaultController

            proxy = FaultTolerantParameterServer(ps)
            proxy.controller = FaultController(
                ps, FaultConfig(retry_jitter=jitter, retry_seed=seed)
            )
            return [proxy._retry_delay_factor() for _ in range(count)]

        assert factors(7, 0.5) == factors(7, 0.5)
        assert factors(7, 0.5) != factors(8, 0.5)
        assert all(1.0 <= f <= 1.5 for f in factors(7, 0.5))
        # The default consumes no randomness at all.
        assert factors(7, 0.0) == [1.0] * 5


# ----------------------------------------------------------- perturbations
def _run(system, scenario, nodes=3, epochs=2, seed=0):
    task = make_task("kge", scale="test")
    config = ExperimentConfig(
        cluster=ClusterConfig(num_nodes=nodes, workers_per_node=2),
        epochs=epochs, chunk_size=8, seed=seed, scenario=scenario,
    )
    return run_experiment(task, make_ps_factory(system), config)


class TestElasticScenarios:
    def test_presets_are_registered(self):
        for name in ("scale-out", "scale-in", "autoscale-storm",
                     "split-brain"):
            assert name in SCENARIO_PRESETS

    def test_perturbation_validation(self):
        with pytest.raises(ValueError):
            ScaleOut(count=0)
        with pytest.raises(ValueError):
            ScaleIn(count=0)
        with pytest.raises(ValueError):
            AutoscaleStorm(period_rounds=0)
        with pytest.raises(ValueError):
            NetworkPartition(heal_after_rounds=0)

    @pytest.mark.parametrize("system", ["classic", "lapse", "essp", "nups"])
    def test_scale_out_completes(self, system):
        result = _run(system, make_scenario("scale-out"))
        assert result.epochs_completed == 2
        assert result.metrics.get("elastic.scale_outs") == 1

    @pytest.mark.parametrize("system", ["classic", "lapse", "essp", "nups"])
    def test_scale_in_loses_nothing(self, system):
        result = _run(system, make_scenario("scale-in"))
        assert result.epochs_completed == 2
        assert result.metrics.get("elastic.scale_ins") == 1
        assert result.metrics.get("elastic.lost_updates") == 0

    @pytest.mark.parametrize("system", ["classic", "lapse", "essp", "nups"])
    def test_autoscale_storm_survives(self, system):
        result = _run(system, make_scenario("autoscale-storm"))
        assert result.epochs_completed == 2
        assert result.metrics.get("elastic.scale_outs") >= 1
        assert result.metrics.get("elastic.scale_ins") >= 1
        assert result.metrics.get("elastic.lost_updates") == 0

    @pytest.mark.parametrize("system", ["classic", "lapse", "essp", "nups"])
    def test_split_brain_heals(self, system):
        result = _run(system, make_scenario("split-brain"))
        assert result.epochs_completed == 2
        metrics = result.metrics
        assert metrics.get("elastic.partitions") == 1
        assert metrics.get("elastic.partition_heals") == 1
        # Minority writes were buffered and replayed, never dropped.
        assert metrics.get("elastic.buffered_writes") > 0
        assert metrics.get("elastic.replayed_writes") > 0

    def test_elastic_runs_are_deterministic(self):
        first = _run("nups", make_scenario("autoscale-storm"), seed=5)
        second = _run("nups", make_scenario("autoscale-storm"), seed=5)
        assert [r.sim_time for r in first.records] == \
               [r.sim_time for r in second.records]
        assert first.metrics == second.metrics

    def test_elasticity_off_leaves_no_trace(self):
        """Without an elastic perturbation nothing elastic ever moves."""
        result = _run("nups", None)
        assert result.epochs_completed == 2
        elastic = {name: value for name, value in result.metrics.items()
                   if name.startswith("elastic.")}
        assert elastic == {}
