"""Integration tests: full training runs across parameter servers.

These exercise the whole stack — data generator, task, PS, simulated cluster,
runner — and check the invariants the paper's evaluation relies on:

* every system trains the model (quality improves over epochs),
* sequentially-consistent systems (single node, classic, Lapse) produce
  statistically comparable per-epoch quality,
* NuPS reduces communication and epoch run time relative to the baselines,
* the metrics the benchmark harness reports are present and consistent.
"""

import numpy as np
import pytest

from repro.analysis.speedup import raw_speedup_from_results
from repro.runner.config import ExperimentConfig
from repro.runner.experiment import run_experiment
from repro.runner.systems import make_ps_factory
from repro.runner.workloads import kge_task, matrix_factorization_task, word_vectors_task
from repro.simulation.cluster import ClusterConfig


def run(task_factory, system, nodes=4, epochs=2, seed=7, **overrides):
    task = task_factory()
    config = ExperimentConfig(
        cluster=ClusterConfig(num_nodes=nodes, workers_per_node=2),
        epochs=epochs, chunk_size=8, seed=seed,
    )
    return run_experiment(task, make_ps_factory(system, **overrides), config,
                          system_name=system)


@pytest.mark.parametrize("system", ["single-node", "classic", "lapse", "nups"])
def test_kge_quality_improves_on_every_system(system):
    nodes = 1 if system == "single-node" else 4
    overrides = {}
    if system == "nups":
        # Scale the replica synchronization interval down with the tiny
        # simulated epochs, as the benchmark presets do.
        overrides = {"sync_interval": 0.001, "pool_size": 16}
    result = run(lambda: kge_task("test"), system, nodes=nodes, epochs=2, **overrides)
    assert result.final_quality() > result.initial_quality["mrr_filtered"]
    assert result.epochs_completed == 2


def test_word_vectors_quality_improves_distributed():
    result = run(lambda: word_vectors_task("test"), "nups", epochs=2,
                 sync_interval=0.001, pool_size=16)
    assert result.final_quality() > result.initial_quality["similarity_accuracy"]


def test_matrix_factorization_rmse_decreases_distributed():
    result = run(lambda: matrix_factorization_task("test", learning_rate=0.5),
                 "nups", epochs=3, sync_interval=0.001)
    assert result.final_quality() < result.initial_quality["test_rmse"]


def test_nups_epoch_is_faster_than_classic_and_lapse():
    """The headline performance relation on the KGE workload."""
    classic = run(lambda: kge_task("test"), "classic", epochs=1)
    lapse = run(lambda: kge_task("test"), "lapse", epochs=1)
    nups = run(lambda: kge_task("test"), "nups", epochs=1,
               sync_interval=0.001, pool_size=16)
    assert nups.mean_epoch_time() < classic.mean_epoch_time()
    assert nups.mean_epoch_time() < lapse.mean_epoch_time()


def test_nups_reduces_remote_accesses_relative_to_classic():
    classic = run(lambda: kge_task("test"), "classic", epochs=1)
    nups = run(lambda: kge_task("test"), "nups", epochs=1,
               sync_interval=0.001, pool_size=16)
    classic_remote = classic.metrics.get("access.pull.remote", 0)
    nups_remote = nups.metrics.get("access.pull.remote", 0) + \
        nups.metrics.get("access.sample.remote", 0)
    assert nups_remote < 0.5 * classic_remote


def test_classic_and_lapse_have_identical_per_epoch_quality():
    """Both provide per-key sequential consistency and use the same
    application-side sampling, so with the same seed they apply exactly the
    same updates — only their run time differs."""
    classic = run(lambda: kge_task("test"), "classic", epochs=2, seed=3)
    lapse = run(lambda: kge_task("test"), "lapse", epochs=2, seed=3)
    assert classic.qualities() == pytest.approx(lapse.qualities(), rel=1e-6)
    assert classic.mean_epoch_time() != lapse.mean_epoch_time()


def test_raw_speedups_are_computable_across_systems():
    single = run(lambda: kge_task("test"), "single-node", nodes=1, epochs=1)
    nups = run(lambda: kge_task("test"), "nups", epochs=1,
               sync_interval=0.001, pool_size=16)
    speedups = raw_speedup_from_results([single, nups])
    assert speedups["nups"] > 0


def test_ablation_variants_run_end_to_end():
    for system in ("relocation+replication", "relocation+sampling"):
        result = run(lambda: kge_task("test"), system, epochs=1,
                     sync_interval=0.001, pool_size=16)
        assert result.epochs_completed == 1
        assert np.isfinite(result.final_quality())


def test_nups_tuned_runs_end_to_end():
    result = run(lambda: kge_task("test"), "nups-tuned", epochs=1,
                 sync_interval=0.001)
    assert result.epochs_completed == 1


def test_replication_protocols_run_end_to_end():
    for system in ("ssp", "essp"):
        result = run(lambda: kge_task("test"), system, epochs=1)
        assert result.final_quality() >= 0
        assert result.metrics.get("replication.flushes", 0) > 0


def test_scalability_more_nodes_do_not_slow_nups_down():
    """Raw epoch time with 4 nodes is not worse than with 2 nodes (Fig. 8)."""
    two = run(lambda: kge_task("test"), "nups", nodes=2, epochs=1,
              sync_interval=0.001, pool_size=16)
    four = run(lambda: kge_task("test"), "nups", nodes=4, epochs=1,
               sync_interval=0.001, pool_size=16)
    assert four.mean_epoch_time() <= two.mean_epoch_time() * 1.2


def test_metrics_account_for_every_parameter_access():
    """Total recorded accesses equal local + remote + replica accesses."""
    result = run(lambda: kge_task("test"), "nups", epochs=1,
                 sync_interval=0.001, pool_size=16)
    metrics = result.metrics
    total = metrics["access.total"]
    partial = sum(value for name, value in metrics.items()
                  if name.startswith("access.") and name != "access.total")
    assert partial == pytest.approx(total)
