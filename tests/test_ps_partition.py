"""Tests for static key partitioning."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ps.partition import HashPartitioner, RangePartitioner


class TestRangePartitioner:
    def test_all_keys_assigned_within_range(self):
        partitioner = RangePartitioner(100, 4)
        owners = partitioner.owners(np.arange(100))
        assert owners.min() >= 0
        assert owners.max() < 4

    def test_contiguous_ranges(self):
        partitioner = RangePartitioner(100, 4)
        owners = partitioner.owners(np.arange(100))
        # Owners must be non-decreasing for a range partitioner.
        assert np.all(np.diff(owners) >= 0)

    def test_balanced_partition_sizes(self):
        partitioner = RangePartitioner(100, 4)
        sizes = partitioner.partition_sizes()
        assert sizes.sum() == 100
        assert sizes.max() - sizes.min() <= 25  # ceil-division imbalance only

    def test_uneven_key_count(self):
        partitioner = RangePartitioner(10, 3)
        sizes = partitioner.partition_sizes()
        assert sizes.sum() == 10
        assert all(size > 0 for size in sizes)

    def test_single_server_owns_everything(self):
        partitioner = RangePartitioner(50, 1)
        assert set(partitioner.owners(np.arange(50))) == {0}

    def test_owner_single_key(self):
        partitioner = RangePartitioner(100, 4)
        assert partitioner.owner(0) == 0
        assert partitioner.owner(99) == 3

    def test_out_of_range_key_rejected(self):
        partitioner = RangePartitioner(10, 2)
        with pytest.raises(KeyError):
            partitioner.owner(10)

    def test_keys_of_inverse_of_owner(self):
        partitioner = RangePartitioner(30, 4)
        for server in range(4):
            for key in partitioner.keys_of(server):
                assert partitioner.owner(int(key)) == server

    def test_keys_of_invalid_server(self):
        with pytest.raises(ValueError):
            RangePartitioner(10, 2).keys_of(2)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            RangePartitioner(0, 2)
        with pytest.raises(ValueError):
            RangePartitioner(10, 0)


class TestHashPartitioner:
    def test_spreads_adjacent_keys(self):
        partitioner = HashPartitioner(100, 4)
        owners = partitioner.owners(np.arange(8))
        assert list(owners) == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_owner_matches_owners(self):
        partitioner = HashPartitioner(100, 7)
        owners = partitioner.owners(np.arange(100))
        for key in range(100):
            assert partitioner.owner(key) == owners[key]

    def test_out_of_range_rejected(self):
        with pytest.raises(KeyError):
            HashPartitioner(10, 2).owner(-1)


@settings(deadline=None, max_examples=50)
@given(
    num_keys=st.integers(min_value=1, max_value=500),
    num_servers=st.integers(min_value=1, max_value=16),
)
@pytest.mark.parametrize("partitioner_cls", [RangePartitioner, HashPartitioner])
def test_partition_is_total_and_consistent(partitioner_cls, num_keys, num_servers):
    """Every key has exactly one owner, in range, and the scalar and
    vectorized owner functions agree."""
    partitioner = partitioner_cls(num_keys, num_servers)
    keys = np.arange(num_keys)
    owners = partitioner.owners(keys)
    assert owners.shape == (num_keys,)
    assert owners.min() >= 0 and owners.max() < num_servers
    sample = keys if num_keys <= 50 else keys[:: num_keys // 50]
    for key in sample:
        assert partitioner.owner(int(key)) == owners[key]
    assert partitioner.partition_sizes().sum() == num_keys
