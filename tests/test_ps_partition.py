"""Tests for static key partitioning."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ps.partition import (
    DENSE_TABLE_MAX_KEYS,
    FailoverPartitioner,
    HashPartitioner,
    RangePartitioner,
)


class TestRangePartitioner:
    def test_all_keys_assigned_within_range(self):
        partitioner = RangePartitioner(100, 4)
        owners = partitioner.owners(np.arange(100))
        assert owners.min() >= 0
        assert owners.max() < 4

    def test_contiguous_ranges(self):
        partitioner = RangePartitioner(100, 4)
        owners = partitioner.owners(np.arange(100))
        # Owners must be non-decreasing for a range partitioner.
        assert np.all(np.diff(owners) >= 0)

    def test_balanced_partition_sizes(self):
        partitioner = RangePartitioner(100, 4)
        sizes = partitioner.partition_sizes()
        assert sizes.sum() == 100
        assert sizes.max() - sizes.min() <= 25  # ceil-division imbalance only

    def test_uneven_key_count(self):
        partitioner = RangePartitioner(10, 3)
        sizes = partitioner.partition_sizes()
        assert sizes.sum() == 10
        assert all(size > 0 for size in sizes)

    def test_single_server_owns_everything(self):
        partitioner = RangePartitioner(50, 1)
        assert set(partitioner.owners(np.arange(50))) == {0}

    def test_owner_single_key(self):
        partitioner = RangePartitioner(100, 4)
        assert partitioner.owner(0) == 0
        assert partitioner.owner(99) == 3

    def test_out_of_range_key_rejected(self):
        partitioner = RangePartitioner(10, 2)
        with pytest.raises(KeyError):
            partitioner.owner(10)

    def test_keys_of_inverse_of_owner(self):
        partitioner = RangePartitioner(30, 4)
        for server in range(4):
            for key in partitioner.keys_of(server):
                assert partitioner.owner(int(key)) == server

    def test_keys_of_invalid_server(self):
        with pytest.raises(ValueError):
            RangePartitioner(10, 2).keys_of(2)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            RangePartitioner(0, 2)
        with pytest.raises(ValueError):
            RangePartitioner(10, 0)


class TestHashPartitioner:
    def test_spreads_adjacent_keys(self):
        partitioner = HashPartitioner(100, 4)
        owners = partitioner.owners(np.arange(8))
        assert list(owners) == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_owner_matches_owners(self):
        partitioner = HashPartitioner(100, 7)
        owners = partitioner.owners(np.arange(100))
        for key in range(100):
            assert partitioner.owner(key) == owners[key]

    def test_out_of_range_rejected(self):
        with pytest.raises(KeyError):
            HashPartitioner(10, 2).owner(-1)


class TestOwnersRejectsNegativeKeys:
    """Regression: ``owners`` used to wrap negative keys through ``take``'s
    negative indexing — ``RangePartitioner(100, 4).owners([-1])`` silently
    answered ``[3]`` while scalar ``owner(-1)`` raised. Both must raise."""

    def test_range_batch_negative_key_raises(self):
        partitioner = RangePartitioner(100, 4)
        with pytest.raises(KeyError):
            partitioner.owners(np.array([-1]))

    def test_range_negative_key_hidden_in_batch(self):
        partitioner = RangePartitioner(100, 4)
        with pytest.raises(KeyError):
            partitioner.owners(np.array([5, 17, -1, 42]))

    def test_hash_batch_negative_key_raises(self):
        with pytest.raises(KeyError):
            HashPartitioner(100, 4).owners(np.array([-3]))

    def test_failover_batch_negative_key_raises(self):
        failover = FailoverPartitioner(RangePartitioner(100, 4), 1, [0, 2, 3])
        with pytest.raises(KeyError):
            failover.owners(np.array([-1]))

    def test_chained_failover_batch_negative_key_raises(self):
        first = FailoverPartitioner(RangePartitioner(100, 4), 1, [0, 2, 3])
        second = FailoverPartitioner(first, 2, [0, 3])
        with pytest.raises(KeyError):
            second.owners(np.array([-100]))

    def test_scalar_and_batch_agree_on_negative_keys(self):
        for partitioner in (
            RangePartitioner(100, 4),
            HashPartitioner(100, 4),
            FailoverPartitioner(RangePartitioner(100, 4), 0, [1, 2, 3]),
        ):
            with pytest.raises(KeyError):
                partitioner.owner(-1)
            with pytest.raises(KeyError):
                partitioner.owners(np.array([-1]))

    def test_valid_batches_unaffected(self):
        partitioner = RangePartitioner(100, 4)
        keys = np.array([0, 25, 50, 99])
        assert list(partitioner.owners(keys)) == [0, 1, 2, 3]


class TestHierarchicalOwnerLookup:
    """Key spaces beyond the dense-table threshold answer ``owners`` from a
    chunk-level table plus the partition formula — no per-key table."""

    NUM_KEYS = DENSE_TABLE_MAX_KEYS * 4  # 2^24 keys: hierarchical path

    def test_matches_partition_formula(self):
        partitioner = RangePartitioner(self.NUM_KEYS, 8)
        rng = np.random.default_rng(0)
        keys = rng.integers(0, self.NUM_KEYS, size=4096, dtype=np.int64)
        expected = partitioner._compute_owners(keys)
        np.testing.assert_array_equal(partitioner.owners(keys), expected)

    def test_no_dense_table_built(self):
        partitioner = RangePartitioner(self.NUM_KEYS, 8)
        partitioner.owners(np.array([0, self.NUM_KEYS - 1]))
        assert partitioner._owner_table is None

    def test_partition_boundaries_exact(self):
        # Servers at 7 ways over 2^24 keys: every boundary chunk is mixed.
        partitioner = RangePartitioner(self.NUM_KEYS, 7)
        range_size = partitioner._range_size
        boundary_keys = []
        for server in range(1, 7):
            edge = server * range_size
            boundary_keys.extend([edge - 1, edge])
        keys = np.asarray(boundary_keys, dtype=np.int64)
        expected = partitioner._compute_owners(keys)
        np.testing.assert_array_equal(partitioner.owners(keys), expected)

    def test_scalar_owner_matches_batch(self):
        partitioner = RangePartitioner(self.NUM_KEYS, 8)
        sample = np.linspace(0, self.NUM_KEYS - 1, 64, dtype=np.int64)
        batch = partitioner.owners(sample)
        for key, owner in zip(sample.tolist(), batch.tolist()):
            assert partitioner.owner(key) == owner

    def test_hash_partitioner_uses_formula(self):
        partitioner = HashPartitioner(self.NUM_KEYS, 8)
        rng = np.random.default_rng(1)
        keys = rng.integers(0, self.NUM_KEYS, size=1024, dtype=np.int64)
        np.testing.assert_array_equal(partitioner.owners(keys), keys % 8)

    def test_out_of_range_raises(self):
        partitioner = RangePartitioner(self.NUM_KEYS, 8)
        with pytest.raises(KeyError):
            partitioner.owners(np.array([self.NUM_KEYS]))
        with pytest.raises(KeyError):
            partitioner.owners(np.array([-1]))


@settings(deadline=None, max_examples=50)
@given(
    num_keys=st.integers(min_value=1, max_value=500),
    num_servers=st.integers(min_value=1, max_value=16),
)
@pytest.mark.parametrize("partitioner_cls", [RangePartitioner, HashPartitioner])
def test_partition_is_total_and_consistent(partitioner_cls, num_keys, num_servers):
    """Every key has exactly one owner, in range, and the scalar and
    vectorized owner functions agree."""
    partitioner = partitioner_cls(num_keys, num_servers)
    keys = np.arange(num_keys)
    owners = partitioner.owners(keys)
    assert owners.shape == (num_keys,)
    assert owners.min() >= 0 and owners.max() < num_servers
    sample = keys if num_keys <= 50 else keys[:: num_keys // 50]
    for key in sample:
        assert partitioner.owner(int(key)) == owners[key]
    assert partitioner.partition_sizes().sum() == num_keys
