"""Tests for the single-node and classic parameter servers."""

import numpy as np
import pytest

from repro.core.sampling.distributions import UniformDistribution
from repro.ps.classic import ClassicPS
from repro.ps.local import SingleNodePS


class TestSingleNodePS:
    def test_requires_single_node_cluster(self, store, cluster):
        with pytest.raises(ValueError):
            SingleNodePS(store, cluster)

    def test_pull_returns_store_values(self, store, single_node_cluster):
        ps = SingleNodePS(store, single_node_cluster)
        worker = single_node_cluster.worker(0, 0)
        keys = np.array([3, 7])
        np.testing.assert_array_equal(ps.pull(worker, keys), store.get(keys))

    def test_push_applies_to_store(self, store, single_node_cluster):
        ps = SingleNodePS(store, single_node_cluster)
        worker = single_node_cluster.worker(0, 0)
        before = store.get_single(5)
        ps.push(worker, [5], np.ones((1, store.value_length), dtype=np.float32))
        np.testing.assert_allclose(store.get_single(5), before + 1.0, rtol=1e-6)

    def test_accesses_are_local_and_cheap(self, store, single_node_cluster):
        ps = SingleNodePS(store, single_node_cluster)
        worker = single_node_cluster.worker(0, 0)
        ps.pull(worker, np.arange(10))
        metrics = single_node_cluster.metrics
        assert metrics.get("access.pull.local") == 10
        assert metrics.get("access.pull.remote") == 0
        assert worker.clock.now == pytest.approx(
            10 * single_node_cluster.network.local_access_cost
        )

    def test_default_sampling_falls_back_to_direct_access(self, store, single_node_cluster):
        ps = SingleNodePS(store, single_node_cluster)
        worker = single_node_cluster.worker(0, 0)
        dist_id = ps.register_distribution(UniformDistribution(0, store.num_keys))
        handle = ps.prepare_sample(worker, dist_id, 6)
        result = ps.pull_sample(worker, handle, 4)
        assert len(result.keys) == 4
        assert result.values.shape == (4, store.value_length)
        rest = ps.pull_sample(worker, handle)
        assert len(rest.keys) == 2
        assert handle.remaining == 0

    def test_pull_sample_over_requesting_rejected(self, store, single_node_cluster):
        ps = SingleNodePS(store, single_node_cluster)
        worker = single_node_cluster.worker(0, 0)
        dist_id = ps.register_distribution(UniformDistribution(0, store.num_keys))
        handle = ps.prepare_sample(worker, dist_id, 3)
        with pytest.raises(ValueError):
            ps.pull_sample(worker, handle, 4)

    def test_unknown_distribution_rejected(self, store, single_node_cluster):
        ps = SingleNodePS(store, single_node_cluster)
        worker = single_node_cluster.worker(0, 0)
        with pytest.raises(KeyError):
            ps.prepare_sample(worker, 42, 3)


class TestClassicPS:
    def test_pull_push_semantics(self, store, cluster):
        ps = ClassicPS(store, cluster)
        worker = cluster.worker(0, 0)
        keys = np.array([0, 50, 99])
        values = ps.pull(worker, keys)
        np.testing.assert_array_equal(values, store.get(keys))
        ps.push(worker, keys, np.ones((3, store.value_length), dtype=np.float32))
        np.testing.assert_allclose(ps.pull(worker, keys), values + 1.0, rtol=1e-6)

    def test_local_partition_accessed_via_shared_memory(self, store, cluster):
        ps = ClassicPS(store, cluster)
        worker = cluster.worker(0, 0)
        local_keys = ps.partitioner.keys_of(0)[:5]
        ps.pull(worker, local_keys)
        assert cluster.metrics.get("access.pull.local") == 5
        assert cluster.metrics.get("access.pull.remote") == 0

    def test_other_partitions_accessed_remotely(self, store, cluster):
        ps = ClassicPS(store, cluster)
        worker = cluster.worker(0, 0)
        remote_keys = ps.partitioner.keys_of(3)[:5]
        ps.pull(worker, remote_keys)
        assert cluster.metrics.get("access.pull.remote") == 5
        assert cluster.metrics.get("access.pull.local") == 0
        assert cluster.metrics.get("network.messages") == 10

    def test_remote_access_costs_more_than_local(self, store, cluster):
        ps = ClassicPS(store, cluster)
        local_worker = cluster.worker(0, 0)
        remote_worker = cluster.worker(0, 1)
        ps.pull(local_worker, ps.partitioner.keys_of(0)[:5])
        ps.pull(remote_worker, ps.partitioner.keys_of(3)[:5])
        assert remote_worker.clock.now > local_worker.clock.now

    def test_remote_access_occupies_target_server(self, store, cluster):
        ps = ClassicPS(store, cluster)
        worker = cluster.worker(0, 0)
        ps.pull(worker, ps.partitioner.keys_of(3)[:5])
        assert cluster.node(3).server_clock.now > 0
        assert cluster.node(1).server_clock.now == 0

    def test_localize_is_a_noop(self, store, cluster):
        ps = ClassicPS(store, cluster)
        worker = cluster.worker(0, 0)
        ps.localize(worker, np.array([99]))
        assert cluster.metrics.get("relocation.count") == 0

    def test_push_validates_shapes(self, store, cluster):
        ps = ClassicPS(store, cluster)
        worker = cluster.worker(0, 0)
        with pytest.raises(ValueError):
            ps.push(worker, [0, 1], np.ones((1, store.value_length), dtype=np.float32))

    def test_sequential_consistency_across_workers(self, store, cluster):
        """Classic PS keeps exactly one copy: a write by one worker is
        immediately visible to every other worker."""
        ps = ClassicPS(store, cluster)
        writer = cluster.worker(1, 0)
        reader = cluster.worker(2, 1)
        ps.push(writer, [42], np.full((1, store.value_length), 2.0, dtype=np.float32))
        after = ps.pull(reader, [42])
        np.testing.assert_allclose(after, store.get([42]), rtol=1e-6)

    def test_describe(self, store, cluster):
        ps = ClassicPS(store, cluster)
        description = ps.describe()
        assert description["name"] == "classic"
        assert description["num_nodes"] == cluster.num_nodes
