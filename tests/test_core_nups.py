"""Tests for NuPS: multi-technique management and the integrated sampling API."""

import numpy as np
import pytest

from repro.core.management import ManagementPlan
from repro.core.nups import NuPS
from repro.core.sampling.conformity import ConformityLevel
from repro.core.sampling.distributions import UniformDistribution
from repro.ps.base import SampleHandle


class TestManagementIntegration:
    def test_replicated_keys_are_always_local(self, nups, cluster):
        for node in range(cluster.num_nodes):
            for key in range(5):
                assert nups.key_is_local(node, key)

    def test_relocated_keys_follow_ownership(self, nups, cluster):
        key = int(nups.partitioner.keys_of(2)[10])
        assert nups.key_is_local(2, key)
        assert not nups.key_is_local(0, key)

    def test_pull_splits_between_replica_and_relocation(self, nups, cluster):
        worker = cluster.worker(0, 0)
        keys = np.array([0, 1, 50, 99])
        values = nups.pull(worker, keys)
        assert values.shape == (4, nups.store.value_length)
        assert cluster.metrics.get("access.pull.replica.local") == 2
        remote_plus_local = (cluster.metrics.get("access.pull.remote")
                             + cluster.metrics.get("access.pull.local"))
        assert remote_plus_local == 2

    def test_pull_preserves_key_order(self, nups, cluster):
        worker = cluster.worker(0, 0)
        keys = np.array([50, 0, 99, 1])
        values = nups.pull(worker, keys)
        expected = np.stack([
            nups.store.get_single(50),
            nups.replica_manager.pull(0, np.array([0]))[0],
            nups.store.get_single(99),
            nups.replica_manager.pull(0, np.array([1]))[0],
        ])
        np.testing.assert_allclose(values, expected, rtol=1e-6)

    def test_push_to_replicated_key_is_deferred_until_sync(self, nups, cluster):
        worker = cluster.worker(0, 0)
        before = nups.store.get_single(0).copy()
        nups.push(worker, [0], np.ones((1, nups.store.value_length), dtype=np.float32))
        np.testing.assert_array_equal(nups.store.get_single(0), before)
        nups.finish_epoch()
        np.testing.assert_allclose(nups.store.get_single(0), before + 1.0, rtol=1e-6)

    def test_push_to_relocated_key_is_immediate(self, nups, cluster):
        worker = cluster.worker(0, 0)
        before = nups.store.get_single(50).copy()
        nups.push(worker, [50], np.ones((1, nups.store.value_length), dtype=np.float32))
        np.testing.assert_allclose(nups.store.get_single(50), before + 1.0, rtol=1e-6)

    def test_localize_skips_replicated_keys(self, nups, cluster):
        worker = cluster.worker(0, 0)
        nups.localize(worker, np.array([0, 1, 2]))
        assert cluster.metrics.get("relocation.count") == 0

    def test_localize_relocates_long_tail_keys(self, nups, cluster):
        worker = cluster.worker(0, 0)
        key = int(nups.partitioner.keys_of(3)[5])
        nups.localize(worker, np.array([key]))
        assert nups.key_is_local(0, key)
        assert cluster.metrics.get("relocation.count") == 1

    def test_advance_clock_is_a_noop(self, nups, cluster):
        """NuPS uses time-based staleness; no clock operations are needed."""
        worker = cluster.worker(0, 0)
        nups.advance_clock(worker)
        assert worker.clock.now == 0.0

    def test_housekeeping_runs_replica_sync(self, nups, cluster):
        worker = cluster.worker(0, 0)
        nups.push(worker, [0], np.ones((1, nups.store.value_length), dtype=np.float32))
        nups.housekeeping(now=1.0)
        assert cluster.metrics.get("replica.syncs") >= 1

    def test_replica_updates_from_all_nodes_merge(self, nups, cluster):
        before = nups.store.get_single(0).copy()
        delta = np.ones((1, nups.store.value_length), dtype=np.float32)
        nups.push(cluster.worker(0, 0), [0], delta)
        nups.push(cluster.worker(1, 0), [0], delta)
        nups.push(cluster.worker(2, 0), [0], delta)
        nups.finish_epoch()
        np.testing.assert_allclose(nups.store.get_single(0), before + 3.0, rtol=1e-6)

    def test_from_access_counts_factory(self, store, cluster):
        counts = np.ones(store.num_keys)
        counts[13] = 1e6
        ps = NuPS.from_access_counts(store, cluster, counts, hot_spot_factor=10.0)
        assert ps.plan.is_replicated(13)
        assert ps.plan.num_replicated == 1

    def test_replica_access_share(self, nups, cluster):
        worker = cluster.worker(0, 0)
        nups.pull(worker, np.array([0, 1, 50, 51]))
        assert nups.replica_access_share() == pytest.approx(0.5)

    def test_describe_includes_plan(self, nups):
        description = nups.describe()
        assert description["num_replicated"] == 5
        assert description["integrate_sampling"] is True


class TestSingleTechniqueReduction:
    def test_no_replication_means_no_sync_messages(self, store, cluster):
        """NuPS reduces to a relocation-only PS without overhead when no key
        is replicated (Section 3.2)."""
        ps = NuPS(store, cluster, plan=ManagementPlan.relocate_all(store.num_keys))
        ps.housekeeping(now=100.0)
        ps.finish_epoch()
        assert cluster.metrics.get("replica.syncs") == 0
        assert cluster.metrics.get("replica.sync_bytes") == 0

    def test_all_replicated_means_no_relocations(self, store, cluster):
        ps = NuPS(store, cluster, plan=ManagementPlan.replicate_all(store.num_keys))
        worker = cluster.worker(0, 0)
        ps.localize(worker, np.arange(store.num_keys))
        ps.pull(worker, np.arange(0, store.num_keys, 7))
        assert cluster.metrics.get("relocation.count") == 0
        assert cluster.metrics.get("access.pull.remote") == 0


class TestSamplingIntegration:
    def test_sampling_api_round_trip(self, nups, cluster):
        worker = cluster.worker(1, 0)
        dist_id = nups.register_distribution(
            UniformDistribution(0, nups.store.num_keys), ConformityLevel.BOUNDED
        )
        handle = nups.prepare_sample(worker, dist_id, 12)
        assert isinstance(handle, SampleHandle)
        result = nups.pull_sample(worker, handle, 5)
        assert len(result.keys) == 5
        rest = nups.pull_sample(worker, handle)
        assert len(rest.keys) == 7

    def test_push_sample_routes_through_management(self, nups, cluster):
        worker = cluster.worker(0, 0)
        keys = np.array([0, 50])
        before_store = nups.store.get_single(50).copy()
        nups.push_sample(worker, keys, np.ones((2, nups.store.value_length), dtype=np.float32))
        # Relocated key updated immediately, replicated key deferred.
        np.testing.assert_allclose(nups.store.get_single(50), before_store + 1.0, rtol=1e-6)
        assert cluster.metrics.get("access.sample_push.replica.local") == 1

    def test_sampling_disabled_falls_back_to_application_side(self, store, cluster):
        """The ablation variant (Section 5.3) draws independent samples and
        accesses them via direct access, without PS support."""
        ps = NuPS(store, cluster, plan=ManagementPlan(store.num_keys, [0]),
                  integrate_sampling=False)
        worker = cluster.worker(0, 0)
        dist_id = ps.register_distribution(UniformDistribution(0, store.num_keys),
                                           ConformityLevel.NON_CONFORM)
        handle = ps.prepare_sample(worker, dist_id, 10)
        result = ps.pull_sample(worker, handle)
        assert len(result.keys) == 10
        # No sampling-manager bookkeeping took place.
        assert cluster.metrics.get("relocation.sampling") == 0

    def test_local_support_keys_includes_replicated_and_owned(self, nups, cluster):
        distribution = UniformDistribution(0, nups.store.num_keys)
        local = set(nups.local_support_keys(2, distribution).tolist())
        # Replicated keys are local everywhere.
        assert {0, 1, 2, 3, 4} <= local
        # Keys owned by node 2's partition are local to node 2.
        assert set(nups.partitioner.keys_of(2).tolist()) <= local
        # Keys owned by other nodes (and not replicated) are not.
        foreign = set(nups.partitioner.keys_of(3).tolist()) - {0, 1, 2, 3, 4}
        assert foreign.isdisjoint(local)

    def test_recent_direct_access_keys_tracks_relocated_pulls_only(self, nups, cluster):
        worker = cluster.worker(0, 0)
        nups.pull(worker, np.array([0, 1, 50, 60]))
        recent = set(nups.recent_direct_access_keys(0).tolist())
        assert recent == {50, 60}

    def test_sampling_rng_is_per_node(self, nups):
        assert nups.sampling_rng(0) is not nups.sampling_rng(1)


class TestStalenessBehaviour:
    def test_nodes_see_own_replica_updates_before_sync(self, nups, cluster):
        worker_a = cluster.worker(0, 0)
        worker_b = cluster.worker(1, 0)
        delta = np.ones((1, nups.store.value_length), dtype=np.float32)
        base = nups.pull(worker_b, [0]).copy()
        nups.push(worker_a, [0], delta)
        # Node 0 sees its own write, node 1 does not (bounded staleness).
        np.testing.assert_allclose(nups.pull(worker_a, [0]), base + 1.0, rtol=1e-6)
        np.testing.assert_allclose(nups.pull(worker_b, [0]), base, rtol=1e-6)
        # After a sync both agree.
        nups.replica_manager.force_sync()
        np.testing.assert_allclose(nups.pull(worker_b, [0]), base + 1.0, rtol=1e-6)
