"""Dirty-set coverage audit for :class:`MetricsRegistry`.

The runner's epoch attribution and the telemetry sampler both key off the
global-name dirty set returned by ``drain_dirty``. These tests pin the
contract the obs layer relies on: every write path — ``increment`` with a
node, ``record_access``, ``record_access_batch`` — marks the *global*
counter name dirty whenever it touches a node-labelled counter, so the
global name set covers per-node activity too. They also pin the one
behavioral asymmetry between the single and the batch recorder (zero
counts), which must not silently change: epoch metrics depend on it.
"""

from __future__ import annotations

from repro.simulation.metrics import MetricsRegistry


class TestDirtyCoversNodeLabelledWrites:
    def test_increment_with_node_marks_global_name(self):
        registry = MetricsRegistry()
        registry.increment("network.messages", 3, node=2)
        dirty = registry.drain_dirty()
        assert "network.messages" in dirty
        assert registry.get("network.messages", node=2) == 3

    def test_record_access_marks_label_and_total(self):
        registry = MetricsRegistry()
        registry.record_access("pull.remote", node=1, count=4)
        dirty = registry.drain_dirty()
        assert dirty == {"access.pull.remote", "access.total"}
        assert registry.get("access.pull.remote", node=1) == 4
        assert registry.get("access.total", node=1) == 4

    def test_record_access_batch_covers_node_labelled_counters(self):
        """Every per-node name a batch writes appears in the global dirty set.

        This is the regression the sampler audit asked for: a batch update
        through ``record_access_batch`` must leave no node-labelled counter
        whose global name is missing from ``drain_dirty``.
        """
        registry = MetricsRegistry()
        registry.record_access_batch(
            0, {"pull.local": 5, "push.replica": 2, "sample.local": 1}
        )
        dirty = registry.drain_dirty()
        for node in registry.nodes():
            for name in registry.node_counters(node):
                assert name in dirty, (
                    f"node counter {name!r} written without dirtying the "
                    "global name"
                )

    def test_every_write_path_keeps_node_names_subset_of_global(self):
        registry = MetricsRegistry()
        registry.increment("relocation.moves", 1, node=0)
        registry.record_access("pull.local", node=1, count=2)
        registry.record_access_batch(1, {"push.local": 3})
        global_names = set(registry.counters())
        for node in registry.nodes():
            assert set(registry.node_counters(node)) <= global_names

    def test_net_zero_counter_still_reported_dirty(self):
        registry = MetricsRegistry()
        registry.increment("faults.lost_updates", 1, node=0)
        registry.increment("faults.lost_updates", -1, node=0)
        assert registry.get("faults.lost_updates") == 0.0
        assert "faults.lost_updates" in registry.drain_dirty()


class TestZeroCountBehaviorPinned:
    """The single/batch recorders differ on zero counts — by (frozen) design.

    ``record_access(kind, node, 0)`` creates the counters and marks them
    dirty; ``record_access_batch`` skips zero entries entirely. Epoch metric
    dictionaries (``EpochRecord.metrics``) observe this difference, so
    changing either side would break bit-identity with committed results.
    """

    def test_record_access_zero_count_creates_and_dirties(self):
        registry = MetricsRegistry()
        registry.record_access("pull.local", node=0, count=0)
        dirty = registry.drain_dirty()
        assert "access.pull.local" in dirty
        assert "access.total" in dirty
        assert registry.get("access.pull.local") == 0.0

    def test_record_access_batch_skips_zero_counts(self):
        registry = MetricsRegistry()
        registry.record_access_batch(0, {"pull.local": 0, "push.local": 0})
        assert registry.drain_dirty() == set()
        assert registry.counters() == {}
        assert registry.node_counters(0) == {}


class TestSnapshotDiffHelpers:
    def test_diff_reports_only_changed_counters(self):
        registry = MetricsRegistry()
        registry.increment("a", 1)
        baseline = registry.snapshot()
        registry.increment("a", 2)
        registry.increment("b", 5, node=1)
        assert registry.diff(baseline) == {"a": 2.0, "b": 5.0}

    def test_diff_is_signed(self):
        registry = MetricsRegistry()
        registry.increment("a", 3)
        baseline = registry.snapshot()
        registry.increment("a", -1)
        assert registry.diff(baseline) == {"a": -1.0}

    def test_diff_empty_when_unchanged(self):
        registry = MetricsRegistry()
        registry.increment("a", 1)
        assert registry.diff(registry.snapshot()) == {}

    def test_mark_dirty_restores_peeked_names(self):
        """The sampler peek idiom: drain + mark_dirty leaves the set intact."""
        registry = MetricsRegistry()
        registry.increment("a", 1)
        registry.record_access("pull.local", node=0, count=1)
        peeked = registry.drain_dirty()
        registry.mark_dirty(peeked)
        # A later (runner) drain still sees everything the peek saw.
        assert registry.drain_dirty() == peeked

    def test_snapshot_is_detached_copy(self):
        registry = MetricsRegistry()
        registry.increment("a", 1)
        snap = registry.snapshot()
        registry.increment("a", 1)
        assert snap["a"] == 1.0
