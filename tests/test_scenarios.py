"""Tests for the dynamic-workload scenario engine (repro.scenarios)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.management import ManagementPlan
from repro.core.nups import NuPS
from repro.core.sampling.distributions import CategoricalDistribution
from repro.ps.relocation import RelocationPS
from repro.ps.replication import ReplicationProtocol, ReplicationPS
from repro.ps.storage import ParameterStore
from repro.runner.config import ExperimentConfig
from repro.runner.experiment import _EpochState, run_experiment
from repro.runner.systems import make_ps_factory
from repro.runner.workloads import make_task
from repro.scenarios import (
    HotSetDrift,
    KeyRemapper,
    RemappedDistribution,
    RemappedParameterServer,
    Scenario,
    Stragglers,
    WorkerChurn,
    make_scenario,
)
from repro.scenarios.presets import SCENARIO_NAMES
from repro.simulation.cluster import Cluster, ClusterConfig
from repro.simulation.network import NetworkSchedule, NetworkStage


def small_config(epochs=3, scenario=None, seed=0, chunk_size=8):
    return ExperimentConfig(
        cluster=ClusterConfig(num_nodes=2, workers_per_node=2),
        epochs=epochs, chunk_size=chunk_size, seed=seed, scenario=scenario,
    )


def run_kge(scenario=None, system="lapse", epochs=3, seed=0):
    task = make_task("kge", scale="test")
    return run_experiment(
        task, make_ps_factory(system), small_config(epochs, scenario, seed)
    )


# --------------------------------------------------------------- KeyRemapper
class TestKeyRemapper:
    def test_identity_round_trip(self):
        remapper = KeyRemapper(100)
        keys = np.array([0, 5, 99])
        assert remapper.is_identity
        np.testing.assert_array_equal(remapper.to_physical(keys), keys)
        np.testing.assert_array_equal(remapper.to_logical(keys), keys)

    def test_rotation_is_group_bijection(self):
        remapper = KeyRemapper(100, groups=[(0, 60), (60, 100)])
        sigma = remapper.rotation(0.25)
        assert sorted(sigma[:60].tolist()) == list(range(60))
        assert sorted(sigma[60:].tolist()) == list(range(60, 100))
        remapper.apply(sigma)
        assert not remapper.is_identity
        all_keys = np.arange(100)
        np.testing.assert_array_equal(
            remapper.to_logical(remapper.to_physical(all_keys)), all_keys
        )
        # The rotation moved every key of the large group.
        assert np.all(remapper.to_physical(np.arange(60)) != np.arange(60))

    def test_repeated_drifts_stay_inverse_bijections(self):
        remapper = KeyRemapper(64, groups=[(0, 40), (40, 64)])
        for shift in (0.3, 0.5, 0.7, 0.9):
            remapper.apply(remapper.rotation(shift))
        all_keys = np.arange(64)
        np.testing.assert_array_equal(
            remapper.to_physical(remapper.to_logical(all_keys)), all_keys
        )
        assert sorted(remapper.physical_index.tolist()) == all_keys.tolist()

    def test_rejects_cross_group_sigma(self):
        remapper = KeyRemapper(10, groups=[(0, 5), (5, 10)])
        sigma = np.roll(np.arange(10), 1)  # rotates across the boundary
        with pytest.raises(ValueError, match="onto itself"):
            remapper.apply(sigma)

    def test_rejects_overlapping_groups(self):
        with pytest.raises(ValueError, match="overlap"):
            KeyRemapper(10, groups=[(0, 6), (5, 10)])


# ------------------------------------------------------------ store.permute
class TestStorePermute:
    def test_values_and_versions_move_with_keys(self):
        store = ParameterStore(6, 2, seed=1, init_scale=1.0)
        store.add(np.array([3]), np.ones((1, 2), dtype=np.float32))
        before = store.values.copy()
        sigma = np.array([1, 2, 3, 4, 5, 0])
        store.permute(sigma)
        np.testing.assert_array_equal(store.values[sigma], before)
        assert store.version(int(sigma[3])) == 1
        assert store.version(int(sigma[0])) == 0

    def test_rejects_non_permutation(self):
        store = ParameterStore(4, 1)
        with pytest.raises(ValueError, match="permutation"):
            store.permute(np.array([0, 0, 1, 2]))
        with pytest.raises(ValueError, match="shape"):
            store.permute(np.array([0, 1, 2]))


# --------------------------------------------------- remapped PS + sampling
class TestRemappedParameterServer:
    def make(self, num_keys=40):
        store = ParameterStore(num_keys, 2, seed=5, init_scale=0.5)
        cluster = Cluster(ClusterConfig(num_nodes=2, workers_per_node=1))
        ps = RelocationPS(store, cluster)
        remapper = KeyRemapper(num_keys)
        return RemappedParameterServer(ps, remapper), ps, remapper, cluster

    def test_pull_translates_after_drift(self):
        proxy, ps, remapper, cluster = self.make()
        worker = cluster.worker(0, 0)
        logical = np.array([1, 7, 30])
        before = proxy.pull(worker, logical).copy()
        sigma = remapper.rotation(0.5)
        ps.store.permute(sigma)
        remapper.apply(sigma)
        # Logical values are preserved across the drift...
        np.testing.assert_array_equal(proxy.pull(worker, logical), before)
        # ...but they now live under different physical keys.
        assert np.all(remapper.to_physical(logical) != logical)

    def test_push_lands_on_physical_key(self):
        proxy, ps, remapper, cluster = self.make()
        worker = cluster.worker(0, 0)
        remapper.apply(remapper.rotation(0.5))
        physical = int(remapper.to_physical(np.array([3]))[0])
        before = ps.store.get_single(physical)
        proxy.push(worker, np.array([3]), np.ones((1, 2), dtype=np.float32))
        np.testing.assert_allclose(
            ps.store.get_single(physical), before + 1.0, rtol=1e-6
        )

    def test_delegates_unlisted_attributes(self):
        proxy, ps, _, _ = self.make()
        assert proxy.describe() == ps.describe()
        assert proxy.name == ps.name
        assert proxy.store is ps.store


class TestRemappedDistribution:
    def test_probabilities_follow_the_mapping(self):
        remapper = KeyRemapper(10, groups=[(0, 10)])
        inner = CategoricalDistribution(np.arange(1.0, 11.0), key_offset=0)
        wrapped = RemappedDistribution(inner, remapper)
        np.testing.assert_allclose(wrapped.probabilities(), inner.probabilities())
        remapper.apply(remapper.rotation(0.3))
        for physical in range(10):
            logical = int(remapper.to_logical(np.array([physical]))[0])
            assert wrapped.probability(physical) == pytest.approx(
                inner.probability(logical)
            )
        np.testing.assert_allclose(wrapped.probabilities().sum(), 1.0)

    def test_sampled_keys_are_physical(self):
        remapper = KeyRemapper(12, groups=[(0, 12)])
        inner = CategoricalDistribution(np.r_[np.ones(6), np.zeros(6)])
        wrapped = RemappedDistribution(inner, remapper)
        remapper.apply(remapper.rotation(0.5))
        rng = np.random.default_rng(0)
        samples = wrapped.sample(rng, 200)
        hot_physical = set(remapper.to_physical(np.arange(6)).tolist())
        assert set(samples.tolist()) <= hot_physical

    def test_rejects_support_not_matching_a_group(self):
        remapper = KeyRemapper(10, groups=[(0, 5), (5, 10)])
        # Spans a group boundary.
        with pytest.raises(ValueError, match="key group"):
            RemappedDistribution(
                CategoricalDistribution(np.ones(6), key_offset=2), remapper
            )
        # Strict subset of a group: would leak outside its support post-drift.
        with pytest.raises(ValueError, match="key group"):
            RemappedDistribution(
                CategoricalDistribution(np.ones(3), key_offset=5), remapper
            )


# ----------------------------------------------------------- NuPS.remanage
class TestRemanage:
    def test_replicas_follow_the_new_plan(self, store, cluster):
        plan = ManagementPlan(store.num_keys, np.arange(5))
        nups = NuPS(store, cluster, plan=plan, sync_interval=0.01)
        new_plan = ManagementPlan(store.num_keys, np.arange(50, 60))
        nups.remanage(new_plan, now=1.0)
        assert nups.plan is new_plan
        assert nups.replica_manager.plan is new_plan
        assert nups.replica_manager.num_replicated == 10
        assert nups.replica_manager.max_replica_divergence() == 0.0
        assert cluster.metrics.get("management.replans") == 1

    def test_pending_updates_flush_before_swap(self, store, cluster):
        plan = ManagementPlan(store.num_keys, np.arange(5))
        nups = NuPS(store, cluster, plan=plan, sync_interval=0.01)
        worker = cluster.worker(0, 0)
        delta = np.ones((1, store.value_length), dtype=np.float32)
        before = store.get_single(2)
        nups.push(worker, np.array([2]), delta)
        nups.remanage(ManagementPlan.relocate_all(store.num_keys), now=0.5)
        np.testing.assert_allclose(store.get_single(2), before + 1.0, rtol=1e-6)

    def test_schedule_anchored_at_remanage_time(self, store, cluster):
        plan = ManagementPlan(store.num_keys, np.arange(5))
        nups = NuPS(store, cluster, plan=plan, sync_interval=0.01)
        nups.remanage(ManagementPlan(store.num_keys, np.arange(3)), now=5.0)
        # A schedule naively restarted at time zero would owe ~500 rounds.
        assert nups.replica_manager.maybe_sync(5.015) == 1

    def test_rejects_wrong_key_space(self, store, cluster):
        nups = NuPS(store, cluster, plan=ManagementPlan(store.num_keys, [0]))
        with pytest.raises(ValueError, match="key space"):
            nups.remanage(ManagementPlan(store.num_keys + 1, [0]))


# ------------------------------------------------------- network refreshing
class TestNetworkRefresh:
    def test_refresh_updates_cached_constants(self):
        store = ParameterStore(20, 4)
        cluster = Cluster(ClusterConfig(num_nodes=2, workers_per_node=1))
        for ps in (
            RelocationPS(store, cluster),
            ReplicationPS(store, cluster, protocol=ReplicationProtocol.SSP),
        ):
            degraded = cluster.config.network.scaled(
                latency_factor=4.0, bandwidth_factor=0.25
            )
            cluster.set_network(degraded)
            ps.refresh_network()
            assert ps.network is degraded
            assert ps._remote_access_cost == degraded.remote_access_cost(
                store.value_bytes()
            )
            if isinstance(ps, RelocationPS):
                assert ps._relocation_latency == degraded.relocation_cost(
                    store.value_bytes()
                )
            cluster.set_network(cluster.config.network)

    def test_scaled_validates_and_keeps_compute(self, network):
        degraded = network.scaled(latency_factor=2.0, bandwidth_factor=0.5)
        assert degraded.latency == 2 * network.latency
        assert degraded.bandwidth == 0.5 * network.bandwidth
        assert degraded.compute_per_step == network.compute_per_step
        with pytest.raises(ValueError):
            network.scaled(bandwidth_factor=0.0)

    def test_network_schedule_stages(self, network):
        schedule = NetworkSchedule([
            NetworkStage(from_epoch=1, latency_factor=2.0),
            (3, 4.0, 0.5),  # tuple form
        ])
        assert schedule.stage_at(0) is None
        assert schedule.model_at(network, 0) == network
        assert schedule.model_at(network, 1).latency == 2 * network.latency
        assert schedule.model_at(network, 2).latency == 2 * network.latency
        degraded = schedule.model_at(network, 5)
        assert degraded.latency == 4 * network.latency
        assert degraded.bandwidth == 0.5 * network.bandwidth


# --------------------------------------------------------- epoch-state churn
class TestEpochStateRedistribution:
    def make_state(self, sizes, chunk_size=4):
        class W:
            def __init__(self, node_id, worker_id):
                self.node_id, self.worker_id = node_id, worker_id
                self.global_worker_id = (node_id, worker_id)

        workers = [W(0, i) for i in range(len(sizes))]
        offset = 0
        shard_arrays = []
        for size in sizes:
            shard_arrays.append(np.arange(offset, offset + size))
            offset += size
        shards = [shard_arrays]
        return _EpochState(workers, shards, chunk_size), workers

    def test_no_work_lost_on_redistribution(self):
        state, workers = self.make_state([10, 7, 0, 5])
        taken = {w.global_worker_id: [] for w in workers}
        taken[(0, 0)].append(state.take_chunk((0, 0)))
        state.redistribute((0, 0), [(0, 1), (0, 3)])
        assert state.pending((0, 0)) == 0
        while state.has_pending():
            for w in workers[1:]:
                chunk = state.take_chunk(w.global_worker_id)
                if len(chunk):
                    taken[w.global_worker_id].append(chunk)
        everything = np.concatenate(
            [np.concatenate(chunks) for chunks in taken.values() if chunks]
        )
        np.testing.assert_array_equal(np.sort(everything), np.arange(22))

    def test_peek_matches_take_across_segments(self):
        state, _ = self.make_state([3, 0], chunk_size=8)
        state.queues[(0, 0)].append(np.array([100, 101]))
        peeked = state.peek_chunk((0, 0))
        np.testing.assert_array_equal(peeked, state.take_chunk((0, 0)))


# -------------------------------------------------- end-to-end perturbations
class TestScenarioExperiments:
    def test_presets_cover_the_four_scenarios(self):
        assert {"drift", "stragglers", "churn", "degrading-network"} <= set(
            SCENARIO_NAMES
        )
        with pytest.raises(ValueError, match="unknown scenario"):
            make_scenario("no-such-scenario")

    def test_stragglers_slow_the_cluster_down(self):
        baseline = run_kge(scenario=None)
        slowed = run_kge(scenario=Scenario(
            "s", [Stragglers(severity=4.0, redraw_each_epoch=True)]
        ))
        assert slowed.total_time > baseline.total_time * 1.05
        # Quality trajectory is untouched: stragglers change time, not math.
        assert slowed.qualities() == baseline.qualities()

    def test_churn_redistributes_and_completes(self):
        result = run_kge(scenario=Scenario(
            "c", [WorkerChurn(fraction=0.4, pause_at_round=1)]
        ), epochs=2)
        assert result.epochs_completed == 2
        assert result.metrics["scenario.worker_pauses"] > 0
        assert result.metrics["scenario.worker_resumes"] > 0
        total = sum(rec.metrics["access.total"] for rec in result.records)
        baseline = run_kge(scenario=None, epochs=2)
        baseline_total = sum(rec.metrics["access.total"] for rec in baseline.records)
        # Every data point is still processed (sampling access counts can
        # differ slightly because pool preparation is node-driven).
        direct = [r.metrics.get("access.pull.local", 0)
                  + r.metrics.get("access.pull.remote", 0) for r in result.records]
        baseline_direct = [r.metrics.get("access.pull.local", 0)
                           + r.metrics.get("access.pull.remote", 0)
                           for r in baseline.records]
        assert direct == baseline_direct
        assert total > 0 and baseline_total > 0

    def test_degrading_network_inflates_network_bound_systems(self):
        scenario = make_scenario("degrading-network", start_epoch=1,
                                 latency_growth=3.0, bandwidth_decay=0.3, steps=2)
        degraded = run_kge(scenario=scenario, system="classic")
        baseline = run_kge(scenario=None, system="classic")
        assert degraded.metrics["scenario.network_changes"] >= 1
        assert degraded.total_time > baseline.total_time * 1.5
        # Epochs get slower as the network degrades.
        durations = [rec.epoch_duration for rec in degraded.records]
        assert durations[-1] > durations[0] * 1.5

    def test_drift_triggers_relocation_burst_and_recovery(self):
        # Matrix factorization settles into strong per-node row locality, so
        # the relocation PS reaches a steady state that a mid-run drift
        # visibly disturbs — and re-adapts from within one epoch.
        task_name = "matrix_factorization"
        scenario = Scenario("d", [HotSetDrift(at=((2, 0),), shift=0.5)])
        task = make_task(task_name, scale="test")
        result = run_experiment(
            task, make_ps_factory("lapse"), small_config(4, scenario)
        )
        relocations = [rec.metrics.get("relocation.count", 0.0)
                       for rec in result.records]
        assert result.metrics["scenario.drifts"] == 1
        # Epoch 1 is the settled steady state, epoch 2 contains the drift
        # (relocation burst), epoch 3 is settled again (re-adaptation).
        assert relocations[2] > 1.3 * relocations[1]
        assert relocations[3] <= 1.05 * relocations[1]

    def test_drift_remanages_nups_plan(self):
        captured = {}
        task = make_task("kge", scale="test")
        # The untuned heuristic replicates nothing at test scale; force a
        # non-trivial plan so re-management has something to re-target.
        plan = ManagementPlan.top_k_by_count(task.access_counts(), 20)
        base_factory = make_ps_factory("nups", plan=plan)

        def factory(store, cluster, task):
            ps = base_factory(store, cluster, task)
            captured["ps"] = ps
            captured["initial_replicated"] = ps.plan.replicated_keys.copy()
            return ps

        scenario = Scenario("d", [HotSetDrift(at=((1, 0),), shift=0.5)])
        result = run_experiment(task, factory, small_config(2, scenario))
        ps = captured["ps"]
        assert result.metrics.get("management.replans", 0) == 1
        assert ps.plan.num_replicated == len(captured["initial_replicated"])
        assert not np.array_equal(
            ps.plan.replicated_keys, captured["initial_replicated"]
        )
        # The new plan replicates the drifted images of the hot keys: the
        # remapped physical hot set, not the stale physical labels.
        runtime_hot = np.sort(ps.plan.replicated_keys)
        counts = task.access_counts()
        logical_hot = np.argsort(counts)[::-1][:20]
        assert set(runtime_hot.tolist()) != set(
            captured["initial_replicated"].tolist()
        )
        assert len(runtime_hot) == len(logical_hot)

    def test_drift_preserves_logical_quality_semantics(self):
        # Same seed, same task: a drift changes *where* parameters live, not
        # what the model learns on a system without caches (classic PS), so
        # quality stays identical while key traffic moves.
        scenario = Scenario("d", [HotSetDrift(at=((1, 0),), shift=0.5)])
        drifted = run_kge(scenario=scenario, system="classic", epochs=2)
        baseline = run_kge(scenario=None, system="classic", epochs=2)
        assert drifted.qualities() == baseline.qualities()

    def test_cannot_pause_last_worker(self):
        task = make_task("kge", scale="test")
        cluster = Cluster(ClusterConfig(num_nodes=1, workers_per_node=2))
        store = task.create_store(seed=0)
        ps = make_ps_factory("classic")(store, cluster, task)
        runtime = Scenario("x", []).bind(task, ps, cluster, small_config())
        runtime.pause_worker(0, 0)
        with pytest.raises(ValueError, match="last active worker"):
            runtime.pause_worker(0, 1)
        runtime.resume_worker(0, 0)
        runtime.pause_worker(0, 1)

    def test_worker_compute_scale_validation(self):
        cluster = Cluster(ClusterConfig(num_nodes=1, workers_per_node=1))
        with pytest.raises(ValueError, match="positive"):
            cluster.set_compute_scale(0, 0, 0.0)
        cluster.set_compute_scale(0, 0, 2.0)
        worker = cluster.worker(0, 0)
        worker.charge_compute(1.0)
        assert worker.clock.now == 2.0
