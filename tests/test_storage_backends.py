"""Dense/sparse storage backend equivalence and memory-budget regression.

The dense backend is the bit-identity oracle for the sparse chunked backend:
every operation, and every end-to-end experiment, must produce exactly the
same values, versions, simulated clocks and metrics on both. The budget
tests pin the tentpole scaling property — a sparse store over 10^8 logical
keys with a small touched set stays under an explicit memory budget that the
dense backend could not possibly meet.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ps.chunks import MemoryBudgetExceeded, StorageConfig
from repro.ps.storage import ParameterStore
from repro.runner.config import ExperimentConfig
from repro.runner.experiment import ExperimentResult, run_experiment
from repro.runner.systems import make_ps_factory
from repro.runner.workloads import make_task
from repro.scenarios import make_scenario
from repro.simulation.cluster import ClusterConfig


SPARSE = StorageConfig(backend="sparse", chunk_rows=64)


def _dense_and_sparse(num_keys=500, value_length=4, seed=3, init_scale=0.0):
    dense = ParameterStore(num_keys, value_length, seed=seed,
                           init_scale=init_scale)
    sparse = ParameterStore(num_keys, value_length, seed=seed,
                            init_scale=init_scale, storage=SPARSE)
    return dense, sparse


def _assert_stores_equal(dense: ParameterStore, sparse: ParameterStore):
    all_keys = np.arange(dense.num_keys, dtype=np.int64)
    np.testing.assert_array_equal(dense.get(all_keys), sparse.get(all_keys))
    np.testing.assert_array_equal(dense.read_versions(all_keys),
                                  sparse.read_versions(all_keys))


class TestSparseStoreMatchesDenseOracle:
    def test_random_init_is_bit_identical(self):
        dense, sparse = _dense_and_sparse(seed=7, init_scale=0.1)
        _assert_stores_equal(dense, sparse)

    def test_add_set_get_sequence(self):
        rng = np.random.default_rng(0)
        dense, sparse = _dense_and_sparse()
        for _ in range(25):
            keys = rng.integers(0, 500, size=rng.integers(1, 80),
                                dtype=np.int64)
            deltas = rng.normal(size=(len(keys), 4)).astype(np.float32)
            if rng.random() < 0.3:
                distinct = np.unique(keys)
                block = rng.normal(size=(len(distinct), 4)).astype(np.float32)
                dense.set(distinct, block)
                sparse.set(distinct, block)
            else:
                dense.add(keys, deltas)
                sparse.add(keys, deltas)
        _assert_stores_equal(dense, sparse)

    def test_add_distinct_matches(self):
        dense, sparse = _dense_and_sparse()
        keys = np.array([3, 64, 65, 499], dtype=np.int64)
        deltas = np.full((4, 4), 0.25, dtype=np.float32)
        dense.add_distinct(keys, deltas)
        sparse.add_distinct(keys, deltas)
        _assert_stores_equal(dense, sparse)

    def test_duplicate_keys_accumulate_identically(self):
        dense, sparse = _dense_and_sparse()
        keys = np.array([10, 10, 10, 63, 64, 10], dtype=np.int64)
        deltas = np.arange(24, dtype=np.float32).reshape(6, 4) * 0.1
        dense.add(keys, deltas)
        sparse.add(keys, deltas)
        _assert_stores_equal(dense, sparse)
        assert sparse.version(10) == 4

    def test_permute_matches(self):
        rng = np.random.default_rng(1)
        dense, sparse = _dense_and_sparse(num_keys=128)
        keys = rng.integers(0, 128, size=40, dtype=np.int64)
        deltas = rng.normal(size=(40, 4)).astype(np.float32)
        dense.add(keys, deltas)
        sparse.add(keys, deltas)
        perm = rng.permutation(128).astype(np.int64)
        dense.permute(perm)
        sparse.permute(perm)
        _assert_stores_equal(dense, sparse)

    def test_write_rows_does_not_bump_versions(self):
        for store in _dense_and_sparse():
            keys = np.array([5, 70], dtype=np.int64)
            store.add(keys, np.ones((2, 4), dtype=np.float32))
            before = store.read_versions(keys)
            store.write_rows(keys, np.zeros((2, 4), dtype=np.float32))
            np.testing.assert_array_equal(store.read_versions(keys), before)
            assert store.get(keys).sum() == 0.0

    def test_write_versions_roundtrip(self):
        for store in _dense_and_sparse():
            keys = np.array([1, 2], dtype=np.int64)
            store.write_versions(keys, np.array([10, 20]))
            np.testing.assert_array_equal(store.read_versions(keys), [10, 20])

    def test_values_property_densifies_coherently(self):
        _, sparse = _dense_and_sparse()
        sparse.add(np.array([7]), np.ones((1, 4), dtype=np.float32))
        dense_view = sparse.values
        assert dense_view.shape == (500, 4)
        assert dense_view[7].sum() == 4.0
        # Direct writes and chunked ops must stay coherent after densify.
        dense_view[9] = 2.0
        np.testing.assert_array_equal(sparse.get(np.array([9]))[0],
                                      np.full(4, 2.0, np.float32))
        sparse.add(np.array([11]), np.ones((1, 4), dtype=np.float32))
        assert dense_view[11].sum() == 4.0


class TestWithStorageConversion:
    def test_round_trip_preserves_contents(self):
        dense = ParameterStore(300, 4, seed=2, init_scale=0.05)
        dense.add(np.array([5, 100]), np.ones((2, 4), dtype=np.float32))
        sparse = dense.with_storage(SPARSE)
        assert sparse.backend == "sparse"
        _assert_stores_equal(dense, sparse)
        back = sparse.with_storage(StorageConfig())
        assert back.backend == "dense"
        _assert_stores_equal(dense, back)

    def test_zero_regions_stay_unmaterialized(self):
        dense = ParameterStore(10_000, 4)
        dense.add(np.array([0, 9_999]), np.ones((2, 4), dtype=np.float32))
        sparse = dense.with_storage(SPARSE)
        # Only the two touched chunks (values + versions) materialize.
        assert sparse.materialized_chunks() == 2
        _assert_stores_equal(dense, sparse)

    def test_rejects_non_config(self):
        with pytest.raises(TypeError):
            ParameterStore(10, 2).with_storage("sparse")


class TestViewContract:
    """``view`` promises a zero-copy read-only view for contiguous ranges
    and documents the copy fallback for everything else (regression: fancy
    indexing silently returned a copy while the docstring said view)."""

    def test_contiguous_range_is_zero_copy_on_dense(self):
        store = ParameterStore(100, 4, seed=0, init_scale=0.1)
        view = store.view(np.arange(10, 20))
        assert np.shares_memory(view, store.values)
        assert not view.flags.writeable

    def test_single_key_is_zero_copy_on_dense(self):
        store = ParameterStore(100, 4)
        assert np.shares_memory(store.view(np.array([42])), store.values)

    def test_view_tracks_subsequent_writes(self):
        # The zero-copy contract, observably: a true view sees later writes.
        store = ParameterStore(100, 4)
        view = store.view(np.arange(5, 8))
        store.add(np.array([6]), np.ones((1, 4), dtype=np.float32))
        assert view[1].sum() == 4.0

    def test_non_contiguous_falls_back_to_copy(self):
        store = ParameterStore(100, 4, seed=0, init_scale=0.1)
        view = store.view(np.array([3, 7, 50]))
        assert not np.shares_memory(view, store.values)
        assert not view.flags.writeable
        np.testing.assert_array_equal(view, store.get(np.array([3, 7, 50])))

    def test_sparse_contiguous_within_chunk_is_zero_copy(self):
        store = ParameterStore(1000, 4, storage=SPARSE)
        store.add(np.array([130]), np.ones((1, 4), dtype=np.float32))
        view = store.view(np.arange(128, 140))  # inside materialized chunk 2
        chunk = store._values._chunks[2]
        assert np.shares_memory(view, chunk)
        assert not view.flags.writeable

    def test_sparse_unmaterialized_range_copies(self):
        store = ParameterStore(1000, 4, storage=SPARSE)
        view = store.view(np.arange(200, 210))
        assert not view.flags.writeable
        assert view.sum() == 0.0


class TestCopyWithoutThrowawayAllocation:
    def test_copy_never_calls_init(self, monkeypatch):
        """Regression: ``copy`` used to build the clone through ``__init__``,
        allocating a throwaway zero matrix that doubled peak memory."""
        store = ParameterStore(100, 4, seed=1, init_scale=0.1)

        def _boom(self, *args, **kwargs):
            raise AssertionError("copy() must not round-trip through __init__")

        monkeypatch.setattr(ParameterStore, "__init__", _boom)
        clone = store.copy()
        np.testing.assert_array_equal(clone.values, store.values)

    def test_sparse_copy_clones_materialized_chunks_only(self):
        store = ParameterStore(10_000, 4, storage=SPARSE)
        store.add(np.array([500]), np.ones((1, 4), dtype=np.float32))
        clone = store.copy()
        assert clone.materialized_chunks() == 1
        assert clone.nbytes() == store.nbytes()
        clone.add(np.array([500]), np.ones((1, 4), dtype=np.float32))
        # Independent: the original must not see the clone's write.
        assert store.get(np.array([500]))[0, 0] == 1.0


class TestMemoryBudgetRegression:
    """The tentpole scaling property, pinned as a regression test."""

    NUM_KEYS = 10**8
    BUDGET = 64 * 2**20  # 64 MiB — dense would need ~4 GiB (values+versions)

    def _sparse_config(self):
        return StorageConfig(backend="sparse", chunk_rows=64,
                             store_budget_bytes=self.BUDGET)

    def test_hundred_million_keys_under_budget(self):
        store = ParameterStore(self.NUM_KEYS, 8,
                               storage=self._sparse_config())
        rng = np.random.default_rng(0)
        touched = rng.integers(0, self.NUM_KEYS, size=10_000, dtype=np.int64)
        store.add(touched, rng.normal(size=(10_000, 8)).astype(np.float32))
        assert store.nbytes() <= self.BUDGET
        # The dense backend would allocate the full key space up front:
        dense_required = self.NUM_KEYS * (8 * 4 + 8)  # values + versions
        assert dense_required > 50 * self.BUDGET
        # Reads of untouched keys stay free and correct.
        probe = np.array([1, self.NUM_KEYS - 2], dtype=np.int64)
        assert store.get(probe).sum() == 0.0
        assert store.version(1) == 0

    def test_exceeding_budget_raises_actionable_error(self):
        config = StorageConfig(backend="sparse", chunk_rows=4096,
                               store_budget_bytes=1 * 2**20)  # 1 MiB
        store = ParameterStore(self.NUM_KEYS, 8, storage=config)
        rng = np.random.default_rng(1)
        keys = rng.integers(0, self.NUM_KEYS, size=5_000, dtype=np.int64)
        with pytest.raises(MemoryBudgetExceeded) as excinfo:
            store.add(keys, np.ones((5_000, 8), dtype=np.float32))
        message = str(excinfo.value)
        assert "memory budget" in message
        assert "chunk_rows" in message
        assert "Raise the budget" in message


# --------------------------------------------------------------------------
# End-to-end bit-identity: every PS architecture, dense vs sparse backend.
# --------------------------------------------------------------------------

def _run(system: str, storage=None, scenario_name=None) -> ExperimentResult:
    scenario = make_scenario(scenario_name) if scenario_name else None
    task = make_task("kge", scale="test")
    config = ExperimentConfig(
        cluster=ClusterConfig(num_nodes=2, workers_per_node=2),
        epochs=2, chunk_size=8, seed=5, scenario=scenario, storage=storage,
    )
    return run_experiment(task, make_ps_factory(system), config)


def _assert_identical(first: ExperimentResult, second: ExperimentResult):
    assert first.initial_quality == second.initial_quality
    assert first.epochs_completed == second.epochs_completed
    for rec_a, rec_b in zip(first.records, second.records):
        assert rec_a.sim_time == rec_b.sim_time
        assert rec_a.epoch_duration == rec_b.epoch_duration
        assert rec_a.quality == rec_b.quality
        assert rec_a.metrics == rec_b.metrics
    assert first.metrics == second.metrics


SPARSE_RUN = StorageConfig(backend="sparse", chunk_rows=256)


@pytest.mark.parametrize("system", ["classic", "lapse", "essp", "nups"])
def test_sparse_backend_is_bit_identical(system):
    _assert_identical(_run(system), _run(system, storage=SPARSE_RUN))


def test_sparse_backend_bit_identical_under_drift_scenario():
    _assert_identical(_run("nups", scenario_name="drift"),
                      _run("nups", storage=SPARSE_RUN, scenario_name="drift"))


def test_sparse_backend_bit_identical_under_faults():
    _assert_identical(
        _run("essp", scenario_name="crash-storm"),
        _run("essp", storage=SPARSE_RUN, scenario_name="crash-storm"),
    )
