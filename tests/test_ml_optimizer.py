"""Tests for the optimizers and update utilities."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ml.optimizer import AdaGrad, BoldDriver, UpdateNormClipper, clip_update_norm


class TestAdaGrad:
    def test_rejects_invalid_hyperparameters(self):
        with pytest.raises(ValueError):
            AdaGrad(learning_rate=0.0)
        with pytest.raises(ValueError):
            AdaGrad(eps=0.0)

    def test_update_shape_and_layout(self):
        optimizer = AdaGrad(0.1)
        value = np.zeros(8, dtype=np.float32)  # 4 weights + 4 accumulator
        gradient = np.ones(4, dtype=np.float32)
        delta = optimizer.compute_update(value, gradient)
        assert delta.shape == (8,)
        # Weight part moves against the gradient, accumulator gains grad^2.
        assert np.all(delta[:4] < 0)
        np.testing.assert_allclose(delta[4:], 1.0)

    def test_first_step_size_is_learning_rate(self):
        optimizer = AdaGrad(0.1, eps=1e-12)
        value = np.zeros(4, dtype=np.float32)
        gradient = np.array([2.0, -3.0], dtype=np.float32)
        delta = optimizer.compute_update(value, gradient)
        # With zero accumulator the adjusted gradient is g / |g| = sign(g).
        np.testing.assert_allclose(delta[:2], [-0.1, 0.1], rtol=1e-4)

    def test_accumulator_shrinks_subsequent_steps(self):
        optimizer = AdaGrad(0.1)
        value = np.zeros(4, dtype=np.float32)
        gradient = np.array([1.0, 1.0], dtype=np.float32)
        first = optimizer.compute_update(value, gradient)
        value = value + first
        second = optimizer.compute_update(value, gradient)
        assert np.all(np.abs(second[:2]) < np.abs(first[:2]))

    def test_batched_values(self):
        optimizer = AdaGrad(0.1)
        values = np.zeros((3, 4), dtype=np.float32)
        gradients = np.ones((3, 2), dtype=np.float32)
        deltas = optimizer.compute_update(values, gradients)
        assert deltas.shape == (3, 4)

    def test_layout_mismatch_rejected(self):
        with pytest.raises(ValueError):
            AdaGrad(0.1).compute_update(np.zeros(5), np.zeros(2))

    def test_weights_helper(self):
        value = np.arange(6, dtype=np.float32)
        np.testing.assert_array_equal(AdaGrad.weights(value), [0, 1, 2])

    @settings(deadline=None, max_examples=50)
    @given(st.lists(st.floats(min_value=-10, max_value=10), min_size=2, max_size=2))
    def test_accumulator_is_monotone(self, gradient):
        """The accumulator part of the delta is always non-negative, so the
        accumulator itself never decreases — which is what makes pushing it
        additively through the PS correct."""
        optimizer = AdaGrad(0.1)
        delta = optimizer.compute_update(np.zeros(4, dtype=np.float32),
                                         np.asarray(gradient, dtype=np.float32))
        assert np.all(delta[2:] >= 0)


class TestClipUpdateNorm:
    def test_no_clipping_below_threshold(self):
        update = np.array([0.3, 0.4], dtype=np.float32)
        np.testing.assert_array_equal(clip_update_norm(update, 1.0), update)

    def test_clipping_above_threshold(self):
        update = np.array([3.0, 4.0], dtype=np.float32)
        clipped = clip_update_norm(update, 1.0)
        assert np.linalg.norm(clipped) == pytest.approx(1.0)
        # Direction is preserved.
        np.testing.assert_allclose(clipped / np.linalg.norm(clipped),
                                   update / np.linalg.norm(update), rtol=1e-5)

    def test_rowwise_clipping(self):
        updates = np.array([[3.0, 4.0], [0.3, 0.4]], dtype=np.float32)
        clipped = clip_update_norm(updates, 1.0)
        assert np.linalg.norm(clipped[0]) == pytest.approx(1.0)
        np.testing.assert_allclose(clipped[1], updates[1])

    def test_disabled_with_non_positive_max(self):
        update = np.array([3.0, 4.0], dtype=np.float32)
        np.testing.assert_array_equal(clip_update_norm(update, 0.0), update)


class TestUpdateNormClipper:
    def test_rejects_invalid_args(self):
        with pytest.raises(ValueError):
            UpdateNormClipper(factor=0)
        with pytest.raises(ValueError):
            UpdateNormClipper(warmup=0)

    def test_no_clipping_during_warmup(self):
        clipper = UpdateNormClipper(factor=2.0, warmup=10)
        large = np.array([100.0, 0.0], dtype=np.float32)
        np.testing.assert_array_equal(clipper.clip(large), large)

    def test_zero_norm_updates_do_not_poison_the_average(self):
        clipper = UpdateNormClipper(factor=2.0, warmup=2)
        for _ in range(50):
            clipper.clip(np.zeros(2, dtype=np.float32))
        assert clipper.mean_norm == 0.0
        # A normal update afterwards is not clipped to zero.
        update = np.array([1.0, 0.0], dtype=np.float32)
        np.testing.assert_array_equal(clipper.clip(update), update)

    def test_outlier_clipped_after_warmup(self):
        clipper = UpdateNormClipper(factor=2.0, warmup=5)
        for _ in range(20):
            clipper.clip(np.array([1.0, 0.0], dtype=np.float32))
        outlier = np.array([100.0, 0.0], dtype=np.float32)
        clipped = clipper.clip(outlier)
        assert np.linalg.norm(clipped) == pytest.approx(2.0, rel=0.01)


class TestBoldDriver:
    def test_rejects_invalid_args(self):
        with pytest.raises(ValueError):
            BoldDriver(0.0)
        with pytest.raises(ValueError):
            BoldDriver(0.1, increase=0.9)
        with pytest.raises(ValueError):
            BoldDriver(0.1, decrease=1.5)

    def test_first_update_keeps_rate(self):
        driver = BoldDriver(0.1)
        assert driver.update(1.0) == pytest.approx(0.1)

    def test_rate_increases_when_loss_decreases(self):
        driver = BoldDriver(0.1, increase=1.05)
        driver.update(1.0)
        assert driver.update(0.9) == pytest.approx(0.105)

    def test_rate_halves_when_loss_increases(self):
        driver = BoldDriver(0.1, decrease=0.5)
        driver.update(1.0)
        assert driver.update(1.5) == pytest.approx(0.05)

    def test_equal_loss_counts_as_improvement(self):
        driver = BoldDriver(0.1)
        driver.update(1.0)
        assert driver.update(1.0) > 0.1
