"""Tests for the sampling schemes and the sampling manager, run against NuPS.

The statistical conformity properties (Table 1) are checked empirically:
independent sampling and sample reuse must match the target first-order
inclusion probabilities, local sampling need not.
"""

import numpy as np
import pytest

from repro.core.management import ManagementPlan
from repro.core.nups import NuPS
from repro.core.sampling.conformity import ConformityLevel
from repro.core.sampling.distributions import CategoricalDistribution, UniformDistribution
from repro.core.sampling.manager import SamplingConfig
from repro.core.sampling.schemes import (
    IndependentSamplingScheme,
    LocalSamplingScheme,
    PoolSampleReuseScheme,
    PostponingSampleReuseScheme,
    SchemeConfig,
)
from repro.ps.storage import ParameterStore
from repro.simulation.cluster import Cluster, ClusterConfig


NUM_KEYS = 64


@pytest.fixture
def small_cluster(network):
    return Cluster(ClusterConfig(num_nodes=2, workers_per_node=1, network=network))


def make_nups(cluster, scheme_override=None, pool_size=8, use_frequency=4,
              replicated=()):
    store = ParameterStore(NUM_KEYS, 2, seed=0, init_scale=0.1)
    plan = ManagementPlan(NUM_KEYS, np.asarray(replicated, dtype=np.int64))
    config = SamplingConfig(
        scheme_config=SchemeConfig(pool_size=pool_size, use_frequency=use_frequency,
                                   local_refresh_interval=16),
        scheme_override=scheme_override,
    )
    return NuPS(store, cluster, plan=plan, sampling_config=config,
                sync_interval=0.01, seed=1)


def drain(ps, worker, distribution_id, total, portion=None):
    """Draw ``total`` samples through prepare/pull and return all keys."""
    handle = ps.prepare_sample(worker, distribution_id, total)
    keys = []
    while handle.remaining:
        count = handle.remaining if portion is None else min(portion, handle.remaining)
        result = ps.pull_sample(worker, handle, count)
        keys.extend(result.keys.tolist())
        if len(result.keys) == 0:
            break
    return np.asarray(keys)


class TestSchemeConfigValidation:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            SchemeConfig(pool_size=0)
        with pytest.raises(ValueError):
            SchemeConfig(use_frequency=0)
        with pytest.raises(ValueError):
            SchemeConfig(local_refresh_interval=0)
        with pytest.raises(ValueError):
            SchemeConfig(repurpose_buffer_size=0)


class TestLevelToSchemeMapping:
    @pytest.mark.parametrize("level,expected", [
        (ConformityLevel.CONFORM, IndependentSamplingScheme),
        (ConformityLevel.BOUNDED, PoolSampleReuseScheme),
        (ConformityLevel.LONG_TERM, PostponingSampleReuseScheme),
        (ConformityLevel.NON_CONFORM, LocalSamplingScheme),
    ])
    def test_default_scheme_per_level(self, small_cluster, level, expected):
        ps = make_nups(small_cluster)
        dist_id = ps.register_distribution(UniformDistribution(0, NUM_KEYS), level)
        assert isinstance(ps.sampling_manager.scheme_for(dist_id), expected)

    def test_scheme_override_by_name(self, small_cluster):
        ps = make_nups(small_cluster, scheme_override="local")
        dist_id = ps.register_distribution(
            UniformDistribution(0, NUM_KEYS), ConformityLevel.CONFORM
        )
        assert isinstance(ps.sampling_manager.scheme_for(dist_id), LocalSamplingScheme)

    def test_invalid_override_rejected(self):
        with pytest.raises(ValueError):
            SamplingConfig(scheme_override="nonexistent")

    def test_weaker_override_rejected_when_not_allowed(self, small_cluster):
        store = ParameterStore(NUM_KEYS, 2)
        config = SamplingConfig(scheme_override="local", allow_weaker_override=False)
        ps = NuPS(store, small_cluster, sampling_config=config)
        with pytest.raises(ValueError):
            ps.register_distribution(UniformDistribution(0, NUM_KEYS),
                                     ConformityLevel.CONFORM)

    def test_level_accepts_string(self, small_cluster):
        ps = make_nups(small_cluster)
        dist_id = ps.register_distribution(UniformDistribution(0, NUM_KEYS), "bounded")
        assert ps.sampling_manager.level_for(dist_id) is ConformityLevel.BOUNDED


class TestSamplingManagerValidation:
    def test_unknown_distribution_id(self, small_cluster):
        ps = make_nups(small_cluster)
        worker = small_cluster.worker(0, 0)
        with pytest.raises(KeyError):
            ps.prepare_sample(worker, 99, 5)

    def test_negative_count_rejected(self, small_cluster):
        ps = make_nups(small_cluster)
        worker = small_cluster.worker(0, 0)
        dist_id = ps.register_distribution(UniformDistribution(0, NUM_KEYS))
        with pytest.raises(ValueError):
            ps.prepare_sample(worker, dist_id, -1)

    def test_overdraw_rejected(self, small_cluster):
        ps = make_nups(small_cluster)
        worker = small_cluster.worker(0, 0)
        dist_id = ps.register_distribution(UniformDistribution(0, NUM_KEYS))
        handle = ps.prepare_sample(worker, dist_id, 3)
        with pytest.raises(ValueError):
            ps.pull_sample(worker, handle, 4)


class TestExactSampleCounts:
    @pytest.mark.parametrize("level", list(ConformityLevel))
    def test_total_samples_delivered(self, small_cluster, level):
        """Every scheme delivers exactly the requested number of samples."""
        ps = make_nups(small_cluster)
        worker = small_cluster.worker(0, 0)
        dist_id = ps.register_distribution(UniformDistribution(0, NUM_KEYS), level)
        keys = drain(ps, worker, dist_id, 40, portion=7)
        assert len(keys) == 40
        assert keys.min() >= 0 and keys.max() < NUM_KEYS

    def test_values_match_current_parameters(self, small_cluster):
        ps = make_nups(small_cluster)
        worker = small_cluster.worker(0, 0)
        dist_id = ps.register_distribution(UniformDistribution(0, NUM_KEYS),
                                           ConformityLevel.CONFORM)
        handle = ps.prepare_sample(worker, dist_id, 5)
        result = ps.pull_sample(worker, handle)
        np.testing.assert_allclose(result.values, ps.store.get(result.keys), rtol=1e-6)


class TestConformityStatistics:
    def _empirical(self, small_cluster, level, total=6000, **kwargs):
        ps = make_nups(small_cluster, **kwargs)
        worker = small_cluster.worker(0, 0)
        dist = CategoricalDistribution(np.linspace(1.0, 4.0, NUM_KEYS))
        dist_id = ps.register_distribution(dist, level)
        keys = drain(ps, worker, dist_id, total, portion=50)
        counts = np.bincount(keys, minlength=NUM_KEYS) / len(keys)
        return counts, dist.probabilities()

    def test_independent_sampling_matches_target(self, small_cluster):
        empirical, target = self._empirical(small_cluster, ConformityLevel.CONFORM)
        np.testing.assert_allclose(empirical, target, atol=0.02)

    def test_sample_reuse_matches_target_first_order(self, small_cluster):
        empirical, target = self._empirical(small_cluster, ConformityLevel.BOUNDED)
        np.testing.assert_allclose(empirical, target, atol=0.02)

    def test_postponing_matches_target_long_term(self, small_cluster):
        empirical, target = self._empirical(small_cluster, ConformityLevel.LONG_TERM)
        np.testing.assert_allclose(empirical, target, atol=0.02)

    def test_sample_reuse_reuses_each_fresh_sample(self, small_cluster):
        """With pool size G and use frequency U, each distinct key appears a
        multiple of U times across full pool traversals."""
        ps = make_nups(small_cluster, pool_size=8, use_frequency=4)
        worker = small_cluster.worker(0, 0)
        dist_id = ps.register_distribution(UniformDistribution(0, NUM_KEYS),
                                           ConformityLevel.BOUNDED)
        keys = drain(ps, worker, dist_id, 32)  # exactly one pool's worth
        counts = np.bincount(keys, minlength=NUM_KEYS)
        assert counts.sum() == 32
        assert np.all(counts[counts > 0] % 4 == 0)

    def test_reuse_reduces_fresh_draws(self, small_cluster):
        """Sample reuse relocates far fewer keys than independent sampling."""
        results = {}
        for level in (ConformityLevel.CONFORM, ConformityLevel.BOUNDED):
            cluster = Cluster(ClusterConfig(num_nodes=2, workers_per_node=1,
                                            network=small_cluster.network))
            ps = make_nups(cluster, pool_size=8, use_frequency=4)
            worker = cluster.worker(0, 0)
            dist_id = ps.register_distribution(UniformDistribution(0, NUM_KEYS), level)
            drain(ps, worker, dist_id, 200, portion=20)
            results[level] = cluster.metrics.get("relocation.sampling")
        assert results[ConformityLevel.BOUNDED] < results[ConformityLevel.CONFORM]

    def test_local_sampling_stays_on_local_partition(self, small_cluster):
        ps = make_nups(small_cluster, scheme_override="local")
        worker = small_cluster.worker(0, 0)
        dist_id = ps.register_distribution(UniformDistribution(0, NUM_KEYS),
                                           ConformityLevel.NON_CONFORM)
        keys = drain(ps, worker, dist_id, 300, portion=25)
        # All sampled keys are local to node 0 at sampling time; since nothing
        # relocates them away in this test, they must all still be local.
        assert all(ps.key_is_local(0, key) for key in np.unique(keys))
        # And no sampling-induced relocations happened.
        assert small_cluster.metrics.get("relocation.sampling") == 0

    def test_local_sampling_is_non_conform_under_static_allocation(self, small_cluster):
        """With a static allocation, node 0 never samples keys of node 1's
        partition — the deviation that makes local sampling NON-CONFORM."""
        ps = make_nups(small_cluster, scheme_override="local")
        worker = small_cluster.worker(0, 0)
        dist_id = ps.register_distribution(UniformDistribution(0, NUM_KEYS),
                                           ConformityLevel.NON_CONFORM)
        keys = drain(ps, worker, dist_id, 500, portion=50)
        other_partition = set(ps.partitioner.keys_of(1).tolist())
        assert other_partition.isdisjoint(set(keys.tolist()))


class TestPostponing:
    def test_non_local_samples_are_postponed_within_handle(self, small_cluster):
        ps = make_nups(small_cluster, pool_size=4, use_frequency=2)
        worker = small_cluster.worker(0, 0)
        dist_id = ps.register_distribution(UniformDistribution(0, NUM_KEYS),
                                           ConformityLevel.LONG_TERM)
        handle = ps.prepare_sample(worker, dist_id, 12)
        # Steal every key of the handle to the other node so nothing is local.
        pending = [k for k in handle.pending]
        thief = small_cluster.worker(1, 0)
        ps.localize(thief, np.asarray(pending))
        first = ps.pull_sample(worker, handle, 4)
        # Keys were either postponed (moved to the end) or accessed remotely;
        # in all cases exactly 4 samples are delivered...
        assert len(first.keys) == 4
        rest = ps.pull_sample(worker, handle)
        # ... and the handle delivers every prepared sample exactly once.
        assert sorted(first.keys.tolist() + rest.keys.tolist()) == sorted(pending)


class TestDirectAccessRepurposing:
    def test_samples_come_from_recent_direct_accesses(self, small_cluster):
        ps = make_nups(small_cluster, scheme_override="direct_access_repurposing")
        worker = small_cluster.worker(0, 0)
        # Perform some direct accesses first.
        direct_keys = np.array([3, 5, 7, 9])
        ps.pull(worker, direct_keys)
        dist_id = ps.register_distribution(UniformDistribution(0, NUM_KEYS),
                                           ConformityLevel.NON_CONFORM)
        keys = drain(ps, worker, dist_id, 50, portion=10)
        assert set(keys.tolist()) <= set(direct_keys.tolist())

    def test_falls_back_to_iid_without_direct_accesses(self, small_cluster):
        ps = make_nups(small_cluster, scheme_override="direct_access_repurposing")
        worker = small_cluster.worker(0, 0)
        dist_id = ps.register_distribution(UniformDistribution(0, NUM_KEYS),
                                           ConformityLevel.NON_CONFORM)
        keys = drain(ps, worker, dist_id, 30, portion=10)
        assert len(keys) == 30
