"""Tests for the experiment runner, system registry, workloads and reporting."""

import numpy as np
import pytest

from repro.core.nups import NuPS
from repro.ml.task import TrainingTask
from repro.ps.classic import ClassicPS
from repro.ps.local import SingleNodePS
from repro.ps.relocation import RelocationPS
from repro.ps.replication import ReplicationProtocol, ReplicationPS
from repro.ps.storage import ParameterStore
from repro.runner.config import ExperimentConfig
from repro.runner.experiment import EpochRecord, ExperimentResult, run_experiment
from repro.runner.reporting import format_table, format_value, quality_over_time_table, summary_table
from repro.runner.systems import SYSTEM_NAMES, build_parameter_server, make_ps_factory
from repro.runner.workloads import kge_task, make_task, matrix_factorization_task, word_vectors_task
from repro.simulation.cluster import Cluster, ClusterConfig


class CountingTask(TrainingTask):
    """A minimal task that counts how its hooks are called."""

    name = "counting"
    quality_metric = "progress"
    higher_is_better = True

    def __init__(self, num_points: int = 40, keys: int = 20) -> None:
        self._num_points = num_points
        self._keys = keys
        self.processed = 0
        self.prefetched = 0
        self.epoch_ends = 0

    def num_keys(self):
        return self._keys

    def value_length(self):
        return 2

    def create_store(self, seed=0):
        return ParameterStore(self._keys, 2)

    def access_counts(self):
        return np.ones(self._keys)

    def num_data_points(self):
        return self._num_points

    def create_shards(self, num_nodes, workers_per_node, seed=0):
        rng = np.random.default_rng(seed)
        parts = self.partition_round_robin(np.arange(self._num_points), num_nodes, rng)
        return [self.partition_round_robin(p, workers_per_node, rng) for p in parts]

    def prefetch(self, ps, worker, data_indices):
        self.prefetched += len(data_indices)

    def process_chunk(self, ps, worker, data_indices, rng):
        keys = np.asarray(data_indices, dtype=np.int64) % self._keys
        ps.push(worker, keys, np.ones((len(keys), 2), dtype=np.float32))
        worker.clock.advance(len(data_indices) * ps.network.compute_per_step)
        self.processed += len(data_indices)
        return len(data_indices)

    def on_epoch_end(self, epoch):
        self.epoch_ends += 1

    def evaluate(self, store):
        return {"progress": float(store.values.sum())}


class TestExperimentConfig:
    def test_defaults_valid(self):
        ExperimentConfig()

    def test_validation(self):
        with pytest.raises(ValueError):
            ExperimentConfig(epochs=0)
        with pytest.raises(ValueError):
            ExperimentConfig(chunk_size=0)
        with pytest.raises(ValueError):
            ExperimentConfig(evaluate_every=0)
        with pytest.raises(ValueError):
            ExperimentConfig(housekeeping_every_chunks=0)
        with pytest.raises(ValueError):
            ExperimentConfig(time_budget=0.0)


class TestRunExperiment:
    def _config(self, nodes=2, epochs=2, **kwargs):
        return ExperimentConfig(
            cluster=ClusterConfig(num_nodes=nodes, workers_per_node=2),
            epochs=epochs, chunk_size=4, **kwargs,
        )

    def test_processes_every_data_point_each_epoch(self):
        task = CountingTask(num_points=40)
        result = run_experiment(task, make_ps_factory("classic"), self._config(epochs=2))
        assert task.processed == 80
        assert task.epoch_ends == 2
        assert result.epochs_completed == 2

    def test_prefetch_covers_all_chunks(self):
        task = CountingTask(num_points=40)
        run_experiment(task, make_ps_factory("lapse"), self._config(epochs=1))
        assert task.prefetched >= 40

    def test_records_are_monotone_in_time(self):
        task = CountingTask()
        result = run_experiment(task, make_ps_factory("classic"), self._config(epochs=3))
        times = result.times()
        assert all(b >= a for a, b in zip(times, times[1:]))
        assert all(isinstance(r, EpochRecord) for r in result.records)

    def test_quality_reflects_all_pushes(self):
        task = CountingTask(num_points=40)
        result = run_experiment(task, make_ps_factory("classic"), self._config(epochs=1))
        # Every data point pushes a (1, 1) delta: total sum = 2 * points.
        assert result.final_quality() == pytest.approx(80.0)

    def test_time_budget_stops_training(self):
        task = CountingTask(num_points=40)
        config = self._config(epochs=50, time_budget=1e-9)
        result = run_experiment(task, make_ps_factory("classic"), config)
        assert result.epochs_completed == 1

    def test_metrics_snapshot_present(self):
        task = CountingTask()
        result = run_experiment(task, make_ps_factory("classic"), self._config(epochs=1))
        assert result.metrics.get("access.total", 0) > 0

    def test_system_name_defaults_to_ps_name(self):
        task = CountingTask()
        result = run_experiment(task, make_ps_factory("classic"), self._config(epochs=1))
        assert result.system == "classic"

    def test_deterministic_given_seed(self):
        results = []
        for _ in range(2):
            task = CountingTask()
            results.append(run_experiment(
                task, make_ps_factory("nups"), self._config(epochs=2, seed=5)
            ))
        assert results[0].final_quality() == results[1].final_quality()
        assert results[0].total_time == results[1].total_time


class TestExperimentResult:
    def _result(self, qualities, higher_is_better=True):
        records = [
            EpochRecord(epoch=i + 1, sim_time=float(i + 1), epoch_duration=1.0,
                        quality={"q": value})
            for i, value in enumerate(qualities)
        ]
        return ExperimentResult(
            system="test", task="t", num_nodes=1, workers_per_node=1,
            initial_quality={"q": qualities[0] if qualities else 0.0},
            records=records, quality_metric="q", higher_is_better=higher_is_better,
        )

    def test_time_to_quality_higher_is_better(self):
        result = self._result([0.1, 0.5, 0.9])
        assert result.time_to_quality(0.5) == 2.0
        assert result.time_to_quality(0.95) is None

    def test_time_to_quality_lower_is_better(self):
        result = self._result([1.0, 0.5, 0.2], higher_is_better=False)
        assert result.time_to_quality(0.5) == 2.0

    def test_best_and_final_quality(self):
        result = self._result([0.1, 0.9, 0.5])
        assert result.best_quality() == 0.9
        assert result.final_quality() == 0.5

    def test_mean_epoch_time(self):
        assert self._result([0.1, 0.2]).mean_epoch_time() == 1.0

    def test_empty_result(self):
        result = ExperimentResult(
            system="x", task="t", num_nodes=1, workers_per_node=1,
            initial_quality={"q": 0.3}, quality_metric="q",
        )
        assert result.total_time == 0.0
        assert result.final_quality() == pytest.approx(0.3)


class TestSystemRegistry:
    @pytest.fixture
    def env(self):
        task = kge_task("test")
        cluster = Cluster(ClusterConfig(num_nodes=4, workers_per_node=2))
        store = task.create_store()
        return task, cluster, store

    def test_all_names_build(self, env):
        task, cluster, store = env
        for name in SYSTEM_NAMES:
            if name == "single-node":
                continue
            ps = build_parameter_server(name, store, cluster, task)
            assert ps is not None

    def test_single_node_requires_one_node(self, env):
        task, _, store = env
        cluster = Cluster(ClusterConfig(num_nodes=1, workers_per_node=2))
        ps = build_parameter_server("single-node", store, cluster, task)
        assert isinstance(ps, SingleNodePS)

    def test_unknown_name_rejected(self, env):
        task, cluster, store = env
        with pytest.raises(ValueError):
            build_parameter_server("definitely-not-a-ps", store, cluster, task)
        with pytest.raises(ValueError):
            make_ps_factory("definitely-not-a-ps")

    def test_expected_types(self, env):
        task, cluster, store = env
        assert isinstance(build_parameter_server("classic", store, cluster, task), ClassicPS)
        assert isinstance(build_parameter_server("lapse", store, cluster, task), RelocationPS)
        ssp = build_parameter_server("ssp", store, cluster, task)
        assert isinstance(ssp, ReplicationPS) and ssp.protocol is ReplicationProtocol.SSP
        essp = build_parameter_server("essp", store, cluster, task)
        assert essp.protocol is ReplicationProtocol.ESSP
        assert isinstance(build_parameter_server("nups", store, cluster, task), NuPS)

    def test_nups_untuned_uses_hot_spot_heuristic(self, env):
        task, cluster, store = env
        ps = build_parameter_server("nups", store, cluster, task)
        assert ps.plan.num_replicated >= 0
        assert ps.integrate_sampling

    def test_ablation_variants(self, env):
        task, cluster, store = env
        no_sampling = build_parameter_server("relocation+replication", store, cluster, task)
        assert not no_sampling.integrate_sampling
        relocation_only = build_parameter_server("relocation+sampling", store, cluster, task)
        assert relocation_only.plan.num_replicated == 0
        assert relocation_only.integrate_sampling

    def test_nups_tuned_wv_replicates_more_keys(self):
        task = word_vectors_task("test")
        cluster = Cluster(ClusterConfig(num_nodes=2, workers_per_node=2))
        store = task.create_store()
        untuned = build_parameter_server("nups", store, cluster, task)
        tuned = build_parameter_server("nups-tuned", store, cluster, task)
        assert tuned.plan.num_replicated >= untuned.plan.num_replicated
        assert tuned.sampling_manager.config.scheme_override == "local"

    def test_overrides_forwarded(self, env):
        task, cluster, store = env
        ps = build_parameter_server("nups", store, cluster, task,
                                    pool_size=7, use_frequency=3, sync_interval=0.5)
        scheme_config = ps.sampling_manager.config.scheme_config
        assert scheme_config.pool_size == 7
        assert scheme_config.use_frequency == 3
        assert ps.replica_manager.sync_interval == 0.5


class TestWorkloadPresets:
    @pytest.mark.parametrize("name", ["kge", "word_vectors", "matrix_factorization"])
    def test_test_scale_presets_are_small(self, name):
        task = make_task(name, scale="test")
        assert task.num_data_points() < 10_000
        assert task.num_keys() < 10_000

    def test_unknown_task_and_scale_rejected(self):
        with pytest.raises(ValueError):
            make_task("nope")
        with pytest.raises(ValueError):
            kge_task(scale="huge")
        with pytest.raises(ValueError):
            word_vectors_task(scale="huge")
        with pytest.raises(ValueError):
            matrix_factorization_task(scale="huge")

    def test_task_kwargs_forwarded(self):
        task = kge_task("test", num_negatives=5)
        assert task.num_negatives == 5


class TestReporting:
    def test_format_value(self):
        assert format_value(None) == "-"
        assert format_value(True) == "yes"
        assert format_value(0.000123456) == "0.0001235"
        assert format_value(float("nan")) == "nan"
        assert format_value("abc") == "abc"
        assert format_value(0.0) == "0"

    def test_format_table_alignment(self):
        table = format_table(["a", "metric"], [[1, 2.5], [10, 0.25]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines[1:])

    def test_quality_over_time_table(self):
        task = CountingTask()
        config = ExperimentConfig(cluster=ClusterConfig(num_nodes=1, workers_per_node=2),
                                  epochs=2, chunk_size=4)
        result = run_experiment(task, make_ps_factory("single-node"), config)
        text = quality_over_time_table([result])
        assert "single-node" in text
        assert "epoch" in text

    def test_summary_table(self):
        task = CountingTask()
        config = ExperimentConfig(cluster=ClusterConfig(num_nodes=1, workers_per_node=2),
                                  epochs=1, chunk_size=4)
        result = run_experiment(task, make_ps_factory("single-node"), config)
        assert "single-node" in summary_table([result])
