"""Tests for the task-specific baselines (Section 5.8 stand-ins)."""

import pytest

from repro.data.matrix import generate_matrix
from repro.ml.task_specific import DSGDTrainer, specialized_single_node_epoch_time
from repro.runner.workloads import word_vectors_task
from repro.simulation.network import NetworkModel


@pytest.fixture(scope="module")
def matrix():
    return generate_matrix(num_rows=150, num_cols=40, num_cells=4000, rank=4, seed=2)


class TestDSGDTrainer:
    def test_rejects_invalid_node_count(self, matrix):
        with pytest.raises(ValueError):
            DSGDTrainer(matrix, num_nodes=0)

    def test_rmse_decreases_over_epochs(self, matrix):
        trainer = DSGDTrainer(matrix, num_nodes=4, workers_per_node=2,
                              learning_rate=0.5, seed=0)
        initial = trainer.test_rmse()
        result = trainer.train(epochs=4, seed=0)
        assert result.final_rmse() < initial
        assert len(result.rmse) == 4
        assert len(result.epoch_times) == 4

    def test_epoch_times_are_positive(self, matrix):
        result = DSGDTrainer(matrix, num_nodes=4, workers_per_node=2).train(epochs=2)
        assert all(t > 0 for t in result.epoch_times)
        assert result.mean_epoch_time > 0

    def test_overlapping_communication_is_not_slower(self, matrix):
        plain = DSGDTrainer(matrix, num_nodes=8, workers_per_node=2, seed=1)
        overlapped = DSGDTrainer(matrix, num_nodes=8, workers_per_node=2,
                                 overlap_communication=True, seed=1)
        assert overlapped.train(epochs=1, seed=1).mean_epoch_time <= \
            plain.train(epochs=1, seed=1).mean_epoch_time

    def test_more_nodes_reduce_epoch_time(self, matrix):
        few = DSGDTrainer(matrix, num_nodes=2, workers_per_node=2, seed=1)
        many = DSGDTrainer(matrix, num_nodes=8, workers_per_node=2, seed=1)
        assert many.train(epochs=1, seed=1).mean_epoch_time < \
            few.train(epochs=1, seed=1).mean_epoch_time

    def test_single_node_has_no_communication(self, matrix):
        network = NetworkModel()
        trainer = DSGDTrainer(matrix, num_nodes=1, workers_per_node=4, network=network)
        result = trainer.train(epochs=1)
        expected_compute = matrix.num_train * network.compute_per_step / 4
        assert result.mean_epoch_time == pytest.approx(expected_compute, rel=0.01)

    def test_training_is_deterministic_given_seed(self, matrix):
        a = DSGDTrainer(matrix, num_nodes=4, workers_per_node=2, seed=5).train(2, seed=5)
        b = DSGDTrainer(matrix, num_nodes=4, workers_per_node=2, seed=5).train(2, seed=5)
        assert a.rmse == pytest.approx(b.rmse)


class TestSpecializedSingleNode:
    def test_epoch_time_is_compute_only(self):
        task = word_vectors_task("test")
        network = NetworkModel()
        time = specialized_single_node_epoch_time(task, network=network, workers=8)
        assert time == pytest.approx(
            task.num_data_points() / 8 * network.compute_per_step
        )

    def test_more_workers_reduce_epoch_time(self):
        task = word_vectors_task("test")
        assert specialized_single_node_epoch_time(task, workers=16) < \
            specialized_single_node_epoch_time(task, workers=4)
