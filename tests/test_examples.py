"""Smoke tests for the example scripts in ``examples/``.

The examples are documentation that executes; nothing else in the test suite
imports them, so API drift would rot them silently (an earlier revision
shipped an example calling a helper that had been renamed). This suite runs
every script end-to-end in a subprocess — with its ``--quick`` tiny preset
where the script offers one — and asserts a clean exit plus a sanity marker
in the output.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
EXAMPLES_DIR = REPO_ROOT / "examples"

#: Every example script with its tiny-preset arguments and an output marker
#: that only appears after the script's real work has completed.
EXAMPLES = {
    "quickstart.py": ([], "replica synchronizations"),
    "sampling_schemes.py": ([], "CONFORM"),
    "dynamic_workloads.py": ([], "scenario: degrading-network"),
    "kge_training.py": (["--quick", "--nodes", "2"], "effective speedup"),
    "matrix_factorization.py": (["--quick", "--epochs", "2"], "raw speedups"),
    "word_vectors.py": (["--quick", "--nodes", "2"], "single-node"),
}


def _run_example(script: str, args: list) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script), *args],
        capture_output=True, text=True, timeout=300, env=env,
        cwd=str(REPO_ROOT),
    )


def test_every_example_is_covered():
    """A new example script must be added to the smoke table above."""
    scripts = {path.name for path in EXAMPLES_DIR.glob("*.py")}
    assert scripts == set(EXAMPLES)


@pytest.mark.parametrize("script", sorted(EXAMPLES))
def test_example_runs_clean(script):
    args, marker = EXAMPLES[script]
    result = _run_example(script, args)
    assert result.returncode == 0, (
        f"{script} exited with {result.returncode}\n"
        f"stdout:\n{result.stdout[-2000:]}\nstderr:\n{result.stderr[-2000:]}"
    )
    assert marker in result.stdout, (
        f"{script} ran but its output lacks the marker {marker!r}\n"
        f"stdout:\n{result.stdout[-2000:]}"
    )
    assert not result.stderr.strip(), (
        f"{script} wrote to stderr:\n{result.stderr[-2000:]}"
    )
