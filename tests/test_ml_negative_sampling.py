"""Tests for the negative-sample stream helper."""

import numpy as np
import pytest

from repro.core.sampling.distributions import UniformDistribution
from repro.ml.negative_sampling import NegativeSampleStream
from repro.ps.local import SingleNodePS
from repro.ps.storage import ParameterStore
from repro.simulation.cluster import Cluster, ClusterConfig


@pytest.fixture
def env():
    cluster = Cluster(ClusterConfig(num_nodes=1, workers_per_node=1))
    store = ParameterStore(50, 3, seed=0, init_scale=0.1)
    ps = SingleNodePS(store, cluster)
    dist_id = ps.register_distribution(UniformDistribution(0, 50))
    return ps, cluster.worker(0, 0), dist_id


class TestNegativeSampleStream:
    def test_rejects_negative_total(self, env):
        ps, worker, dist_id = env
        with pytest.raises(ValueError):
            NegativeSampleStream(ps, worker, dist_id, -1)

    def test_empty_stream_returns_empty_results(self, env):
        ps, worker, dist_id = env
        stream = NegativeSampleStream(ps, worker, dist_id, 0)
        result = stream.next(5)
        assert len(result.keys) == 0
        assert result.values.shape == (0, ps.store.value_length)

    def test_delivers_exactly_the_requested_total(self, env):
        ps, worker, dist_id = env
        stream = NegativeSampleStream(ps, worker, dist_id, 10)
        first = stream.next(4)
        second = stream.next(4)
        third = stream.next(4)  # only 2 remain
        assert len(first.keys) == 4
        assert len(second.keys) == 4
        assert len(third.keys) == 2
        assert stream.remaining == 0

    def test_next_zero_is_a_noop(self, env):
        ps, worker, dist_id = env
        stream = NegativeSampleStream(ps, worker, dist_id, 3)
        assert len(stream.next(0).keys) == 0
        assert stream.remaining == 3

    def test_next_negative_rejected(self, env):
        ps, worker, dist_id = env
        stream = NegativeSampleStream(ps, worker, dist_id, 3)
        with pytest.raises(ValueError):
            stream.next(-1)

    def test_values_match_store(self, env):
        ps, worker, dist_id = env
        stream = NegativeSampleStream(ps, worker, dist_id, 5)
        result = stream.next(5)
        np.testing.assert_allclose(result.values, ps.store.get(result.keys), rtol=1e-6)

    def test_push_updates_applies_deltas(self, env):
        ps, worker, dist_id = env
        stream = NegativeSampleStream(ps, worker, dist_id, 3)
        result = stream.next(3)
        unique_keys, first_index = np.unique(result.keys, return_index=True)
        before = ps.store.get(unique_keys)
        deltas = np.ones((3, ps.store.value_length), dtype=np.float32)
        stream.push_updates(result.keys, deltas)
        counts = np.array([np.count_nonzero(result.keys == k) for k in unique_keys])
        np.testing.assert_allclose(
            ps.store.get(unique_keys), before + counts[:, None], rtol=1e-5
        )

    def test_push_updates_with_empty_keys_is_noop(self, env):
        ps, worker, dist_id = env
        stream = NegativeSampleStream(ps, worker, dist_id, 1)
        stream.push_updates(np.empty(0, dtype=np.int64),
                            np.empty((0, ps.store.value_length), dtype=np.float32))
