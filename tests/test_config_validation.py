"""Regression tests for configuration validation error messages.

Every actionable error message in :class:`ExperimentConfig`,
:class:`ClusterConfig`, and the experiment runner gets one test pinning
both the trigger and the guidance text, so a refactor cannot silently turn
a helpful message back into a bare assertion.
"""

from __future__ import annotations

import pytest

from repro.runner.config import ExperimentConfig
from repro.simulation.cluster import ClusterConfig


class TestExperimentConfigValidation:
    def test_epochs_message_suggests_time_budget(self):
        with pytest.raises(ValueError, match=r"epochs must be >= 1 \(got 0\)"):
            ExperimentConfig(epochs=0)
        with pytest.raises(ValueError, match="use time_budget to stop early"):
            ExperimentConfig(epochs=-3)

    def test_chunk_size_message_explains_the_knob(self):
        with pytest.raises(ValueError,
                           match=r"chunk_size must be >= 1 \(got 0\)"):
            ExperimentConfig(chunk_size=0)
        with pytest.raises(ValueError, match="per scheduling round"):
            ExperimentConfig(chunk_size=-1)

    def test_housekeeping_message_says_cannot_disable(self):
        with pytest.raises(ValueError,
                           match="housekeeping_every_chunks must be >= 1"):
            ExperimentConfig(housekeeping_every_chunks=0)
        with pytest.raises(ValueError, match="cannot be disabled"):
            ExperimentConfig(housekeeping_every_chunks=0)

    def test_evaluate_every_message(self):
        with pytest.raises(ValueError,
                           match=r"evaluate_every must be >= 1 \(got 0\)"):
            ExperimentConfig(evaluate_every=0)

    def test_time_budget_message_mentions_none(self):
        with pytest.raises(ValueError,
                           match="time_budget must be positive when set"):
            ExperimentConfig(time_budget=0.0)
        with pytest.raises(ValueError, match="or None for no budget"):
            ExperimentConfig(time_budget=-1.0)

    def test_scenario_string_suggests_make_scenario(self):
        with pytest.raises(TypeError, match="make_scenario"):
            ExperimentConfig(scenario="crash-storm")
        # The message lists the known presets so the user can self-serve.
        with pytest.raises(TypeError, match="crash-storm"):
            ExperimentConfig(scenario="storm")

    def test_scenario_wrong_type(self):
        with pytest.raises(TypeError, match="compatible bind"):
            ExperimentConfig(scenario=object())

    def test_adaptive_string_suggests_adaptive_config(self):
        with pytest.raises(TypeError, match=r"AdaptiveConfig\(policy="):
            ExperimentConfig(adaptive="hot-spot")

    def test_adaptive_wrong_type(self):
        with pytest.raises(TypeError, match="compatible policy"):
            ExperimentConfig(adaptive=object())

    def test_valid_config_accepts_defaults(self):
        config = ExperimentConfig()
        assert config.epochs == 3
        assert config.scenario is None and config.adaptive is None


class TestClusterConfigValidation:
    def test_num_nodes_message_mentions_single_node(self):
        with pytest.raises(ValueError,
                           match=r"num_nodes must be >= 1 \(got 0\)"):
            ClusterConfig(num_nodes=0)
        with pytest.raises(ValueError, match="single-node setting"):
            ClusterConfig(num_nodes=-2)

    def test_workers_per_node_message(self):
        with pytest.raises(ValueError,
                           match=r"workers_per_node must be >= 1 \(got 0\)"):
            ClusterConfig(workers_per_node=0)


class TestRunnerValidation:
    def test_cannot_fail_last_survivor_message(self):
        from repro.simulation.cluster import Cluster

        cluster = Cluster(ClusterConfig(num_nodes=1, workers_per_node=1))
        with pytest.raises(ValueError, match="last surviving node"):
            cluster.fail_node(0)
