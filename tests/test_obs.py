"""Observability layer: tracer, sampler, exporters, and subsystem events.

Covers the tracer's record/span semantics, the periodic sampler's payloads,
the three exporters (JSONL round-trip, Chrome trace-event, terminal
summary), the JSONL schema golden file, the per-subsystem instrumentation
(faults, elasticity, scenarios, re-management, replica sync), and the CLI
surface (``--trace`` on run/compare, the ``repro trace`` command).
Bit-identity of telemetry-on runs is enforced in ``test_determinism.py``.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.obs import (
    SCHEMA_VERSION,
    TelemetryConfig,
    Tracer,
    load_jsonl,
    summarize,
    to_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.runner.config import ExperimentConfig
from repro.runner.experiment import run_experiment
from repro.runner.systems import make_ps_factory
from repro.runner.workloads import make_task
from repro.scenarios import make_scenario
from repro.simulation.cluster import ClusterConfig

GOLDEN = Path(__file__).parent / "data" / "trace_schema_golden.json"


def _run_traced(system="nups", scenario=None, epochs=2, seed=5,
                access_events=False, path=None, **config_kwargs):
    task = make_task("matrix_factorization", scale="test")
    config = ExperimentConfig(
        cluster=ClusterConfig(num_nodes=2, workers_per_node=2),
        epochs=epochs, chunk_size=8, seed=seed,
        scenario=make_scenario(scenario) if scenario else None,
        telemetry=TelemetryConfig(path=path, access_events=access_events),
        **config_kwargs,
    )
    return run_experiment(task, make_ps_factory(system), config,
                          system_name=system)


# ------------------------------------------------------------------- tracer
class TestTracer:
    def test_spans_nest_and_link_parents(self):
        tracer = Tracer()
        outer = tracer.begin_span("experiment", "run", 0.0)
        inner = tracer.begin_span("epoch", "run", 0.5, epoch=1)
        assert inner["parent"] == outer["id"]
        tracer.end_span(inner, 1.0)
        tracer.end_span(outer, 1.5)
        assert inner["sim_end"] == 1.0
        assert outer["sim_end"] == 1.5
        assert outer["parent"] is None
        assert inner["wall_end"] >= inner["wall_start"]

    def test_complete_span_adopts_open_parent(self):
        tracer = Tracer()
        epoch = tracer.begin_span("epoch", "run", 0.0)
        tracer.complete_span("round", "round", 0.1, 0.2, node=1, worker=0,
                             round=3)
        round_span = tracer.spans[-1]
        assert round_span["parent"] == epoch["id"]
        assert round_span["node"] == 1 and round_span["worker"] == 0
        assert round_span["attrs"] == {"round": 3}
        # Retrospective spans never join the open stack.
        tracer.end_span(epoch, 1.0)
        assert tracer._open == []

    def test_out_of_order_close_unwinds_stack(self):
        tracer = Tracer()
        a = tracer.begin_span("a", "x", 0.0)
        b = tracer.begin_span("b", "x", 0.0)
        tracer.end_span(a, 1.0)  # closes the outer first
        assert a not in tracer._open
        tracer.end_span(b, 1.0)
        assert tracer._open == []

    def test_event_supports_wall_only_records(self):
        tracer = Tracer()
        tracer.event("pool_dispatch", "parallel", None, points=128)
        record = tracer.events[0]
        assert record["sim_time"] is None
        assert record["wall_time"] >= 0.0
        assert record["attrs"] == {"points": 128}

    def test_max_records_cap_counts_drops(self):
        tracer = Tracer(TelemetryConfig(max_records=2))
        tracer.event("a", "x", 0.0)
        tracer.sample(0.0, {"metrics_delta": {}})
        span = tracer.begin_span("late", "x", 0.0)  # over the cap
        assert span is None
        tracer.end_span(span, 1.0)  # None-safe
        tracer.complete_span("late", "x", 0.0, 1.0)
        tracer.event("late", "x", 0.0)
        assert tracer.dropped == 3
        assert tracer.to_trace()["dropped"] == 3
        assert len(tracer.spans) == 0

    def test_to_trace_shape(self):
        tracer = Tracer()
        tracer.meta["system"] = "nups"
        span = tracer.begin_span("s", "x", 0.0)
        tracer.end_span(span, 1.0)
        trace = tracer.to_trace()
        assert trace["schema"] == SCHEMA_VERSION
        assert trace["meta"] == {"system": "nups"}
        assert len(trace["spans"]) == 1
        assert trace["events"] == [] and trace["samples"] == []


class TestTelemetryConfig:
    def test_rejects_bad_sample_period(self):
        with pytest.raises(ValueError, match="sample_every_rounds"):
            TelemetryConfig(sample_every_rounds=0)

    def test_rejects_bad_max_records(self):
        with pytest.raises(ValueError, match="max_records"):
            TelemetryConfig(max_records=0)

    def test_rejects_empty_path(self):
        with pytest.raises(ValueError, match="path"):
            TelemetryConfig(path="")

    def test_experiment_config_rejects_strings_and_bools(self):
        with pytest.raises(TypeError, match="telemetry"):
            ExperimentConfig(telemetry="on")
        with pytest.raises(TypeError, match="telemetry"):
            ExperimentConfig(telemetry=True)


# -------------------------------------------------------------- integration
class TestRunnerIntegration:
    def test_trace_off_by_default(self):
        task = make_task("matrix_factorization", scale="test")
        config = ExperimentConfig(
            cluster=ClusterConfig(num_nodes=2, workers_per_node=2),
            epochs=1, chunk_size=8, seed=5,
        )
        result = run_experiment(task, make_ps_factory("nups"), config)
        assert result.trace is None

    def test_trace_structure_and_meta(self):
        result = _run_traced(epochs=2)
        trace = result.trace
        assert trace["schema"] == SCHEMA_VERSION
        meta = trace["meta"]
        assert meta["system"] == "nups"
        assert meta["task"] == "matrix_factorization"
        assert meta["num_nodes"] == 2 and meta["workers_per_node"] == 2
        assert meta["backend"] == "fused" and meta["seed"] == 5
        assert "access.total" in meta["final_metrics"]
        names = {span["name"] for span in trace["spans"]}
        assert {"experiment", "epoch", "round"} <= names
        epochs = [s for s in trace["spans"] if s["name"] == "epoch"]
        assert len(epochs) == 2
        assert all(s["sim_end"] is not None for s in epochs)
        experiment = next(s for s in trace["spans"]
                          if s["name"] == "experiment")
        assert experiment["attrs"]["epochs_completed"] == 2
        assert all(s["parent"] == experiment["id"] for s in epochs)

    def test_round_spans_carry_worker_lanes(self):
        trace = _run_traced(epochs=1).trace
        rounds = [s for s in trace["spans"] if s["name"] == "round"]
        assert rounds
        lanes = {(s["node"], s["worker"]) for s in rounds}
        assert lanes == {(0, 0), (0, 1), (1, 0), (1, 1)}
        for span in rounds:
            assert span["sim_end"] >= span["sim_start"]

    def test_samples_have_payload_and_epoch_boundary_sample(self):
        trace = _run_traced(epochs=2).trace
        samples = trace["samples"]
        assert samples
        for sample in samples:
            assert set(sample) >= {"type", "sim_time", "wall_time",
                                   "metrics_delta", "state_nbytes",
                                   "clock_skew", "queues"}
            assert len(sample["clock_skew"]) == 2
            assert min(sample["clock_skew"]) == 0.0
            assert sample["state_nbytes"]
        # Metric deltas across all samples add up to <= the final counters
        # (the final forced sample closes each epoch).
        total = sum(s["metrics_delta"].get("access.total", 0.0)
                    for s in samples)
        assert total == trace["meta"]["final_metrics"]["access.total"]

    def test_access_events_gated_by_detail_flag(self):
        base = _run_traced(epochs=1).trace
        detail = _run_traced(epochs=1, access_events=True).trace
        assert not [e for e in base["events"] if e["cat"] == "access"]
        access = [e for e in detail["events"] if e["cat"] == "access"]
        assert access
        assert {e["name"] for e in access} <= {"pull", "push", "localize"}
        assert all(e["node"] is not None for e in access)

    def test_jsonl_written_when_path_set(self, tmp_path):
        out = tmp_path / "trace.jsonl"
        result = _run_traced(epochs=1, path=str(out))
        assert out.exists()
        loaded = load_jsonl(out)
        assert loaded["schema"] == SCHEMA_VERSION
        assert len(loaded["spans"]) == len(result.trace["spans"])
        assert loaded["meta"]["system"] == "nups"


class TestSubsystemEvents:
    def test_scenario_and_fault_events_in_crash_storm(self):
        trace = _run_traced(system="classic", scenario="crash-storm",
                            epochs=3).trace
        names = {(e["cat"], e["name"]) for e in trace["events"]}
        assert ("faults", "crash") in names
        assert ("faults", "restore") in names
        crash = next(e for e in trace["events"] if e["name"] == "crash")
        assert crash["node"] is not None
        assert "recovery_time" in crash["attrs"]

    def test_checkpoint_events_recorded(self):
        trace = _run_traced(system="classic", scenario="rolling-restart",
                            epochs=3).trace
        cats = {e["cat"] for e in trace["events"]}
        assert "faults" in cats

    def test_membership_and_migration_events_in_scale_out(self):
        trace = _run_traced(system="lapse", scenario="scale-out",
                            epochs=3).trace
        events = {(e["cat"], e["name"]) for e in trace["events"]}
        assert ("membership", "node_added") in events
        spans = {s["name"] for s in trace["spans"]}
        assert "scale_out" in spans
        span = next(s for s in trace["spans"] if s["name"] == "scale_out")
        assert span["attrs"]["membership_epoch"] >= 1
        assert span["sim_end"] >= span["sim_start"]

    def test_partition_events_in_split_brain(self):
        trace = _run_traced(system="nups", scenario="split-brain",
                            epochs=3).trace
        names = {e["name"] for e in trace["events"]}
        assert "partition_begin" in names
        assert "partition_heal" in names
        begin = next(e for e in trace["events"]
                     if e["name"] == "partition_begin")
        assert begin["attrs"]["minority"]

    def test_drift_and_remanage_events(self):
        trace = _run_traced(system="nups", scenario="drift", epochs=3).trace
        names = {e["name"] for e in trace["events"]}
        assert "drift" in names

    def test_remanage_event_via_nups(self):
        from repro.core.management import ManagementPlan
        from repro.core.nups import NuPS
        from repro.ps.storage import ParameterStore
        from repro.simulation.cluster import Cluster

        cluster = Cluster(ClusterConfig(num_nodes=2, workers_per_node=1))
        cluster.tracer = Tracer()
        store = ParameterStore(64, 4)
        plan = ManagementPlan(64, np.arange(4, dtype=np.int64))
        ps = NuPS(store, cluster, plan=plan, sync_interval=0.001, seed=0)
        ps.remanage(ManagementPlan(64, np.arange(8, dtype=np.int64)),
                    now=0.5)
        ps.remanage(ManagementPlan(64, np.arange(8, dtype=np.int64)),
                    now=0.7)  # identical plan: no-op
        remanages = [e for e in cluster.tracer.events
                     if e["name"] == "remanage"]
        assert len(remanages) == 2
        assert remanages[0]["attrs"] == {
            "noop": False, "replicated_before": 4, "replicated_after": 8,
        }
        assert remanages[1]["attrs"]["noop"] is True

    def test_replica_flush_events_recorded(self):
        trace = _run_traced(system="essp", epochs=1).trace
        flushes = [e for e in trace["events"]
                   if e["name"] == "replica_flush"]
        assert flushes
        for event in flushes:
            assert event["node"] in (0, 1)
            assert event["attrs"]["keys"] >= 1

    def test_replica_sync_events_recorded(self):
        from repro.core.management import ManagementPlan
        from repro.core.nups import NuPS
        from repro.ps.storage import ParameterStore
        from repro.simulation.cluster import Cluster

        cluster = Cluster(ClusterConfig(num_nodes=2, workers_per_node=1))
        cluster.tracer = Tracer()
        store = ParameterStore(64, 4)
        plan = ManagementPlan(64, np.arange(8, dtype=np.int64))
        ps = NuPS(store, cluster, plan=plan, sync_interval=0.001, seed=0)
        ps.replica_manager.force_sync(0.5)
        syncs = [e for e in cluster.tracer.events
                 if e["name"] == "replica_sync"]
        assert len(syncs) == 1
        assert syncs[0]["attrs"]["participants"] == 2
        assert syncs[0]["sim_time"] == 0.5

    def test_straggler_scenario_records_compute_scale(self):
        trace = _run_traced(system="lapse", scenario="stragglers",
                            epochs=2).trace
        scales = [e for e in trace["events"]
                  if e["name"] == "compute_scale"]
        assert scales
        assert all("scale" in e["attrs"] for e in scales)

    def test_parallel_pool_events_are_wall_only(self):
        result = _run_traced(system="lapse", epochs=1,
                             execution_backend="parallel")
        trace = result.trace
        pool = [e for e in trace["events"] if e["cat"] == "parallel"]
        if not pool:  # pool disabled on this host: downgraded to fused
            pytest.skip("parallel backend unavailable")
        assert {e["name"] for e in pool} <= {"pool_dispatch", "pool_join"}
        assert all(e["sim_time"] is None for e in pool)


# --------------------------------------------------------------- exporters
class TestJsonlRoundTrip:
    def test_round_trip_preserves_records(self, tmp_path):
        trace = _run_traced(epochs=1).trace
        path = write_jsonl(trace, tmp_path / "t.jsonl")
        loaded = load_jsonl(path)
        assert loaded["schema"] == trace["schema"]
        assert loaded["dropped"] == trace["dropped"]
        assert loaded["meta"] == json.loads(json.dumps(trace["meta"]))
        for family in ("spans", "events", "samples"):
            assert loaded[family] == json.loads(json.dumps(trace[family]))

    def test_load_rejects_missing_header(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "event", "name": "x", "cat": "y", '
                        '"sim_time": 0, "wall_time": 0}\n')
        with pytest.raises(ValueError, match="missing header"):
            load_jsonl(path)

    def test_load_rejects_unknown_record_type(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "header", "schema": 1}\n'
                        '{"type": "mystery"}\n')
        with pytest.raises(ValueError, match="unknown record type"):
            load_jsonl(path)

    def test_load_rejects_invalid_json(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "header", "schema": 1}\nnot json{\n')
        with pytest.raises(ValueError, match="not a JSON record"):
            load_jsonl(path)


class TestChromeExport:
    def test_spans_become_complete_events_in_microseconds(self):
        tracer = Tracer()
        span = tracer.begin_span("epoch", "run", 1.5, epoch=1)
        tracer.end_span(span, 2.0)
        tracer.complete_span("round", "round", 1.6, 1.7, node=0, worker=1)
        chrome = to_chrome_trace(tracer.to_trace())
        complete = [e for e in chrome["traceEvents"] if e["ph"] == "X"]
        assert len(complete) == 2
        epoch = next(e for e in complete if e["name"] == "epoch")
        assert epoch["ts"] == pytest.approx(1.5e6)
        assert epoch["dur"] == pytest.approx(0.5e6)
        assert (epoch["pid"], epoch["tid"]) == (0, 0)
        round_event = next(e for e in complete if e["name"] == "round")
        assert (round_event["pid"], round_event["tid"]) == (1, 2)

    def test_wall_only_and_unfinished_records_skipped(self):
        tracer = Tracer()
        tracer.begin_span("never_ended", "x", 0.0)
        tracer.event("pool_dispatch", "parallel", None)
        tracer.event("crash", "faults", 1.0, node=1)
        chrome = to_chrome_trace(tracer.to_trace())
        names = {e["name"] for e in chrome["traceEvents"]}
        assert "never_ended" not in names
        assert "pool_dispatch" not in names
        instant = next(e for e in chrome["traceEvents"]
                       if e["name"] == "crash")
        assert instant["ph"] == "i" and instant["pid"] == 2

    def test_samples_become_counter_tracks(self):
        tracer = Tracer()
        tracer.sample(1.0, {
            "metrics_delta": {}, "state_nbytes": {"store": 512},
            "clock_skew": [0.0, 0.25],
            "queues": {"total": 3, "per_node": [1, 2]},
        })
        chrome = to_chrome_trace(tracer.to_trace())
        counters = [e for e in chrome["traceEvents"] if e["ph"] == "C"]
        names = {e["name"] for e in counters}
        assert names == {"queue depth", "clock skew", "state nbytes"}

    def test_lane_metadata_names_nodes_and_workers(self):
        tracer = Tracer()
        tracer.complete_span("round", "round", 0.0, 0.1, node=0, worker=1)
        chrome = to_chrome_trace(tracer.to_trace())
        meta = [e for e in chrome["traceEvents"] if e["ph"] == "M"]
        by_kind = {(m["name"], m["pid"], m["tid"]): m["args"]["name"]
                   for m in meta}
        assert by_kind[("process_name", 1, 0)] == "node 0"
        assert by_kind[("thread_name", 1, 2)] == "worker 1"

    def test_write_chrome_trace_full_run(self, tmp_path):
        trace = _run_traced(scenario="drift", epochs=3).trace
        out = write_chrome_trace(trace, tmp_path / "chrome.json")
        payload = json.loads(out.read_text())
        assert payload["traceEvents"]
        phases = {e["ph"] for e in payload["traceEvents"]}
        assert {"X", "M", "C"} <= phases
        assert payload["otherData"]["system"] == "nups"


class TestSummarize:
    def test_summary_mentions_spans_events_and_traffic(self):
        trace = _run_traced(epochs=2, access_events=True).trace
        text = summarize(trace)
        assert "trace schema v1" in text
        assert "system=nups" in text
        assert "top spans by simulated time" in text
        assert "round" in text and "epoch" in text
        assert "traffic breakdown" in text
        assert "pull" in text
        assert "sampled series" in text

    def test_summary_handles_empty_trace(self):
        text = summarize(Tracer().to_trace())
        assert "0 spans" in text

    def test_summary_reports_drops(self):
        tracer = Tracer(TelemetryConfig(max_records=1))
        tracer.event("a", "x", 0.0)
        tracer.event("b", "x", 0.0)
        assert "1 dropped" in summarize(tracer.to_trace())


# ------------------------------------------------------------- golden schema
def _schema_signature(trace: dict) -> dict:
    """Structural signature of a trace: record shapes, not values."""
    def keys_of(records):
        keys = set()
        for record in records:
            keys |= set(record)
        return sorted(keys)

    samples = trace["samples"]
    return {
        "schema": trace["schema"],
        "meta_keys": sorted(trace["meta"]),
        "span_keys": keys_of(trace["spans"]),
        "event_keys": keys_of(trace["events"]),
        "sample_keys": keys_of(samples),
        "queue_keys": keys_of([s["queues"] for s in samples
                               if s.get("queues")]),
    }


def test_jsonl_schema_matches_golden(tmp_path):
    """The on-disk trace schema is pinned: changing any record shape must
    bump ``SCHEMA_VERSION`` and regenerate ``tests/data/trace_schema_golden.json``
    (run this test with REPRO_UPDATE_GOLDEN=1)."""
    import os

    trace = _run_traced(epochs=2).trace
    path = write_jsonl(trace, tmp_path / "golden_run.jsonl")
    signature = _schema_signature(load_jsonl(path))
    if os.environ.get("REPRO_UPDATE_GOLDEN"):
        GOLDEN.write_text(json.dumps(signature, indent=2, sort_keys=True)
                          + "\n")
    golden = json.loads(GOLDEN.read_text())
    assert signature == golden, (
        "trace schema drifted from tests/data/trace_schema_golden.json — "
        "bump SCHEMA_VERSION and regenerate with REPRO_UPDATE_GOLDEN=1"
    )


# -------------------------------------------------------------------- CLI
class TestCli:
    def test_run_trace_flag_writes_jsonl(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "run.jsonl"
        code = main([
            "run", "--task", "matrix_factorization", "--system", "nups",
            "--nodes", "2", "--workers", "2", "--epochs", "1",
            "--trace", str(out),
        ])
        assert code == 0
        assert out.exists()
        assert load_jsonl(out)["meta"]["system"] == "nups"

    def test_compare_trace_writes_per_system_files(self, tmp_path):
        from repro.cli import main

        out = tmp_path / "cmp.jsonl"
        code = main([
            "compare", "--task", "matrix_factorization",
            "--systems", "classic", "nups",
            "--nodes", "2", "--workers", "2", "--epochs", "1",
            "--trace", str(out),
        ])
        assert code == 0
        for system in ("classic", "nups"):
            per_system = tmp_path / f"cmp.{system}.jsonl"
            assert per_system.exists()
            assert load_jsonl(per_system)["meta"]["system"] == system

    def test_trace_command_summarizes_and_exports(self, tmp_path, capsys):
        from repro.cli import main

        trace_path = tmp_path / "run.jsonl"
        write_jsonl(_run_traced(epochs=1).trace, trace_path)
        chrome_path = tmp_path / "chrome.json"
        code = main(["trace", str(trace_path),
                     "--chrome", str(chrome_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "trace schema v1" in out
        assert "top spans by simulated time" in out
        assert json.loads(chrome_path.read_text())["traceEvents"]

    def test_trace_command_rejects_garbage(self, tmp_path, capsys):
        from repro.cli import main

        bad = tmp_path / "bad.jsonl"
        bad.write_text("not a trace\n")
        assert main(["trace", str(bad)]) == 2
