"""Tests for the Lapse-like relocation PS."""

import numpy as np
import pytest

from repro.ps.relocation import RelocationPS


@pytest.fixture
def ps(store, cluster):
    return RelocationPS(store, cluster)


class TestInitialAllocation:
    def test_initial_owners_follow_static_partition(self, ps):
        for key in (0, 33, 66, 99):
            assert ps.owner_of(key) == ps.partitioner.owner(key)

    def test_local_keys_partition_the_key_space(self, ps, cluster, store):
        all_local = np.concatenate(
            [ps.local_keys(node) for node in range(cluster.num_nodes)]
        )
        assert sorted(all_local.tolist()) == list(range(store.num_keys))


class TestLocalize:
    def test_localize_transfers_ownership(self, ps, cluster):
        worker = cluster.worker(0, 0)
        key = int(ps.partitioner.keys_of(3)[0])
        assert not ps.is_local(0, key)
        ps.localize(worker, [key])
        assert ps.is_local(0, key)
        assert not ps.is_local(3, key)

    def test_localize_already_local_key_is_free(self, ps, cluster):
        worker = cluster.worker(0, 0)
        key = int(ps.partitioner.keys_of(0)[0])
        ps.localize(worker, [key])
        assert cluster.metrics.get("relocation.count") == 0
        assert cluster.metrics.get("network.messages") == 0

    def test_localize_counts_messages(self, ps, cluster):
        worker = cluster.worker(0, 0)
        keys = ps.partitioner.keys_of(2)[:4]
        ps.localize(worker, keys)
        assert cluster.metrics.get("relocation.count") == 4
        assert cluster.metrics.get("network.messages") == 12

    def test_localize_occupies_background_thread_not_worker(self, ps, cluster):
        worker = cluster.worker(0, 0)
        keys = ps.partitioner.keys_of(2)[:4]
        ps.localize(worker, keys)
        assert worker.clock.now == 0.0
        assert cluster.node(0).background_clock.now > 0.0

    def test_relocation_disabled_makes_localize_a_noop(self, store, cluster):
        ps = RelocationPS(store, cluster, relocation_enabled=False)
        worker = cluster.worker(0, 0)
        ps.localize(worker, ps.partitioner.keys_of(2)[:4])
        assert cluster.metrics.get("relocation.count") == 0
        assert ps.owner_of(int(ps.partitioner.keys_of(2)[0])) == 2


class TestAccess:
    def test_local_access_is_cheap(self, ps, cluster):
        worker = cluster.worker(1, 0)
        keys = ps.partitioner.keys_of(1)[:3]
        ps.pull(worker, keys)
        assert cluster.metrics.get("access.pull.local") == 3
        assert worker.clock.now == pytest.approx(3 * cluster.network.local_access_cost)

    def test_remote_access_when_not_localized(self, ps, cluster):
        worker = cluster.worker(0, 0)
        keys = ps.partitioner.keys_of(3)[:3]
        ps.pull(worker, keys)
        assert cluster.metrics.get("access.pull.remote") == 3

    def test_access_after_localize_waits_for_arrival_then_is_local(self, ps, cluster):
        worker = cluster.worker(0, 0)
        key = int(ps.partitioner.keys_of(3)[0])
        ps.localize(worker, [key])
        arrival = ps.arrival_time[key]
        assert arrival > 0
        ps.pull(worker, [key])
        assert cluster.metrics.get("access.pull.local") == 1
        assert cluster.metrics.get("relocation.waits") == 1
        assert worker.clock.now >= arrival

    def test_access_after_arrival_does_not_wait(self, ps, cluster):
        worker = cluster.worker(0, 0)
        key = int(ps.partitioner.keys_of(3)[0])
        ps.localize(worker, [key])
        worker.clock.advance(1.0)  # plenty of time for the relocation
        ps.pull(worker, [key])
        assert cluster.metrics.get("relocation.waits") == 0

    def test_remote_access_to_relocated_key_takes_three_messages(self, ps, cluster):
        """Once a key moved away from home, remote access is routed through
        the home node (3 messages instead of 2)."""
        thief = cluster.worker(1, 0)
        key = int(ps.partitioner.keys_of(3)[0])
        ps.localize(thief, [key])
        cluster.metrics.reset()
        victim = cluster.worker(0, 0)
        ps.pull(victim, [key])
        assert cluster.metrics.get("network.messages") == 3

    def test_remote_access_to_home_key_takes_two_messages(self, ps, cluster):
        worker = cluster.worker(0, 0)
        key = int(ps.partitioner.keys_of(3)[0])
        ps.pull(worker, [key])
        assert cluster.metrics.get("network.messages") == 2

    def test_push_applies_regardless_of_location(self, ps, cluster, store):
        worker = cluster.worker(0, 0)
        keys = np.array([int(ps.partitioner.keys_of(0)[0]),
                         int(ps.partitioner.keys_of(3)[0])])
        before = store.get(keys)
        ps.push(worker, keys, np.ones((2, store.value_length), dtype=np.float32))
        np.testing.assert_allclose(store.get(keys), before + 1.0, rtol=1e-6)

    def test_sequential_consistency_per_key(self, ps, cluster, store):
        """A single current copy per key: writes are immediately visible."""
        writer = cluster.worker(2, 0)
        reader = cluster.worker(3, 1)
        key = 42
        ps.push(writer, [key], np.full((1, store.value_length), 3.0, dtype=np.float32))
        np.testing.assert_allclose(
            ps.pull(reader, [key]), store.get([key]), rtol=1e-6
        )


class TestHotSpotContention:
    def test_ping_pong_relocation_of_contended_key(self, ps, cluster):
        """When two nodes keep localizing the same key, each localize is a
        real relocation (the hot-spot pathology of a relocation PS)."""
        key = int(ps.partitioner.keys_of(0)[0])
        worker_a = cluster.worker(1, 0)
        worker_b = cluster.worker(2, 0)
        for _ in range(5):
            ps.localize(worker_a, [key])
            ps.localize(worker_b, [key])
        assert cluster.metrics.get("relocation.count") == 10
        assert ps.owner_of(key) == 2
