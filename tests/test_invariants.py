"""Property-based invariant suite: random operation sequences, all PS types.

Seeded ``numpy.random`` sequences of PS operations (pull, push, localize,
clock advances, housekeeping, sampling) are replayed against every parameter
server architecture, asserting structural invariants after every step:

* every key is owned by exactly one node after any relocation sequence,
* simulated clocks never decrease,
* replica staleness never exceeds the configured bound,
* metrics counters equal the number of issued operations.

Small sequences run in tier-1; large sequences (and the scenario-integrated
sweep) carry the ``slow`` marker and run in CI's dedicated job.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.management import ManagementPlan
from repro.core.nups import NuPS
from repro.core.sampling.distributions import CategoricalDistribution
from repro.ps.classic import ClassicPS
from repro.ps.local import SingleNodePS
from repro.ps.relocation import RelocationPS
from repro.ps.replication import ReplicationProtocol, ReplicationPS
from repro.ps.storage import ParameterStore
from repro.runner.config import ExperimentConfig
from repro.runner.experiment import run_experiment
from repro.runner.systems import SYSTEM_NAMES, make_ps_factory
from repro.runner.workloads import make_task
from repro.scenarios import make_scenario
from repro.simulation.cluster import Cluster, ClusterConfig
from repro.simulation.network import NetworkModel


NUM_KEYS = 120
VALUE_LENGTH = 3
STALENESS = 2


def _network() -> NetworkModel:
    return NetworkModel(latency=10e-6, bandwidth=1e9,
                        message_handling_cost=1e-6, local_access_cost=1e-7,
                        compute_per_step=20e-6)


def _cluster(num_nodes=3, workers_per_node=2) -> Cluster:
    return Cluster(ClusterConfig(num_nodes=num_nodes,
                                 workers_per_node=workers_per_node,
                                 network=_network()))


def _build(architecture: str):
    """(ps, cluster, store) for one architecture under test."""
    if architecture == "single-node":
        cluster = _cluster(num_nodes=1, workers_per_node=4)
    else:
        cluster = _cluster()
    store = ParameterStore(NUM_KEYS, VALUE_LENGTH, seed=11, init_scale=0.3)
    if architecture == "classic":
        ps = ClassicPS(store, cluster)
    elif architecture == "single-node":
        ps = SingleNodePS(store, cluster)
    elif architecture == "relocation":
        ps = RelocationPS(store, cluster)
    elif architecture == "replication-ssp":
        ps = ReplicationPS(store, cluster, protocol=ReplicationProtocol.SSP,
                           staleness=STALENESS)
    elif architecture == "replication-essp":
        ps = ReplicationPS(store, cluster, protocol=ReplicationProtocol.ESSP,
                           staleness=STALENESS)
    elif architecture == "nups":
        plan = ManagementPlan(NUM_KEYS, np.arange(0, NUM_KEYS, 7))
        ps = NuPS(store, cluster, plan=plan, sync_interval=0.0005)
    else:  # pragma: no cover - parametrization guard
        raise ValueError(architecture)
    return ps, cluster, store


ARCHITECTURES = [
    "single-node", "classic", "relocation",
    "replication-ssp", "replication-essp", "nups",
]


class _ClockWatcher:
    """Asserts that no simulated clock ever moves backwards."""

    def __init__(self, cluster: Cluster) -> None:
        self.cluster = cluster
        self.last = self._snapshot()

    def _snapshot(self):
        times = []
        for node in self.cluster.nodes:
            times.extend(clock.now for clock in node.worker_clocks)
            times.append(node.background_clock.now)
            times.append(node.server_clock.now)
        return times

    def check(self) -> None:
        current = self._snapshot()
        for before, after in zip(self.last, current):
            assert after >= before, "a simulated clock moved backwards"
        self.last = current


class _OpCounter:
    """Tracks issued operations to compare against the metrics registry."""

    def __init__(self) -> None:
        self.pulled = 0
        self.pushed = 0
        self.sample_pulled = 0
        self.sample_pushed = 0


def _random_keys(rng: np.random.Generator) -> np.ndarray:
    count = int(rng.integers(1, 24))
    # Zipf-flavored skew plus duplicates: hot keys collide on purpose.
    raw = rng.zipf(1.3, size=count)
    return np.minimum(raw - 1, NUM_KEYS - 1).astype(np.int64)


def _run_sequence(architecture: str, seed: int, num_ops: int):
    ps, cluster, store = _build(architecture)
    rng = np.random.default_rng(seed)
    watcher = _ClockWatcher(cluster)
    counter = _OpCounter()
    workers = list(cluster.workers())

    distribution_id = ps.register_distribution(
        CategoricalDistribution(np.arange(1.0, NUM_KEYS + 1.0)), "bounded"
    ) if architecture == "nups" else ps.register_distribution(
        CategoricalDistribution(np.arange(1.0, NUM_KEYS + 1.0))
    )
    handles = []

    def check_step(worker):
        watcher.check()
        _check_ownership(ps, cluster)

    for _ in range(num_ops):
        worker = workers[int(rng.integers(len(workers)))]
        op = rng.random()
        if op < 0.35:
            keys = _random_keys(rng)
            values = ps.pull(worker, keys)
            assert values.shape == (len(keys), VALUE_LENGTH)
            counter.pulled += len(keys)
            if isinstance(ps, ReplicationPS):
                _check_staleness(ps, worker, keys)
        elif op < 0.6:
            keys = _random_keys(rng)
            deltas = rng.normal(0, 0.01, size=(len(keys), VALUE_LENGTH)).astype(
                np.float32
            )
            ps.push(worker, keys, deltas)
            counter.pushed += len(keys)
        elif op < 0.75:
            ps.localize(worker, _random_keys(rng))
        elif op < 0.85:
            ps.advance_clock(worker)
        elif op < 0.92:
            ps.housekeeping(cluster.time)
        else:
            if handles and rng.random() < 0.6:
                handle = handles[int(rng.integers(len(handles)))]
                take = int(rng.integers(1, 5))
                take = min(take, handle.remaining)
                if take:
                    result = ps.pull_sample(worker, handle, take)
                    assert len(result.keys) == take
                    assert result.values.shape == (take, VALUE_LENGTH)
                    counter.sample_pulled += take
                    deltas = rng.normal(0, 0.01, size=result.values.shape).astype(
                        np.float32
                    )
                    ps.push_sample(worker, result.keys, deltas)
                    counter.sample_pushed += take
                if handle.remaining == 0:
                    handles.remove(handle)
            else:
                count = int(rng.integers(1, 12))
                handles.append(ps.prepare_sample(worker, distribution_id, count))
        check_step(worker)

    return ps, cluster, store, counter


def _check_ownership(ps, cluster) -> None:
    """Every key is owned by exactly one node after any relocation sequence."""
    if not isinstance(ps, RelocationPS):
        return
    owners = ps.current_owner
    assert owners.shape == (ps.store.num_keys,)
    assert owners.min() >= 0 and owners.max() < cluster.num_nodes
    sizes = [len(ps.local_keys(node_id)) for node_id in range(cluster.num_nodes)]
    assert sum(sizes) == ps.store.num_keys


def _check_staleness(ps: ReplicationPS, worker, keys: np.ndarray) -> None:
    """After a pull, no delivered replica is staler than the bound allows."""
    state = ps._nodes[worker.node_id]
    worker_clock = state.worker_clocks.get(worker.worker_id, 0)
    clocks = state.replica_clock[np.asarray(keys, dtype=np.int64)]
    assert np.all(clocks >= worker_clock - ps.staleness)


def _check_metrics(architecture: str, ps, cluster, counter: _OpCounter) -> None:
    """Metrics counters equal the number of issued operations."""
    metrics = cluster.metrics

    def total(prefix: str) -> float:
        return metrics.total_matching(prefix)

    # access.total is exactly the sum of the per-kind access counters.
    per_kind = sum(
        value for name, value in metrics.counters().items()
        if name.startswith("access.") and name != "access.total"
    )
    assert metrics.get("access.total") == per_kind

    if architecture in ("single-node", "classic", "relocation"):
        assert total("access.pull.") == counter.pulled + counter.sample_pulled
        assert total("access.push.") == counter.pushed + counter.sample_pushed
    elif architecture.startswith("replication"):
        # Pushes charge exactly one replica write per issued key; pulls may
        # additionally refresh replicas that pushes created.
        assert metrics.get("access.push.replica") == (
            counter.pushed + counter.sample_pushed
        )
        assert total("access.pull.") >= counter.pulled + counter.sample_pulled
    elif architecture == "nups":
        assert total("access.pull.") == counter.pulled
        assert total("access.push.") == counter.pushed
        assert total("access.sample.") == counter.sample_pulled
        assert total("access.sample_push.") == counter.sample_pushed


@pytest.mark.parametrize("architecture", ARCHITECTURES)
@pytest.mark.parametrize("seed", [1, 2])
def test_random_sequences_small(architecture, seed):
    ps, cluster, store, counter = _run_sequence(architecture, seed, num_ops=120)
    _check_metrics(architecture, ps, cluster, counter)
    if isinstance(ps, NuPS):
        ps.finish_epoch()
        assert ps.replica_manager.max_replica_divergence() == 0.0


@pytest.mark.slow
@pytest.mark.parametrize("architecture", ARCHITECTURES)
@pytest.mark.parametrize("seed", [3, 4, 5])
def test_random_sequences_large(architecture, seed):
    ps, cluster, store, counter = _run_sequence(architecture, seed, num_ops=1500)
    _check_metrics(architecture, ps, cluster, counter)
    if isinstance(ps, NuPS):
        ps.finish_epoch()
        assert ps.replica_manager.max_replica_divergence() == 0.0


def test_remapper_invariants_under_random_drifts():
    """The remapping stays a bijection and store contents stay conserved."""
    from repro.scenarios import KeyRemapper

    rng = np.random.default_rng(7)
    store = ParameterStore(90, 2, seed=1, init_scale=1.0)
    reference = np.sort(store.values.copy(), axis=0)
    remapper = KeyRemapper(90, groups=[(0, 50), (50, 90)])
    logical_snapshot = store.values[remapper.physical_index].copy()
    for _ in range(12):
        sigma = remapper.rotation(float(rng.uniform(0.05, 0.95)))
        store.permute(sigma)
        remapper.apply(sigma)
        all_keys = np.arange(90)
        np.testing.assert_array_equal(
            remapper.to_logical(remapper.to_physical(all_keys)), all_keys
        )
        # Logical view is invariant; physical rows are merely rearranged.
        np.testing.assert_array_equal(
            store.values[remapper.physical_index], logical_snapshot
        )
        np.testing.assert_array_equal(np.sort(store.values, axis=0), reference)


@pytest.mark.slow
@pytest.mark.parametrize("system", ["classic", "lapse", "essp", "nups"])
def test_storm_scenario_preserves_invariants(system):
    """End-to-end: the combined scenario keeps every structural invariant."""
    captured = {}
    base_factory = make_ps_factory(system)

    def factory(store, cluster, task):
        ps = base_factory(store, cluster, task)
        captured["ps"], captured["cluster"] = ps, cluster
        return ps

    task = make_task("kge", scale="test")
    config = ExperimentConfig(
        cluster=ClusterConfig(num_nodes=2, workers_per_node=2),
        epochs=3, chunk_size=8, seed=1, scenario=make_scenario("storm"),
    )
    result = run_experiment(task, factory, config)
    assert result.epochs_completed == 3
    times = [rec.sim_time for rec in result.records]
    assert times == sorted(times)
    assert all(rec.epoch_duration >= 0 for rec in result.records)
    _check_ownership(captured["ps"], captured["cluster"])
    metrics = captured["cluster"].metrics
    per_kind = sum(
        value for name, value in metrics.counters().items()
        if name.startswith("access.") and name != "access.total"
    )
    assert metrics.get("access.total") == per_kind


def test_all_system_names_still_build():
    """Guard: every registered system builds against a live task."""
    task = make_task("matrix_factorization", scale="test")
    for system in SYSTEM_NAMES:
        nodes = 1 if system == "single-node" else 2
        cluster = Cluster(ClusterConfig(num_nodes=nodes, workers_per_node=2,
                                        network=_network()))
        store = task.create_store(seed=0)
        ps = make_ps_factory(system)(store, cluster, task)
        assert ps.store is store


# ------------------------------------------------------- fault-schedule ops
def _check_active_ownership(ps, cluster) -> None:
    """Every key is owned by exactly one *active* node (post-failover form)."""
    owned = [np.asarray(ps.keys_owned_by(node_id), dtype=np.int64)
             for node_id in cluster.active_nodes]
    everything = np.concatenate(owned) if owned else np.empty(0, np.int64)
    np.testing.assert_array_equal(np.sort(everything),
                                  np.arange(ps.store.num_keys))


def _run_fault_sequence(architecture: str, seed: int, num_ops: int):
    """Random pulls/pushes interleaved with crash/restore fault schedules.

    Drives the :class:`~repro.faults.controller.FaultController` standalone
    (no scenario runtime) against every architecture, checking after every
    step that the partition over the *active* nodes covers the key space
    exactly once and that no simulated clock moved backwards. Architectures
    without native failover waiting go through the retry/timeout proxy;
    a :class:`DeadOwnerError` is a tolerated outcome, never a crash.
    """
    from repro.faults import (
        DeadOwnerError,
        FaultConfig,
        FaultController,
        FaultTolerantParameterServer,
    )

    ps, cluster, store = _build(architecture)
    controller = FaultController(
        ps, FaultConfig(recovery="checkpoint", checkpoint_interval=0.002)
    )
    access = ps
    if not getattr(ps, "native_failover_wait", False):
        access = FaultTolerantParameterServer(ps)
        access.controller = controller
    rng = np.random.default_rng(seed)
    watcher = _ClockWatcher(cluster)
    workers = list(cluster.workers())
    dropped = 0

    for step in range(num_ops):
        # Fault schedule: occasional crashes and restores of nodes 1..N-1.
        roll = rng.random()
        now = cluster.time
        if roll < 0.08:
            victim = int(rng.integers(1, cluster.num_nodes))
            if victim not in cluster.failed \
                    and len(cluster.failed) + 1 < cluster.num_nodes:
                controller.crash_node(victim, now=now)
                _check_active_ownership(ps, cluster)
        elif roll < 0.16 and controller.down:
            node_id = sorted(controller.down)[int(
                rng.integers(len(controller.down))
            )]
            controller.restore_node(node_id, now=now)
            _check_active_ownership(ps, cluster)
        controller.on_round(now)

        worker = workers[int(rng.integers(len(workers)))]
        if worker.node_id in cluster.failed:
            continue  # a dead node's workers issue nothing
        keys = _random_keys(rng)
        try:
            if rng.random() < 0.5:
                values = access.pull(worker, keys)
                assert values.shape == (len(keys), VALUE_LENGTH)
            else:
                deltas = rng.normal(0, 0.01,
                                    size=(len(keys), VALUE_LENGTH)).astype(
                    np.float32
                )
                access.push(worker, keys, deltas)
        except DeadOwnerError:
            dropped += 1  # tolerated: the epoch loop drops the chunk
        watcher.check()
        _check_active_ownership(ps, cluster)

    # Quiesce: restore everything and re-check the final partition.
    for node_id in sorted(controller.down):
        controller.restore_node(node_id, now=cluster.time)
    assert not cluster.failed
    _check_active_ownership(ps, cluster)
    watcher.check()
    metrics = cluster.metrics
    assert metrics.get("faults.restores") <= metrics.get("faults.crashes")
    return dropped


FAULT_ARCHITECTURES = [
    "classic", "relocation", "replication-ssp", "replication-essp", "nups",
]


@pytest.mark.parametrize("architecture", FAULT_ARCHITECTURES)
@pytest.mark.parametrize("seed", [11, 12])
def test_fault_schedules_small(architecture, seed):
    _run_fault_sequence(architecture, seed, num_ops=120)


@pytest.mark.slow
@pytest.mark.parametrize("architecture", FAULT_ARCHITECTURES)
@pytest.mark.parametrize("seed", [13, 14, 15])
def test_fault_schedules_large(architecture, seed):
    _run_fault_sequence(architecture, seed, num_ops=1000)


# --------------------------------------------------- membership-change ops
def _store_sum(store) -> float:
    values = store.get(np.arange(store.num_keys, dtype=np.int64))
    return float(np.asarray(values, dtype=np.float64).sum())


def _run_membership_sequence(architecture: str, seed: int, num_ops: int):
    """Random accesses interleaved with live joins, leaves, and partitions.

    Drives the :class:`~repro.elastic.ElasticityController` and the
    partition guard standalone against every architecture, checking after
    every step that

    * every key is owned by exactly one *active* node (single active owner
      survives arbitrary add/remove/partition/heal interleavings),
    * no simulated clock ever moves backwards, and
    * no acknowledged update is lost: after quiescing (healing any open
      partition, flushing epoch state), the store's total mass equals the
      initial mass plus every successfully issued push delta. Planned
      removals drain, partitions buffer-and-replay — nothing acknowledged
      may disappear.
    """
    from repro.elastic import ElasticityController, PartitionState
    from repro.faults import FaultTolerantParameterServer, PartitionedOwnerError

    ps, cluster, store = _build(architecture)
    controller = ElasticityController(ps)
    access = FaultTolerantParameterServer(ps)
    rng = np.random.default_rng(seed)
    watcher = _ClockWatcher(cluster)
    workers = list(cluster.workers())  # the launch-time worker pool is fixed
    initial_mass = _store_sum(store)
    pushed_mass = 0.0
    deferred = 0
    partition = None

    for _ in range(num_ops):
        roll = rng.random()
        now = cluster.time
        if partition is None and roll < 0.05 \
                and len(cluster.active_nodes) < 6:
            controller.scale_out(now)
            _check_active_ownership(ps, cluster)
        elif partition is None and roll < 0.10:
            eligible = [n for n in cluster.active_nodes if n != 0]
            if len(eligible) >= 2:
                victim = int(eligible[int(rng.integers(len(eligible)))])
                summary = controller.scale_in(victim, now)
                assert summary["lost_updates"] == 0
                _check_active_ownership(ps, cluster)
        elif partition is None and roll < 0.14:
            eligible = [n for n in cluster.active_nodes if n != 0]
            if eligible and len(cluster.active_nodes) >= 3:
                minority = [int(eligible[int(rng.integers(len(eligible)))])]
                partition = PartitionState(ps, minority, now)
                access.partition = partition
        elif partition is not None and roll < 0.20:
            access.partition = None
            partition.heal(cluster.time)
            partition = None
            _check_active_ownership(ps, cluster)

        worker = workers[int(rng.integers(len(workers)))]
        if worker.node_id in cluster.failed \
                or cluster.is_removed(worker.node_id):
            continue  # paused: its shard would have been redistributed
        keys = _random_keys(rng)
        try:
            if rng.random() < 0.5:
                values = access.pull(worker, keys)
                assert values.shape == (len(keys), VALUE_LENGTH)
            else:
                deltas = rng.normal(
                    0, 0.01, size=(len(keys), VALUE_LENGTH)
                ).astype(np.float32)
                access.push(worker, keys, deltas)
                # The push was acknowledged (buffered counts: a minority
                # push is replayed at heal, never dropped).
                pushed_mass += float(deltas.astype(np.float64).sum())
        except PartitionedOwnerError:
            deferred += 1  # admission control: the access never happened
        watcher.check()
        _check_active_ownership(ps, cluster)

    # Quiesce: heal any open partition, flush all buffered state.
    if partition is not None:
        access.partition = None
        partition.heal(cluster.time)
    ps.finish_epoch()
    _check_active_ownership(ps, cluster)
    watcher.check()
    final_mass = _store_sum(store)
    assert final_mass == pytest.approx(initial_mass + pushed_mass, abs=0.05), \
        "an acknowledged update was lost across membership changes"
    metrics = cluster.metrics
    assert metrics.get("elastic.lost_updates") == 0
    assert metrics.get("elastic.nodes_removed") == controller.scale_ins
    return deferred


@pytest.mark.parametrize("architecture", FAULT_ARCHITECTURES)
@pytest.mark.parametrize("seed", [21, 22])
def test_membership_sequences_small(architecture, seed):
    _run_membership_sequence(architecture, seed, num_ops=120)


@pytest.mark.slow
@pytest.mark.parametrize("architecture", FAULT_ARCHITECTURES)
@pytest.mark.parametrize("seed", [23, 24, 25])
def test_membership_sequences_large(architecture, seed):
    _run_membership_sequence(architecture, seed, num_ops=1000)
