"""Determinism regression: identical seeds yield bit-identical experiments.

Guards the vectorized fast paths of PR 1 and the scenario hooks of PR 2
alike: any hidden global state, unseeded randomness or order-dependent float
accumulation shows up here as a diff between two same-seed runs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.runner.config import ExperimentConfig
from repro.runner.experiment import ExperimentResult, run_experiment
from repro.runner.systems import make_ps_factory
from repro.runner.workloads import make_task
from repro.scenarios import make_scenario
from repro.simulation.cluster import ClusterConfig


def _config(seed=5, scenario=None, epochs=2, round_fusion=True,
            execution_backend=None, telemetry=False):
    parallel = None
    if execution_backend == "parallel":
        from repro.parallel import ParallelConfig

        parallel = ParallelConfig(num_workers=2)
    telemetry_config = None
    if telemetry:
        from repro.obs import TelemetryConfig

        telemetry_config = TelemetryConfig(access_events=True)
    return ExperimentConfig(
        cluster=ClusterConfig(num_nodes=2, workers_per_node=2),
        epochs=epochs, chunk_size=8, seed=seed, scenario=scenario,
        round_fusion=round_fusion, execution_backend=execution_backend,
        parallel=parallel, telemetry=telemetry_config,
    )


def _run(task_name: str, system: str, scenario_name=None,
         round_fusion=True, execution_backend=None,
         telemetry=False) -> ExperimentResult:
    scenario = make_scenario(scenario_name) if scenario_name else None
    task = make_task(task_name, scale="test")
    return run_experiment(
        task, make_ps_factory(system),
        _config(scenario=scenario, round_fusion=round_fusion,
                execution_backend=execution_backend, telemetry=telemetry)
    )


def _assert_identical(first: ExperimentResult, second: ExperimentResult) -> None:
    assert first.initial_quality == second.initial_quality
    assert first.epochs_completed == second.epochs_completed
    for rec_a, rec_b in zip(first.records, second.records):
        assert rec_a.epoch == rec_b.epoch
        # Bit-identical simulated times and quality, not merely approximate.
        assert rec_a.sim_time == rec_b.sim_time
        assert rec_a.epoch_duration == rec_b.epoch_duration
        assert rec_a.quality == rec_b.quality
        assert rec_a.metrics == rec_b.metrics
    assert first.metrics == second.metrics


SYSTEMS_FULL = ["classic", "lapse", "essp", "nups"]
SYSTEMS_REDUCED = ["lapse", "nups"]


@pytest.mark.parametrize("system", SYSTEMS_FULL)
def test_same_seed_is_bit_identical_kge(system):
    _assert_identical(_run("kge", system), _run("kge", system))


@pytest.mark.parametrize("system", SYSTEMS_REDUCED)
def test_same_seed_is_bit_identical_word_vectors(system):
    _assert_identical(_run("word_vectors", system),
                      _run("word_vectors", system))


@pytest.mark.parametrize("system", SYSTEMS_REDUCED)
def test_same_seed_is_bit_identical_matrix_factorization(system):
    _assert_identical(_run("matrix_factorization", system),
                      _run("matrix_factorization", system))


@pytest.mark.parametrize("scenario_name",
                         ["drift", "stragglers", "churn", "degrading-network"])
def test_scenarios_are_deterministic(scenario_name):
    _assert_identical(_run("kge", "nups", scenario_name),
                      _run("kge", "nups", scenario_name))


@pytest.mark.slow
@pytest.mark.parametrize("system", SYSTEMS_FULL)
def test_storm_scenario_is_deterministic(system):
    _assert_identical(_run("kge", system, "storm"),
                      _run("kge", system, "storm"))


def test_different_seeds_differ():
    """Sanity counterpart: the comparison is not vacuously true."""
    task = make_task("kge", scale="test")
    first = run_experiment(task, make_ps_factory("lapse"), _config(seed=5))
    second = run_experiment(task, make_ps_factory("lapse"), _config(seed=6))
    assert first.records[-1].sim_time != second.records[-1].sim_time


def test_compute_scale_default_is_bit_transparent():
    """charge_compute with the default scale matches raw clock advances."""
    from repro.simulation.clock import SimulatedClock
    from repro.simulation.cluster import WorkerContext

    reference = SimulatedClock()
    scaled = WorkerContext(0, 0, SimulatedClock())
    rng = np.random.default_rng(0)
    for cost in rng.uniform(0, 1e-4, size=200):
        reference.advance(cost)
        scaled.charge_compute(cost)
    assert reference.now == scaled.clock.now


@pytest.mark.parametrize("system", SYSTEMS_FULL)
def test_round_fusion_flag_is_bit_transparent(system):
    """round_fusion=True and =False agree bit-for-bit, same seed."""
    _assert_identical(
        _run("matrix_factorization", system, round_fusion=True),
        _run("matrix_factorization", system, round_fusion=False),
    )


@pytest.mark.parametrize("scenario_name", ["drift", "churn"])
def test_round_fusion_flag_transparent_under_scenarios(scenario_name):
    _assert_identical(
        _run("matrix_factorization", "lapse", scenario_name,
             round_fusion=True),
        _run("matrix_factorization", "lapse", scenario_name,
             round_fusion=False),
    )


@pytest.mark.parametrize("backend", ["sequential", "fused", "parallel"])
@pytest.mark.parametrize("system", SYSTEMS_REDUCED)
def test_execution_backend_is_bit_transparent(system, backend):
    """Every execution_backend value agrees bit-for-bit with the default."""
    _assert_identical(
        _run("matrix_factorization", system, execution_backend=backend),
        _run("matrix_factorization", system),
    )


@pytest.mark.parametrize("system", SYSTEMS_REDUCED)
def test_same_seed_is_bit_identical_parallel_backend(system):
    """Two same-seed parallel-backend runs agree with each other, too."""
    _assert_identical(
        _run("matrix_factorization", system, execution_backend="parallel"),
        _run("matrix_factorization", system, execution_backend="parallel"),
    )


@pytest.mark.parametrize("system", SYSTEMS_FULL)
def test_telemetry_is_bit_transparent(system):
    """Telemetry on vs off: identical clocks, metrics and quality."""
    _assert_identical(
        _run("matrix_factorization", system, telemetry=True),
        _run("matrix_factorization", system, telemetry=False),
    )


@pytest.mark.parametrize("scenario_name",
                         ["drift", "churn", "crash-storm", "scale-out"])
def test_telemetry_transparent_under_scenarios(scenario_name):
    _assert_identical(
        _run("matrix_factorization", "nups", scenario_name, telemetry=True),
        _run("matrix_factorization", "nups", scenario_name, telemetry=False),
    )


@pytest.mark.parametrize("telemetry", [False, True])
@pytest.mark.parametrize("system", SYSTEMS_REDUCED)
def test_round_fusion_transparent_with_telemetry(system, telemetry):
    """Fusion equivalence holds with the tracer attached, too."""
    _assert_identical(
        _run("matrix_factorization", system, round_fusion=True,
             telemetry=telemetry),
        _run("matrix_factorization", system, round_fusion=False,
             telemetry=telemetry),
    )
