"""Tests for the network cost model."""

import pytest
from hypothesis import given, strategies as st

from repro.simulation.network import BYTES_PER_VALUE, KEY_BYTES, NetworkModel


@pytest.fixture
def net() -> NetworkModel:
    return NetworkModel(
        latency=10e-6, bandwidth=1e9, message_handling_cost=1e-6,
        local_access_cost=1e-7, compute_per_step=20e-6,
    )


class TestNetworkModelValidation:
    def test_rejects_negative_latency(self):
        with pytest.raises(ValueError):
            NetworkModel(latency=-1e-6)

    def test_rejects_nonpositive_bandwidth(self):
        with pytest.raises(ValueError):
            NetworkModel(bandwidth=0)

    def test_rejects_negative_handling_cost(self):
        with pytest.raises(ValueError):
            NetworkModel(message_handling_cost=-1.0)

    def test_rejects_negative_local_cost(self):
        with pytest.raises(ValueError):
            NetworkModel(local_access_cost=-1.0)

    def test_rejects_negative_compute(self):
        with pytest.raises(ValueError):
            NetworkModel(compute_per_step=-1.0)

    def test_defaults_are_valid(self):
        model = NetworkModel()
        assert model.latency > 0
        assert model.bandwidth > 0


class TestCosts:
    def test_transfer_cost_scales_linearly(self, net):
        assert net.transfer_cost(2000) == pytest.approx(2 * net.transfer_cost(1000))

    def test_transfer_cost_rejects_negative(self, net):
        with pytest.raises(ValueError):
            net.transfer_cost(-1)

    def test_message_cost_includes_latency_and_key(self, net):
        assert net.message_cost(0) == pytest.approx(
            net.latency + KEY_BYTES / net.bandwidth
        )

    def test_remote_access_is_two_messages(self, net):
        value_bytes = 64
        expected = net.message_cost(0) + net.message_cost(value_bytes)
        assert net.remote_access_cost(value_bytes) == pytest.approx(expected)

    def test_relocation_is_three_messages(self, net):
        value_bytes = 64
        expected = 2 * net.message_cost(0) + net.message_cost(value_bytes)
        assert net.relocation_cost(value_bytes) == pytest.approx(expected)

    def test_relocation_occupancy_excludes_latency(self, net):
        """Asynchronous relocation must be far cheaper for the issuing thread
        than the end-to-end relocation duration (this asymmetry is the point
        of localize-ahead)."""
        value_bytes = 64
        assert net.relocation_occupancy(value_bytes) < net.relocation_cost(value_bytes)
        assert net.relocation_occupancy(value_bytes) == pytest.approx(
            3 * net.message_handling_cost
            + net.transfer_cost(value_bytes + 3 * KEY_BYTES)
        )

    def test_server_occupancy_excludes_latency(self, net):
        assert net.server_occupancy(64) < net.remote_access_cost(64)

    def test_local_access_is_cheapest(self, net):
        assert net.local_access_cost < net.relocation_occupancy(64)
        assert net.relocation_occupancy(64) < net.remote_access_cost(64)

    def test_value_bytes(self, net):
        assert net.value_bytes(16) == 16 * BYTES_PER_VALUE

    def test_value_bytes_rejects_negative(self, net):
        with pytest.raises(ValueError):
            net.value_bytes(-1)


class TestAllReduce:
    def test_single_node_is_free(self, net):
        assert net.allreduce_cost(1000, 1) == 0.0

    def test_two_nodes_is_one_round(self, net):
        assert net.allreduce_cost(1000, 2) == pytest.approx(net.message_cost(1000))

    def test_rounds_are_log2(self, net):
        cost_8 = net.allreduce_cost(1000, 8)
        assert cost_8 == pytest.approx(3 * net.message_cost(1000))

    def test_non_power_of_two_rounds_up(self, net):
        assert net.allreduce_cost(1000, 5) == pytest.approx(3 * net.message_cost(1000))

    def test_rejects_zero_nodes(self, net):
        with pytest.raises(ValueError):
            net.allreduce_cost(1000, 0)

    @given(st.integers(min_value=0, max_value=10**6), st.integers(min_value=2, max_value=64))
    def test_allreduce_monotone_in_payload(self, payload, nodes):
        net = NetworkModel()
        assert net.allreduce_cost(payload + 1000, nodes) >= net.allreduce_cost(payload, nodes)

    @given(st.integers(min_value=0, max_value=10**6))
    def test_costs_are_non_negative(self, payload):
        net = NetworkModel()
        assert net.message_cost(payload) >= 0
        assert net.remote_access_cost(payload) >= 0
        assert net.relocation_cost(payload) >= 0
        assert net.relocation_occupancy(payload) >= 0
        assert net.server_occupancy(payload) >= 0
