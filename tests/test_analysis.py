"""Tests for the skew and speedup analysis utilities."""

import numpy as np
import pytest

from repro.analysis.skew import access_frequency_curve, skew_report, task_access_profile
from repro.analysis.speedup import (
    effective_quality_threshold,
    effective_speedup,
    effective_speedup_from_results,
    raw_speedup,
    raw_speedup_from_results,
    scaling_table,
)
from repro.runner.experiment import EpochRecord, ExperimentResult
from repro.runner.workloads import kge_task, matrix_factorization_task, word_vectors_task


def make_result(system, qualities, epoch_time=1.0, higher_is_better=True,
                initial=0.0):
    records = [
        EpochRecord(epoch=i + 1, sim_time=epoch_time * (i + 1),
                    epoch_duration=epoch_time, quality={"q": value})
        for i, value in enumerate(qualities)
    ]
    return ExperimentResult(
        system=system, task="t", num_nodes=8, workers_per_node=8,
        initial_quality={"q": initial}, records=records,
        quality_metric="q", higher_is_better=higher_is_better,
    )


class TestSkewAnalysis:
    def test_access_frequency_curve_sorted(self):
        curve = access_frequency_curve(np.array([1.0, 5.0, 3.0]))
        assert curve.tolist() == [5.0, 3.0, 1.0]

    def test_task_access_profile_shapes(self):
        task = kge_task("test")
        profile = task_access_profile(task)
        assert profile["direct"].shape == (task.num_keys(),)
        assert profile["sampling"].shape == (task.num_keys(),)
        np.testing.assert_allclose(
            profile["total"], profile["direct"] + profile["sampling"]
        )

    def test_kge_has_both_access_kinds(self):
        report = skew_report(kge_task("test"))
        assert 0 < report["direct_share"] < 1
        assert 0 < report["sampling_share"] < 1
        assert report["direct_share"] + report["sampling_share"] == pytest.approx(1.0)

    def test_mf_has_no_sampling_access(self):
        report = skew_report(matrix_factorization_task("test"))
        assert report["sampling_share"] == 0.0
        assert report["direct_share"] == 1.0

    def test_wv_sampling_share_substantial(self):
        """Table 2: sampling accesses are a large share of WV accesses."""
        report = skew_report(word_vectors_task("test"))
        assert report["sampling_share"] > 0.2

    def test_access_is_skewed(self):
        """A small fraction of keys accounts for a disproportionate share of
        accesses (the Section 2.1 observation)."""
        report = skew_report(kge_task("test"), top_fraction=0.05)
        assert report["top_share"] > 3 * 0.05


class TestRawSpeedup:
    def test_basic_ratio(self):
        assert raw_speedup(10.0, 2.0) == 5.0

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            raw_speedup(0.0, 1.0)
        with pytest.raises(ValueError):
            raw_speedup(1.0, 0.0)

    def test_from_results(self):
        single = make_result("single-node", [0.5], epoch_time=8.0)
        fast = make_result("nups", [0.5], epoch_time=1.0)
        speedups = raw_speedup_from_results([single, fast])
        assert speedups == {"nups": 8.0}

    def test_missing_single_node_raises(self):
        with pytest.raises(ValueError):
            raw_speedup_from_results([make_result("nups", [0.5])])


class TestEffectiveSpeedup:
    def test_threshold_higher_is_better(self):
        single = make_result("single-node", [0.5, 1.0])
        assert effective_quality_threshold(single) == pytest.approx(0.9)

    def test_threshold_lower_is_better(self):
        single = make_result("single-node", [1.5, 1.0], higher_is_better=False,
                             initial=2.0)
        # 90% of the improvement from 2.0 down to 1.0.
        assert effective_quality_threshold(single) == pytest.approx(2.0 - 0.9)

    def test_effective_speedup_reached(self):
        single = make_result("single-node", [0.5, 0.92, 1.0], epoch_time=10.0)
        variant = make_result("nups", [0.95], epoch_time=5.0)
        assert effective_speedup(single, variant) == pytest.approx(20.0 / 5.0)

    def test_effective_speedup_not_reached_is_none(self):
        single = make_result("single-node", [0.5, 1.0], epoch_time=10.0)
        slow = make_result("classic", [0.1, 0.2], epoch_time=10.0)
        assert effective_speedup(single, slow) is None

    def test_from_results_excludes_single_node(self):
        single = make_result("single-node", [1.0], epoch_time=10.0)
        variant = make_result("nups", [1.0], epoch_time=2.0)
        speedups = effective_speedup_from_results([single, variant])
        assert set(speedups) == {"nups"}
        assert speedups["nups"] == pytest.approx(5.0)


class TestScalingTable:
    def test_rows_sorted_by_nodes(self):
        baseline = make_result("single-node", [1.0], epoch_time=8.0)
        results = {
            4: make_result("nups", [1.0], epoch_time=3.0),
            2: make_result("nups", [1.0], epoch_time=5.0),
        }
        rows = scaling_table(results, baseline)
        assert [row[0] for row in rows] == [2, 4]
        assert rows[1][2] == pytest.approx(8.0 / 3.0)
