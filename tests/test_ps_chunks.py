"""Unit tests for the chunked sparse state containers (repro.ps.chunks).

The containers duck-type the ndarray subset the parameter-server hot paths
use; every operation here is checked against the equivalent dense-array
result, because bit-identity with the dense backend is the contract.
"""

import numpy as np
import pytest

from repro.ps.chunks import (
    DEFAULT_CHUNK_ROWS,
    ChunkedMatrix,
    ChunkedVector,
    MemoryBudget,
    MemoryBudgetExceeded,
    StorageConfig,
    _segments_by_chunk,
    flatnonzero_equal,
)


class TestMemoryBudget:
    def test_charge_accumulates_and_release_frees(self):
        budget = MemoryBudget(1000, label="test")
        budget.charge(600, "a")
        assert budget.used_bytes == 600
        assert budget.remaining_bytes == 400
        budget.release(200)
        assert budget.used_bytes == 400

    def test_over_budget_raises_before_allocation(self):
        budget = MemoryBudget(1000, label="node 3 state")
        budget.charge(900, "a")
        with pytest.raises(MemoryBudgetExceeded):
            budget.charge(200, "chunk 7 of replica values")
        # The failed charge must not be recorded.
        assert budget.used_bytes == 900

    def test_error_message_is_actionable(self):
        budget = MemoryBudget(1024, label="parameter store (10^8 keys)")
        with pytest.raises(MemoryBudgetExceeded) as excinfo:
            budget.charge(4096, "chunk 0 of store.values")
        message = str(excinfo.value)
        assert "parameter store (10^8 keys)" in message
        assert "chunk 0 of store.values" in message
        assert "Raise the budget" in message
        assert "chunk_rows" in message

    def test_non_positive_budget_rejected(self):
        with pytest.raises(ValueError):
            MemoryBudget(0)
        with pytest.raises(ValueError):
            MemoryBudget(-5)


class TestStorageConfig:
    def test_defaults_are_dense(self):
        config = StorageConfig()
        assert config.backend == "dense"
        assert config.chunk_rows == DEFAULT_CHUNK_ROWS

    def test_invalid_backend_rejected(self):
        with pytest.raises(ValueError):
            StorageConfig(backend="mmap")

    def test_invalid_chunk_rows_rejected(self):
        with pytest.raises(ValueError):
            StorageConfig(chunk_rows=0)

    def test_invalid_budgets_rejected(self):
        with pytest.raises(ValueError):
            StorageConfig(store_budget_bytes=0)
        with pytest.raises(ValueError):
            StorageConfig(node_budget_bytes=-1)


class TestSegmentsByChunk:
    def test_preserves_batch_order_within_chunk(self):
        keys = np.array([9, 2, 9, 1, 2, 17], dtype=np.int64)
        segments = dict(_segments_by_chunk(keys, 8))
        # Chunk 0 holds keys 2, 1, 2 at batch positions 1, 3, 4; chunk 1
        # holds 9, 9 at 0, 2; chunk 2 holds 17 at 5. Positions must stay in
        # batch order so duplicate accumulation matches np.add.at.
        assert segments[0].tolist() == [1, 3, 4]
        assert segments[1].tolist() == [0, 2]
        assert segments[2].tolist() == [5]

    def test_covers_every_position_exactly_once(self):
        rng = np.random.default_rng(0)
        keys = rng.integers(0, 100, size=257, dtype=np.int64)
        seen = np.concatenate(
            [p for _, p in _segments_by_chunk(keys, 16)]
        )
        assert sorted(seen.tolist()) == list(range(len(keys)))


class TestChunkedVector:
    def test_reads_of_untouched_rows_return_fill(self):
        vec = ChunkedVector(100, np.int64, fill_value=-1, chunk_rows=16)
        assert vec[5] == -1
        assert vec.take(np.array([0, 50, 99])).tolist() == [-1, -1, -1]
        assert vec.nbytes == 0
        assert vec.materialized_chunks == 0

    def test_write_materializes_only_touched_chunks(self):
        vec = ChunkedVector(100, np.int64, fill_value=0, chunk_rows=16)
        vec[np.array([3, 80])] = np.array([7, 9])
        assert vec.materialized_chunks == 2
        assert vec[3] == 7 and vec[80] == 9
        assert vec[4] == 0  # same chunk, untouched row keeps the fill

    def test_matches_dense_reference_on_random_ops(self):
        rng = np.random.default_rng(1)
        dense = np.zeros(200, dtype=np.float64)
        vec = ChunkedVector(200, np.float64, fill_value=0.0, chunk_rows=32)
        for _ in range(20):
            keys = rng.integers(0, 200, size=rng.integers(1, 30))
            values = rng.normal(size=len(keys))
            dense[keys] = values
            vec[keys] = values
        np.testing.assert_array_equal(vec.take(np.arange(200)), dense)

    def test_add_at_bit_identical_with_duplicates(self):
        rng = np.random.default_rng(2)
        dense = np.zeros(100, dtype=np.float32)
        vec = ChunkedVector(100, np.float32, fill_value=0.0, chunk_rows=16)
        keys = rng.integers(0, 100, size=500, dtype=np.int64)
        deltas = rng.normal(size=500).astype(np.float32)
        np.add.at(dense, keys, deltas)
        vec.add_at(keys, deltas)
        np.testing.assert_array_equal(vec.take(np.arange(100)), dense)

    def test_fill_fn_computed_default(self):
        vec = ChunkedVector(
            100, np.int64,
            fill_fn=lambda lo, hi: np.arange(lo, hi) // 25,
            chunk_rows=16,
        )
        assert vec[0] == 0 and vec[99] == 3
        assert vec.take(np.array([10, 30, 60, 90])).tolist() == [0, 1, 2, 3]
        assert vec.materialized_chunks == 0  # reads never materialize
        vec[30] = 7  # overrides the computed default in chunk 1 only
        assert vec[30] == 7
        assert vec[31] == 1  # same chunk, other rows keep the computed fill

    def test_where_equal_matches_flatnonzero(self):
        dense = np.zeros(100, dtype=np.int64)
        vec = ChunkedVector(100, np.int64, fill_value=0, chunk_rows=16)
        keys = np.array([5, 17, 64, 65])
        dense[keys] = 3
        vec[keys] = 3
        np.testing.assert_array_equal(
            vec.where_equal(3), np.flatnonzero(dense == 3)
        )
        # Fill rows count too (every untouched row equals 0).
        np.testing.assert_array_equal(
            vec.where_equal(0), np.flatnonzero(dense == 0)
        )

    def test_where_equal_with_fill_fn(self):
        vec = ChunkedVector(
            64, np.int64,
            fill_fn=lambda lo, hi: np.arange(lo, hi) % 4,
            chunk_rows=16,
        )
        vec[2] = 99  # chunk 0 materialized, row 2 no longer equals 2
        expected = [k for k in range(64) if k % 4 == 2 and k != 2]
        assert vec.where_equal(2).tolist() == expected

    def test_any_and_count_nonzero(self):
        vec = ChunkedVector(100, np.bool_, fill_value=False, chunk_rows=16)
        assert not vec.any()
        assert vec.count_nonzero() == 0
        vec[42] = True
        assert vec.any()
        assert vec.count_nonzero() == 1

    def test_slice_read(self):
        vec = ChunkedVector(50, np.int64, fill_value=0, chunk_rows=16)
        vec[20] = 5
        block = vec[18:23]
        assert block.tolist() == [0, 0, 5, 0, 0]

    def test_copy_is_independent(self):
        vec = ChunkedVector(50, np.int64, fill_value=0, chunk_rows=16)
        vec[10] = 1
        clone = vec.copy()
        clone[10] = 2
        assert vec[10] == 1 and clone[10] == 2

    def test_densify_binds_chunks_as_views(self):
        vec = ChunkedVector(50, np.int64, fill_value=7, chunk_rows=16)
        vec[3] = 1
        dense = vec.densify()
        assert dense[4] == 7 and dense[3] == 1
        dense[20] = 99  # direct write must be visible through chunked reads
        assert vec[20] == 99
        vec[21] = 4  # chunked write must be visible through the dense array
        assert dense[21] == 4
        assert vec.densify() is dense  # idempotent

    def test_budget_enforced_on_materialization(self):
        budget = MemoryBudget(200, label="test vector")
        vec = ChunkedVector(1000, np.int64, fill_value=0, chunk_rows=16,
                            budget=budget)
        vec[0] = 1  # one 16-row int64 chunk = 128 bytes
        assert budget.used_bytes == 128
        with pytest.raises(MemoryBudgetExceeded):
            vec[500] = 1  # second chunk would exceed 200 bytes


class TestChunkedMatrix:
    def test_reads_of_untouched_rows_are_zero(self):
        mat = ChunkedMatrix(100, 4, chunk_rows=16)
        np.testing.assert_array_equal(mat[7], np.zeros(4, dtype=np.float32))
        assert mat.nbytes == 0

    def test_row_view_semantics_on_materialized_chunk(self):
        mat = ChunkedMatrix(100, 4, chunk_rows=16)
        mat[3] = np.ones(4)
        row = mat[3]
        row += 1.0  # in-place on the view mutates the chunk, like ndarray
        np.testing.assert_array_equal(mat[3], np.full(4, 2.0, np.float32))

    def test_matches_dense_reference_on_random_ops(self):
        rng = np.random.default_rng(3)
        dense = np.zeros((128, 8), dtype=np.float32)
        mat = ChunkedMatrix(128, 8, chunk_rows=16)
        for _ in range(15):
            keys = rng.integers(0, 128, size=rng.integers(1, 40))
            deltas = rng.normal(size=(len(keys), 8)).astype(np.float32)
            np.add.at(dense, keys, deltas)
            mat.add_at(keys, deltas)
        np.testing.assert_array_equal(mat.take(np.arange(128)), dense)

    def test_add_at_bit_identical_with_duplicates(self):
        rng = np.random.default_rng(4)
        dense = np.zeros((64, 4), dtype=np.float32)
        mat = ChunkedMatrix(64, 4, chunk_rows=16)
        # Heavy duplication: the per-chunk np.add.at must accumulate each
        # row's duplicates in batch order, bit-identical to the dense fold.
        keys = rng.integers(0, 8, size=300, dtype=np.int64)
        deltas = rng.normal(size=(300, 4)).astype(np.float32)
        np.add.at(dense, keys, deltas)
        mat.add_at(keys, deltas)
        np.testing.assert_array_equal(mat.take(np.arange(64)), dense)

    def test_fancy_iadd_protocol_matches_dense(self):
        # `matrix[keys] += deltas` with distinct keys goes through
        # __getitem__ / += / __setitem__; must equal the dense result.
        dense = np.zeros((64, 4), dtype=np.float32)
        mat = ChunkedMatrix(64, 4, chunk_rows=16)
        keys = np.array([1, 20, 40], dtype=np.int64)
        deltas = np.full((3, 4), 0.5, dtype=np.float32)
        dense[keys] += deltas
        mat[keys] += deltas
        np.testing.assert_array_equal(mat.take(np.arange(64)), dense)

    def test_from_dense_shares_memory(self):
        dense = np.arange(32, dtype=np.float32).reshape(8, 4)
        mat = ChunkedMatrix.from_dense(dense, chunk_rows=4)
        assert mat.materialized_chunks == 2
        mat[0] = np.zeros(4)
        assert dense[0].sum() == 0  # chunk writes hit the wrapped array

    def test_from_dense_charges_budget(self):
        budget = MemoryBudget(64, label="tiny")
        dense = np.zeros((8, 4), dtype=np.float32)  # 128 bytes
        with pytest.raises(MemoryBudgetExceeded):
            ChunkedMatrix.from_dense(dense, chunk_rows=4, budget=budget)

    def test_densify_roundtrip(self):
        mat = ChunkedMatrix(40, 4, chunk_rows=16)
        mat[25] = np.ones(4)
        dense = mat.densify()
        assert dense.shape == (40, 4)
        assert dense[25].sum() == 4
        dense[3] = 2.0
        np.testing.assert_array_equal(mat[3], np.full(4, 2.0, np.float32))

    def test_take_requires_axis_zero(self):
        with pytest.raises(ValueError):
            ChunkedMatrix(10, 2).take(np.array([0]), axis=1)


class TestFlatnonzeroEqual:
    def test_dense_and_chunked_agree(self):
        dense = np.full(50, 2, dtype=np.int64)
        dense[[7, 30]] = 5
        vec = ChunkedVector(50, np.int64, fill_value=2, chunk_rows=16)
        vec[np.array([7, 30])] = 5
        np.testing.assert_array_equal(
            flatnonzero_equal(dense, 5), flatnonzero_equal(vec, 5)
        )
        np.testing.assert_array_equal(
            flatnonzero_equal(dense, 2), flatnonzero_equal(vec, 2)
        )
