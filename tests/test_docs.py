"""Documentation audit: public modules and core APIs carry real docstrings.

The repository's convention (see DESIGN.md) is that every public module in
``src/repro/`` opens with a module docstring that situates it in the paper
— which section/figure it implements, or which engineering concern it
serves — and that the two central interfaces (``TrainingTask``,
``ParameterServer``) document every public method. This test keeps the
convention machine-enforced so new modules cannot silently drop it.
"""

import ast
import inspect
from pathlib import Path

import pytest

from repro.ml.task import TrainingTask
from repro.ps.base import ParameterServer

SRC_ROOT = Path(__file__).resolve().parents[1] / "src" / "repro"

#: A docstring shorter than this is a placeholder, not documentation.
MIN_MODULE_DOCSTRING = 40

PUBLIC_MODULES = sorted(
    path for path in SRC_ROOT.rglob("*.py")
    if not any(part.startswith("_") and part not in ("__init__.py", "__main__.py")
               for part in path.relative_to(SRC_ROOT).parts)
)


@pytest.mark.parametrize(
    "path", PUBLIC_MODULES,
    ids=[str(p.relative_to(SRC_ROOT)) for p in PUBLIC_MODULES])
def test_public_module_has_a_real_docstring(path):
    docstring = ast.get_docstring(ast.parse(path.read_text()))
    assert docstring, f"{path} has no module docstring"
    assert len(docstring) >= MIN_MODULE_DOCSTRING, (
        f"{path} has a placeholder docstring ({len(docstring)} chars); "
        "say what paper section/figure or engineering concern it implements"
    )


def public_methods(cls):
    for name, member in sorted(vars(cls).items()):
        if name.startswith("_"):
            continue
        if isinstance(member, property):
            yield name, member.fget
        elif inspect.isfunction(member):
            yield name, member


@pytest.mark.parametrize("cls", [TrainingTask, ParameterServer],
                         ids=lambda cls: cls.__name__)
def test_core_interface_methods_are_documented(cls):
    missing = [name for name, func in public_methods(cls)
               if not inspect.getdoc(func)]
    assert not missing, (
        f"{cls.__name__} public methods without docstrings: {missing}"
    )


def test_interfaces_themselves_are_documented():
    for cls in (TrainingTask, ParameterServer):
        assert inspect.getdoc(cls)
