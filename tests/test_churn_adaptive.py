"""Composition tests: worker churn x adaptive management (x faults).

The scenario engine, the adaptive controller, and the fault subsystem each
hook the same runner; these tests pin down that composing them keeps every
structural invariant (completion, ownership, metric accounting, monotone
simulated time) and stays exactly deterministic.
"""

from __future__ import annotations

import numpy as np

from repro.adaptive import AdaptiveConfig
from repro.core.management import ManagementPlan
from repro.faults.perturbations import ServerCrashes
from repro.runner.config import ExperimentConfig
from repro.runner.experiment import run_experiment
from repro.runner.systems import make_ps_factory
from repro.runner.workloads import make_task
from repro.scenarios import Scenario, WorkerChurn
from repro.simulation.cluster import ClusterConfig


def _config(scenario=None, adaptive=None, epochs=3, seed=5):
    return ExperimentConfig(
        cluster=ClusterConfig(num_nodes=2, workers_per_node=2),
        epochs=epochs, chunk_size=8, seed=seed,
        scenario=scenario, adaptive=adaptive,
    )


def _adaptive_config(**overrides):
    defaults = dict(policy="top-k", top_k=8, period=1e-4, half_life=1e-3,
                    warmup_observations=100, capacity=64)
    defaults.update(overrides)
    return AdaptiveConfig(**defaults)


def _churn_scenario():
    return Scenario("churn", [WorkerChurn(fraction=0.4, pause_at_round=1)])


def _run(scenario=None, adaptive=None, epochs=3, seed=5, capture=None):
    task = make_task("matrix_factorization", scale="test")
    plan = ManagementPlan.top_k_by_count(task.access_counts(), 8)
    base_factory = make_ps_factory("nups", plan=plan)
    if capture is None:
        factory = base_factory
    else:
        def factory(store, cluster, task):
            ps = base_factory(store, cluster, task)
            capture["ps"], capture["cluster"] = ps, cluster
            return ps
    return run_experiment(
        task, factory, _config(scenario, adaptive, epochs, seed)
    )


def _assert_identical(first, second):
    assert first.initial_quality == second.initial_quality
    assert first.epochs_completed == second.epochs_completed
    for rec_a, rec_b in zip(first.records, second.records):
        assert rec_a.sim_time == rec_b.sim_time
        assert rec_a.epoch_duration == rec_b.epoch_duration
        assert rec_a.quality == rec_b.quality
        assert rec_a.metrics == rec_b.metrics
    assert first.metrics == second.metrics


def _assert_invariants(result, capture):
    assert result.epochs_completed == len(result.records)
    times = [rec.sim_time for rec in result.records]
    assert times == sorted(times)
    assert all(rec.epoch_duration >= 0 for rec in result.records)
    ps, cluster = capture["ps"], capture["cluster"]
    owned = [np.asarray(ps.keys_owned_by(node_id), dtype=np.int64)
             for node_id in cluster.active_nodes]
    np.testing.assert_array_equal(np.sort(np.concatenate(owned)),
                                  np.arange(ps.store.num_keys))
    metrics = cluster.metrics
    per_kind = sum(
        value for name, value in metrics.counters().items()
        if name.startswith("access.") and name != "access.total"
    )
    assert metrics.get("access.total") == per_kind


class TestChurnAdaptiveComposition:
    def test_both_subsystems_fire_and_invariants_hold(self):
        capture = {}
        result = _run(scenario=_churn_scenario(),
                      adaptive=_adaptive_config(), capture=capture)
        assert result.metrics.get("adaptive.adaptations", 0) >= 1
        assert result.metrics["scenario.worker_pauses"] > 0
        assert result.metrics["scenario.worker_resumes"] > 0
        _assert_invariants(result, capture)

    def test_composition_is_deterministic(self):
        first = _run(scenario=_churn_scenario(), adaptive=_adaptive_config())
        second = _run(scenario=_churn_scenario(), adaptive=_adaptive_config())
        _assert_identical(first, second)

    def test_churn_does_not_break_adaptive_accounting(self):
        # The adaptive controller observes accesses from paused-and-resumed
        # workers too; its observation count matches a churn-free run's
        # order of magnitude (no starvation, no double counting).
        churned = _run(scenario=_churn_scenario(),
                       adaptive=_adaptive_config())
        steady = _run(scenario=None, adaptive=_adaptive_config())
        assert churned.metrics.get("adaptive.adaptations", 0) >= 1
        assert steady.metrics.get("adaptive.adaptations", 0) >= 1
        churn_obs = churned.metrics.get("adaptive.observations", 0)
        steady_obs = steady.metrics.get("adaptive.observations", 0)
        if churn_obs and steady_obs:
            assert 0.5 <= churn_obs / steady_obs <= 2.0

    def test_churn_adaptive_and_crashes_compose(self):
        capture = {}
        scenario = Scenario("storm+", [
            WorkerChurn(fraction=0.4, pause_at_round=1),
            ServerCrashes(crashes_per_epoch=1, down_rounds=2),
        ])
        result = _run(scenario=scenario, adaptive=_adaptive_config(),
                      capture=capture)
        assert result.epochs_completed == 3
        assert result.metrics["faults.crashes"] >= 1
        assert result.metrics["faults.restores"] >= 1
        assert result.metrics.get("adaptive.adaptations", 0) >= 1
        _assert_invariants(result, capture)

    def test_triple_composition_is_deterministic(self):
        def build():
            return Scenario("storm+", [
                WorkerChurn(fraction=0.4, pause_at_round=1),
                ServerCrashes(crashes_per_epoch=1, down_rounds=2),
            ])

        first = _run(scenario=build(), adaptive=_adaptive_config())
        second = _run(scenario=build(), adaptive=_adaptive_config())
        _assert_identical(first, second)
