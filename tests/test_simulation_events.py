"""Tests for periodic background-event scheduling."""

import pytest

from repro.simulation.events import PeriodicSchedule


class TestPeriodicSchedule:
    def test_rejects_non_positive_interval(self):
        with pytest.raises(ValueError):
            PeriodicSchedule(0.0)
        with pytest.raises(ValueError):
            PeriodicSchedule(-1.0)

    def test_disabled_schedule_never_fires(self):
        schedule = PeriodicSchedule.disabled()
        assert not schedule.enabled
        assert schedule.due_count(1e9) == 0

    def test_not_due_before_first_interval(self):
        schedule = PeriodicSchedule(1.0)
        assert schedule.due_count(0.5) == 0

    def test_due_after_interval(self):
        schedule = PeriodicSchedule(1.0)
        assert schedule.due_count(1.0) == 1

    def test_multiple_periods_due(self):
        schedule = PeriodicSchedule(1.0)
        assert schedule.due_count(3.5) == 3

    def test_fire_advances_next_due(self):
        schedule = PeriodicSchedule(1.0)
        schedule.fire(1.0, duration=0.1)
        assert schedule.fired == 1
        assert schedule.due_count(1.5) == 0
        assert schedule.due_count(2.0) == 1

    def test_fire_rejects_negative_duration(self):
        schedule = PeriodicSchedule(1.0)
        with pytest.raises(ValueError):
            schedule.fire(1.0, duration=-0.1)

    def test_slow_task_reduces_achieved_frequency(self):
        """If one execution takes longer than the interval, the schedule falls
        behind instead of firing a burst of make-up executions."""
        schedule = PeriodicSchedule(1.0)
        now = 0.0
        for _ in range(10):
            now += 1.0
            while schedule.due_count(now) > 0:
                schedule.fire(now, duration=2.5)
        # In 10 seconds with 2.5-second executions at most 4 can run.
        assert schedule.fired <= 4
        assert schedule.achieved_frequency(10.0) <= 0.4

    def test_fast_task_achieves_target_frequency(self):
        schedule = PeriodicSchedule(1.0)
        now = 0.0
        for _ in range(10):
            now += 1.0
            while schedule.due_count(now) > 0:
                schedule.fire(now, duration=0.01)
        assert schedule.fired == 10
        assert schedule.achieved_frequency(10.0) == pytest.approx(1.0)

    def test_achieved_frequency_with_zero_elapsed(self):
        assert PeriodicSchedule(1.0).achieved_frequency(0.0) == 0.0

    def test_busy_time_accumulates(self):
        schedule = PeriodicSchedule(1.0)
        schedule.fire(1.0, 0.5)
        schedule.fire(2.0, 0.25)
        assert schedule.total_busy_time == pytest.approx(0.75)
