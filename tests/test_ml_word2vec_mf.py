"""Tests for the word vectors and matrix factorization tasks."""

import numpy as np
import pytest

from repro.data.corpus import generate_corpus
from repro.data.matrix import generate_matrix
from repro.ml.matrix_factorization import MatrixFactorizationTask
from repro.ml.word2vec import WordVectorsTask
from repro.ps.local import SingleNodePS
from repro.simulation.cluster import Cluster, ClusterConfig


@pytest.fixture(scope="module")
def corpus():
    return generate_corpus(vocab_size=250, num_sentences=250, sentence_length=8,
                           num_topics=6, seed=3)


@pytest.fixture(scope="module")
def matrix():
    return generate_matrix(num_rows=150, num_cols=40, num_cells=4000, rank=4, seed=2)


def train_on_single_node(task, epochs, seed=0, workers=2, chunk=16):
    cluster = Cluster(ClusterConfig(num_nodes=1, workers_per_node=workers))
    store = task.create_store(seed=seed)
    ps = SingleNodePS(store, cluster)
    task.register_sampling(ps)
    shards = task.create_shards(1, workers, seed=seed)
    rng = np.random.default_rng(seed)
    initial = task.evaluate(store)
    for epoch in range(epochs):
        for worker_id, shard in enumerate(shards[0]):
            worker = cluster.worker(0, worker_id)
            for start in range(0, len(shard), chunk):
                task.process_chunk(ps, worker, shard[start: start + chunk], rng)
        task.on_epoch_end(epoch)
    return initial, task.evaluate(store), store


class TestWordVectorsLayout:
    def test_key_space_has_input_and_output_layers(self, corpus):
        task = WordVectorsTask(corpus, dim=4)
        assert task.num_keys() == 2 * corpus.vocab_size
        assert task.output_key(0) == corpus.vocab_size

    def test_store_init_input_random_output_zero(self, corpus):
        task = WordVectorsTask(corpus, dim=4)
        store = task.create_store(seed=0)
        assert np.abs(store.values[: corpus.vocab_size]).max() > 0
        assert np.all(store.values[corpus.vocab_size:] == 0)

    def test_data_points_are_tokens_with_context(self, corpus):
        task = WordVectorsTask(corpus, dim=4, window=2)
        assert 0 < task.num_data_points() <= corpus.num_tokens
        # Every data point has at least one context word within the window.
        assert all(len(c) >= 1 for c in task._contexts)
        assert all(len(c) <= 4 for c in task._contexts)

    def test_access_counts_output_layer_hotter(self, corpus):
        task = WordVectorsTask(corpus, dim=4, window=2)
        counts = task.access_counts()
        assert counts[corpus.vocab_size:].sum() > counts[: corpus.vocab_size].sum()

    def test_sampling_access_counts_only_output_layer(self, corpus):
        task = WordVectorsTask(corpus, dim=4)
        counts = task.sampling_access_counts()
        assert counts[: corpus.vocab_size].sum() == 0
        assert counts[corpus.vocab_size:].sum() > 0

    def test_shards_partition_data(self, corpus):
        task = WordVectorsTask(corpus, dim=4)
        shards = task.create_shards(2, 3, seed=0)
        total = sum(len(w) for node in shards for w in node)
        assert total == task.num_data_points()


class TestWordVectorsTraining:
    def test_similarity_accuracy_improves(self, corpus):
        task = WordVectorsTask(corpus, dim=8, window=2, num_negatives=2,
                               learning_rate=0.3)
        initial, final, _ = train_on_single_node(task, epochs=3)
        assert final["similarity_accuracy"] > initial["similarity_accuracy"]
        assert final["similarity_accuracy"] > 60.0

    def test_output_vectors_receive_updates(self, corpus):
        task = WordVectorsTask(corpus, dim=4, window=2, num_negatives=2)
        _, _, store = train_on_single_node(task, epochs=1)
        assert np.abs(store.values[corpus.vocab_size:]).max() > 0

    def test_requires_sampling_registration(self, corpus):
        task = WordVectorsTask(corpus, dim=4)
        cluster = Cluster(ClusterConfig(num_nodes=1, workers_per_node=1))
        ps = SingleNodePS(task.create_store(), cluster)
        with pytest.raises(RuntimeError):
            task.process_chunk(ps, cluster.worker(0, 0), np.array([0]),
                               np.random.default_rng(0))

    def test_evaluation_range(self, corpus):
        task = WordVectorsTask(corpus, dim=4)
        accuracy = task.evaluate(task.create_store())["similarity_accuracy"]
        assert 0.0 <= accuracy <= 100.0


class TestMatrixFactorizationLayout:
    def test_key_space(self, matrix):
        task = MatrixFactorizationTask(matrix)
        assert task.num_keys() == matrix.num_rows + matrix.num_cols
        assert task.column_key(0) == matrix.num_rows
        assert task.value_length() == matrix.rank

    def test_access_counts_match_frequencies(self, matrix):
        task = MatrixFactorizationTask(matrix)
        counts = task.access_counts()
        np.testing.assert_array_equal(counts[: matrix.num_rows], matrix.row_frequencies)
        np.testing.assert_array_equal(counts[matrix.num_rows:], matrix.col_frequencies)

    def test_no_sampling_access(self, matrix):
        task = MatrixFactorizationTask(matrix)
        assert task.sampling_access_counts().sum() == 0

    def test_shards_partition_rows_by_node(self, matrix):
        task = MatrixFactorizationTask(matrix)
        shards = task.create_shards(num_nodes=3, workers_per_node=2, seed=0)
        all_indices = np.concatenate([w for node in shards for w in node])
        assert sorted(all_indices.tolist()) == list(range(matrix.num_train))
        # All cells of a row live on exactly one node.
        row_to_node = {}
        for node_id, node in enumerate(shards):
            for shard in node:
                for index in shard:
                    row = int(matrix.train_cells[index, 0])
                    assert row_to_node.setdefault(row, node_id) == node_id

    def test_worker_shards_ordered_by_column(self, matrix):
        task = MatrixFactorizationTask(matrix)
        shards = task.create_shards(num_nodes=1, workers_per_node=2, seed=0)
        for shard in shards[0]:
            columns = matrix.train_cells[shard, 1]
            # Each column's cells appear contiguously (visit column by column).
            changes = np.count_nonzero(np.diff(columns) != 0)
            assert changes == len(np.unique(columns)) - 1


class TestMatrixFactorizationTraining:
    def test_rmse_decreases(self, matrix):
        task = MatrixFactorizationTask(matrix, learning_rate=0.5)
        initial, final, _ = train_on_single_node(task, epochs=5)
        assert final["test_rmse"] < initial["test_rmse"]

    def test_bold_driver_adapts_learning_rate(self, matrix):
        task = MatrixFactorizationTask(matrix, learning_rate=0.1)
        initial_rate = task.learning_rate
        train_on_single_node(task, epochs=3)
        assert task.learning_rate != initial_rate

    def test_bold_driver_can_be_disabled(self, matrix):
        task = MatrixFactorizationTask(matrix, learning_rate=0.1, use_bold_driver=False)
        train_on_single_node(task, epochs=2)
        assert task.learning_rate == 0.1

    def test_epoch_loss_resets_between_epochs(self, matrix):
        task = MatrixFactorizationTask(matrix)
        train_on_single_node(task, epochs=1)
        assert task._epoch_points == 0

    def test_evaluation_is_finite(self, matrix):
        task = MatrixFactorizationTask(matrix)
        rmse = task.evaluate(task.create_store())["test_rmse"]
        assert np.isfinite(rmse) and rmse > 0
