"""Tests for the multi-technique management plan."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.management import (
    DEFAULT_HOT_SPOT_FACTOR,
    ManagementPlan,
    ManagementTechnique,
)


class TestConstruction:
    def test_rejects_empty_key_space(self):
        with pytest.raises(ValueError):
            ManagementPlan(0, [])

    def test_rejects_out_of_range_keys(self):
        with pytest.raises(KeyError):
            ManagementPlan(10, [10])
        with pytest.raises(KeyError):
            ManagementPlan(10, [-1])

    def test_duplicate_keys_are_deduplicated(self):
        plan = ManagementPlan(10, [1, 1, 2])
        assert plan.num_replicated == 2

    def test_relocate_all(self):
        plan = ManagementPlan.relocate_all(10)
        assert plan.num_replicated == 0
        assert plan.num_relocated == 10

    def test_replicate_all(self):
        plan = ManagementPlan.replicate_all(10)
        assert plan.num_replicated == 10
        assert plan.replicated_share == 1.0


class TestTechniqueQueries:
    def test_technique_per_key(self):
        plan = ManagementPlan(10, [0, 5])
        assert plan.technique(0) is ManagementTechnique.REPLICATE
        assert plan.technique(5) is ManagementTechnique.REPLICATE
        assert plan.technique(1) is ManagementTechnique.RELOCATE

    def test_is_replicated_bounds_checked(self):
        plan = ManagementPlan(10, [0])
        with pytest.raises(KeyError):
            plan.is_replicated(10)
        with pytest.raises(KeyError):
            plan.technique(-1)

    def test_replicated_mask_subset(self):
        plan = ManagementPlan(10, [2, 4])
        mask = plan.replicated_mask(np.array([1, 2, 3, 4]))
        assert mask.tolist() == [False, True, False, True]

    def test_replicated_mask_full(self):
        plan = ManagementPlan(4, [1])
        assert plan.replicated_mask().tolist() == [False, True, False, False]

    def test_replicated_value_bytes(self):
        plan = ManagementPlan(10, [0, 1, 2])
        assert plan.replicated_value_bytes(value_length=8) == 3 * 8 * 4


class TestHotSpotHeuristic:
    def test_replicates_keys_above_factor_times_mean(self):
        counts = np.ones(100)
        counts[7] = 300.0   # mean is ~61, 10x mean is ~610 -> not replicated
        counts[3] = 5000.0  # clearly above the threshold
        plan = ManagementPlan.from_access_counts(counts, hot_spot_factor=10.0)
        assert plan.is_replicated(3)
        assert not plan.is_replicated(7)
        assert not plan.is_replicated(0)

    def test_no_hot_spots_means_no_replication(self):
        plan = ManagementPlan.from_access_counts(np.ones(50))
        assert plan.num_replicated == 0

    def test_default_factor_is_100(self):
        assert DEFAULT_HOT_SPOT_FACTOR == 100.0

    def test_rejects_invalid_inputs(self):
        with pytest.raises(ValueError):
            ManagementPlan.from_access_counts(np.ones((2, 2)))
        with pytest.raises(ValueError):
            ManagementPlan.from_access_counts(-np.ones(5))
        with pytest.raises(ValueError):
            ManagementPlan.from_access_counts(np.ones(5), hot_spot_factor=0)

    def test_zipf_counts_replicate_only_the_head(self):
        ranks = np.arange(1, 1001, dtype=np.float64)
        counts = 100000.0 / ranks ** 1.5
        plan = ManagementPlan.from_access_counts(counts)
        assert 0 < plan.num_replicated < 50
        # The replicated keys must be the most frequent ones.
        top = set(np.argsort(counts)[::-1][: plan.num_replicated].tolist())
        assert set(plan.replicated_keys.tolist()) == top


class TestTopK:
    def test_top_k_selects_most_frequent(self):
        counts = np.array([5.0, 1.0, 9.0, 3.0])
        plan = ManagementPlan.top_k_by_count(counts, 2)
        assert set(plan.replicated_keys.tolist()) == {0, 2}

    def test_top_k_zero_relocates_all(self):
        plan = ManagementPlan.top_k_by_count(np.arange(5, dtype=float), 0)
        assert plan.num_replicated == 0

    def test_top_k_clipped_to_key_count(self):
        plan = ManagementPlan.top_k_by_count(np.arange(5, dtype=float), 99)
        assert plan.num_replicated == 5

    def test_top_k_rejects_negative(self):
        with pytest.raises(ValueError):
            ManagementPlan.top_k_by_count(np.arange(5, dtype=float), -1)


@settings(deadline=None, max_examples=50)
@given(
    num_keys=st.integers(min_value=1, max_value=200),
    data=st.data(),
)
def test_partition_into_techniques_is_total(num_keys, data):
    """Every key is managed by exactly one technique and the counts add up."""
    replicated = data.draw(
        st.lists(st.integers(min_value=0, max_value=num_keys - 1), max_size=num_keys)
    )
    plan = ManagementPlan(num_keys, replicated)
    assert plan.num_replicated + plan.num_relocated == num_keys
    mask = plan.replicated_mask()
    assert mask.sum() == plan.num_replicated
    for key in range(0, num_keys, max(1, num_keys // 20)):
        expected = ManagementTechnique.REPLICATE if mask[key] else ManagementTechnique.RELOCATE
        assert plan.technique(key) is expected


@settings(deadline=None, max_examples=50)
@given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=300),
       st.floats(min_value=1.0, max_value=500.0))
def test_heuristic_threshold_property(counts, factor):
    """A key is replicated iff its count strictly exceeds factor * mean."""
    counts = np.asarray(counts)
    plan = ManagementPlan.from_access_counts(counts, hot_spot_factor=factor)
    threshold = factor * counts.mean()
    expected = set(np.flatnonzero(counts > threshold).tolist())
    assert set(plan.replicated_keys.tolist()) == expected
