"""Edge-case coverage for ``run_experiment`` and the cached workloads.

Covers the corners the main runner tests skip: ``evaluate_every`` larger than
the epoch count, a ``time_budget`` that expires mid-run, workers whose shard
is empty, and the read-only guarantee of the ``lru_cache``'d benchmark
datasets.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml.task import TrainingTask
from repro.ps.storage import ParameterStore
from repro.runner.config import ExperimentConfig
from repro.runner.experiment import run_experiment
from repro.runner.systems import make_ps_factory
from repro.runner.workloads import (
    _cached_corpus,
    _cached_knowledge_graph,
    _cached_matrix,
    kge_task,
    matrix_factorization_task,
    word_vectors_task,
)
from repro.simulation.cluster import ClusterConfig


class TinyTask(TrainingTask):
    """A minimal deterministic task with a configurable number of points."""

    name = "tiny"
    quality_metric = "progress"

    def __init__(self, num_points: int, num_keys: int = 12) -> None:
        self._num_points = num_points
        self._keys = num_keys
        self.processed_chunks = []

    def num_keys(self):
        return self._keys

    def value_length(self):
        return 2

    def create_store(self, seed=0):
        return ParameterStore(self._keys, 2)

    def access_counts(self):
        return np.ones(self._keys)

    def num_data_points(self):
        return self._num_points

    def create_shards(self, num_nodes, workers_per_node, seed=0):
        # Deliberately unbalanced: all data goes to worker (0, 0); every
        # other worker receives an empty shard.
        empty = np.empty(0, dtype=np.int64)
        shards = [[empty for _ in range(workers_per_node)]
                  for _ in range(num_nodes)]
        shards[0][0] = np.arange(self._num_points)
        return shards

    def process_chunk(self, ps, worker, data_indices, rng):
        keys = np.asarray(data_indices, dtype=np.int64) % self._keys
        ps.push(worker, keys, np.ones((len(keys), 2), dtype=np.float32))
        worker.charge_compute(len(data_indices) * ps.network.compute_per_step)
        self.processed_chunks.append(
            (worker.global_worker_id, len(data_indices))
        )
        return len(data_indices)

    def evaluate(self, store):
        return {"progress": float(store.values.sum())}


def _config(**kwargs):
    kwargs.setdefault(
        "cluster", ClusterConfig(num_nodes=2, workers_per_node=2)
    )
    kwargs.setdefault("chunk_size", 4)
    return ExperimentConfig(**kwargs)


class TestRunExperimentEdgeCases:
    def test_evaluate_every_larger_than_epochs(self):
        task = TinyTask(num_points=16)
        result = run_experiment(
            task, make_ps_factory("classic"),
            _config(epochs=2, evaluate_every=10),
        )
        # Intermediate epochs reuse the previous quality; the final epoch is
        # always evaluated even though evaluate_every was never reached.
        assert result.epochs_completed == 2
        assert result.records[0].quality == result.initial_quality
        assert result.records[1].quality["progress"] == pytest.approx(
            2 * 16 * 2  # two epochs x 16 pushes x value_length ones
        )

    def test_time_budget_hit_mid_run(self):
        task = TinyTask(num_points=64)
        generous = run_experiment(
            task, make_ps_factory("classic"), _config(epochs=6)
        )
        per_epoch = generous.records[0].epoch_duration
        budget = 2.5 * per_epoch
        result = run_experiment(
            TinyTask(num_points=64), make_ps_factory("classic"),
            _config(epochs=6, time_budget=budget),
        )
        assert 0 < result.epochs_completed < 6
        assert result.total_time >= budget
        # All epochs before the stopping one finished under the budget.
        for record in result.records[:-1]:
            assert record.sim_time < budget

    def test_empty_worker_shards_are_skipped(self):
        task = TinyTask(num_points=10)
        result = run_experiment(
            task, make_ps_factory("classic"), _config(epochs=1)
        )
        assert result.epochs_completed == 1
        # Only worker (0, 0) processed data; every point exactly once.
        assert {key for key, _ in task.processed_chunks} == {(0, 0)}
        assert sum(count for _, count in task.processed_chunks) == 10

    def test_all_shards_empty_still_completes(self):
        task = TinyTask(num_points=0)
        result = run_experiment(
            task, make_ps_factory("classic"), _config(epochs=2)
        )
        assert result.epochs_completed == 2
        assert task.processed_chunks == []

    def test_single_data_point_many_workers(self):
        task = TinyTask(num_points=1)
        result = run_experiment(
            task, make_ps_factory("lapse"), _config(epochs=1)
        )
        assert result.epochs_completed == 1
        assert sum(count for _, count in task.processed_chunks) == 1


class TestCachedDatasetsReadOnly:
    """The lru_cache'd benchmark datasets must be immutable."""

    def test_cached_knowledge_graph_is_frozen(self):
        graph = _cached_knowledge_graph(200, 4, 300, 1.1, 123)
        with pytest.raises(ValueError, match="read-only"):
            graph.train_triples[0, 0] = 99
        with pytest.raises(ValueError, match="read-only"):
            graph.entity_frequencies[0] = 1.0

    def test_cached_corpus_is_frozen(self):
        corpus = _cached_corpus(50, 20, 6, 2, 123)
        frozen_arrays = [
            value for value in vars(corpus).values()
            if isinstance(value, np.ndarray)
        ]
        assert frozen_arrays, "corpus should expose array attributes"
        for array in frozen_arrays:
            assert not array.flags.writeable
        # Sentence lists are frozen element-wise.
        if isinstance(corpus.sentences, (list, tuple)):
            for sentence in corpus.sentences:
                if isinstance(sentence, np.ndarray):
                    assert not sentence.flags.writeable

    def test_cached_matrix_is_frozen(self):
        matrix = _cached_matrix(40, 10, 200, 4, 1.4, 123)
        with pytest.raises(ValueError, match="read-only"):
            matrix.train_values[0] = 0.0

    def test_fresh_test_scale_datasets_stay_writable(self):
        # Only the *shared, cached* datasets are frozen; per-call generators
        # keep returning private writable arrays.
        task = kge_task(scale="test", seed=99)
        task.graph.train_triples[0, 0] = task.graph.train_triples[0, 0]

    def test_bench_tasks_train_on_frozen_datasets(self):
        # Guard: the training and evaluation hot paths must not rely on
        # mutating the (frozen) cached datasets.
        from repro.simulation.cluster import Cluster

        for factory in (kge_task, word_vectors_task, matrix_factorization_task):
            task = factory(scale="bench")
            cluster = Cluster(ClusterConfig(num_nodes=2, workers_per_node=2))
            store = task.create_store(seed=0)
            ps = make_ps_factory("classic")(store, cluster, task)
            task.register_sampling(ps)
            worker = cluster.worker(0, 0)
            rng = np.random.default_rng(0)
            chunk = np.arange(min(16, task.num_data_points()), dtype=np.int64)
            task.prefetch(ps, worker, chunk)
            assert task.process_chunk(ps, worker, chunk, rng) == len(chunk)
            quality = task.evaluate(store)
            assert task.quality_metric in quality
