"""Round-fused execution engine: equivalence, planning, and satellites.

The engine's contract is exact: ``run_round`` must be bit-identical to the
sequential per-worker call chain on every architecture (clocks — per worker,
background, and server — metrics, stored values, and returned pull values),
and ``ExperimentConfig.round_fusion`` must not change a single bit of an
:class:`~repro.runner.experiment.ExperimentResult` for any task, system, or
scenario. This suite drives both paths on identical workloads and asserts
exact equality, plus unit coverage for the conflict-group planner and the
satellite fixes (worker-queue peek caching, dirty-set epoch metrics).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.management import ManagementPlan
from repro.core.nups import NuPS
from repro.parallel import ParallelConfig
from repro.ps.classic import ClassicPS
from repro.ps.local import SingleNodePS
from repro.ps.relocation import RelocationPS
from repro.ps.replication import ReplicationProtocol, ReplicationPS
from repro.ps.rounds import WorkerRound, duplicate_key_positions
from repro.ps.storage import ParameterStore
from repro.runner.config import ExperimentConfig
from repro.runner.experiment import _WorkerQueue, run_experiment
from repro.runner.systems import make_ps_factory
from repro.runner.workloads import make_task
from repro.scenarios import make_scenario
from repro.scenarios.base import Perturbation, Scenario
from repro.simulation.cluster import Cluster, ClusterConfig
from repro.simulation.metrics import MetricsRegistry

NUM_KEYS = 120
VALUE_LENGTH = 4


# --------------------------------------------------------------------- planner
class TestPlanner:
    def test_duplicate_key_positions(self):
        keys = np.array([5, 1, 5, 2, 1, 9], dtype=np.int64)
        assert list(duplicate_key_positions(keys)) == [
            True, True, True, False, True, False,
        ]
        assert not duplicate_key_positions(np.array([3], dtype=np.int64)).any()

    def test_duplicate_key_positions_empty_and_all_duplicates(self):
        empty = np.empty(0, dtype=np.int64)
        assert len(duplicate_key_positions(empty)) == 0
        same = np.full(5, 7, dtype=np.int64)
        assert duplicate_key_positions(same).all()


# ------------------------------------------------------------ PS-level fusion
def _cluster(num_nodes=3, workers_per_node=2) -> Cluster:
    return Cluster(ClusterConfig(num_nodes=num_nodes,
                                 workers_per_node=workers_per_node))


def _ps_builders():
    def classic(store, cluster):
        return ClassicPS(store, cluster, seed=0)

    def relocation(store, cluster):
        return RelocationPS(store, cluster, seed=0)

    def relocation_disabled(store, cluster):
        return RelocationPS(store, cluster, relocation_enabled=False, seed=0)

    def relocation_oracle(store, cluster):
        return RelocationPS(store, cluster, seed=0, batch_charging=False)

    def ssp(store, cluster):
        return ReplicationPS(store, cluster,
                             protocol=ReplicationProtocol.SSP, staleness=1,
                             seed=0)

    def essp(store, cluster):
        return ReplicationPS(store, cluster,
                             protocol=ReplicationProtocol.ESSP, staleness=1,
                             seed=0)

    def ssp_oracle(store, cluster):
        return ReplicationPS(store, cluster,
                             protocol=ReplicationProtocol.SSP, staleness=1,
                             seed=0, batch_charging=False)

    def nups(store, cluster):
        plan = ManagementPlan(store.num_keys,
                              np.arange(12, dtype=np.int64))
        return NuPS(store, cluster, plan=plan, sync_interval=0.001, seed=0)

    def nups_relocate_all(store, cluster):
        return NuPS(store, cluster,
                    plan=ManagementPlan.relocate_all(store.num_keys),
                    sync_interval=None, seed=0)

    return {
        "classic": classic,
        "relocation": relocation,
        "relocation-disabled": relocation_disabled,
        "relocation-oracle": relocation_oracle,
        "ssp": ssp,
        "essp": essp,
        "ssp-oracle": ssp_oracle,
        "nups": nups,
        "nups-relocate-all": nups_relocate_all,
    }


def _round_workload(shape: str, rounds=4, batch=10, seed=11):
    """Per-(round, worker) batches; ``shape`` controls cross-worker sharing."""
    rng = np.random.default_rng(seed)
    plans = []
    for _ in range(rounds):
        round_plan = []
        for worker_index in range(6):
            if shape == "disjoint":
                lo = worker_index * (NUM_KEYS // 6)
                keys = rng.integers(lo, lo + NUM_KEYS // 6,
                                    size=batch).astype(np.int64)
            elif shape == "shared":
                weights = 1.0 / np.arange(1, NUM_KEYS + 1) ** 1.2
                keys = rng.choice(NUM_KEYS, size=batch,
                                  p=weights / weights.sum()).astype(np.int64)
            else:  # tiny: 2-3 key batches, mixed sharing
                size = int(rng.integers(2, 4))
                keys = rng.integers(0, NUM_KEYS, size=size).astype(np.int64)
            deltas = rng.normal(0, 0.01,
                                size=(len(keys), VALUE_LENGTH)).astype(np.float32)
            round_plan.append((keys, deltas))
        plans.append(round_plan)
    return plans


def _drive_round_api(builder, plans, fused: bool):
    cluster = _cluster()
    store = ParameterStore(NUM_KEYS, VALUE_LENGTH, seed=2, init_scale=0.1)
    ps = builder(store, cluster)
    workers = list(cluster.workers())
    pulled = []
    for round_plan in plans:
        if fused:
            rounds = [
                WorkerRound(worker, localize_keys=keys, pull_keys=keys,
                            push_keys=keys, push_deltas=deltas)
                for worker, (keys, deltas) in zip(workers, round_plan)
            ]
            pulled.extend(ps.run_round(rounds))
        else:
            for worker, (keys, deltas) in zip(workers, round_plan):
                ps.localize(worker, keys)
                pulled.append(ps.pull(worker, keys))
                ps.push(worker, keys, deltas)
                ps.advance_clock(worker)
        ps.housekeeping(cluster.time)
    ps.finish_epoch()
    return cluster, store, pulled


def _assert_cluster_identical(a: Cluster, b: Cluster) -> None:
    for node_a, node_b in zip(a.nodes, b.nodes):
        for clock_a, clock_b in zip(node_a.worker_clocks, node_b.worker_clocks):
            assert clock_a.now == clock_b.now
        assert node_a.background_clock.now == node_b.background_clock.now
        assert node_a.server_clock.now == node_b.server_clock.now
    assert a.metrics.counters() == b.metrics.counters()
    for node in range(a.num_nodes):
        assert a.metrics.node_counters(node) == b.metrics.node_counters(node)


@pytest.mark.parametrize("shape", ["shared", "disjoint", "tiny"])
@pytest.mark.parametrize("name", sorted(_ps_builders()))
def test_run_round_bit_identical(name, shape):
    """run_round == the sequential per-worker chain, to the last bit."""
    builder = _ps_builders()[name]
    plans = _round_workload(shape)
    fused_cluster, fused_store, fused_pulled = _drive_round_api(
        builder, plans, fused=True
    )
    seq_cluster, seq_store, seq_pulled = _drive_round_api(
        builder, plans, fused=False
    )
    _assert_cluster_identical(fused_cluster, seq_cluster)
    assert np.array_equal(fused_store.values, seq_store.values)
    assert len(fused_pulled) == len(seq_pulled)
    for fused_values, seq_values in zip(fused_pulled, seq_pulled):
        assert np.array_equal(fused_values, seq_values)


def test_run_round_partial_entries():
    """Entries may skip localize/pull/push/advance independently."""
    rng = np.random.default_rng(5)
    for name in ("classic", "relocation", "ssp", "nups"):
        builder = _ps_builders()[name]
        cluster_a = _cluster()
        cluster_b = _cluster()
        store_a = ParameterStore(NUM_KEYS, VALUE_LENGTH, seed=2, init_scale=0.1)
        store_b = ParameterStore(NUM_KEYS, VALUE_LENGTH, seed=2, init_scale=0.1)
        ps_a = builder(store_a, cluster_a)
        ps_b = builder(store_b, cluster_b)
        workers_a = list(cluster_a.workers())
        workers_b = list(cluster_b.workers())
        keys = [rng.integers(0, NUM_KEYS, size=6).astype(np.int64)
                for _ in workers_a]
        deltas = [rng.normal(0, 0.01, size=(6, VALUE_LENGTH)).astype(np.float32)
                  for _ in workers_a]
        rounds = []
        for i, worker in enumerate(workers_a):
            rounds.append(WorkerRound(
                worker,
                localize_keys=keys[i] if i % 2 == 0 else None,
                pull_keys=keys[i] if i % 3 != 0 else None,
                push_keys=keys[i] if i % 3 != 1 else None,
                push_deltas=deltas[i] if i % 3 != 1 else None,
                advance=(i % 2 == 1),
            ))
        ps_a.run_round(rounds)
        for i, worker in enumerate(workers_b):
            if i % 2 == 0:
                ps_b.localize(worker, keys[i])
            if i % 3 != 0:
                ps_b.pull(worker, keys[i])
            if i % 3 != 1:
                ps_b.push(worker, keys[i], deltas[i])
            if i % 2 == 1:
                ps_b.advance_clock(worker)
        _assert_cluster_identical(cluster_a, cluster_b)
        assert np.array_equal(store_a.values, store_b.values)


def test_run_round_single_node_fallback():
    """The base sequential fallback serves PSs without a fused override."""
    cluster_a = Cluster(ClusterConfig(num_nodes=1, workers_per_node=3))
    cluster_b = Cluster(ClusterConfig(num_nodes=1, workers_per_node=3))
    store_a = ParameterStore(NUM_KEYS, VALUE_LENGTH, seed=2, init_scale=0.1)
    store_b = ParameterStore(NUM_KEYS, VALUE_LENGTH, seed=2, init_scale=0.1)
    ps_a = SingleNodePS(store_a, cluster_a)
    ps_b = SingleNodePS(store_b, cluster_b)
    rng = np.random.default_rng(9)
    keys = [rng.integers(0, NUM_KEYS, size=5).astype(np.int64) for _ in range(3)]
    deltas = [rng.normal(0, 0.01, size=(5, VALUE_LENGTH)).astype(np.float32)
              for _ in range(3)]
    ps_a.run_round([
        WorkerRound(worker, pull_keys=keys[i], push_keys=keys[i],
                    push_deltas=deltas[i])
        for i, worker in enumerate(cluster_a.workers())
    ])
    for i, worker in enumerate(cluster_b.workers()):
        ps_b.pull(worker, keys[i])
        ps_b.push(worker, keys[i], deltas[i])
        ps_b.advance_clock(worker)
    _assert_cluster_identical(cluster_a, cluster_b)
    assert np.array_equal(store_a.values, store_b.values)


# ------------------------------------------------------- runner-level fusion
def _experiment(task_name, system, backend, scenario_name=None,
                chunk_size=8, seed=5, epochs=2, telemetry=False):
    """Run the test-scale experiment under one execution backend.

    ``backend`` is an ``ExperimentConfig.execution_backend`` value:
    ``"sequential"``, ``"fused"`` or ``"parallel"``. With ``telemetry`` the
    observability tracer rides along (it must not change a single bit).
    """
    task = make_task(task_name, scale="test")
    scenario = make_scenario(scenario_name) if scenario_name else None
    parallel = ParallelConfig(num_workers=2) if backend == "parallel" else None
    telemetry_config = None
    if telemetry:
        from repro.obs import TelemetryConfig

        telemetry_config = TelemetryConfig(access_events=True)
    config = ExperimentConfig(
        cluster=ClusterConfig(num_nodes=2, workers_per_node=2),
        epochs=epochs, chunk_size=chunk_size, seed=seed, scenario=scenario,
        execution_backend=backend, parallel=parallel,
        telemetry=telemetry_config,
    )
    return run_experiment(task, make_ps_factory(system), config)


def _assert_results_identical(a, b) -> None:
    assert a.initial_quality == b.initial_quality
    assert a.epochs_completed == b.epochs_completed
    for record_a, record_b in zip(a.records, b.records):
        assert record_a.sim_time == record_b.sim_time
        assert record_a.epoch_duration == record_b.epoch_duration
        assert record_a.quality == record_b.quality
        assert record_a.metrics == record_b.metrics
    assert a.metrics == b.metrics


MF_SYSTEMS = ["classic", "lapse", "ssp", "essp", "nups"]


@pytest.mark.parametrize("backend", ["fused", "parallel"])
@pytest.mark.parametrize("system", MF_SYSTEMS)
@pytest.mark.parametrize("chunk_size", [4, 32])
def test_round_fusion_bit_identical_mf(system, chunk_size, backend):
    _assert_results_identical(
        _experiment("matrix_factorization", system, backend,
                    chunk_size=chunk_size),
        _experiment("matrix_factorization", system, "sequential",
                    chunk_size=chunk_size),
    )


@pytest.mark.parametrize("telemetry", [False, True])
@pytest.mark.parametrize("system", ["classic", "lapse", "nups"])
def test_round_fusion_bit_identical_kge(system, telemetry):
    _assert_results_identical(
        _experiment("kge", system, "fused", telemetry=telemetry),
        _experiment("kge", system, "sequential", telemetry=telemetry),
    )


@pytest.mark.parametrize("backend", ["fused", "parallel"])
@pytest.mark.parametrize("system", ["lapse", "nups"])
def test_round_fusion_bit_identical_mf_with_telemetry(system, backend):
    """The tracer rides along on every backend without perturbing a bit."""
    _assert_results_identical(
        _experiment("matrix_factorization", system, backend, telemetry=True),
        _experiment("matrix_factorization", system, "sequential",
                    telemetry=True),
    )


@pytest.mark.parametrize("system", ["lapse", "nups"])
def test_round_fusion_bit_identical_word_vectors(system):
    _assert_results_identical(
        _experiment("word_vectors", system, "fused"),
        _experiment("word_vectors", system, "sequential"),
    )


@pytest.mark.parametrize("scenario_name",
                         ["drift", "churn", "stragglers",
                          "degrading-network"])
@pytest.mark.parametrize("system", ["lapse", "nups"])
def test_round_fusion_composes_with_scenarios(system, scenario_name):
    # Four epochs so that the drift preset (epoch 2) actually rewires the
    # logical-to-physical mapping: post-drift epochs are where a fused path
    # that bypassed the remapping proxy would diverge.
    _assert_results_identical(
        _experiment("matrix_factorization", system, "fused",
                    scenario_name=scenario_name, epochs=4),
        _experiment("matrix_factorization", system, "sequential",
                    scenario_name=scenario_name, epochs=4),
    )


def test_round_fusion_respects_remapped_ps():
    """Post-drift, the remapping proxy must keep fused paths translated.

    Regression: the proxy's ``__getattr__`` used to leak the inner PS's
    ``direct_point_charger``/``run_round``, letting the fused MF walk access
    the raw store with logical keys once the mapping was no longer the
    identity. The fused drift run must keep relocating effectively after the
    drift, exactly like the sequential one.
    """
    fused = _experiment("matrix_factorization", "lapse", "fused",
                        scenario_name="drift", epochs=4)
    sequential = _experiment("matrix_factorization", "lapse", "sequential",
                             scenario_name="drift", epochs=4)
    _assert_results_identical(fused, sequential)
    last = fused.records[-1].metrics
    local = last.get("access.pull.local", 0.0) + last.get("access.push.local", 0.0)
    remote = last.get("access.pull.remote", 0.0) + last.get("access.push.remote", 0.0)
    # Relocation re-adapts after the drift: locality dominates again.
    assert local > remote


# --------------------------------------------------- satellite: queue caching
class TestWorkerQueuePeekCache:
    def _queue_with_segments(self):
        queue = _WorkerQueue(np.arange(5, dtype=np.int64))
        queue.append(np.arange(100, 104, dtype=np.int64))
        queue.append(np.arange(200, 203, dtype=np.int64))
        return queue

    def test_peek_is_cached_and_reused_by_take(self):
        queue = self._queue_with_segments()
        peeked = queue.peek(8)
        assert queue.peek(8) is peeked  # second peek: no new allocation
        taken = queue.take(8)
        assert taken is peeked  # the take consumes the cached view
        assert list(taken) == [0, 1, 2, 3, 4, 100, 101, 102]
        assert list(queue.take(10)) == [103, 200, 201, 202]
        assert len(queue) == 0

    def test_append_invalidates_cache(self):
        queue = self._queue_with_segments()
        short = queue.peek(20)  # 12 elements: everything pending
        assert len(short) == 12
        queue.append(np.array([7], dtype=np.int64))
        extended = queue.peek(20)
        assert len(extended) == 13
        assert list(queue.take(20)) == list(extended)

    def test_take_with_different_count_ignores_cache(self):
        queue = self._queue_with_segments()
        queue.peek(8)
        assert list(queue.take(6)) == [0, 1, 2, 3, 4, 100]
        assert list(queue.peek(3)) == [101, 102, 103]

    def test_behavior_matches_uncached_reference(self):
        rng = np.random.default_rng(3)
        queue = _WorkerQueue(rng.integers(0, 50, size=7).astype(np.int64))
        mirror = []  # flat reference
        mirror.extend(queue.peek(100).tolist())
        for _ in range(6):
            count = int(rng.integers(1, 5))
            if rng.random() < 0.4:
                extra = rng.integers(0, 50, size=int(rng.integers(1, 4))) \
                    .astype(np.int64)
                queue.append(extra)
                mirror.extend(extra.tolist())
            assert queue.peek(count).tolist() == mirror[:count]
            assert queue.take(count).tolist() == mirror[:count]
            del mirror[:count]
            assert len(queue) == len(mirror)


# --------------------------------------------- satellite: dirty-set snapshots
class _TouchNetZero(Perturbation):
    """Increments and immediately reverts a counter every epoch."""

    def on_epoch_start(self, ctx) -> None:
        ctx.metrics.increment("scenario.net_zero_probe", 1.0)
        ctx.metrics.increment("scenario.net_zero_probe", -1.0)


class TestDirtySetEpochMetrics:
    def test_registry_drain_dirty(self):
        registry = MetricsRegistry()
        registry.increment("a", 2.0)
        registry.record_access("pull.local", node=0, count=3)
        assert registry.drain_dirty() == {"a", "access.pull.local",
                                          "access.total"}
        assert registry.drain_dirty() == set()
        registry.increment("b", 1.0)
        registry.increment("b", -1.0)
        assert registry.get("b") == 0.0
        assert registry.drain_dirty() == {"b"}

    def test_reset_and_merge_track_dirty(self):
        registry = MetricsRegistry()
        registry.increment("a")
        registry.reset()
        assert registry.drain_dirty() == set()
        other = MetricsRegistry()
        other.increment("merged", 4.0)
        registry.merge(other)
        assert "merged" in registry.drain_dirty()

    def test_epoch_record_includes_touched_net_zero_counter(self):
        """+1 then -1 within an epoch is activity, not absence of it."""
        scenario = Scenario("net-zero-probe", [_TouchNetZero()])
        task = make_task("matrix_factorization", scale="test")
        config = ExperimentConfig(
            cluster=ClusterConfig(num_nodes=2, workers_per_node=2),
            epochs=2, chunk_size=8, seed=1, scenario=scenario,
        )
        result = run_experiment(task, make_ps_factory("classic"), config)
        for record in result.records:
            assert record.metrics["scenario.net_zero_probe"] == 0.0
            # Ordinary activity is still reported as nonzero deltas.
            assert record.metrics["access.total"] > 0
