"""Unit tests for the paper-claim registry and its assertion kinds."""

import pytest

from repro.report.claims import (
    CLAIMS,
    Claim,
    claims_for,
    compare_verdicts,
    evaluate_claim,
    evaluate_claims,
    resolve_path,
)
from repro.report.pipeline import REGISTRY, registered_but_unclaimed


def make_claim(kind, **spec):
    return Claim(claim_id=f"test.{kind}", benchmark="test",
                 description=f"synthetic {kind} claim", kind=kind, spec=spec)


class TestResolvePath:
    def test_nested_dicts(self):
        data = {"a": {"b": {"c": 3.0}}}
        assert resolve_path(data, "a.b.c") == 3.0

    def test_list_indexing(self):
        assert resolve_path({"xs": [10, 20, 30]}, "xs.1") == 20

    def test_missing_key_raises(self):
        with pytest.raises(KeyError):
            resolve_path({"a": 1}, "a.b")

    def test_keys_with_special_characters(self):
        data = {"epoch_time": {"relocation+replication": 1.5, "nups[0x]": 2.0}}
        assert resolve_path(data, "epoch_time.relocation+replication") == 1.5
        assert resolve_path(data, "epoch_time.nups[0x]") == 2.0


class TestOrdering:
    DATA = {"t": {"nups": 1.0, "classic": 3.0}}

    def test_strict_less_passes(self):
        claim = make_claim("ordering", left="t.nups", right="t.classic", op="<")
        verdict = evaluate_claim(claim, self.DATA)
        assert verdict.passed
        assert "t.nups" in verdict.observed

    def test_strict_less_fails_when_reversed(self):
        claim = make_claim("ordering", left="t.classic", right="t.nups", op="<")
        assert not evaluate_claim(claim, self.DATA).passed

    def test_ratio_bound(self):
        # 3.0 <= 3.5 * 1.0 passes; 3.0 <= 2.5 * 1.0 fails.
        good = make_claim("ordering", left="t.classic", right="t.nups",
                          op="<=", factor=3.5)
        bad = make_claim("ordering", left="t.classic", right="t.nups",
                         op="<=", factor=2.5)
        assert evaluate_claim(good, self.DATA).passed
        assert not evaluate_claim(bad, self.DATA).passed

    def test_missing_path_is_a_failed_verdict_not_an_exception(self):
        claim = make_claim("ordering", left="t.nups", right="t.missing", op="<")
        verdict = evaluate_claim(claim, self.DATA)
        assert not verdict.passed
        assert verdict.error and "missing" in verdict.error

    def test_none_value_fails(self):
        claim = make_claim("ordering", left="t.a", right="t.b", op="<")
        verdict = evaluate_claim(claim, {"t": {"a": None, "b": 1.0}})
        assert not verdict.passed
        assert verdict.error


class TestThreshold:
    def test_greater_than(self):
        claim = make_claim("threshold", path="x", op=">", value=2.0)
        assert evaluate_claim(claim, {"x": 2.5}).passed
        assert not evaluate_claim(claim, {"x": 1.5}).passed

    def test_equality_with_tolerance(self):
        claim = make_claim("threshold", path="x", op="==", value=1.0,
                           tolerance=0.01)
        assert evaluate_claim(claim, {"x": 1.005}).passed
        assert not evaluate_claim(claim, {"x": 1.05}).passed

    def test_exact_equality(self):
        claim = make_claim("threshold", path="x", op="==", value=0.0)
        assert evaluate_claim(claim, {"x": 0.0}).passed
        assert not evaluate_claim(claim, {"x": 1e-9}).passed

    def test_none_fails_like_not_reached(self):
        claim = make_claim("threshold", path="x", op=">", value=1.0)
        verdict = evaluate_claim(claim, {"x": None})
        assert not verdict.passed
        assert verdict.error


class TestMonotonic:
    def test_nondecreasing_passes(self):
        claim = make_claim("monotonic", path="xs", direction="nondecreasing")
        assert evaluate_claim(claim, {"xs": [1.0, 1.0, 2.0, 5.0]}).passed

    def test_nondecreasing_fails_on_dip(self):
        claim = make_claim("monotonic", path="xs", direction="nondecreasing")
        assert not evaluate_claim(claim, {"xs": [1.0, 0.5, 2.0]}).passed

    def test_tolerance_forgives_small_dips(self):
        claim = make_claim("monotonic", path="xs", direction="nondecreasing",
                           tolerance=0.6)
        assert evaluate_claim(claim, {"xs": [1.0, 0.5, 2.0]}).passed

    def test_nonincreasing(self):
        claim = make_claim("monotonic", path="xs", direction="nonincreasing")
        assert evaluate_claim(claim, {"xs": [3.0, 2.0, 2.0]}).passed
        assert not evaluate_claim(claim, {"xs": [3.0, 4.0]}).passed

    def test_single_point_series_cannot_evaluate(self):
        claim = make_claim("monotonic", path="xs", direction="nondecreasing")
        verdict = evaluate_claim(claim, {"xs": [1.0]})
        assert not verdict.passed
        assert verdict.error


class TestBracket:
    def test_inclusive(self):
        claim = make_claim("bracket", path="x", lo=0.0, hi=1.0)
        assert evaluate_claim(claim, {"x": 0.0}).passed
        assert evaluate_claim(claim, {"x": 1.0}).passed
        assert not evaluate_claim(claim, {"x": 1.1}).passed

    def test_strict(self):
        claim = make_claim("bracket", path="x", lo=0.0, hi=1.0, strict=True)
        assert evaluate_claim(claim, {"x": 0.5}).passed
        assert not evaluate_claim(claim, {"x": 0.0}).passed
        assert not evaluate_claim(claim, {"x": 1.0}).passed


class TestAllTrue:
    def test_scalar_paths(self):
        claim = make_claim("all_true", paths=["a", "b"])
        assert evaluate_claim(claim, {"a": True, "b": True}).passed
        verdict = evaluate_claim(claim, {"a": True, "b": False})
        assert not verdict.passed
        assert "b" in verdict.observed

    def test_dict_of_flags(self):
        claim = make_claim("all_true", paths=["trained"])
        assert evaluate_claim(
            claim, {"trained": {"nups": True, "classic": True}}).passed
        verdict = evaluate_claim(
            claim, {"trained": {"nups": True, "classic": False}})
        assert not verdict.passed
        assert "trained.classic" in verdict.observed

    def test_empty_collection_cannot_evaluate(self):
        claim = make_claim("all_true", paths=["trained"])
        verdict = evaluate_claim(claim, {"trained": {}})
        assert not verdict.passed
        assert verdict.error


class TestEvaluateClaims:
    def test_no_result_fails_every_claim_with_error(self):
        verdicts = evaluate_claims("fig01", None)
        assert verdicts, "fig01 must have registered claims"
        assert all(not v.passed for v in verdicts)
        assert all(v.error == "benchmark produced no result" for v in verdicts)

    def test_unknown_kind_rejected_at_construction(self):
        with pytest.raises(ValueError):
            Claim(claim_id="x", benchmark="x", description="x",
                  kind="not-a-kind", spec={})

    def test_verdict_serializes(self):
        claim = make_claim("threshold", path="x", op=">", value=0.0)
        payload = evaluate_claim(claim, {"x": 1.0}).to_dict()
        assert payload["id"] == "test.threshold"
        assert payload["passed"] is True
        assert payload["error"] is None


class TestRegistry:
    def test_claim_ids_unique(self):
        ids = [claim.claim_id for claim in CLAIMS]
        assert len(ids) == len(set(ids))

    def test_every_benchmark_has_claims(self):
        # The acceptance criterion: no benchmark left unchecked.
        assert registered_but_unclaimed() == []

    def test_every_claim_maps_to_a_registered_benchmark(self):
        known = {spec.id for spec in REGISTRY}
        assert {claim.benchmark for claim in CLAIMS} <= known

    def test_claim_ids_are_namespaced_by_benchmark(self):
        for claim in CLAIMS:
            assert claim.claim_id.startswith(claim.benchmark + ".")

    def test_claims_for_preserves_registration_order(self):
        fig06 = claims_for("fig06")
        assert [c.benchmark for c in fig06] == ["fig06"] * len(fig06)
        assert len(fig06) == 12


class TestCompareVerdicts:
    @staticmethod
    def payload(**verdicts):
        by_benchmark = {}
        for claim_id, passed in verdicts.items():
            benchmark = claim_id.split(".", 1)[0]
            by_benchmark.setdefault(benchmark, []).append(
                {"id": claim_id, "passed": passed})
        return {"benchmarks": [
            {"id": benchmark, "claims": claims}
            for benchmark, claims in by_benchmark.items()
        ]}

    def test_no_regressions_on_identical_reports(self):
        report = self.payload(**{"fig01.a": True, "fig01.b": False})
        assert compare_verdicts(report, report) == []

    def test_pass_to_fail_is_a_regression(self):
        committed = self.payload(**{"fig01.a": True})
        fresh = self.payload(**{"fig01.a": False})
        regressions = compare_verdicts(committed, fresh)
        assert len(regressions) == 1 and "fig01.a" in regressions[0]

    def test_fail_to_fail_is_not_a_regression(self):
        committed = self.payload(**{"fig01.a": False})
        fresh = self.payload(**{"fig01.a": False})
        assert compare_verdicts(committed, fresh) == []

    def test_skipped_benchmark_is_ignored(self):
        committed = self.payload(**{"fig01.a": True, "table2.b": True})
        fresh = self.payload(**{"table2.b": True})  # --only table2
        assert compare_verdicts(committed, fresh) == []

    def test_missing_claim_in_present_benchmark_is_a_regression(self):
        committed = self.payload(**{"fig01.a": True, "fig01.b": True})
        fresh = self.payload(**{"fig01.a": True})
        regressions = compare_verdicts(committed, fresh)
        assert len(regressions) == 1 and "fig01.b" in regressions[0]
