"""Tests for eager replication with time-based staleness."""

import numpy as np
import pytest

from repro.core.management import ManagementPlan
from repro.core.replica_manager import ReplicaManager


@pytest.fixture
def plan(store):
    return ManagementPlan(store.num_keys, [0, 1, 2, 3, 4])


@pytest.fixture
def manager(store, cluster, plan):
    return ReplicaManager(store, cluster, plan, sync_interval=0.01)


class TestConstruction:
    def test_slot_mapping(self, manager):
        assert manager.slot(0) == 0
        assert manager.slot(4) == 4
        assert manager.slot(50) == -1

    def test_disabled_when_nothing_replicated(self, store, cluster):
        manager = ReplicaManager(store, cluster, ManagementPlan.relocate_all(store.num_keys))
        assert not manager.enabled
        assert not manager.schedule.enabled
        assert manager.maybe_sync(100.0) == 0

    def test_sync_interval_none_disables_schedule(self, store, cluster, plan):
        manager = ReplicaManager(store, cluster, plan, sync_interval=None)
        assert not manager.schedule.enabled

    def test_invalid_sync_interval_rejected(self, store, cluster, plan):
        with pytest.raises(ValueError):
            ReplicaManager(store, cluster, plan, sync_interval=0.0)

    def test_plan_store_mismatch_rejected(self, store, cluster):
        with pytest.raises(ValueError):
            ReplicaManager(store, cluster, ManagementPlan(store.num_keys + 1, []))

    def test_initial_replicas_match_store(self, manager, store):
        for node in range(manager.cluster.num_nodes):
            np.testing.assert_array_equal(
                manager.pull(node, np.arange(5)), store.get(np.arange(5))
            )


class TestPushPull:
    def test_push_visible_on_own_node_only(self, manager, store):
        delta = np.ones((1, store.value_length), dtype=np.float32)
        before = manager.pull(0, np.array([2])).copy()
        manager.push(0, np.array([2]), delta)
        np.testing.assert_allclose(manager.pull(0, np.array([2])), before + 1.0, rtol=1e-6)
        np.testing.assert_array_equal(manager.pull(1, np.array([2])), before)

    def test_push_not_in_store_before_sync(self, manager, store):
        before = store.get_single(2).copy()
        manager.push(0, np.array([2]), np.ones((1, store.value_length), dtype=np.float32))
        np.testing.assert_array_equal(store.get_single(2), before)

    def test_non_replicated_key_rejected(self, manager, store):
        with pytest.raises(KeyError):
            manager.pull(0, np.array([50]))
        with pytest.raises(KeyError):
            manager.push(0, np.array([50]), np.ones((1, store.value_length), dtype=np.float32))


class TestSync:
    def test_sync_merges_all_nodes_updates(self, manager, store):
        delta = np.ones((1, store.value_length), dtype=np.float32)
        before = store.get_single(3).copy()
        manager.push(0, np.array([3]), delta)
        manager.push(1, np.array([3]), 2 * delta)
        manager.force_sync()
        np.testing.assert_allclose(store.get_single(3), before + 3.0, rtol=1e-6)
        # After the sync every replica agrees with the store.
        assert manager.max_replica_divergence() == pytest.approx(0.0, abs=1e-6)

    def test_sync_is_idempotent_without_new_updates(self, manager, store):
        manager.push(0, np.array([3]), np.ones((1, store.value_length), dtype=np.float32))
        manager.force_sync()
        after_first = store.get_single(3).copy()
        manager.force_sync()
        np.testing.assert_array_equal(store.get_single(3), after_first)

    def test_updates_survive_interleaved_pushes_and_syncs(self, manager, store):
        """The sum of all pushed deltas ends up in the store exactly once."""
        rng = np.random.default_rng(0)
        expected = store.get(np.arange(5)).astype(np.float64)
        for step in range(20):
            node = step % manager.cluster.num_nodes
            key = step % 5
            delta = rng.normal(size=(1, store.value_length)).astype(np.float32)
            manager.push(node, np.array([key]), delta)
            expected[key] += delta[0]
            if step % 7 == 0:
                manager.force_sync()
        manager.force_sync()
        np.testing.assert_allclose(store.get(np.arange(5)), expected, rtol=1e-4, atol=1e-4)

    def test_maybe_sync_respects_interval(self, manager):
        assert manager.maybe_sync(0.005) == 0
        assert manager.maybe_sync(0.011) == 1
        assert manager.syncs_performed == 1

    def test_maybe_sync_does_not_burst_when_behind(self, manager):
        """A long gap triggers at most the rounds the thread can actually run."""
        performed = manager.maybe_sync(10.0)
        assert performed >= 1
        # The schedule's busy-until advanced; an immediate re-check adds nothing.
        assert manager.maybe_sync(10.0) == 0

    def test_sync_charges_background_clocks(self, manager, cluster, store):
        manager.push(0, np.array([0]), np.ones((1, store.value_length), dtype=np.float32))
        manager.force_sync()
        for node in range(cluster.num_nodes):
            assert cluster.node(node).background_clock.now > 0

    def test_sparse_sync_only_counts_dirty_keys(self, manager, cluster, store):
        manager.push(0, np.array([0]), np.ones((1, store.value_length), dtype=np.float32))
        manager.force_sync()
        assert cluster.metrics.get("replica.sync_bytes") == store.value_bytes()

    def test_achieved_frequency_reporting(self, manager):
        manager.force_sync(0.0)
        manager.force_sync(0.01)
        assert manager.achieved_sync_frequency(0.02) == pytest.approx(100.0)
        assert manager.target_sync_frequency() == pytest.approx(100.0)

    def test_target_frequency_zero_when_disabled(self, store, cluster):
        manager = ReplicaManager(store, cluster, ManagementPlan.relocate_all(store.num_keys))
        assert manager.target_sync_frequency() == 0.0
