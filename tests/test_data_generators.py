"""Tests for the synthetic dataset generators."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data.corpus import generate_corpus
from repro.data.knowledge_graph import generate_knowledge_graph
from repro.data.matrix import generate_matrix
from repro.data.zipf import empirical_skew_summary, zipf_probabilities, zipf_sample


class TestZipfUtilities:
    def test_probabilities_normalized_and_decreasing(self):
        probs = zipf_probabilities(100, 1.1)
        assert probs.sum() == pytest.approx(1.0)
        assert np.all(np.diff(probs) < 0)

    def test_shuffle_permutes(self):
        rng = np.random.default_rng(0)
        shuffled = zipf_probabilities(50, 1.1, shuffle=True, rng=rng)
        plain = zipf_probabilities(50, 1.1)
        assert shuffled.sum() == pytest.approx(1.0)
        assert sorted(shuffled) == pytest.approx(sorted(plain))
        assert not np.allclose(shuffled, plain)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            zipf_probabilities(0)
        with pytest.raises(ValueError):
            zipf_probabilities(10, -1.0)

    def test_zipf_sample_range(self):
        samples = zipf_sample(np.random.default_rng(0), 20, 500, 1.1)
        assert samples.min() >= 0 and samples.max() < 20

    def test_zipf_sample_probability_length_mismatch(self):
        with pytest.raises(ValueError):
            zipf_sample(np.random.default_rng(0), 20, 10, probabilities=np.ones(5) / 5)

    def test_skew_summary(self):
        counts = np.array([1000.0] + [1.0] * 999)
        summary = empirical_skew_summary(counts, top_fraction=0.001)
        assert summary["top_share"] == pytest.approx(1000.0 / 1999.0)
        assert summary["num_items"] == 1000

    def test_skew_summary_validation(self):
        with pytest.raises(ValueError):
            empirical_skew_summary(np.array([]))
        with pytest.raises(ValueError):
            empirical_skew_summary(np.ones(5), top_fraction=0.0)


class TestKnowledgeGraphGenerator:
    @pytest.fixture(scope="class")
    def graph(self):
        return generate_knowledge_graph(
            num_entities=300, num_relations=8, num_triples=3000, seed=0
        )

    def test_triples_within_ranges(self, graph):
        for split in (graph.train_triples, graph.test_triples):
            assert split[:, 0].max() < graph.num_entities
            assert split[:, 2].max() < graph.num_entities
            assert split[:, 1].max() < graph.num_relations
            assert split.min() >= 0

    def test_train_test_split_disjoint(self, graph):
        train = {tuple(t) for t in graph.train_triples.tolist()}
        test = {tuple(t) for t in graph.test_triples.tolist()}
        assert train.isdisjoint(test)

    def test_no_duplicate_triples(self, graph):
        combined = np.concatenate([graph.train_triples, graph.test_triples])
        assert len(np.unique(combined, axis=0)) == len(combined)

    def test_entity_frequencies_match_triples(self, graph):
        expected = np.bincount(
            np.concatenate([graph.train_triples[:, 0], graph.train_triples[:, 2]]),
            minlength=graph.num_entities,
        )
        np.testing.assert_array_equal(graph.entity_frequencies, expected)

    def test_entity_access_is_skewed(self, graph):
        """A small share of entities receives a large share of accesses."""
        summary = empirical_skew_summary(graph.entity_frequencies + 1e-9, top_fraction=0.05)
        assert summary["top_share"] > 0.3

    def test_reproducible(self):
        a = generate_knowledge_graph(num_entities=100, num_relations=4, num_triples=500, seed=5)
        b = generate_knowledge_graph(num_entities=100, num_relations=4, num_triples=500, seed=5)
        np.testing.assert_array_equal(a.train_triples, b.train_triples)

    def test_all_true_triples(self, graph):
        assert len(graph.all_true_triples()) == graph.num_train + graph.num_test

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            generate_knowledge_graph(num_entities=4, num_clusters=8)
        with pytest.raises(ValueError):
            generate_knowledge_graph(noise=1.5)
        with pytest.raises(ValueError):
            generate_knowledge_graph(test_fraction=0.0)


class TestCorpusGenerator:
    @pytest.fixture(scope="class")
    def corpus(self):
        return generate_corpus(vocab_size=200, num_sentences=300, sentence_length=10, seed=1)

    def test_sentences_within_vocab(self, corpus):
        for sentence in corpus.sentences:
            assert sentence.min() >= 0
            assert sentence.max() < corpus.vocab_size
            assert len(sentence) == 10

    def test_word_frequencies_match_tokens(self, corpus):
        expected = np.bincount(np.concatenate(corpus.sentences), minlength=corpus.vocab_size)
        np.testing.assert_array_equal(corpus.word_frequencies, expected)

    def test_frequencies_are_skewed(self, corpus):
        summary = empirical_skew_summary(corpus.word_frequencies + 1e-9, top_fraction=0.05)
        assert summary["top_share"] > 0.3

    def test_probes_are_valid(self, corpus):
        probes = corpus.similarity_probes
        assert probes.shape[1] == 3
        assert len(probes) > 0
        for anchor, same, different in probes:
            assert corpus.word_topics[anchor] == corpus.word_topics[same]
            assert corpus.word_topics[anchor] != corpus.word_topics[different]
            assert anchor != same

    def test_num_tokens(self, corpus):
        assert corpus.num_tokens == 300 * 10

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            generate_corpus(vocab_size=5, num_topics=10)
        with pytest.raises(ValueError):
            generate_corpus(topic_purity=1.5)

    def test_reproducible(self):
        a = generate_corpus(vocab_size=100, num_sentences=50, seed=3)
        b = generate_corpus(vocab_size=100, num_sentences=50, seed=3)
        np.testing.assert_array_equal(np.concatenate(a.sentences), np.concatenate(b.sentences))


class TestMatrixGenerator:
    @pytest.fixture(scope="class")
    def matrix(self):
        return generate_matrix(num_rows=200, num_cols=50, num_cells=3000, rank=4, seed=2)

    def test_cells_within_bounds(self, matrix):
        for cells in (matrix.train_cells, matrix.test_cells):
            assert cells[:, 0].max() < matrix.num_rows
            assert cells[:, 1].max() < matrix.num_cols
            assert cells.min() >= 0

    def test_no_duplicate_cells(self, matrix):
        combined = np.concatenate([matrix.train_cells, matrix.test_cells])
        assert len(np.unique(combined, axis=0)) == len(combined)

    def test_values_align_with_cells(self, matrix):
        assert len(matrix.train_values) == len(matrix.train_cells)
        assert len(matrix.test_values) == len(matrix.test_cells)

    def test_frequencies_match_cells(self, matrix):
        np.testing.assert_array_equal(
            matrix.row_frequencies,
            np.bincount(matrix.train_cells[:, 0], minlength=matrix.num_rows),
        )
        np.testing.assert_array_equal(
            matrix.col_frequencies,
            np.bincount(matrix.train_cells[:, 1], minlength=matrix.num_cols),
        )

    def test_cells_are_skewed(self, matrix):
        summary = empirical_skew_summary(matrix.col_frequencies + 1e-9, top_fraction=0.05)
        assert summary["top_share"] > 0.15

    def test_values_have_low_rank_structure(self, matrix):
        """The generated values are far from pure noise: their variance is
        dominated by the low-rank signal, not the additive noise."""
        assert matrix.train_values.std() > 2 * 0.1

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            generate_matrix(rank=0)
        with pytest.raises(ValueError):
            generate_matrix(test_fraction=1.0)


@settings(deadline=None, max_examples=10)
@given(st.integers(min_value=20, max_value=200), st.integers(min_value=100, max_value=1000))
def test_kg_generator_is_well_formed_for_any_size(num_entities, num_triples):
    graph = generate_knowledge_graph(
        num_entities=num_entities, num_relations=4, num_triples=num_triples,
        num_clusters=4, seed=0,
    )
    assert graph.num_train + graph.num_test <= num_triples
    assert graph.num_train > 0 and graph.num_test > 0
    assert len(graph.entity_frequencies) == num_entities
