"""Tests for the metrics registry."""

import pytest

from repro.simulation.metrics import MetricsRegistry


class TestMetricsRegistry:
    def test_unknown_counter_is_zero(self):
        assert MetricsRegistry().get("does.not.exist") == 0.0

    def test_increment_global(self):
        metrics = MetricsRegistry()
        metrics.increment("a", 2.0)
        metrics.increment("a", 3.0)
        assert metrics.get("a") == 5.0

    def test_increment_per_node(self):
        metrics = MetricsRegistry()
        metrics.increment("a", 2.0, node=1)
        metrics.increment("a", 1.0, node=2)
        assert metrics.get("a") == 3.0
        assert metrics.get("a", node=1) == 2.0
        assert metrics.get("a", node=2) == 1.0
        assert metrics.get("a", node=3) == 0.0

    def test_record_access_updates_total(self):
        metrics = MetricsRegistry()
        metrics.record_access("pull.local", node=0, count=3)
        metrics.record_access("pull.remote", node=1, count=2)
        assert metrics.get("access.pull.local") == 3
        assert metrics.get("access.pull.remote") == 2
        assert metrics.get("access.total") == 5

    def test_share(self):
        metrics = MetricsRegistry()
        metrics.increment("hits", 3)
        metrics.increment("total", 4)
        assert metrics.share("hits", "total") == pytest.approx(0.75)

    def test_share_with_zero_denominator(self):
        assert MetricsRegistry().share("a", "b") == 0.0

    def test_total_matching_prefix(self):
        metrics = MetricsRegistry()
        metrics.increment("access.pull.local", 1)
        metrics.increment("access.pull.remote", 2)
        metrics.increment("access.push.local", 4)
        assert metrics.total_matching("access.pull") == 3
        assert metrics.total_matching("access.") == 7

    def test_counters_returns_copy(self):
        metrics = MetricsRegistry()
        metrics.increment("a", 1)
        counters = metrics.counters()
        counters["a"] = 99
        assert metrics.get("a") == 1

    def test_nodes_listing(self):
        metrics = MetricsRegistry()
        metrics.increment("a", 1, node=3)
        metrics.increment("b", 1, node=1)
        assert list(metrics.nodes()) == [1, 3]

    def test_node_counters(self):
        metrics = MetricsRegistry()
        metrics.increment("a", 2, node=0)
        assert metrics.node_counters(0) == {"a": 2}
        assert metrics.node_counters(9) == {}

    def test_reset(self):
        metrics = MetricsRegistry()
        metrics.increment("a", 1, node=0)
        metrics.reset()
        assert metrics.get("a") == 0.0
        assert metrics.get("a", node=0) == 0.0

    def test_merge(self):
        first = MetricsRegistry()
        second = MetricsRegistry()
        first.increment("a", 1, node=0)
        second.increment("a", 2, node=0)
        second.increment("b", 5)
        first.merge(second)
        assert first.get("a") == 3
        assert first.get("b") == 5
        assert first.get("a", node=0) == 3

    def test_snapshot(self):
        metrics = MetricsRegistry()
        metrics.increment("x", 7)
        assert metrics.snapshot() == {"x": 7}
