"""Tests for the target sampling distributions."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.sampling.distributions import (
    CategoricalDistribution,
    UniformDistribution,
    UnigramDistribution,
    zipf_weights,
)


class TestProbabilitiesOf:
    """The vectorized batch probability lookup matches the scalar one."""

    @pytest.mark.parametrize("dist", [
        UniformDistribution(key_offset=10, support_size=5),
        CategoricalDistribution([1.0, 3.0, 6.0], key_offset=4),
        UnigramDistribution([5.0, 1.0, 2.0, 8.0], key_offset=0),
    ])
    def test_matches_scalar_probability(self, dist):
        keys = np.array([0, 4, 5, 6, 9, 10, 12, 14, 15, 100], dtype=np.int64)
        batch = dist.probabilities_of(keys)
        scalar = np.array([dist.probability(int(k)) for k in keys])
        np.testing.assert_array_equal(batch, scalar)

    def test_empty_batch(self):
        dist = UniformDistribution(0, 4)
        assert len(dist.probabilities_of(np.empty(0, dtype=np.int64))) == 0


class TestUniformDistribution:
    def test_probability_inside_and_outside_support(self):
        dist = UniformDistribution(key_offset=10, support_size=5)
        assert dist.probability(10) == pytest.approx(0.2)
        assert dist.probability(14) == pytest.approx(0.2)
        assert dist.probability(9) == 0.0
        assert dist.probability(15) == 0.0

    def test_probabilities_sum_to_one(self):
        dist = UniformDistribution(0, 7)
        assert dist.probabilities().sum() == pytest.approx(1.0)

    def test_samples_within_support(self):
        dist = UniformDistribution(key_offset=100, support_size=50)
        samples = dist.sample(np.random.default_rng(0), 1000)
        assert samples.min() >= 100
        assert samples.max() < 150

    def test_samples_are_roughly_uniform(self):
        dist = UniformDistribution(0, 10)
        samples = dist.sample(np.random.default_rng(1), 50_000)
        counts = np.bincount(samples, minlength=10) / 50_000
        np.testing.assert_allclose(counts, 0.1, atol=0.01)

    def test_support_keys(self):
        dist = UniformDistribution(key_offset=3, support_size=4)
        np.testing.assert_array_equal(dist.support_keys, [3, 4, 5, 6])

    def test_in_support_mask(self):
        dist = UniformDistribution(key_offset=3, support_size=4)
        mask = dist.in_support(np.array([2, 3, 6, 7]))
        assert mask.tolist() == [False, True, True, False]

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            UniformDistribution(0, 0)
        with pytest.raises(ValueError):
            UniformDistribution(-1, 5)

    def test_sample_negative_size_rejected(self):
        with pytest.raises(ValueError):
            UniformDistribution(0, 5).sample(np.random.default_rng(0), -1)


class TestCategoricalDistribution:
    def test_probabilities_follow_weights(self):
        dist = CategoricalDistribution([1.0, 3.0], key_offset=5)
        assert dist.probability(5) == pytest.approx(0.25)
        assert dist.probability(6) == pytest.approx(0.75)

    def test_key_offset_applied_to_samples(self):
        dist = CategoricalDistribution([1.0, 1.0], key_offset=100)
        samples = dist.sample(np.random.default_rng(0), 100)
        assert set(samples.tolist()) <= {100, 101}

    def test_rejects_bad_weights(self):
        with pytest.raises(ValueError):
            CategoricalDistribution([0.0, 0.0])
        with pytest.raises(ValueError):
            CategoricalDistribution([1.0, -1.0])

    def test_empirical_matches_target(self):
        weights = np.array([5.0, 3.0, 1.0, 1.0])
        dist = CategoricalDistribution(weights)
        samples = dist.sample(np.random.default_rng(2), 50_000)
        empirical = np.bincount(samples, minlength=4) / 50_000
        np.testing.assert_allclose(empirical, weights / weights.sum(), atol=0.01)

    def test_conditional_probabilities_renormalize(self):
        dist = CategoricalDistribution([1.0, 2.0, 3.0, 4.0])
        conditional = dist.conditional_probabilities(np.array([1, 3]))
        np.testing.assert_allclose(conditional, [2 / 6, 4 / 6])

    def test_conditional_probabilities_fall_back_to_uniform(self):
        """Keys entirely outside the support get a uniform distribution."""
        dist = CategoricalDistribution([1.0, 1.0], key_offset=0)
        conditional = dist.conditional_probabilities(np.array([10, 11, 12]))
        np.testing.assert_allclose(conditional, 1 / 3)


class TestUnigramDistribution:
    def test_power_smoothing_flattens_the_distribution(self):
        frequencies = np.array([100.0, 1.0])
        smoothed = UnigramDistribution(frequencies, power=0.75)
        raw = CategoricalDistribution(frequencies)
        assert smoothed.probability(0) < raw.probability(0)
        assert smoothed.probability(1) > raw.probability(1)

    def test_power_one_equals_frequencies(self):
        frequencies = np.array([4.0, 1.0])
        dist = UnigramDistribution(frequencies, power=1.0)
        assert dist.probability(0) == pytest.approx(0.8)

    def test_rejects_bad_frequencies(self):
        with pytest.raises(ValueError):
            UnigramDistribution(np.array([0.0, 0.0]))
        with pytest.raises(ValueError):
            UnigramDistribution(np.array([-1.0, 1.0]))


class TestZipfWeights:
    def test_monotonically_decreasing(self):
        weights = zipf_weights(100, 1.1)
        assert np.all(np.diff(weights) < 0)

    def test_exponent_zero_is_uniform(self):
        np.testing.assert_allclose(zipf_weights(10, 0.0), 1.0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            zipf_weights(0)


@settings(deadline=None, max_examples=25)
@given(
    support=st.integers(min_value=1, max_value=200),
    offset=st.integers(min_value=0, max_value=1000),
)
def test_probabilities_always_normalized(support, offset):
    for dist in (
        UniformDistribution(offset, support),
        CategoricalDistribution(np.random.default_rng(support).uniform(0.01, 1, support),
                                key_offset=offset),
    ):
        assert dist.probabilities().sum() == pytest.approx(1.0)
        assert dist.probabilities().min() >= 0
        samples = dist.sample(np.random.default_rng(0), 100)
        assert dist.in_support(samples).all()
