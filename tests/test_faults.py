"""Tests for the fault-tolerance subsystem (:mod:`repro.faults`).

Covers the three layers separately and end to end:

* cost model — :class:`FaultyNetworkModel` expectation-based loss pricing,
* recovery — :class:`CheckpointManager` rollback accounting and the
  :class:`FaultController` crash/failover/restore cycle on every
  architecture,
* access semantics — the retry/timeout gate of
  :class:`FaultTolerantParameterServer`,
* scenario integration — crash-storm / lossy-network / worker-kill presets
  complete, and a fault-capable run with no fired fault stays bit-identical
  to a fault-free run.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.management import ManagementPlan
from repro.core.nups import NuPS
from repro.faults import (
    CheckpointManager,
    DeadOwnerError,
    FaultConfig,
    FaultController,
    FaultTolerantParameterServer,
    FaultyNetworkModel,
    LossyNetwork,
    ServerCrashes,
    WorkerKill,
)
from repro.ps.classic import ClassicPS
from repro.ps.relocation import RelocationPS
from repro.ps.replication import ReplicationProtocol, ReplicationPS
from repro.ps.storage import ParameterStore
from repro.runner.config import ExperimentConfig
from repro.runner.experiment import run_experiment
from repro.runner.systems import make_ps_factory
from repro.runner.workloads import make_task
from repro.scenarios import Scenario, make_scenario
from repro.simulation.cluster import Cluster, ClusterConfig
from repro.simulation.network import NetworkModel


NUM_KEYS = 60
VALUE_LENGTH = 3


def _network() -> NetworkModel:
    return NetworkModel(latency=10e-6, bandwidth=1e9,
                        message_handling_cost=1e-6, local_access_cost=1e-7,
                        compute_per_step=20e-6)


def _cluster(num_nodes=3, workers_per_node=2) -> Cluster:
    return Cluster(ClusterConfig(num_nodes=num_nodes,
                                 workers_per_node=workers_per_node,
                                 network=_network()))


ARCHITECTURES = ["classic", "relocation", "replication-essp", "nups"]


def _build(architecture: str):
    cluster = _cluster()
    store = ParameterStore(NUM_KEYS, VALUE_LENGTH, seed=3, init_scale=0.3)
    if architecture == "classic":
        ps = ClassicPS(store, cluster)
    elif architecture == "relocation":
        ps = RelocationPS(store, cluster)
    elif architecture == "replication-essp":
        ps = ReplicationPS(store, cluster, protocol=ReplicationProtocol.ESSP,
                           staleness=2)
    elif architecture == "nups":
        plan = ManagementPlan(NUM_KEYS, np.arange(0, NUM_KEYS, 5))
        ps = NuPS(store, cluster, plan=plan, sync_interval=0.0005)
    else:  # pragma: no cover - parametrization guard
        raise ValueError(architecture)
    return ps, cluster, store


def _check_single_active_owner(ps, cluster) -> None:
    """Every key is owned by exactly one *active* node."""
    owned = [np.asarray(ps.keys_owned_by(node_id), dtype=np.int64)
             for node_id in cluster.active_nodes]
    everything = (np.concatenate(owned) if owned
                  else np.empty(0, dtype=np.int64))
    np.testing.assert_array_equal(np.sort(everything),
                                  np.arange(ps.store.num_keys))


# --------------------------------------------------------- FaultyNetworkModel
class TestFaultyNetworkModel:
    def test_zero_loss_matches_base(self):
        base = _network()
        lossless = FaultyNetworkModel.wrap(base)
        for payload in (0, 100, 4096):
            assert lossless.message_cost(payload) == base.message_cost(payload)
            assert lossless.server_occupancy(payload) == \
                base.server_occupancy(payload)

    def test_expected_attempts_pricing(self):
        base = _network()
        lossy = FaultyNetworkModel.wrap(base, loss_rate=0.2, timeout=5e-4)
        attempts = 1.0 / (1.0 - 0.2)
        assert lossy.expected_attempts == pytest.approx(attempts)
        expected = attempts * base.message_cost(64) + (attempts - 1) * 5e-4
        assert lossy.message_cost(64) == pytest.approx(expected)

    def test_loss_propagates_to_derived_costs(self):
        base = _network()
        lossy = FaultyNetworkModel.wrap(base, loss_rate=0.3)
        # remote_access_cost is defined via message_cost, so the override
        # must propagate without further changes.
        assert lossy.remote_access_cost(12) > base.remote_access_cost(12)

    def test_duplication_inflates_occupancy_only(self):
        base = _network()
        dup = FaultyNetworkModel.wrap(base, duplication_rate=0.5)
        assert dup.message_cost(64) == base.message_cost(64)
        assert dup.server_occupancy(64) == pytest.approx(
            1.5 * base.server_occupancy(64)
        )
        assert dup.relocation_occupancy(64) == pytest.approx(
            1.5 * base.relocation_occupancy(64)
        )

    def test_validation(self):
        base = _network()
        with pytest.raises(ValueError, match="loss_rate"):
            FaultyNetworkModel.wrap(base, loss_rate=1.0)
        with pytest.raises(ValueError, match="duplication_rate"):
            FaultyNetworkModel.wrap(base, duplication_rate=-0.1)
        with pytest.raises(ValueError, match="timeout"):
            FaultyNetworkModel.wrap(base, timeout=-1e-3)


# ---------------------------------------------------------- CheckpointManager
class TestCheckpointManager:
    def test_restore_counts_discarded_updates(self):
        cluster = _cluster()
        store = ParameterStore(20, 2, seed=1, init_scale=0.5)
        manager = CheckpointManager(store, cluster, interval=None)
        before = store.values[[3, 4]].copy()
        delta = np.ones((2, 2), dtype=np.float32)
        store.add(np.array([3, 4]), delta)
        store.add(np.array([3, 4]), delta)
        assert manager.restore(np.array([3, 4])) == 4
        np.testing.assert_array_equal(store.values[[3, 4]], before)
        # Version counters roll back too: restoring twice discards nothing.
        assert manager.restore(np.array([3, 4])) == 0

    def test_restore_empty_keys(self):
        cluster = _cluster()
        store = ParameterStore(8, 2)
        manager = CheckpointManager(store, cluster)
        assert manager.restore(np.empty(0, dtype=np.int64)) == 0

    def test_disabled_interval_keeps_t0_snapshot(self):
        cluster = _cluster()
        store = ParameterStore(8, 2, seed=2, init_scale=0.5)
        manager = CheckpointManager(store, cluster, interval=None)
        assert not manager.maybe_checkpoint(100.0)
        assert manager.checkpoints_taken == 0
        assert manager.snapshot_time == 0.0

    def test_periodic_firing_and_burst_collapse(self):
        cluster = _cluster()
        store = ParameterStore(8, 2)
        manager = CheckpointManager(store, cluster, interval=0.01)
        assert not manager.maybe_checkpoint(0.005)
        assert manager.maybe_checkpoint(0.011)
        assert manager.checkpoints_taken == 1
        # Five overdue intervals collapse into one snapshot (they would all
        # be byte-identical).
        assert manager.maybe_checkpoint(0.065)
        assert manager.checkpoints_taken == 2
        assert cluster.metrics.get("faults.checkpoints") == 2

    def test_take_charges_background_threads(self):
        cluster = _cluster()
        store = ParameterStore(8, 2)
        manager = CheckpointManager(store, cluster, interval=0.01)
        manager.take(0.02)
        for node in cluster.nodes:
            assert node.background_clock.now > 0.02

    def test_interval_validation(self):
        with pytest.raises(ValueError, match="interval must be positive"):
            CheckpointManager(ParameterStore(4, 1), _cluster(), interval=0.0)


# ------------------------------------------------------------ FaultController
class TestFaultController:
    @pytest.mark.parametrize("architecture", ARCHITECTURES)
    def test_crash_re_homes_keys_to_survivors(self, architecture):
        ps, cluster, store = _build(architecture)
        controller = FaultController(ps)
        victim = 1
        lost = np.asarray(ps.keys_owned_by(victim))
        assert len(lost) > 0
        t_recovered = controller.crash_node(victim, now=0.001)
        assert t_recovered > 0.001
        assert victim in cluster.failed
        assert victim in controller.down
        _check_single_active_owner(ps, cluster)
        assert cluster.metrics.get("faults.crashes") == 1
        assert cluster.metrics.get("faults.recovery_time") > 0

    @pytest.mark.parametrize("architecture", ARCHITECTURES)
    def test_restore_rejoins_the_partition(self, architecture):
        ps, cluster, store = _build(architecture)
        controller = FaultController(ps)
        before = {node_id: set(np.asarray(ps.keys_owned_by(node_id)).tolist())
                  for node_id in range(cluster.num_nodes)}
        controller.crash_node(1, now=0.001)
        controller.restore_node(1, now=0.05)
        assert 1 not in cluster.failed
        assert not controller.down
        _check_single_active_owner(ps, cluster)
        if architecture in ("classic", "replication-essp"):
            # Static partitioners return to the pre-fault assignment; the
            # relocation-based architectures (Lapse, NuPS) legitimately keep
            # the re-homed keys until access locality moves them back.
            after = {nid: set(np.asarray(ps.keys_owned_by(nid)).tolist())
                     for nid in range(cluster.num_nodes)}
            assert after == before
        assert cluster.metrics.get("faults.restores") == 1

    def test_double_crash_is_idempotent(self):
        ps, cluster, _ = _build("classic")
        controller = FaultController(ps)
        t1 = controller.crash_node(1, now=0.001)
        t2 = controller.crash_node(1, now=0.002)
        assert t1 == t2
        assert cluster.metrics.get("faults.crashes") == 1

    def test_overlapping_crashes_keep_single_owner(self):
        ps, cluster, _ = _build("classic")
        controller = FaultController(ps)
        controller.crash_node(1, now=0.001)
        controller.crash_node(2, now=0.002)
        _check_single_active_owner(ps, cluster)
        controller.restore_node(1, now=0.05)
        _check_single_active_owner(ps, cluster)
        controller.restore_node(2, now=0.06)
        _check_single_active_owner(ps, cluster)
        assert ps.keys_owned_by(1).size and ps.keys_owned_by(2).size

    def test_cannot_fail_last_survivor(self):
        ps, cluster, _ = _build("classic")
        controller = FaultController(ps)
        controller.crash_node(1, now=0.001)
        controller.crash_node(2, now=0.002)
        with pytest.raises(ValueError, match="last"):
            controller.crash_node(0, now=0.003)

    def test_restart_recovery_loses_work(self):
        ps, cluster, store = _build("classic")
        controller = FaultController(ps, FaultConfig(recovery="restart"))
        worker = cluster.worker(0, 0)
        victim_keys = np.asarray(ps.keys_owned_by(1))[:5]
        before = store.values[victim_keys].copy()
        deltas = np.ones((len(victim_keys), VALUE_LENGTH), dtype=np.float32)
        for _ in range(3):
            ps.push(worker, victim_keys, deltas)
        controller.crash_node(1, now=cluster.time)
        # Restart-from-scratch rolls the victim's keys back to t0 ...
        np.testing.assert_array_equal(store.values[victim_keys], before)
        # ... and the version counters price the discarded work.
        assert cluster.metrics.get("faults.lost_updates") == 3 * len(victim_keys)
        assert cluster.metrics.get("faults.keys_recovered_from_checkpoint") > 0

    def test_checkpoint_recovery_keeps_checkpointed_work(self):
        ps, cluster, store = _build("classic")
        controller = FaultController(
            ps, FaultConfig(recovery="checkpoint", checkpoint_interval=0.001)
        )
        worker = cluster.worker(0, 0)
        victim_keys = np.asarray(ps.keys_owned_by(1))[:5]
        deltas = np.ones((len(victim_keys), VALUE_LENGTH), dtype=np.float32)
        ps.push(worker, victim_keys, deltas)
        after_push = store.values[victim_keys].copy()
        controller.on_round(cluster.time + 0.01)  # checkpoint covers the push
        controller.crash_node(1, now=cluster.time + 0.02)
        np.testing.assert_array_equal(store.values[victim_keys], after_push)
        assert cluster.metrics.get("faults.lost_updates") == 0
        assert controller.checkpoint.checkpoints_taken >= 1

    def test_replication_recovers_values_from_replicas(self):
        ps, cluster, store = _build("replication-essp")
        controller = FaultController(ps, FaultConfig(recovery="restart"))
        worker = cluster.worker(0, 0)
        victim_keys = np.asarray(ps.keys_owned_by(1))[:6]
        before = store.values[victim_keys].copy()
        deltas = np.ones((len(victim_keys), VALUE_LENGTH), dtype=np.float32)
        ps.push(worker, victim_keys, deltas)
        controller.crash_node(1, now=cluster.time + 0.02)
        # The pusher's replica (which already absorbed the delta) covers the
        # crashed keys: no rollback to t0 despite the restart-from-scratch
        # fallback — the delta survives the crash.
        np.testing.assert_allclose(store.values[victim_keys], before + 1.0,
                                   rtol=1e-6)
        assert cluster.metrics.get("faults.keys_recovered_from_replicas") > 0

    def test_survivors_pay_for_the_state_transfer(self):
        ps, cluster, _ = _build("classic")
        controller = FaultController(ps)
        controller.crash_node(1, now=0.01)
        for node_id in cluster.active_nodes:
            assert cluster.node(node_id).background_clock.now > 0.01

    def test_config_validation(self):
        with pytest.raises(ValueError, match="recovery mechanism"):
            FaultConfig(recovery="wishful-thinking")
        with pytest.raises(ValueError, match="checkpoint_interval"):
            FaultConfig(checkpoint_interval=0.0)
        with pytest.raises(ValueError, match="retry_backoff"):
            FaultConfig(retry_backoff=0.0)
        with pytest.raises(ValueError, match="max_retries"):
            FaultConfig(max_retries=-1)


# ------------------------------------------------------ retry/timeout proxy
class TestFaultTolerantProxy:
    def _crashed(self, config=None):
        ps, cluster, store = _build("classic")
        proxy = FaultTolerantParameterServer(ps)
        controller = FaultController(ps, config)
        proxy.controller = controller
        t_recovered = controller.crash_node(1, now=cluster.time)
        moved = np.flatnonzero(controller.moved_mask(1))
        return proxy, controller, cluster, moved, t_recovered

    def test_gate_is_transparent_without_faults(self):
        ps, cluster, _ = _build("classic")
        proxy = FaultTolerantParameterServer(ps)
        worker = cluster.worker(0, 0)
        before = worker.clock.now
        values = proxy.pull(worker, np.array([1, 2, 3]))
        assert values.shape == (3, VALUE_LENGTH)
        assert cluster.metrics.get("faults.retries") == 0
        assert worker.clock.now > before  # the pull itself is still charged

    def test_untouched_keys_pass_through_mid_recovery(self):
        proxy, controller, cluster, moved, _ = self._crashed()
        worker = cluster.worker(0, 0)
        safe = np.setdiff1d(np.arange(NUM_KEYS), moved)[:3]
        proxy.pull(worker, safe)
        assert cluster.metrics.get("faults.retries") == 0
        assert cluster.metrics.get("faults.timeouts") == 0

    def test_retries_bridge_a_short_recovery(self):
        # Default budget (1ms * (2^3 - 1) = 7ms) covers the recovery gap.
        proxy, controller, cluster, moved, t_recovered = self._crashed()
        worker = cluster.worker(0, 0)
        values = proxy.pull(worker, moved[:2])
        assert values.shape == (2, VALUE_LENGTH)
        assert worker.clock.now >= t_recovered
        assert cluster.metrics.get("faults.retries") >= 1
        assert cluster.metrics.get("faults.timeouts") == 0

    def test_times_out_when_budget_cannot_bridge(self):
        config = FaultConfig(detection_timeout=0.05, max_retries=2,
                             retry_backoff=1e-6)
        proxy, controller, cluster, moved, _ = self._crashed(config)
        worker = cluster.worker(0, 0)
        before = worker.clock.now
        with pytest.raises(DeadOwnerError, match="gave up"):
            proxy.pull(worker, moved[:2])
        # The failed attempts still cost their backoff delays.
        assert worker.clock.now > before
        assert cluster.metrics.get("faults.timeouts") == 1

    def test_gate_clears_after_recovery_time(self):
        proxy, controller, cluster, moved, t_recovered = self._crashed()
        worker = cluster.worker(0, 0)
        worker.clock.advance_to(t_recovered + 1e-6)
        proxy.pull(worker, moved[:2])
        assert cluster.metrics.get("faults.retries") == 0

    def test_delegation(self):
        ps, cluster, _ = _build("classic")
        proxy = FaultTolerantParameterServer(ps)
        assert proxy.inner is ps
        assert proxy.store is ps.store
        assert proxy.name == ps.name
        assert proxy.describe() == ps.describe()
        assert proxy.direct_point_charger() is None


# ------------------------------------------------------ scenario integration
def _small_config(epochs=3, scenario=None, seed=0):
    return ExperimentConfig(
        cluster=ClusterConfig(num_nodes=3, workers_per_node=2),
        epochs=epochs, chunk_size=8, seed=seed, scenario=scenario,
    )


def _run(scenario=None, system="classic", epochs=3, seed=0):
    task = make_task("kge", scale="test")
    return run_experiment(
        task, make_ps_factory(system), _small_config(epochs, scenario, seed)
    )


class TestFaultScenarios:
    @pytest.mark.parametrize("system", ["classic", "lapse", "essp", "nups"])
    def test_crash_storm_completes_everywhere(self, system):
        result = _run(scenario=make_scenario("crash-storm"), system=system)
        assert result.epochs_completed == 3
        assert result.metrics["faults.crashes"] >= 1
        assert result.metrics["faults.restores"] >= 1
        assert result.metrics["faults.recovery_time"] > 0

    def test_unfired_faults_leave_runs_bit_identical(self):
        # The proxy is installed (the scenario declares fault capability)
        # but no crash ever fires and periodic checkpointing is off
        # (restart recovery): timing and quality must match a fault-free
        # run exactly, not approximately.
        armed = Scenario("armed", [ServerCrashes(
            epochs=(99,), fault_config=FaultConfig(recovery="restart")
        )])
        with_proxy = _run(scenario=armed)
        baseline = _run(scenario=None)
        assert with_proxy.qualities() == baseline.qualities()
        assert with_proxy.total_time == baseline.total_time

    def test_periodic_checkpoints_cost_background_time_only(self):
        # Checkpoint-armed but crash-free: snapshots charge background
        # threads, never the training math.
        armed = Scenario("armed", [ServerCrashes(epochs=(99,))])
        result = _run(scenario=armed)
        baseline = _run(scenario=None)
        assert result.metrics["faults.checkpoints"] > 0
        assert result.qualities() == baseline.qualities()

    def test_crash_storm_is_deterministic(self):
        first = _run(scenario=make_scenario("crash-storm"))
        second = _run(scenario=make_scenario("crash-storm"))
        assert first.qualities() == second.qualities()
        assert first.total_time == second.total_time
        assert first.metrics["faults.crashes"] == \
            second.metrics["faults.crashes"]

    def test_lossy_network_costs_time_not_quality(self):
        lossy = _run(scenario=make_scenario("lossy-network", loss_rate=0.3))
        baseline = _run(scenario=None)
        assert lossy.metrics["faults.lossy_epochs"] >= 1
        assert lossy.total_time > baseline.total_time * 1.05
        # Loss is priced in expectation: the math is untouched.
        assert lossy.qualities() == baseline.qualities()

    def test_rolling_restart_cycles_through_nodes(self):
        result = _run(scenario=make_scenario("rolling-restart"))
        assert result.epochs_completed == 3
        assert result.metrics["faults.crashes"] == 3  # one per epoch
        assert result.metrics["faults.restores"] == 3

    def test_worker_kill_finishes_short_handed(self):
        scenario = Scenario("kill", [WorkerKill(count=2, at_round=1)])
        result = _run(scenario=scenario, epochs=2)
        assert result.epochs_completed == 2
        assert result.metrics["faults.worker_kills"] == 2

    def test_lossy_window_validation(self):
        with pytest.raises(ValueError, match="until_epoch"):
            LossyNetwork(from_epoch=2, until_epoch=2)
        with pytest.raises(ValueError, match="from_epoch"):
            LossyNetwork(from_epoch=-1)

    def test_lossy_window_restores_base_model_outside(self):
        scenario = Scenario("window", [
            LossyNetwork(loss_rate=0.4, from_epoch=1, until_epoch=2)
        ])
        windowed = _run(scenario=scenario)
        baseline = _run(scenario=None)
        assert windowed.metrics["faults.lossy_epochs"] == 1
        durations = [rec.epoch_duration for rec in windowed.records]
        base_durations = [rec.epoch_duration for rec in baseline.records]
        # Only the lossy epoch is slower; epochs outside the window run on
        # the restored base model at baseline cost.
        assert durations[0] == base_durations[0]
        assert durations[1] > base_durations[1] * 1.05
        assert durations[2] == pytest.approx(base_durations[2], rel=0.01)

    def test_presets_registered(self):
        from repro.scenarios.presets import SCENARIO_NAMES

        assert {"crash-storm", "rolling-restart", "lossy-network"} <= set(
            SCENARIO_NAMES
        )
