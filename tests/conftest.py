"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.management import ManagementPlan
from repro.core.nups import NuPS
from repro.ps.storage import ParameterStore
from repro.simulation.cluster import Cluster, ClusterConfig
from repro.simulation.network import NetworkModel


@pytest.fixture
def network() -> NetworkModel:
    """A network model with easy-to-reason-about constants."""
    return NetworkModel(
        latency=10e-6,
        bandwidth=1e9,
        message_handling_cost=1e-6,
        local_access_cost=1e-7,
        compute_per_step=20e-6,
    )


@pytest.fixture
def cluster(network: NetworkModel) -> Cluster:
    """A 4-node cluster with 2 workers per node."""
    return Cluster(ClusterConfig(num_nodes=4, workers_per_node=2, network=network))


@pytest.fixture
def single_node_cluster(network: NetworkModel) -> Cluster:
    return Cluster(ClusterConfig(num_nodes=1, workers_per_node=4, network=network))


@pytest.fixture
def store() -> ParameterStore:
    """A small parameter store with reproducible random values."""
    return ParameterStore(num_keys=100, value_length=4, seed=7, init_scale=0.5)


@pytest.fixture
def nups(store: ParameterStore, cluster: Cluster) -> NuPS:
    """A NuPS instance replicating the first five keys."""
    plan = ManagementPlan(store.num_keys, np.arange(5))
    return NuPS(store, cluster, plan=plan, sync_interval=0.01, seed=3)
