"""Tests for the ComplEx knowledge graph embeddings task."""

import numpy as np
import pytest

from repro.core.sampling.conformity import ConformityLevel
from repro.data.knowledge_graph import generate_knowledge_graph
from repro.ml.kge import ComplExModel, KGETask
from repro.ps.local import SingleNodePS
from repro.simulation.cluster import Cluster, ClusterConfig


@pytest.fixture(scope="module")
def graph():
    return generate_knowledge_graph(
        num_entities=120, num_relations=6, num_triples=900, seed=4
    )


@pytest.fixture
def task(graph):
    return KGETask(graph, dim=4, num_negatives=2)


class TestComplExModel:
    def setup_method(self):
        self.model = ComplExModel(dim=3)
        rng = np.random.default_rng(0)
        self.s = rng.normal(size=6).astype(np.float32)
        self.r = rng.normal(size=6).astype(np.float32)
        self.o = rng.normal(size=6).astype(np.float32)

    def test_score_matches_complex_arithmetic(self):
        s_c = self.model.to_complex(self.s)
        r_c = self.model.to_complex(self.r)
        o_c = self.model.to_complex(self.o)
        expected = float(np.real(np.sum(s_c * r_c * np.conj(o_c))))
        assert self.model.score(self.s, self.r, self.o) == pytest.approx(expected, rel=1e-5)

    def test_score_against_all_matches_pointwise(self):
        rng = np.random.default_rng(1)
        entities = rng.normal(size=(10, 6)).astype(np.float32)
        scores = self.model.score_against_all(self.s, self.r, entities)
        for i in range(10):
            assert scores[i] == pytest.approx(
                self.model.score(self.s, self.r, entities[i]), rel=1e-4
            )

    def test_score_all_subjects_matches_pointwise(self):
        rng = np.random.default_rng(2)
        entities = rng.normal(size=(10, 6)).astype(np.float32)
        scores = self.model.score_all_subjects(self.r, self.o, entities)
        for i in range(10):
            assert scores[i] == pytest.approx(
                self.model.score(entities[i], self.r, self.o), rel=1e-4
            )

    def test_gradients_match_numerical_gradients(self):
        """Analytical gradients of the score agree with finite differences."""
        dscore = 1.0
        grad_s, grad_r, grad_o = self.model.gradients(self.s, self.r, self.o, dscore)
        eps = 1e-3

        def numerical(vector, index, which):
            perturbed = {"s": self.s.copy(), "r": self.r.copy(), "o": self.o.copy()}
            perturbed[which][index] += eps
            plus = self.model.score(perturbed["s"], perturbed["r"], perturbed["o"])
            perturbed[which][index] -= 2 * eps
            minus = self.model.score(perturbed["s"], perturbed["r"], perturbed["o"])
            return (plus - minus) / (2 * eps)

        for index in range(6):
            assert grad_s[index] == pytest.approx(numerical(self.s, index, "s"), abs=1e-2)
            assert grad_r[index] == pytest.approx(numerical(self.r, index, "r"), abs=1e-2)
            assert grad_o[index] == pytest.approx(numerical(self.o, index, "o"), abs=1e-2)

    def test_gradients_scale_with_dscore(self):
        grad_1 = self.model.gradients(self.s, self.r, self.o, 1.0)
        grad_2 = self.model.gradients(self.s, self.r, self.o, 2.0)
        for a, b in zip(grad_1, grad_2):
            np.testing.assert_allclose(2 * a, b, rtol=1e-5)

    def test_invalid_dim_rejected(self):
        with pytest.raises(ValueError):
            ComplExModel(0)


class TestKGETaskLayout:
    def test_key_space_covers_entities_and_relations(self, task, graph):
        assert task.num_keys() == graph.num_entities + graph.num_relations
        assert task.relation_key(0) == graph.num_entities

    def test_value_length_includes_adagrad_state(self, task):
        assert task.value_length() == 4 * task.dim

    def test_store_initialization(self, task):
        store = task.create_store(seed=0)
        weights = store.values[:, : 2 * task.dim]
        accumulators = store.values[:, 2 * task.dim:]
        assert np.abs(weights).max() > 0
        assert np.all(accumulators == 0)

    def test_access_counts_cover_all_keys(self, task, graph):
        counts = task.access_counts()
        assert len(counts) == task.num_keys()
        assert counts[: graph.num_entities].sum() == pytest.approx(
            2 * graph.num_train
        )
        assert counts[graph.num_entities:].sum() == pytest.approx(graph.num_train)

    def test_sampling_access_counts_are_uniform_over_entities(self, task, graph):
        counts = task.sampling_access_counts()
        entity_counts = counts[: graph.num_entities]
        assert np.allclose(entity_counts, entity_counts[0])
        assert counts[graph.num_entities:].sum() == 0

    def test_shards_partition_the_training_data(self, task, graph):
        shards = task.create_shards(num_nodes=3, workers_per_node=2, seed=0)
        all_indices = np.concatenate([w for node in shards for w in node])
        assert sorted(all_indices.tolist()) == list(range(graph.num_train))


class TestKGETraining:
    def _train(self, task, epochs=2, seed=0):
        cluster = Cluster(ClusterConfig(num_nodes=1, workers_per_node=2))
        store = task.create_store(seed=seed)
        ps = SingleNodePS(store, cluster)
        task.register_sampling(ps)
        shards = task.create_shards(1, 2, seed=seed)
        rng = np.random.default_rng(seed)
        initial = task.evaluate(store)
        for _ in range(epochs):
            for worker_id, shard in enumerate(shards[0]):
                worker = cluster.worker(0, worker_id)
                for start in range(0, len(shard), 16):
                    task.process_chunk(ps, worker, shard[start: start + 16], rng)
        return initial, task.evaluate(store)

    def test_training_improves_filtered_mrr(self, graph):
        task = KGETask(graph, dim=4, num_negatives=2, learning_rate=0.2)
        initial, final = self._train(task, epochs=3)
        assert final["mrr_filtered"] > initial["mrr_filtered"]
        assert final["mrr_filtered"] > 2 * initial["mrr_filtered"]

    def test_requires_sampling_registration(self, task):
        cluster = Cluster(ClusterConfig(num_nodes=1, workers_per_node=1))
        store = task.create_store()
        ps = SingleNodePS(store, cluster)
        with pytest.raises(RuntimeError):
            task.process_chunk(ps, cluster.worker(0, 0), np.array([0, 1]),
                               np.random.default_rng(0))

    def test_adagrad_accumulators_grow_during_training(self, graph):
        task = KGETask(graph, dim=4, num_negatives=2)
        cluster = Cluster(ClusterConfig(num_nodes=1, workers_per_node=1))
        store = task.create_store()
        ps = SingleNodePS(store, cluster)
        task.register_sampling(ps)
        task.process_chunk(ps, cluster.worker(0, 0), np.arange(50), np.random.default_rng(0))
        accumulators = store.values[:, 2 * task.dim:]
        assert accumulators.max() > 0
        assert accumulators.min() >= 0

    def test_evaluation_metrics_well_formed(self, task):
        store = task.create_store()
        metrics = task.evaluate(store)
        assert 0.0 <= metrics["mrr_filtered"] <= 1.0
        assert 0.0 <= metrics["hits_at_10"] <= 1.0

    def test_filtered_rank_excludes_known_true_triples(self):
        scores = np.array([5.0, 4.0, 3.0, 2.0, 1.0])
        # Without filtering, target 4 ranks 5th; entities 0-2 are known true
        # and must be filtered out, leaving rank 2 (behind entity 3 only).
        rank = KGETask._filtered_rank(scores, target=4, known_true={0, 1, 2})
        assert rank == 2

    def test_filtered_rank_keeps_target_itself(self):
        scores = np.array([1.0, 2.0])
        assert KGETask._filtered_rank(scores, target=1, known_true={1}) == 1

    def test_sampling_level_is_passed_to_registration(self, graph, store):
        task = KGETask(graph, dim=4, sampling_level=ConformityLevel.NON_CONFORM)
        assert task.sampling_level is ConformityLevel.NON_CONFORM
