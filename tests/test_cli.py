"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.runner.systems import SYSTEM_NAMES


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_system(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--system", "not-a-ps"])

    def test_rejects_unknown_task(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--task", "not-a-task"])

    def test_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.task == "kge"
        assert args.system == "nups"
        assert args.scale == "test"
        assert args.execution_backend is None
        assert args.storage_backend is None
        assert args.trace is None

    def test_backend_flags_round_trip(self):
        args = build_parser().parse_args([
            "run", "--execution-backend", "parallel",
            "--storage-backend", "sparse",
        ])
        assert args.execution_backend == "parallel"
        assert args.storage_backend == "sparse"
        args = build_parser().parse_args([
            "compare", "--execution-backend", "sequential",
            "--storage-backend", "dense",
        ])
        assert args.execution_backend == "sequential"
        assert args.storage_backend == "dense"

    def test_rejects_unknown_backends(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--execution-backend", "gpu"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--storage-backend", "mmap"])

    def test_trace_flag_round_trip(self):
        from pathlib import Path

        args = build_parser().parse_args(["run", "--trace", "out.jsonl"])
        assert args.trace == Path("out.jsonl")
        args = build_parser().parse_args(["trace", "out.jsonl",
                                          "--chrome", "c.json", "--top", "3"])
        assert args.file == Path("out.jsonl")
        assert args.chrome == Path("c.json")
        assert args.top == 3


class TestCommands:
    def test_systems_lists_all_registered_systems(self, capsys):
        assert main(["systems"]) == 0
        output = capsys.readouterr().out.strip().splitlines()
        assert set(output) == set(SYSTEM_NAMES)

    def test_tasks_lists_the_three_workloads(self, capsys):
        assert main(["tasks"]) == 0
        output = capsys.readouterr().out.strip().splitlines()
        assert output == ["kge", "matrix_factorization", "word_vectors"]

    def test_skew_prints_statistics(self, capsys):
        assert main(["skew", "--task", "matrix_factorization"]) == 0
        output = capsys.readouterr().out
        assert "sampling_share" in output
        assert "top_share" in output

    def test_run_single_system(self, capsys):
        exit_code = main([
            "run", "--task", "matrix_factorization", "--system", "nups",
            "--nodes", "2", "--workers", "2", "--epochs", "1",
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "nups" in output
        assert "epoch_time_s" in output

    def test_run_with_explicit_backends(self, capsys):
        exit_code = main([
            "run", "--task", "matrix_factorization", "--system", "nups",
            "--nodes", "2", "--workers", "2", "--epochs", "1",
            "--execution-backend", "sequential",
            "--storage-backend", "sparse",
        ])
        assert exit_code == 0
        assert "epoch_time_s" in capsys.readouterr().out

    def test_backend_flags_do_not_change_results(self, capsys):
        """CLI backend selection is bit-transparent (same seed, same table)."""
        def table(backend):
            assert main([
                "run", "--task", "matrix_factorization", "--system", "lapse",
                "--nodes", "2", "--workers", "2", "--epochs", "1",
                "--execution-backend", backend,
            ]) == 0
            return capsys.readouterr().out

        assert table("sequential") == table("fused")

    def test_compare_reports_speedups(self, capsys):
        exit_code = main([
            "compare", "--task", "matrix_factorization",
            "--systems", "single-node", "nups",
            "--nodes", "2", "--workers", "2", "--epochs", "1",
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "raw speedup" in output
        assert "single-node" in output and "nups" in output
