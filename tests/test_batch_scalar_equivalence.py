"""Scalar/vector equivalence suite for the batch charging fast paths.

The relocation, replication and NuPS parameter servers each have a vectorized
batch fast path (the default) and the original per-key scalar path kept
behind ``batch_charging=False``. The batch paths are built on exact
left-to-right prefix sums (:mod:`repro.simulation.clock`), so the two paths
must produce *bit-identical* simulated clocks and *identical* metrics
counters on any workload. This suite replays one deterministic workload —
with duplicate keys, relocation waits, stale replicas and sampling — on both
paths, per PS architecture, and asserts exact equality.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.management import ManagementPlan
from repro.core.nups import NuPS
from repro.core.sampling.conformity import ConformityLevel
from repro.core.sampling.distributions import CategoricalDistribution
from repro.core.sampling.manager import SamplingConfig
from repro.core.sampling.schemes import SchemeConfig
from repro.ps.relocation import RelocationPS
from repro.ps.replication import ReplicationProtocol, ReplicationPS
from repro.ps.storage import ParameterStore
from repro.simulation.cluster import Cluster, ClusterConfig

NUM_KEYS = 160
VALUE_LENGTH = 4
NUM_NODES = 3
WORKERS_PER_NODE = 2
ROUNDS = 5
CHUNK = 12


def _make_cluster() -> Cluster:
    return Cluster(ClusterConfig(num_nodes=NUM_NODES, workers_per_node=WORKERS_PER_NODE))


def _make_store() -> ParameterStore:
    return ParameterStore(NUM_KEYS, VALUE_LENGTH, seed=7, init_scale=0.1)


def _workload(seed: int = 3):
    """A deterministic per-(round, worker) op list with skewed, duplicate keys."""
    rng = np.random.default_rng(seed)
    weights = 1.0 / np.arange(1, NUM_KEYS + 1) ** 1.2
    probs = weights / weights.sum()
    ops = []
    for round_id in range(ROUNDS):
        for node in range(NUM_NODES):
            for worker in range(WORKERS_PER_NODE):
                keys = rng.choice(NUM_KEYS, size=CHUNK, p=probs).astype(np.int64)
                deltas = rng.normal(0, 0.01, size=(CHUNK, VALUE_LENGTH)).astype(np.float32)
                ops.append((round_id, node, worker, keys, deltas))
    return ops


def _drive(ps, cluster, sampling: bool = False, dist_id: int | None = None):
    """Replay the workload: localize-ahead, pull, push, clock, sampling."""
    pulled = []
    for _, node, worker_id, keys, deltas in _workload():
        worker = cluster.worker(node, worker_id)
        # Localize the chunk right before accessing it so that in-flight
        # relocations force arrival waits on the batch path.
        ps.localize(worker, keys)
        pulled.append(ps.pull(worker, keys))
        ps.push(worker, keys, deltas)
        if sampling and dist_id is not None:
            handle = ps.prepare_sample(worker, dist_id, 6)
            result = ps.pull_sample(worker, handle, 4)
            pulled.append(result.values)
            ps.pull_sample(worker, handle)  # drain the rest
        ps.advance_clock(worker)
        ps.housekeeping(cluster.time)
    ps.finish_epoch()
    return pulled


def _assert_identical(cluster_a: Cluster, cluster_b: Cluster,
                      pulled_a, pulled_b, store_a, store_b) -> None:
    for node_a, node_b in zip(cluster_a.nodes, cluster_b.nodes):
        for clock_a, clock_b in zip(node_a.worker_clocks, node_b.worker_clocks):
            assert clock_a.now == clock_b.now  # bit-identical, no tolerance
        assert node_a.background_clock.now == node_b.background_clock.now
        assert node_a.server_clock.now == node_b.server_clock.now
    assert cluster_a.metrics.counters() == cluster_b.metrics.counters()
    for node in range(cluster_a.num_nodes):
        assert cluster_a.metrics.node_counters(node) == \
            cluster_b.metrics.node_counters(node)
    for values_a, values_b in zip(pulled_a, pulled_b):
        np.testing.assert_array_equal(values_a, values_b)
    np.testing.assert_array_equal(store_a.values, store_b.values)


def _run_pair(factory, sampling: bool = False):
    results = {}
    for batch in (True, False):
        cluster = _make_cluster()
        store = _make_store()
        ps = factory(store, cluster, batch)
        dist_id = None
        if sampling:
            weights = 1.0 / np.arange(1, NUM_KEYS + 1) ** 0.9
            dist_id = ps.register_distribution(
                CategoricalDistribution(weights), ConformityLevel.BOUNDED
            )
        pulled = _drive(ps, cluster, sampling=sampling, dist_id=dist_id)
        results[batch] = (cluster, pulled, store)
    cluster_b, pulled_b, store_b = results[True]
    cluster_s, pulled_s, store_s = results[False]
    _assert_identical(cluster_b, cluster_s, pulled_b, pulled_s, store_b, store_s)


class TestRelocationEquivalence:
    def test_relocation_batch_matches_scalar(self):
        _run_pair(lambda store, cluster, batch: RelocationPS(
            store, cluster, batch_charging=batch
        ))

    def test_relocation_disabled_batch_matches_scalar(self):
        _run_pair(lambda store, cluster, batch: RelocationPS(
            store, cluster, relocation_enabled=False, batch_charging=batch
        ))


class TestReplicationEquivalence:
    @pytest.mark.parametrize("protocol", [ReplicationProtocol.SSP,
                                          ReplicationProtocol.ESSP])
    @pytest.mark.parametrize("staleness", [0, 2])
    def test_replication_batch_matches_scalar(self, protocol, staleness):
        _run_pair(lambda store, cluster, batch: ReplicationPS(
            store, cluster, protocol=protocol, staleness=staleness,
            batch_charging=batch,
        ))


class TestNuPSEquivalence:
    @staticmethod
    def _factory(scheme_override=None):
        def build(store, cluster, batch):
            plan = ManagementPlan(NUM_KEYS, np.arange(8, dtype=np.int64))
            config = SamplingConfig(
                scheme_config=SchemeConfig(pool_size=16, use_frequency=2),
                scheme_override=scheme_override,
            )
            return NuPS(store, cluster, plan=plan, sampling_config=config,
                        sync_interval=1e-4, seed=5, batch_charging=batch)
        return build

    def test_nups_batch_matches_scalar(self):
        _run_pair(self._factory(), sampling=True)

    @pytest.mark.parametrize("scheme", ["independent", "sample_reuse",
                                        "sample_reuse_postponing", "local"])
    def test_nups_schemes_batch_matches_scalar(self, scheme):
        _run_pair(self._factory(scheme_override=scheme), sampling=True)


class TestLargeBatchEquivalence:
    """Batches above SMALL_BATCH take the NumPy mask paths; cover them too."""

    @staticmethod
    def _drive_large(ps, cluster):
        rng = np.random.default_rng(9)
        weights = 1.0 / np.arange(1, NUM_KEYS + 1) ** 1.1
        probs = weights / weights.sum()
        for _ in range(3):
            for node in range(NUM_NODES):
                for worker_id in range(WORKERS_PER_NODE):
                    worker = cluster.worker(node, worker_id)
                    keys = rng.choice(NUM_KEYS, size=130, p=probs).astype(np.int64)
                    deltas = rng.normal(0, 0.01, size=(130, VALUE_LENGTH)) \
                        .astype(np.float32)
                    ps.localize(worker, keys)
                    ps.pull(worker, keys)
                    ps.push(worker, keys, deltas)
                    ps.advance_clock(worker)
        ps.finish_epoch()

    @pytest.mark.parametrize("factory", [
        lambda store, cluster, batch: RelocationPS(store, cluster,
                                                   batch_charging=batch),
        lambda store, cluster, batch: ReplicationPS(store, cluster,
                                                    staleness=1,
                                                    batch_charging=batch),
        lambda store, cluster, batch: NuPS(
            store, cluster,
            plan=ManagementPlan(NUM_KEYS, np.arange(8, dtype=np.int64)),
            sync_interval=1e-4, seed=5, batch_charging=batch,
        ),
    ])
    def test_large_batches_match_scalar(self, factory):
        results = {}
        for batch in (True, False):
            cluster = _make_cluster()
            store = _make_store()
            ps = factory(store, cluster, batch)
            self._drive_large(ps, cluster)
            results[batch] = (cluster, store)
        cluster_b, store_b = results[True]
        cluster_s, store_s = results[False]
        _assert_identical(cluster_b, cluster_s, [], [], store_b, store_s)


class TestBatchDuplicatesAndWaits:
    """Targeted micro-cases that stress the order-sensitive corners."""

    def test_duplicate_keys_in_one_batch(self):
        for batch in (True, False):
            cluster = _make_cluster()
            store = _make_store()
            ps = RelocationPS(store, cluster, batch_charging=batch)
            worker = cluster.worker(0, 0)
            keys = np.array([5, 5, 150, 150, 5, 42], dtype=np.int64)
            ps.localize(worker, keys)
            ps.pull(worker, keys)
            if batch:
                reference = (
                    cluster.metrics.counters(),
                    worker.clock.now,
                    cluster.node(0).background_clock.now,
                )
            else:
                assert cluster.metrics.counters() == reference[0]
                assert worker.clock.now == reference[1]
                assert cluster.node(0).background_clock.now == reference[2]

    def test_wait_happens_once_per_relocation(self):
        cluster = _make_cluster()
        store = _make_store()
        ps = RelocationPS(store, cluster)
        worker = cluster.worker(0, 0)
        remote = ps.partitioner.keys_of(2)[:4]
        ps.localize(worker, remote)
        ps.pull(worker, remote)
        assert cluster.metrics.get("relocation.waits") >= 1
        waits = cluster.metrics.get("relocation.waits")
        ps.pull(worker, remote)  # arrived now: no further waits
        assert cluster.metrics.get("relocation.waits") == waits


class TestRoundFusedMatchesScalarOracle:
    """The round-fused engine against the per-key scalar oracle.

    Transitively the strongest check in this suite: ``run_round`` on the
    batch-charging PS must be bit-identical to the sequential per-worker
    chain on the ``batch_charging=False`` reference implementation.
    """

    FACTORIES = [
        lambda store, cluster, batch: RelocationPS(store, cluster,
                                                   batch_charging=batch),
        lambda store, cluster, batch: RelocationPS(store, cluster,
                                                   relocation_enabled=False,
                                                   batch_charging=batch),
        lambda store, cluster, batch: ReplicationPS(store, cluster,
                                                    staleness=1,
                                                    batch_charging=batch),
        lambda store, cluster, batch: NuPS(
            store, cluster,
            plan=ManagementPlan(NUM_KEYS, np.arange(8, dtype=np.int64)),
            sync_interval=1e-4, seed=5, batch_charging=batch,
        ),
    ]

    @pytest.mark.parametrize("factory", FACTORIES)
    def test_round_api_matches_scalar_oracle(self, factory):
        from collections import defaultdict

        from repro.ps.rounds import WorkerRound

        rounds_map = defaultdict(list)
        for round_id, node, worker_id, keys, deltas in _workload():
            rounds_map[round_id].append((node, worker_id, keys, deltas))

        cluster_fused = _make_cluster()
        store_fused = _make_store()
        ps_fused = factory(store_fused, cluster_fused, True)
        pulled_fused = []
        for round_id in sorted(rounds_map):
            entries = [
                WorkerRound(cluster_fused.worker(node, worker_id),
                            localize_keys=keys, pull_keys=keys,
                            push_keys=keys, push_deltas=deltas)
                for node, worker_id, keys, deltas in rounds_map[round_id]
            ]
            pulled_fused.extend(ps_fused.run_round(entries))
            ps_fused.housekeeping(cluster_fused.time)
        ps_fused.finish_epoch()

        cluster_scalar = _make_cluster()
        store_scalar = _make_store()
        ps_scalar = factory(store_scalar, cluster_scalar, False)
        pulled_scalar = []
        for round_id in sorted(rounds_map):
            for node, worker_id, keys, deltas in rounds_map[round_id]:
                worker = cluster_scalar.worker(node, worker_id)
                ps_scalar.localize(worker, keys)
                pulled_scalar.append(ps_scalar.pull(worker, keys))
                ps_scalar.push(worker, keys, deltas)
                ps_scalar.advance_clock(worker)
            ps_scalar.housekeeping(cluster_scalar.time)
        ps_scalar.finish_epoch()

        _assert_identical(cluster_fused, cluster_scalar, pulled_fused,
                          pulled_scalar, store_fused, store_scalar)
