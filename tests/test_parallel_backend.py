"""Cross-backend differential suite for the parallel execution backend.

The parallel backend's contract is the strongest the runner makes: selecting
``execution_backend="parallel"`` must not change a single bit of an
experiment — clocks, metrics, quality, *and the parameter store itself*
(values and per-key versions) must equal the sequential reference exactly,
for every architecture and scenario. This suite drives that contract:

* a differential matrix over all five MF architectures x {static, drift,
  churn}, comparing parallel against the sequential reference including the
  final store state;
* seeded random-workload fuzzing: random (system, seed, chunk_size, epochs)
  draws executed under all three backends, asserting exact equality;
* failure modes: a killed worker surfaces as an actionable
  :class:`ParallelExecutionError` quickly (never a hang), and the pool cache
  rebuilds a fresh pool afterwards;
* hygiene: no ``/dev/shm`` segments survive an experiment, and a full
  interpreter run leaves no resource-tracker leak warnings;
* the report pipeline's fork workers force inner experiments to the fused
  backend (no nested process pools, no oversubscription, no deadlock).
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import numpy as np
import pytest

from repro.parallel import (
    PARALLEL_DISABLE_ENV,
    SEGMENT_PREFIX,
    ParallelConfig,
    ParallelExecutionError,
)
from repro.parallel.backend import _borrow_pool, _pool_cache
from repro.parallel.pool import WorkerPool
from repro.report import pipeline as report_pipeline
from repro.runner.config import ExperimentConfig
from repro.runner.experiment import resolve_execution_backend, run_experiment
from repro.runner.systems import make_ps_factory
from repro.runner.workloads import make_task
from repro.scenarios import make_scenario
from repro.simulation.cluster import ClusterConfig

MF_SYSTEMS = ["classic", "lapse", "ssp", "essp", "nups"]


# ------------------------------------------------------------------ helpers
def _experiment(system, backend, scenario_name=None, chunk_size=8, seed=5,
                epochs=2, task_name="matrix_factorization", num_workers=2):
    """One test-scale run; returns ``(result, final_store)``.

    The factory is wrapped to capture the parameter server, so assertions
    can reach the trained store (values and versions) after the run — the
    part of the state an :class:`ExperimentResult` does not expose.
    """
    task = make_task(task_name, scale="test")
    scenario = make_scenario(scenario_name) if scenario_name else None
    parallel = ParallelConfig(num_workers=num_workers) \
        if backend == "parallel" else None
    config = ExperimentConfig(
        cluster=ClusterConfig(num_nodes=2, workers_per_node=2),
        epochs=epochs, chunk_size=chunk_size, seed=seed, scenario=scenario,
        execution_backend=backend, parallel=parallel,
    )
    base = make_ps_factory(system)
    captured = {}

    def factory(store, cluster, task):
        ps = base(store, cluster, task)
        captured["ps"] = ps
        return ps

    result = run_experiment(task, factory, config)
    return result, captured["ps"].store


def _assert_equivalent(pair_a, pair_b) -> None:
    """Exact equality: result records, metrics, and the trained store."""
    a, store_a = pair_a
    b, store_b = pair_b
    assert a.initial_quality == b.initial_quality
    assert a.epochs_completed == b.epochs_completed
    assert len(a.records) == len(b.records)
    for rec_a, rec_b in zip(a.records, b.records):
        assert rec_a.epoch == rec_b.epoch
        assert rec_a.sim_time == rec_b.sim_time
        assert rec_a.epoch_duration == rec_b.epoch_duration
        assert rec_a.quality == rec_b.quality
        assert rec_a.metrics == rec_b.metrics
    assert a.metrics == b.metrics
    assert np.array_equal(store_a.values, store_b.values)
    assert np.array_equal(store_a.versions, store_b.versions)


# ------------------------------------------------- differential matrix
@pytest.mark.parametrize("system", MF_SYSTEMS)
def test_parallel_matches_sequential(system):
    _assert_equivalent(
        _experiment(system, "parallel"),
        _experiment(system, "sequential"),
    )


@pytest.mark.parametrize("scenario_name", ["drift", "churn"])
@pytest.mark.parametrize("system", MF_SYSTEMS)
def test_parallel_matches_sequential_under_scenarios(system, scenario_name):
    # Four epochs so the drift preset (epoch 2) actually rewires the
    # logical-to-physical mapping before the comparison window closes.
    _assert_equivalent(
        _experiment(system, "parallel", scenario_name=scenario_name,
                    epochs=4),
        _experiment(system, "sequential", scenario_name=scenario_name,
                    epochs=4),
    )


@pytest.mark.parametrize("system", ["lapse", "nups"])
def test_parallel_matches_fused(system):
    _assert_equivalent(
        _experiment(system, "parallel"),
        _experiment(system, "fused"),
    )


def test_parallel_with_single_worker_matches_sequential():
    """num_workers=1 exercises the trivial partition of the merge contract."""
    _assert_equivalent(
        _experiment("lapse", "parallel", num_workers=1),
        _experiment("lapse", "sequential"),
    )


def test_parallel_matches_sequential_on_sparse_storage():
    """Chunk pinning: the sparse store densifies into shared memory."""
    from repro.ps.chunks import StorageConfig

    results = []
    for backend in ("parallel", "sequential"):
        task = make_task("matrix_factorization", scale="test")
        parallel = ParallelConfig(num_workers=2) \
            if backend == "parallel" else None
        config = ExperimentConfig(
            cluster=ClusterConfig(num_nodes=2, workers_per_node=2),
            epochs=2, chunk_size=8, seed=5,
            execution_backend=backend, parallel=parallel,
            storage=StorageConfig(backend="sparse", chunk_rows=64),
        )
        results.append(run_experiment(task, make_ps_factory("lapse"), config))
    a, b = results
    assert a.metrics == b.metrics
    for rec_a, rec_b in zip(a.records, b.records):
        assert rec_a.sim_time == rec_b.sim_time
        assert rec_a.quality == rec_b.quality
        assert rec_a.metrics == rec_b.metrics


# ------------------------------------------------------ seeded fuzzing
def test_fuzz_random_workloads_agree_across_backends():
    """Random (system, seed, chunk_size, epochs) draws, all three backends.

    Exact equality of clocks, metrics, quality and parameter values — any
    order-dependent float fold that diverges between the in-process walk and
    the worker/merge split shows up here as a bit diff.
    """
    rng = np.random.default_rng(20220614)
    for _ in range(4):
        system = MF_SYSTEMS[int(rng.integers(len(MF_SYSTEMS)))]
        seed = int(rng.integers(1, 1000))
        chunk_size = int(rng.integers(3, 24))
        epochs = int(rng.integers(1, 4))
        num_workers = int(rng.integers(1, 4))
        reference = _experiment(system, "sequential", seed=seed,
                                chunk_size=chunk_size, epochs=epochs)
        for backend in ("fused", "parallel"):
            _assert_equivalent(
                _experiment(system, backend, seed=seed,
                            chunk_size=chunk_size, epochs=epochs,
                            num_workers=num_workers),
                reference,
            )


# ------------------------------------------------------- failure modes
def test_killed_worker_raises_actionable_error_quickly():
    """SIGKILL mid-round surfaces as ParallelExecutionError, not a hang."""
    pool = WorkerPool(2)
    try:
        pool.broadcast({"op": "ping"}, timeout=10.0)  # workers are up
        os.kill(pool._procs[0].pid, signal.SIGKILL)
        pool._procs[0].join(10.0)  # reap, so is_alive() sees the death
        start = time.monotonic()
        with pytest.raises(ParallelExecutionError) as excinfo:
            pool.submit([{"op": "ping"}, {"op": "ping"}])
            pool.wait(timeout=60.0)
        elapsed = time.monotonic() - start
        # Death detection must not wait out the 60 s round timeout.
        assert elapsed < 10.0
        message = str(excinfo.value)
        assert "died mid-round" in message
        assert "ParallelConfig.num_workers" in message  # the knob to turn
        assert pool.broken
        with pytest.raises(ParallelExecutionError):
            pool.submit([{"op": "ping"}, None])  # broken pools refuse work
    finally:
        pool.close()


def test_worker_exception_carries_traceback():
    pool = WorkerPool(1)
    try:
        pool.submit([{"op": "mf", "values": {"name": "no_such_segment",
                                             "shape": (1, 1),
                                             "dtype": "<f4"}}])
        with pytest.raises(ParallelExecutionError) as excinfo:
            pool.wait(timeout=30.0)
        assert "worker 0 raised" in str(excinfo.value)
        assert "Traceback" in str(excinfo.value)
    finally:
        pool.close()


def test_stalled_worker_times_out_with_actionable_error():
    pool = WorkerPool(1)
    try:
        # Never dispatch anything, then pretend worker 0 owes a reply: the
        # wait loop must hit the deadline and name the timeout knob.
        pool._pending = [0]
        with pytest.raises(ParallelExecutionError) as excinfo:
            pool.wait(timeout=0.2)
        assert "worker_timeout" in str(excinfo.value)
        assert pool.broken
    finally:
        pool.close()


def test_pool_cache_rebuilds_after_breakage():
    pool = _borrow_pool(2)
    assert _borrow_pool(2) is pool  # warm reuse
    os.kill(pool._procs[1].pid, signal.SIGKILL)
    pool._procs[1].join(10.0)
    assert not pool.alive
    fresh = _borrow_pool(2)
    try:
        assert fresh is not pool
        assert fresh.alive
        fresh.broadcast({"op": "ping"}, timeout=10.0)
    finally:
        fresh.close()
        _pool_cache.clear()


def test_experiment_survives_prior_pool_breakage():
    """An experiment after a pool breakage transparently re-forks and runs."""
    pool = _borrow_pool(2)
    os.kill(pool._procs[0].pid, signal.SIGKILL)
    pool._procs[0].join(10.0)
    _assert_equivalent(
        _experiment("lapse", "parallel"),
        _experiment("lapse", "sequential"),
    )


# ------------------------------------------------------------- hygiene
def _own_segments():
    shm_dir = "/dev/shm"
    if not os.path.isdir(shm_dir):  # pragma: no cover - non-Linux
        return []
    prefix = f"{SEGMENT_PREFIX}_{os.getpid()}_"
    return [name for name in os.listdir(shm_dir) if name.startswith(prefix)]


def test_no_shared_memory_segments_leak():
    _experiment("lapse", "parallel")
    assert _own_segments() == []


def test_interpreter_exit_is_resource_tracker_clean():
    """A whole run in a fresh interpreter ends without leak warnings.

    Python's resource tracker prints "leaked shared_memory objects" to
    stderr at exit for any segment registered but never unlinked; an empty
    stderr proves coordinator-side unlink discipline covers the fork
    workers' attachments too.
    """
    code = textwrap.dedent("""
        from repro.parallel import ParallelConfig
        from repro.runner.config import ExperimentConfig
        from repro.runner.experiment import run_experiment
        from repro.runner.systems import make_ps_factory
        from repro.runner.workloads import make_task
        from repro.simulation.cluster import ClusterConfig

        task = make_task("matrix_factorization", scale="test")
        config = ExperimentConfig(
            cluster=ClusterConfig(num_nodes=2, workers_per_node=2),
            epochs=1, chunk_size=8, seed=5,
            execution_backend="parallel",
            parallel=ParallelConfig(num_workers=2),
        )
        result = run_experiment(task, make_ps_factory("lapse"), config)
        assert result.epochs_completed == 1
        print("RUN_OK")
    """)
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[1] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run([sys.executable, "-c", code], capture_output=True,
                          text=True, timeout=300, env=env)
    assert proc.returncode == 0, proc.stderr
    assert "RUN_OK" in proc.stdout
    assert "leaked shared_memory" not in proc.stderr
    assert "resource_tracker" not in proc.stderr


# ---------------------------------------------- pipeline nesting guard
def test_disable_env_downgrades_parallel_to_fused(monkeypatch):
    config = ExperimentConfig(execution_backend="parallel",
                              parallel=ParallelConfig(num_workers=2))
    monkeypatch.delenv(PARALLEL_DISABLE_ENV, raising=False)
    assert resolve_execution_backend(config) == "parallel"
    monkeypatch.setenv(PARALLEL_DISABLE_ENV, "1")
    assert resolve_execution_backend(config) == "fused"
    monkeypatch.setenv(PARALLEL_DISABLE_ENV, "0")
    assert resolve_execution_backend(config) == "parallel"


_FAKE_BENCHMARK = textwrap.dedent("""
    import os


    def run():
        from repro.parallel import ParallelConfig
        from repro.runner.config import ExperimentConfig
        from repro.runner.experiment import resolve_execution_backend

        config = ExperimentConfig(
            execution_backend="parallel",
            parallel=ParallelConfig(num_workers=2),
        )
        return {
            "disable_env": os.environ.get("REPRO_PARALLEL_DISABLE"),
            "inner_sweeps": os.environ.get("REPRO_BENCH_PARALLEL"),
            "resolved_backend": resolve_execution_backend(config),
        }
""")


def test_pipeline_fork_workers_force_fused_backend(tmp_path, monkeypatch):
    """``reproduce --jobs 2``: no deadlock, no nested worker pools.

    Two fake benchmarks run in the pipeline's fork pool; each reports the
    environment its experiments would see. Both must resolve the parallel
    backend down to fused (no process pools inside fork workers) with inner
    sweeps serialized, and the coordinator's environment must be restored
    afterwards.
    """
    specs = [
        report_pipeline.BenchmarkSpec(f"fake{i}", f"bench_fake{i}",
                                      f"Fake benchmark {i}", "appendix")
        for i in (1, 2)
    ]
    for spec in specs:
        (tmp_path / f"{spec.module}.py").write_text(_FAKE_BENCHMARK)
    monkeypatch.setattr(report_pipeline, "REGISTRY", specs)
    monkeypatch.setattr(report_pipeline, "_SPECS_BY_ID",
                        {spec.id: spec for spec in specs})
    monkeypatch.setattr(report_pipeline, "_REGISTRY_MODULES",
                        tuple(spec.module for spec in specs))
    monkeypatch.delenv(PARALLEL_DISABLE_ENV, raising=False)

    report = report_pipeline.run_pipeline(jobs=2, fast=True,
                                          benchmarks_dir=tmp_path)

    assert report["jobs"] == 2
    assert report["summary"]["benchmarks_failed"] == []
    for bench in report["benchmarks"]:
        assert bench["status"] == "ok", bench["error"]
        result = bench["result"]
        assert result["disable_env"] == "1"
        assert result["inner_sweeps"] == "0"
        assert result["resolved_backend"] == "fused"
    # The guard is scoped to the pipeline run: the env var is restored.
    assert PARALLEL_DISABLE_ENV not in os.environ
