"""Tests for the Petuum-like replication PS (SSP / ESSP)."""

import numpy as np
import pytest

from repro.ps.replication import ReplicationProtocol, ReplicationPS


def make_ps(store, cluster, protocol=ReplicationProtocol.SSP, staleness=1):
    return ReplicationPS(store, cluster, protocol=protocol, staleness=staleness)


def advance_all_workers(ps, cluster, node_id):
    """Advance the clock of every worker on a node (triggers a node flush)."""
    for worker_id in range(cluster.workers_per_node):
        ps.advance_clock(cluster.worker(node_id, worker_id))


class TestBasics:
    def test_rejects_negative_staleness(self, store, cluster):
        with pytest.raises(ValueError):
            ReplicationPS(store, cluster, staleness=-1)

    def test_name_reflects_protocol(self, store, cluster):
        assert make_ps(store, cluster, ReplicationProtocol.SSP).name == "replication-ssp"
        assert make_ps(store, cluster, ReplicationProtocol.ESSP).name == "replication-essp"

    def test_pull_returns_current_value_on_first_access(self, store, cluster):
        ps = make_ps(store, cluster)
        worker = cluster.worker(0, 0)
        np.testing.assert_array_equal(ps.pull(worker, [10]), store.get([10]))

    def test_first_access_creates_replica(self, store, cluster):
        ps = make_ps(store, cluster)
        ps.pull(cluster.worker(0, 0), [10, 11])
        assert ps.replica_count(0) == 2
        assert ps.replica_count(1) == 0


class TestWriteVisibility:
    def test_own_writes_visible_locally_before_flush(self, store, cluster):
        ps = make_ps(store, cluster)
        worker = cluster.worker(0, 0)
        before = ps.pull(worker, [5]).copy()
        ps.push(worker, [5], np.ones((1, store.value_length), dtype=np.float32))
        np.testing.assert_allclose(ps.pull(worker, [5]), before + 1.0, rtol=1e-6)

    def test_writes_not_in_global_store_before_flush(self, store, cluster):
        ps = make_ps(store, cluster)
        worker = cluster.worker(0, 0)
        before = store.get_single(5).copy()
        ps.push(worker, [5], np.ones((1, store.value_length), dtype=np.float32))
        np.testing.assert_array_equal(store.get_single(5), before)

    def test_flush_propagates_updates_to_store(self, store, cluster):
        ps = make_ps(store, cluster)
        worker = cluster.worker(0, 0)
        before = store.get_single(5).copy()
        ps.push(worker, [5], np.ones((1, store.value_length), dtype=np.float32))
        advance_all_workers(ps, cluster, 0)
        np.testing.assert_allclose(store.get_single(5), before + 1.0, rtol=1e-6)

    def test_finish_epoch_flushes_all_nodes(self, store, cluster):
        ps = make_ps(store, cluster)
        before = store.get_single(5).copy()
        ps.push(cluster.worker(0, 0), [5], np.ones((1, store.value_length), dtype=np.float32))
        ps.push(cluster.worker(2, 1), [5], np.ones((1, store.value_length), dtype=np.float32))
        ps.finish_epoch()
        np.testing.assert_allclose(store.get_single(5), before + 2.0, rtol=1e-6)

    def test_flush_only_after_all_workers_clock(self, store, cluster):
        """The node clock is the slowest worker; flushing waits for it."""
        ps = make_ps(store, cluster)
        worker = cluster.worker(0, 0)
        before = store.get_single(5).copy()
        ps.push(worker, [5], np.ones((1, store.value_length), dtype=np.float32))
        ps.advance_clock(worker)  # only one of two workers has clocked
        np.testing.assert_array_equal(store.get_single(5), before)


class TestStaleness:
    def test_stale_replica_is_refreshed_on_pull(self, store, cluster):
        ps = make_ps(store, cluster, staleness=1)
        reader = cluster.worker(0, 0)
        writer = cluster.worker(1, 0)
        ps.pull(reader, [7])  # create replica at node 0
        ps.push(writer, [7], np.ones((1, store.value_length), dtype=np.float32))
        advance_all_workers(ps, cluster, 1)  # writer's update reaches the store

        # Within the staleness bound the reader still sees the old value.
        stale = ps.pull(reader, [7])
        # Advance the reader's clocks beyond the staleness bound; the next
        # pull must refresh from the store and see the update.
        for _ in range(3):
            advance_all_workers(ps, cluster, 0)
        fresh = ps.pull(reader, [7])
        np.testing.assert_allclose(fresh, stale + 1.0, rtol=1e-6)

    def test_stale_refresh_is_remote(self, store, cluster):
        ps = make_ps(store, cluster, staleness=0)
        reader = cluster.worker(0, 0)
        remote_key = int(ps.partitioner.keys_of(3)[0])
        ps.pull(reader, [remote_key])
        assert cluster.metrics.get("access.pull.remote") == 1
        # With staleness 0 and no clock advance the replica stays usable at
        # the same clock; re-pulling does not pay remote again.
        ps.pull(reader, [remote_key])
        assert cluster.metrics.get("access.pull.remote") == 1


class TestESSP:
    def test_eager_refresh_keeps_replicas_warm(self, store, cluster):
        ps = make_ps(store, cluster, ReplicationProtocol.ESSP, staleness=1)
        reader = cluster.worker(0, 0)
        writer = cluster.worker(1, 0)
        ps.pull(reader, [7])
        ps.push(writer, [7], np.ones((1, store.value_length), dtype=np.float32))
        advance_all_workers(ps, cluster, 1)  # writer flush
        advance_all_workers(ps, cluster, 0)  # reader node eager refresh
        refreshed = ps.pull(reader, [7])
        np.testing.assert_allclose(refreshed, store.get([7]), rtol=1e-6)

    def test_eager_refresh_costs_grow_with_replica_count(self, store, cluster):
        ps = make_ps(store, cluster, ReplicationProtocol.ESSP, staleness=1)
        worker = cluster.worker(0, 0)
        ps.pull(worker, np.arange(40))
        advance_all_workers(ps, cluster, 0)
        bytes_few = cluster.metrics.get("network.bytes")
        ps.pull(worker, np.arange(40, 90))
        advance_all_workers(ps, cluster, 0)
        bytes_many = cluster.metrics.get("network.bytes") - bytes_few
        assert bytes_many > bytes_few

    def test_eager_refresh_occupies_servers(self, store, cluster):
        ps = make_ps(store, cluster, ReplicationProtocol.ESSP, staleness=1)
        worker = cluster.worker(0, 0)
        remote_keys = ps.partitioner.keys_of(2)[:10]
        ps.pull(worker, remote_keys)
        advance_all_workers(ps, cluster, 0)
        assert cluster.node(2).server_clock.now > 0


class TestCosts:
    def test_local_server_access_uses_intra_process_messaging(self, store, cluster):
        """Petuum reaches even the co-located server via messages, which is
        slower than NuPS/Lapse shared-memory access (Section 5.4)."""
        ps = make_ps(store, cluster)
        worker = cluster.worker(0, 0)
        local_key = int(ps.partitioner.keys_of(0)[0])
        ps.pull(worker, [local_key])
        assert worker.clock.now > cluster.network.local_access_cost
