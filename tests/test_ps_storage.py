"""Tests for the dense parameter store."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ps.storage import ParameterStore


class TestConstruction:
    def test_rejects_invalid_sizes(self):
        with pytest.raises(ValueError):
            ParameterStore(0, 4)
        with pytest.raises(ValueError):
            ParameterStore(10, 0)

    def test_zero_initialized_by_default(self):
        store = ParameterStore(10, 4)
        assert np.all(store.values == 0)

    def test_random_initialization_is_reproducible(self):
        a = ParameterStore(10, 4, seed=1, init_scale=0.5)
        b = ParameterStore(10, 4, seed=1, init_scale=0.5)
        np.testing.assert_array_equal(a.values, b.values)

    def test_different_seeds_differ(self):
        a = ParameterStore(10, 4, seed=1, init_scale=0.5)
        b = ParameterStore(10, 4, seed=2, init_scale=0.5)
        assert not np.allclose(a.values, b.values)


class TestAccess:
    def test_get_returns_copy(self, store):
        values = store.get([0, 1])
        values[:] = 99.0
        assert not np.any(store.get([0, 1]) == 99.0)

    def test_get_single(self, store):
        np.testing.assert_array_equal(store.get_single(3), store.get([3])[0])

    def test_get_shape(self, store):
        assert store.get([1, 2, 3]).shape == (3, store.value_length)

    def test_view_is_read_only(self, store):
        view = store.view([0, 1])
        with pytest.raises(ValueError):
            view[0, 0] = 1.0

    def test_out_of_range_keys_rejected(self, store):
        with pytest.raises(KeyError):
            store.get([store.num_keys])
        with pytest.raises(KeyError):
            store.get([-1])
        with pytest.raises(KeyError):
            store.get_single(store.num_keys)

    def test_non_1d_keys_rejected(self, store):
        with pytest.raises(ValueError):
            store.get(np.array([[0, 1]]))

    def test_empty_key_list(self, store):
        assert store.get([]).shape == (0, store.value_length)


class TestWrites:
    def test_add_accumulates(self, store):
        before = store.get([5])
        delta = np.ones((1, store.value_length), dtype=np.float32)
        store.add([5], delta)
        store.add([5], delta)
        np.testing.assert_allclose(store.get([5]), before + 2.0, rtol=1e-6)

    def test_add_with_duplicate_keys_accumulates_both(self, store):
        before = store.get_single(7)
        deltas = np.ones((2, store.value_length), dtype=np.float32)
        store.add([7, 7], deltas)
        np.testing.assert_allclose(store.get_single(7), before + 2.0)

    def test_set_overwrites(self, store):
        new_value = np.full((1, store.value_length), 3.0, dtype=np.float32)
        store.set([2], new_value)
        np.testing.assert_allclose(store.get([2]), new_value)

    def test_shape_mismatch_rejected(self, store):
        with pytest.raises(ValueError):
            store.add([0], np.ones((2, store.value_length), dtype=np.float32))
        with pytest.raises(ValueError):
            store.add([0], np.ones((1, store.value_length + 1), dtype=np.float32))

    def test_versions_bump_on_writes(self, store):
        assert store.version(0) == 0
        store.add([0], np.zeros((1, store.value_length), dtype=np.float32))
        assert store.version(0) == 1
        store.set([0], np.zeros((1, store.value_length), dtype=np.float32))
        assert store.version(0) == 2

    def test_add_with_duplicate_keys_bumps_version_per_occurrence(self, store):
        keys = np.array([4, 4, 4, 7], dtype=np.int64)
        store.add(keys, np.ones((4, store.value_length), dtype=np.float32))
        assert store.version(4) == 3
        assert store.version(7) == 1

    def test_set_with_duplicate_keys_bumps_version_per_occurrence(self, store):
        """Regression: fancy-index += silently dropped duplicate keys, so
        ``set`` undercounted versions relative to ``add``."""
        keys = np.array([5, 5, 9], dtype=np.int64)
        values = np.zeros((3, store.value_length), dtype=np.float32)
        store.set(keys, values)
        assert store.version(5) == 2
        assert store.version(9) == 1

    def test_large_batch_duplicate_keys_accumulate(self, store):
        # Above the duplicate-free fast-path threshold: np.add.at semantics.
        before = store.get_single(3).copy()
        keys = np.full(100, 3, dtype=np.int64)
        store.add(keys, np.ones((100, store.value_length), dtype=np.float32))
        np.testing.assert_allclose(store.get_single(3), before + 100.0)
        assert store.version(3) == 100

    def test_copy_is_independent(self, store):
        clone = store.copy()
        store.add([0], np.ones((1, store.value_length), dtype=np.float32))
        assert not np.allclose(clone.get_single(0), store.get_single(0))


class TestSizes:
    def test_value_bytes(self):
        assert ParameterStore(5, 8).value_bytes() == 32

    def test_total_bytes(self):
        assert ParameterStore(5, 8).total_bytes() == 5 * 32


@settings(deadline=None, max_examples=50)
@given(
    keys=st.lists(st.integers(min_value=0, max_value=19), min_size=1, max_size=30),
    scale=st.floats(min_value=-5, max_value=5, allow_nan=False),
)
def test_add_matches_numpy_reference(keys, scale):
    """Pushing deltas through the store equals a reference dense accumulation,
    including when the same key appears multiple times in one push."""
    store = ParameterStore(20, 3)
    reference = np.zeros((20, 3), dtype=np.float64)
    keys = np.asarray(keys, dtype=np.int64)
    deltas = np.full((len(keys), 3), scale, dtype=np.float32)
    store.add(keys, deltas)
    np.add.at(reference, keys, deltas.astype(np.float64))
    np.testing.assert_allclose(store.values, reference, rtol=1e-5, atol=1e-5)


@settings(deadline=None, max_examples=30)
@given(st.data())
def test_random_write_read_roundtrip(data):
    """Values read back equal the sum of all deltas written per key."""
    num_keys = data.draw(st.integers(min_value=1, max_value=15))
    store = ParameterStore(num_keys, 2)
    expected = np.zeros((num_keys, 2), dtype=np.float64)
    for _ in range(data.draw(st.integers(min_value=0, max_value=10))):
        key = data.draw(st.integers(min_value=0, max_value=num_keys - 1))
        value = data.draw(st.floats(min_value=-10, max_value=10))
        store.add([key], np.full((1, 2), value, dtype=np.float32))
        expected[key] += np.float32(value)
    np.testing.assert_allclose(store.values, expected, rtol=1e-4, atol=1e-4)
