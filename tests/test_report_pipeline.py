"""Pipeline tests: smoke round-trip, failure isolation, selection, jsonify."""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.report.pipeline import (
    DEFAULT_BENCHMARKS_DIR,
    REGISTRY,
    run_pipeline,
    to_jsonable,
)


class TestToJsonable:
    def test_numpy_scalars_and_arrays(self):
        payload = to_jsonable({
            "i": np.int64(3),
            "f": np.float32(0.5),
            "a": np.arange(3),
            "nested": {"t": (1, np.float64(2.0))},
        })
        assert payload == {"i": 3, "f": 0.5, "a": [0, 1, 2],
                           "nested": {"t": [1, 2.0]}}
        json.dumps(payload)  # must be serializable as-is

    def test_non_string_keys_become_strings(self):
        assert to_jsonable({1: {2.5: "x"}}) == {"1": {"2.5": "x"}}

    def test_unknown_objects_fall_back_to_str(self):
        class Odd:
            def __repr__(self):
                return "<odd>"

        assert to_jsonable({"o": Odd()}) == {"o": "<odd>"}


class TestSelection:
    def test_unknown_id_raises_with_known_ids_listed(self):
        with pytest.raises(ValueError, match="fig06"):
            run_pipeline(only=["not-a-benchmark"])

    def test_registry_is_complete(self):
        assert DEFAULT_BENCHMARKS_DIR.is_dir()
        for spec in REGISTRY:
            assert (DEFAULT_BENCHMARKS_DIR / f"{spec.module}.py").is_file(), \
                spec.module


class TestFailureIsolation:
    def test_broken_benchmark_is_contained(self, tmp_path):
        (tmp_path / "bench_table2_workloads.py").write_text(
            "def run():\n    raise RuntimeError('synthetic failure')\n")
        payload = run_pipeline(only=["table2"], fast=True, jobs=1,
                               benchmarks_dir=tmp_path)
        entry = payload["benchmarks"][0]
        assert entry["status"] == "failed"
        assert "synthetic failure" in entry["error"]
        # Claims still evaluate (as failures), never silently disappear.
        assert entry["claims"]
        assert all(not v["passed"] for v in entry["claims"])
        assert payload["summary"]["benchmarks_failed"] == ["table2"]

    def test_import_error_is_contained(self, tmp_path):
        (tmp_path / "bench_table2_workloads.py").write_text("1/0\n")
        payload = run_pipeline(only=["table2"], fast=True, jobs=1,
                               benchmarks_dir=tmp_path)
        assert payload["benchmarks"][0]["status"] == "failed"
        assert "ZeroDivisionError" in payload["benchmarks"][0]["error"]


class TestSmokeRoundTrip:
    """End-to-end: one real (cheap) benchmark through pipeline + CLI."""

    def test_table2_round_trips(self):
        payload = run_pipeline(only=["table2"], fast=True, jobs=1)
        entry = payload["benchmarks"][0]
        assert entry["status"] == "ok"
        assert entry["id"] == "table2"
        assert entry["seconds"] > 0
        assert "Table 2" in entry["stdout"]
        assert entry["result"]["kge"]["sampling_share"] > 0.2
        # Every registered table2 claim evaluated and passed.
        assert entry["claims"]
        assert all(v["passed"] for v in entry["claims"])
        assert payload["summary"]["claims_failed"] == 0
        json.dumps(payload)  # the full payload is JSON-clean

    def test_parallel_execution_matches_sequential(self):
        """Fork-worker scheduling never changes results, only wall-clock."""
        seq = run_pipeline(only=["table2", "profile"], fast=True, jobs=1)
        par = run_pipeline(only=["table2", "profile"], fast=True, jobs=2)
        assert ([b["id"] for b in par["benchmarks"]]
                == [b["id"] for b in seq["benchmarks"]])
        verdicts = [
            {v["id"]: v["passed"] for b in payload["benchmarks"]
             for v in b["claims"]}
            for payload in (seq, par)
        ]
        assert verdicts[0] == verdicts[1]
        # table2 is fully deterministic (dataset statistics, no wall-clock).
        seq_t2 = next(b for b in seq["benchmarks"] if b["id"] == "table2")
        par_t2 = next(b for b in par["benchmarks"] if b["id"] == "table2")
        assert seq_t2["result"] == par_t2["result"]
        assert seq_t2["stdout"] == par_t2["stdout"]

    def test_cli_reproduce_writes_reports(self, tmp_path, capsys):
        exit_code = main(["reproduce", "--fast", "--only", "profile",
                          "--jobs", "1", "--output-dir", str(tmp_path)])
        assert exit_code == 0
        payload = json.loads((tmp_path / "REPRODUCTION.json").read_text())
        assert payload["mode"] == "fast"
        assert [b["id"] for b in payload["benchmarks"]] == ["profile"]
        markdown = (tmp_path / "REPRODUCTION.md").read_text()
        assert "# Reproduction report" in markdown
        assert "profile" in markdown

    def test_cli_check_detects_regression(self, tmp_path):
        # Commit a report where the profile claim passed...
        committed = {
            "benchmarks": [{"id": "profile", "claims": [
                {"id": "profile.hot_spots_reported", "passed": True}]}],
        }
        committed_path = tmp_path / "committed.json"
        committed_path.write_text(json.dumps(committed))
        # ...then break the benchmark so the fresh claim fails.
        bench_dir = tmp_path / "benchmarks"
        bench_dir.mkdir()
        (bench_dir / "bench_profile.py").write_text(
            "def run():\n    raise RuntimeError('broken')\n")
        from repro.report.claims import compare_verdicts
        fresh = run_pipeline(only=["profile"], fast=True, jobs=1,
                             benchmarks_dir=bench_dir)
        regressions = compare_verdicts(committed, fresh)
        assert len(regressions) == 1
        assert "profile.hot_spots_reported" in regressions[0]

    def test_cli_rejects_unknown_only(self, tmp_path):
        exit_code = main(["reproduce", "--fast", "--only", "nope",
                          "--output-dir", str(tmp_path)])
        assert exit_code == 2

    def test_cli_rejects_bad_check_report_before_running(self, tmp_path, capsys):
        # A bad --check path must fail fast, not after the benchmarks ran.
        exit_code = main(["reproduce", "--fast", "--only", "profile",
                          "--output-dir", str(tmp_path),
                          "--check", str(tmp_path / "missing.json")])
        assert exit_code == 2
        assert not (tmp_path / "REPRODUCTION.json").exists()
        bad = tmp_path / "corrupt.json"
        bad.write_text("{not json")
        exit_code = main(["reproduce", "--fast", "--only", "profile",
                          "--output-dir", str(tmp_path), "--check", str(bad)])
        assert exit_code == 2

    def test_cli_list(self, capsys):
        assert main(["reproduce", "--list"]) == 0
        output = capsys.readouterr().out
        for spec in REGISTRY:
            assert spec.id in output


class TestTimeout:
    """Per-benchmark wall-clock limit: retry once, then fail-with-reason."""

    @pytest.fixture(autouse=True)
    def _no_dataset_warm(self, monkeypatch):
        # The pool path pre-warms bench-scale dataset caches; stub
        # benchmarks never touch them, so skip the expensive warm-up.
        import repro.report.pipeline as pipeline

        monkeypatch.setattr(pipeline, "_warm_dataset_cache", lambda: None)

    def test_hung_benchmark_times_out_after_one_retry(self, tmp_path):
        import os

        if not hasattr(os, "fork"):
            pytest.skip("preemptive timeouts need fork workers")
        (tmp_path / "bench_profile.py").write_text(
            "import time\n\ndef run():\n    time.sleep(60)\n    return {}\n")
        payload = run_pipeline(only=["profile"], fast=True, jobs=1,
                               benchmarks_dir=tmp_path, timeout=0.5)
        entry = payload["benchmarks"][0]
        assert entry["status"] == "failed"
        assert entry["error"].startswith("timed out")
        assert "0.5s" in entry["error"]
        assert entry["attempts"] == 2
        # Claims evaluate as failures; the pipeline itself completes.
        assert entry["claims"]
        assert all(not v["passed"] for v in entry["claims"])
        assert payload["summary"]["benchmarks_failed"] == ["profile"]

    def test_fast_benchmark_passes_within_the_limit(self, tmp_path):
        import os

        if not hasattr(os, "fork"):
            pytest.skip("preemptive timeouts need fork workers")
        (tmp_path / "bench_profile.py").write_text(
            "def run():\n    return {'hot_spots': ['x'], 'ok': True}\n")
        payload = run_pipeline(only=["profile"], fast=True, jobs=1,
                               benchmarks_dir=tmp_path, timeout=30.0)
        entry = payload["benchmarks"][0]
        assert entry["status"] == "ok"
        assert entry["attempts"] == 1

    def test_non_positive_timeout_means_unlimited(self, tmp_path):
        (tmp_path / "bench_profile.py").write_text(
            "def run():\n    return {'ok': True}\n")
        payload = run_pipeline(only=["profile"], fast=True, jobs=1,
                               benchmarks_dir=tmp_path, timeout=0.0)
        assert payload["benchmarks"][0]["status"] == "ok"

    def test_env_default_applies(self, tmp_path, monkeypatch):
        import os

        if not hasattr(os, "fork"):
            pytest.skip("preemptive timeouts need fork workers")
        monkeypatch.setenv("REPRO_BENCH_TIMEOUT", "0.4")
        (tmp_path / "bench_profile.py").write_text(
            "import time\n\ndef run():\n    time.sleep(60)\n    return {}\n")
        payload = run_pipeline(only=["profile"], fast=True, jobs=1,
                               benchmarks_dir=tmp_path)
        entry = payload["benchmarks"][0]
        assert entry["status"] == "failed"
        assert entry["error"].startswith("timed out")
