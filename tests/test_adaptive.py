"""Tests for the adaptive-management subsystem (:mod:`repro.adaptive`).

Covers the statistics layer (space-saving sketch, decayed counters), the
policies (online hot-spot heuristic, top-k, hysteresis bands), the
controller (periodic adaptation, incremental transitions, transition
charging), the NuPS integration (taps, ``attach_adaptive``, remanage edge
cases), and the runner wiring (``ExperimentConfig.adaptive``) — including
the contract that adaptive machinery which never changes the plan leaves
the simulation bit-identical to a static run.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.adaptive import (
    AccessStats,
    AdaptiveConfig,
    HotSpotPolicy,
    SpaceSavingSketch,
    TopKPolicy,
    install_adaptive,
    make_policy,
)
from repro.core.management import ManagementPlan
from repro.core.nups import NuPS
from repro.ps.classic import ClassicPS
from repro.ps.storage import ParameterStore
from repro.runner.config import ExperimentConfig
from repro.runner.experiment import run_experiment
from repro.runner.systems import make_ps_factory
from repro.runner.workloads import make_task
from repro.scenarios import make_scenario
from repro.simulation.cluster import Cluster, ClusterConfig


# --------------------------------------------------------------------------
# stats: SpaceSavingSketch
# --------------------------------------------------------------------------

class TestSpaceSavingSketch:
    def test_exact_below_capacity(self):
        sketch = SpaceSavingSketch(capacity=8)
        sketch.update([3, 5, 7], [10, 2, 5])
        sketch.update([5, 9], [1, 4])
        assert sketch.estimate(3) == 10
        assert sketch.estimate(5) == 3
        assert sketch.estimate(9) == 4
        assert sketch.estimate(42) == 0.0
        assert len(sketch) == 4

    def test_items_sorted_by_estimate_then_key(self):
        sketch = SpaceSavingSketch(capacity=8)
        sketch.update([4, 2, 9], [5, 5, 7])
        keys, counts = sketch.items()
        assert keys.tolist() == [9, 2, 4]  # ties broken by key
        assert counts.tolist() == [7, 5, 5]

    def test_eviction_keeps_hot_keys_and_overestimates(self):
        sketch = SpaceSavingSketch(capacity=4)
        sketch.update([1, 2, 3, 4], [100, 90, 1, 2])
        sketch.update([50], [5])
        # The coldest counter (key 3, count 1) is evicted; the newcomer
        # inherits its estimate (space-saving overestimation).
        assert sketch.estimate(3) == 0.0
        assert sketch.estimate(50) == 6
        assert sketch.estimate(1) == 100

    def test_eviction_deterministic_under_ties(self):
        def build(order):
            sketch = SpaceSavingSketch(capacity=2)
            sketch.update([1, 2], [5, 5])
            sketch.update(order, [1, 1])
            return sketch.items()

        keys_a, counts_a = build([7, 8])
        keys_b, counts_b = build([7, 8])
        assert keys_a.tolist() == keys_b.tolist()
        assert counts_a.tolist() == counts_b.tolist()

    def test_hot_set_survives_cold_stream(self):
        rng = np.random.default_rng(0)
        sketch = SpaceSavingSketch(capacity=32)
        for _ in range(200):
            sketch.update([1, 2, 3], [20, 15, 10])
            cold = rng.integers(100, 10_000, size=10)
            unique, counts = np.unique(cold, return_counts=True)
            sketch.update(unique.tolist(), counts.tolist())
        keys, _ = sketch.items()
        assert {1, 2, 3} <= set(keys[:3].tolist())

    def test_batch_overflow_keeps_hottest_new_keys(self):
        # One batch with more new distinct keys than the sketch has slots:
        # the hottest enter (inheriting victim estimates), the coldest of
        # the batch are dropped (the documented batch-overflow rule).
        sketch = SpaceSavingSketch(capacity=2)
        sketch.update([1, 2], [5, 5])          # sketch full
        sketch.update([10, 11, 12], [9, 7, 5])  # 3 new keys, 2 slots
        assert sketch.estimate(10) == 14  # evicted 5 + own 9
        assert sketch.estimate(11) == 12  # evicted 5 + own 7
        assert sketch.estimate(12) == 0.0  # coldest of the batch: dropped
        assert len(sketch) == 2

    def test_scale_decays_all_counters(self):
        sketch = SpaceSavingSketch(capacity=4)
        sketch.update([1, 2], [8, 4])
        sketch.scale(0.5)
        assert sketch.estimate(1) == 4
        assert sketch.estimate(2) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            SpaceSavingSketch(0)
        with pytest.raises(ValueError):
            SpaceSavingSketch(4).scale(-1.0)


# --------------------------------------------------------------------------
# stats: AccessStats
# --------------------------------------------------------------------------

class TestAccessStats:
    def test_observe_accumulates_and_mean(self):
        stats = AccessStats(num_keys=100, capacity=16, half_life=1.0)
        stats.observe(np.array([1, 1, 2]))
        stats.observe(np.array([2, 3]))
        assert stats.total_observed == 5
        assert stats.lifetime_observed == 5
        assert stats.mean_frequency() == 5 / 100
        assert stats.sketch.estimate(1) == 2
        assert stats.sketch.estimate(2) == 2

    def test_small_and_large_batches_agree(self):
        rng = np.random.default_rng(3)
        keys = rng.integers(0, 30, size=200)
        small = AccessStats(num_keys=100, capacity=64, half_life=1.0)
        large = AccessStats(num_keys=100, capacity=64, half_life=1.0)
        for start in range(0, 200, 8):   # <= 32-key batches (dict path)
            small.observe(keys[start:start + 8])
        large.observe(keys)              # one > 32-key batch (unique path)
        for key in range(30):
            assert small.sketch.estimate(key) == large.sketch.estimate(key)

    def test_decay_halves_at_half_life(self):
        stats = AccessStats(num_keys=10, capacity=8, half_life=2.0)
        stats.observe(np.array([4, 4, 4, 4]))
        stats.decay_to(2.0)
        assert stats.sketch.estimate(4) == pytest.approx(2.0)
        assert stats.total_observed == pytest.approx(2.0)
        assert stats.lifetime_observed == 4  # undecayed
        stats.decay_to(1.0)  # time never runs backwards
        assert stats.total_observed == pytest.approx(2.0)

    def test_skew_summary_uses_shared_histogram(self):
        stats = AccessStats(num_keys=1000, capacity=8, half_life=1.0)
        stats.observe(np.array([7] * 99 + [8]))
        summary = stats.skew_summary(top_fraction=0.001)
        assert summary["num_items"] == 1000
        assert summary["top_share"] == pytest.approx(0.99)

    def test_empty_observe_is_free(self):
        stats = AccessStats(num_keys=10)
        stats.observe(np.empty(0, dtype=np.int64))
        assert stats.lifetime_observed == 0


# --------------------------------------------------------------------------
# policies
# --------------------------------------------------------------------------

def _stats_with(num_keys, counts: dict, half_life=1.0):
    stats = AccessStats(num_keys=num_keys, capacity=64, half_life=half_life)
    keys = []
    for key, count in counts.items():
        keys.extend([key] * count)
    stats.observe(np.asarray(keys, dtype=np.int64))
    return stats


class TestHotSpotPolicy:
    def test_enters_above_factor_times_mean(self):
        # 100 keys, 200 observations -> mean 2; factor 10 -> threshold 20.
        stats = _stats_with(100, {1: 150, 2: 30, 3: 20})
        policy = HotSpotPolicy(factor=10.0, exit_fraction=0.5)
        plan = ManagementPlan.relocate_all(100)
        desired = policy.desired_replicated(stats, plan)
        assert desired.tolist() == [1, 2]  # 3 sits exactly at the threshold

    def test_exit_band_retains_replicated_keys(self):
        stats = _stats_with(100, {1: 150, 2: 30, 3: 15, 4: 5})
        policy = HotSpotPolicy(factor=10.0, exit_fraction=0.5)
        current = ManagementPlan(100, [3, 4])
        desired = policy.desired_replicated(stats, current)
        # 3 (15 > exit 10) survives via hysteresis, 4 (5 < 10) falls out.
        assert desired.tolist() == [1, 2, 3]

    def test_no_hysteresis_with_exit_fraction_one(self):
        stats = _stats_with(100, {1: 150, 3: 15})
        policy = HotSpotPolicy(factor=10.0, exit_fraction=1.0)
        current = ManagementPlan(100, [3])
        assert policy.desired_replicated(stats, current).tolist() == [1]

    def test_validation(self):
        with pytest.raises(ValueError):
            HotSpotPolicy(factor=0.0)
        with pytest.raises(ValueError):
            HotSpotPolicy(exit_fraction=0.0)


class TestTopKPolicy:
    def test_selects_k_hottest(self):
        stats = _stats_with(100, {1: 50, 2: 40, 3: 30, 4: 20})
        policy = TopKPolicy(k=2, slack=0.0)
        plan = ManagementPlan.relocate_all(100)
        assert policy.desired_replicated(stats, plan).tolist() == [1, 2]

    def test_rank_slack_retains_near_boundary_keys(self):
        stats = _stats_with(100, {1: 50, 2: 40, 3: 30, 4: 20})
        policy = TopKPolicy(k=2, slack=0.5)  # retain rank <= 3
        current = ManagementPlan(100, [3, 4])
        desired = policy.desired_replicated(stats, current)
        assert desired.tolist() == [1, 2, 3]  # 4 ranks below the band

    def test_k_zero_replicates_nothing(self):
        stats = _stats_with(100, {1: 50})
        policy = TopKPolicy(k=0)
        assert len(policy.desired_replicated(
            stats, ManagementPlan(100, [1]))) == 0

    def test_make_policy(self):
        assert isinstance(make_policy("hot-spot"), HotSpotPolicy)
        assert isinstance(make_policy("top-k", top_k=3), TopKPolicy)
        with pytest.raises(ValueError):
            make_policy("nope")


# --------------------------------------------------------------------------
# controller + NuPS integration
# --------------------------------------------------------------------------

def _adaptive_nups(store, cluster, config=None, replicated=(0, 1, 2)):
    plan = ManagementPlan(store.num_keys, np.asarray(replicated))
    ps = NuPS(store, cluster, plan=plan, sync_interval=0.01, seed=3)
    config = config or AdaptiveConfig(
        policy="top-k", top_k=3, period=0.01, half_life=0.05,
        warmup_observations=10, capacity=16,
    )
    controller = install_adaptive(ps, config)
    return ps, controller


def _hammer(ps, cluster, keys, repeats=20):
    worker = cluster.worker(0, 0)
    batch = np.asarray(keys, dtype=np.int64)
    for _ in range(repeats):
        ps.pull(worker, batch)


class TestAdaptiveController:
    def test_nothing_happens_before_the_period(self, store, cluster):
        ps, controller = _adaptive_nups(store, cluster)
        _hammer(ps, cluster, [50, 51, 52])
        ps.housekeeping(0.005)  # period is 0.01
        assert controller.adaptations == 0
        assert ps.plan.replicated_keys.tolist() == [0, 1, 2]

    def test_warmup_blocks_early_adaptation(self, store, cluster):
        config = AdaptiveConfig(policy="top-k", top_k=3, period=0.01,
                                warmup_observations=10_000)
        ps, controller = _adaptive_nups(store, cluster, config)
        _hammer(ps, cluster, [50, 51, 52])
        ps.housekeeping(0.02)
        assert controller.adaptations == 0

    def test_adapts_to_observed_hot_set(self, store, cluster):
        ps, controller = _adaptive_nups(store, cluster)
        _hammer(ps, cluster, [50, 51, 52])
        ps.housekeeping(0.02)
        assert controller.adaptations == 1
        assert ps.plan.replicated_keys.tolist() == [50, 51, 52]
        metrics = cluster.metrics
        assert metrics.get("adaptive.adaptations") == 1
        assert metrics.get("adaptive.keys_added") == 3
        assert metrics.get("adaptive.keys_removed") == 3
        assert metrics.get("adaptive.replicas_created") == 3
        assert metrics.get("adaptive.replicas_dropped") == 3
        # Replica state was rebuilt for the new plan.
        assert ps.replica_manager.replicated_keys.tolist() == [50, 51, 52]

    def test_transition_charges_network_and_background_threads(
            self, store, cluster):
        ps, controller = _adaptive_nups(store, cluster)
        _hammer(ps, cluster, [50, 51, 52])
        messages_before = cluster.metrics.get("network.messages")
        ps.housekeeping(0.02)
        assert cluster.metrics.get("network.messages") > messages_before
        for node_id in range(cluster.num_nodes):
            assert cluster.node(node_id).background_clock.now >= 0.02

    def test_backlog_collapses_into_one_adaptation(self, store, cluster):
        ps, controller = _adaptive_nups(store, cluster)
        _hammer(ps, cluster, [50, 51, 52])
        ps.housekeeping(1.0)  # 100 periods overdue
        assert controller.adaptations == 1
        assert controller.schedule.due_count(1.0) == 0

    def test_incremental_transitions_respect_the_cap(self, store, cluster):
        config = AdaptiveConfig(policy="top-k", top_k=3, period=0.01,
                                warmup_observations=10, capacity=16,
                                max_changes_per_step=2)
        ps, controller = _adaptive_nups(store, cluster, config)
        _hammer(ps, cluster, [50, 51, 52])
        ps.housekeeping(0.02)
        # Step 1: the two hottest additions take the whole budget.
        assert controller.adaptations == 1
        assert controller.keys_added == 2
        assert controller.keys_removed == 0
        _hammer(ps, cluster, [50, 51, 52])
        ps.housekeeping(0.04)
        # Step 2: the remaining addition plus one removal.
        assert controller.keys_added == 3
        assert controller.keys_removed >= 1
        _hammer(ps, cluster, [50, 51, 52])
        ps.housekeeping(0.06)
        assert ps.plan.replicated_keys.tolist() == [50, 51, 52]

    def test_no_transition_leaves_no_trace(self, network):
        def build(adaptive):
            cluster = Cluster(ClusterConfig(num_nodes=4, workers_per_node=2,
                                            network=network))
            store = ParameterStore(num_keys=100, value_length=4, seed=7,
                                   init_scale=0.5)
            ps = NuPS(store, cluster,
                      plan=ManagementPlan(100, np.arange(3)),
                      sync_interval=0.01, seed=3)
            if adaptive:
                install_adaptive(ps, AdaptiveConfig(
                    policy="top-k", top_k=3, period=0.01,
                    warmup_observations=10, capacity=16,
                ))
            _hammer(ps, cluster, [0, 1, 2])  # the hot set IS the plan
            ps.housekeeping(0.02)
            return ps, cluster

        ps_a, cluster_a = build(adaptive=True)
        ps_b, cluster_b = build(adaptive=False)
        assert ps_a.adaptive_controller.evaluations >= 1
        assert ps_a.adaptive_controller.adaptations == 0
        assert cluster_a.metrics.counters() == cluster_b.metrics.counters()
        for node_id in range(4):
            node_a, node_b = cluster_a.node(node_id), cluster_b.node(node_id)
            assert node_a.background_clock.now == node_b.background_clock.now
            assert [c.now for c in node_a.worker_clocks] == \
                [c.now for c in node_b.worker_clocks]

    def test_observer_skips_sampling_access(self, store, cluster):
        ps, controller = _adaptive_nups(store, cluster)
        worker = cluster.worker(0, 0)
        ps.pull_keys(worker, np.array([60, 61]), sampling=True)
        assert controller.stats.lifetime_observed == 0
        ps.pull_keys(worker, np.array([60, 61]), sampling=False)
        assert controller.stats.lifetime_observed == 2

    def test_round_api_feeds_the_observer(self, store, cluster):
        from repro.ps.rounds import WorkerRound

        ps, controller = _adaptive_nups(store, cluster)
        workers = [cluster.worker(n, 0) for n in range(2)]
        keys = np.array([70, 71, 72])
        deltas = np.zeros((3, store.value_length), dtype=np.float32)
        ps.run_round([
            WorkerRound(w, pull_keys=keys, push_keys=keys, push_deltas=deltas)
            for w in workers
        ])
        # Two workers x (pull + push) x 3 keys.
        assert controller.stats.lifetime_observed == 12

    def test_install_rejects_non_nups(self, cluster):
        store = ParameterStore(num_keys=10, value_length=2)
        with pytest.raises(TypeError):
            install_adaptive(ClassicPS(store, cluster), AdaptiveConfig())

    def test_install_rejects_double_attach(self, store, cluster):
        ps, _ = _adaptive_nups(store, cluster)
        with pytest.raises(RuntimeError):
            install_adaptive(ps, AdaptiveConfig())

    def test_config_validation(self):
        with pytest.raises(ValueError):
            AdaptiveConfig(policy="nope")
        with pytest.raises(ValueError):
            AdaptiveConfig(period=0.0)
        with pytest.raises(ValueError):
            AdaptiveConfig(half_life=0.0)
        with pytest.raises(ValueError):
            AdaptiveConfig(capacity=0)
        with pytest.raises(ValueError):
            AdaptiveConfig(warmup_observations=-1)
        with pytest.raises(ValueError):
            AdaptiveConfig(max_changes_per_step=0)

    def test_describe_reports_adaptive_state(self, store, cluster):
        ps, _ = _adaptive_nups(store, cluster)
        description = ps.describe()
        assert description["adaptive"]["policy"]["policy"] == "top-k"
        assert description["adaptive"]["adaptations"] == 0


# --------------------------------------------------------------------------
# NuPS.remanage edge cases
# --------------------------------------------------------------------------

class TestRemanageEdgeCases:
    def test_identical_plan_is_a_noop(self, nups, cluster):
        manager_before = nups.replica_manager
        syncs_before = manager_before.syncs_performed
        replans_before = cluster.metrics.get("management.replans")
        nups.remanage(ManagementPlan(nups.store.num_keys, np.arange(5)),
                      now=1.0)
        assert nups.replica_manager is manager_before  # no rebuild
        assert manager_before.syncs_performed == syncs_before  # no flush
        assert cluster.metrics.get("management.replans") == replans_before

    def test_shrinking_mid_sync_interval_flushes_buffered_updates(
            self, nups, cluster):
        worker = cluster.worker(0, 0)
        before = nups.store.get_single(4).copy()
        delta = np.ones((1, nups.store.value_length), dtype=np.float32)
        nups.push(worker, [4], delta)  # buffered, not yet synchronized
        np.testing.assert_array_equal(nups.store.get_single(4), before)
        # Shrink the replica set before the 0.01s sync interval elapses;
        # key 4 leaves replication management mid-interval.
        nups.remanage(ManagementPlan(nups.store.num_keys, np.arange(4)),
                      now=0.005)
        np.testing.assert_allclose(nups.store.get_single(4), before + 1.0,
                                   rtol=1e-6)
        assert not nups.plan.is_replicated(4)
        # The key is served by relocation now; a pull sees the merged value.
        values = nups.pull(worker, np.array([4]))
        np.testing.assert_allclose(values[0], before + 1.0, rtol=1e-6)

    def test_drift_without_oracle_refreshes_replica_values(self, nups, cluster):
        """After an un-remanaged drift, replicas serve the permuted store's
        values — the drift moves values with their logical key; it must not
        leave replicated keys serving the pre-drift parameter."""
        from repro.scenarios import Scenario, HotSetDrift
        from repro.scenarios.base import ScenarioRuntime
        from repro.runner.config import ExperimentConfig

        class _Task:
            def num_keys(self):
                return nups.store.num_keys

            def key_groups(self):
                return [(0, nups.store.num_keys)]

        scenario = Scenario("d", [HotSetDrift(oracle_remanage=False)])
        runtime = ScenarioRuntime(scenario, _Task(), nups, cluster,
                                  ExperimentConfig())
        runtime.apply_drift(0.5, oracle_remanage=False)
        assert nups.replica_manager.max_replica_divergence() == 0.0
        worker = cluster.worker(0, 0)
        np.testing.assert_array_equal(
            nups.pull(worker, np.array([0]))[0], nups.store.get_single(0)
        )

    def test_refresh_all_reloads_and_clears_buffers(self, nups, cluster):
        worker = cluster.worker(0, 0)
        delta = np.ones((1, nups.store.value_length), dtype=np.float32)
        nups.push(worker, [0], delta)  # buffered update + dirty slot
        nups.store.set([0], np.zeros((1, nups.store.value_length),
                                     dtype=np.float32))
        nups.replica_manager.refresh_all()
        assert nups.replica_manager.max_replica_divergence() == 0.0
        np.testing.assert_array_equal(
            nups.replica_manager.pull(0, np.array([0]))[0],
            np.zeros(nups.store.value_length, dtype=np.float32),
        )
        # Buffers were discarded: a sync must not re-apply the old delta.
        nups.replica_manager.force_sync(1.0)
        np.testing.assert_array_equal(
            nups.store.get_single(0),
            np.zeros(nups.store.value_length, dtype=np.float32),
        )

    def test_remanage_under_degraded_network(self, nups, cluster):
        worker = cluster.worker(0, 0)
        delta = np.ones((1, nups.store.value_length), dtype=np.float32)
        nups.push(worker, [0], delta)
        degraded = cluster.network.scaled(latency_factor=10.0,
                                          bandwidth_factor=0.1)
        cluster.set_network(degraded)
        nups.refresh_network()
        backgrounds_before = [cluster.node(n).background_clock.now
                              for n in range(cluster.num_nodes)]
        nups.remanage(ManagementPlan(nups.store.num_keys, np.arange(10)),
                      now=0.5)
        # The flush-sync was charged at degraded-network rates against every
        # node's background thread, anchored at the remanage time.
        for node_id in range(cluster.num_nodes):
            assert cluster.node(node_id).background_clock.now > \
                max(0.5, backgrounds_before[node_id])
        assert nups.replica_manager.sync_interval == 0.01
        # New replicas hold the post-flush values.
        np.testing.assert_allclose(
            nups.replica_manager.pull(0, np.array([0]))[0],
            nups.store.get_single(0), rtol=1e-6,
        )


# --------------------------------------------------------------------------
# runner wiring
# --------------------------------------------------------------------------

def _experiment_config(adaptive=None, scenario=None, seed=5):
    return ExperimentConfig(
        cluster=ClusterConfig(num_nodes=2, workers_per_node=2),
        epochs=2, chunk_size=8, seed=seed,
        scenario=scenario, adaptive=adaptive,
    )


def _fast_adaptive_config(**overrides):
    defaults = dict(policy="top-k", top_k=8, period=1e-4, half_life=1e-3,
                    warmup_observations=100, capacity=64)
    defaults.update(overrides)
    return AdaptiveConfig(**defaults)


def _assert_identical(first, second):
    assert first.initial_quality == second.initial_quality
    assert first.epochs_completed == second.epochs_completed
    for rec_a, rec_b in zip(first.records, second.records):
        assert rec_a.sim_time == rec_b.sim_time
        assert rec_a.epoch_duration == rec_b.epoch_duration
        assert rec_a.quality == rec_b.quality
        assert rec_a.metrics == rec_b.metrics
    assert first.metrics == second.metrics


class TestRunnerIntegration:
    def test_config_attaches_controller_and_adapts(self):
        task = make_task("matrix_factorization", scale="test")
        plan = ManagementPlan.top_k_by_count(task.access_counts(), 8)
        result = run_experiment(
            task, make_ps_factory("nups", plan=plan),
            _experiment_config(adaptive=_fast_adaptive_config()),
        )
        assert result.metrics.get("adaptive.adaptations", 0) >= 1

    def test_config_rejects_non_remanaging_systems(self):
        task = make_task("matrix_factorization", scale="test")
        with pytest.raises(TypeError):
            run_experiment(task, make_ps_factory("classic"),
                           _experiment_config(adaptive=_fast_adaptive_config()))

    def test_config_validates_adaptive_type(self):
        with pytest.raises(TypeError):
            ExperimentConfig(adaptive="yes please")

    def test_adaptive_system_factories_attach(self):
        task = make_task("matrix_factorization", scale="test")
        for system in ("nups-adaptive", "nups-adaptive-tuned"):
            result = run_experiment(
                task,
                make_ps_factory(
                    system, adaptive_config=_fast_adaptive_config()
                ),
                _experiment_config(),
            )
            assert result.metrics.get("adaptive.adaptations", 0) >= 1

    def test_adaptive_runs_are_deterministic(self):
        def run():
            task = make_task("matrix_factorization", scale="test")
            return run_experiment(
                task,
                make_ps_factory("nups-adaptive",
                                adaptive_config=_fast_adaptive_config()),
                _experiment_config(),
            )

        _assert_identical(run(), run())

    def test_adaptive_recovers_drift_without_oracle(self):
        """The headline mechanism at test scale: adaptation fires after an
        unannounced drift and re-targets replication at new physical keys."""
        def run(adaptive):
            task = make_task("matrix_factorization", scale="test")
            plan = ManagementPlan.top_k_by_count(task.access_counts(), 8)
            scenario = make_scenario("drift", at=((1, 0),), shift=0.5,
                                     oracle_remanage=False)
            factory = make_ps_factory(
                "nups-adaptive", plan=plan,
                adaptive_config=_fast_adaptive_config(),
            ) if adaptive else make_ps_factory("nups", plan=plan)
            return run_experiment(task, factory,
                                  _experiment_config(scenario=scenario))

        adaptive = run(adaptive=True)
        static = run(adaptive=False)
        assert adaptive.metrics.get("adaptive.adaptations", 0) >= 1
        assert adaptive.metrics.get("management.replans", 0) >= 1
        assert static.metrics.get("management.replans", 0) == 0

    def test_never_firing_controller_is_bit_transparent(self):
        """An attached controller that never transitions leaves the whole
        experiment bit-identical to plain static NuPS."""
        def run(factory):
            task = make_task("matrix_factorization", scale="test")
            return run_experiment(task, factory, _experiment_config())

        plan = ManagementPlan.top_k_by_count(
            make_task("matrix_factorization", scale="test").access_counts(), 8
        )
        static = run(make_ps_factory("nups", plan=plan))
        sleeper = run(make_ps_factory(
            "nups-adaptive", plan=plan,
            adaptive_config=_fast_adaptive_config(warmup_observations=10**9),
        ))
        _assert_identical(static, sleeper)

    def test_oracle_default_unchanged_without_flag(self):
        """drift presets keep their oracle behavior unless asked otherwise."""
        scenario = make_scenario("drift", at=((1, 0),), shift=0.5)
        assert scenario.perturbations[0].oracle_remanage is True
        scenario = make_scenario("storm", oracle_remanage=False)
        drift = [p for p in scenario.perturbations
                 if type(p).__name__ == "HotSetDrift"][0]
        assert drift.oracle_remanage is False
