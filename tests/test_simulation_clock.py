"""Tests for the simulated clock."""

import pytest
from hypothesis import given, strategies as st

from repro.simulation.clock import SimulatedClock


class TestSimulatedClock:
    def test_starts_at_zero_by_default(self):
        assert SimulatedClock().now == 0.0

    def test_starts_at_given_time(self):
        assert SimulatedClock(1.5).now == 1.5

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            SimulatedClock(-0.1)

    def test_advance_moves_forward(self):
        clock = SimulatedClock()
        assert clock.advance(0.5) == 0.5
        assert clock.advance(0.25) == 0.75
        assert clock.now == 0.75

    def test_advance_by_zero_is_allowed(self):
        clock = SimulatedClock(1.0)
        assert clock.advance(0.0) == 1.0

    def test_negative_advance_rejected(self):
        clock = SimulatedClock()
        with pytest.raises(ValueError):
            clock.advance(-1e-9)

    def test_advance_to_future(self):
        clock = SimulatedClock(1.0)
        assert clock.advance_to(2.0) == 2.0
        assert clock.now == 2.0

    def test_advance_to_past_is_a_noop(self):
        clock = SimulatedClock(5.0)
        assert clock.advance_to(1.0) == 5.0
        assert clock.now == 5.0

    def test_reset(self):
        clock = SimulatedClock(3.0)
        clock.reset()
        assert clock.now == 0.0
        clock.reset(2.0)
        assert clock.now == 2.0

    def test_reset_negative_rejected(self):
        with pytest.raises(ValueError):
            SimulatedClock().reset(-1.0)

    @given(st.lists(st.floats(min_value=0, max_value=1e3), max_size=50))
    def test_monotonicity_property(self, advances):
        """The clock never moves backwards regardless of the advance sequence."""
        clock = SimulatedClock()
        previous = clock.now
        for amount in advances:
            clock.advance(amount)
            assert clock.now >= previous
            previous = clock.now

    @given(st.floats(min_value=0, max_value=1e6), st.floats(min_value=0, max_value=1e6))
    def test_advance_to_is_max_property(self, start, target):
        clock = SimulatedClock(start)
        clock.advance_to(target)
        assert clock.now == max(start, target)
