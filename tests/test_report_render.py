"""Golden-file and unit tests for the REPRODUCTION.md renderer."""

import json
from pathlib import Path

from repro.report.render import render_markdown, write_reports

DATA = Path(__file__).parent / "data"


def fixture_payload():
    return json.loads((DATA / "reproduction_fixture.json").read_text())


class TestGoldenFile:
    def test_fixed_payload_renders_byte_identically(self):
        """Rendering is a pure function of the payload (no clocks, no env).

        If this fails after an intentional renderer change, regenerate with::

            PYTHONPATH=src python -c "
            import json, pathlib
            from repro.report.render import render_markdown
            data = pathlib.Path('tests/data')
            payload = json.loads((data / 'reproduction_fixture.json').read_text())
            (data / 'REPRODUCTION.golden.md').write_text(render_markdown(payload))"
        """
        golden = (DATA / "REPRODUCTION.golden.md").read_text()
        assert render_markdown(fixture_payload()) == golden

    def test_rendering_is_deterministic(self):
        payload = fixture_payload()
        assert render_markdown(payload) == render_markdown(payload)


class TestRenderedContent:
    def test_failed_benchmark_shows_traceback_and_status(self):
        rendered = render_markdown(fixture_payload())
        assert "**FAILED**" in rendered
        assert "RuntimeError: synthetic failure" in rendered

    def test_claim_verdicts_visible(self):
        rendered = render_markdown(fixture_payload())
        assert "| pass |" in rendered
        assert "| **FAIL** |" in rendered
        assert "error: benchmark produced no result" in rendered

    def test_pipe_characters_in_output_do_not_break_tables(self):
        payload = fixture_payload()
        payload["benchmarks"][0]["claims"][0]["observed"] = "a | b"
        rendered = render_markdown(payload)
        assert "a \\| b" in rendered

    def test_all_pass_banner(self):
        payload = fixture_payload()
        for entry in payload["benchmarks"]:
            entry["status"] = "ok"
            entry["error"] = None
            for verdict in entry["claims"]:
                verdict["passed"] = True
                verdict["error"] = None
        payload["summary"].update(
            benchmarks_ok=2, benchmarks_failed=[], claims_passed=3,
            claims_failed=0)
        rendered = render_markdown(payload)
        assert "All registered paper claims hold" in rendered


class TestWriteReports:
    def test_writes_json_and_md(self, tmp_path):
        payload = fixture_payload()
        written = write_reports(payload, tmp_path / "REPRODUCTION.json",
                                tmp_path / "REPRODUCTION.md")
        round_tripped = json.loads(written["json"].read_text())
        assert round_tripped["summary"]["claims_total"] == 3
        assert written["md"].read_text() == render_markdown(payload)

    def test_json_only(self, tmp_path):
        written = write_reports(fixture_payload(), tmp_path / "r.json")
        assert "md" not in written and written["json"].exists()
