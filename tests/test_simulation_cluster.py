"""Tests for the simulated cluster."""

import pytest

from repro.simulation.cluster import Cluster, ClusterConfig
from repro.simulation.network import NetworkModel


class TestClusterConfig:
    def test_defaults_match_paper_setting(self):
        config = ClusterConfig()
        assert config.num_nodes == 8
        assert config.workers_per_node == 8
        assert config.total_workers == 64

    def test_rejects_invalid_sizes(self):
        with pytest.raises(ValueError):
            ClusterConfig(num_nodes=0)
        with pytest.raises(ValueError):
            ClusterConfig(workers_per_node=0)


class TestCluster:
    def test_worker_contexts_cover_all_workers(self, cluster):
        workers = list(cluster.workers())
        assert len(workers) == cluster.num_nodes * cluster.workers_per_node
        identities = {(w.node_id, w.worker_id) for w in workers}
        assert len(identities) == len(workers)

    def test_worker_lookup(self, cluster):
        worker = cluster.worker(2, 1)
        assert worker.node_id == 2
        assert worker.worker_id == 1
        assert worker.global_worker_id == (2, 1)

    def test_worker_clock_identity(self, cluster):
        """The context's clock is the node's clock object (shared state)."""
        worker = cluster.worker(1, 0)
        worker.clock.advance(0.5)
        assert cluster.node(1).worker_clocks[0].now == 0.5

    def test_cluster_time_is_max_over_nodes(self, cluster):
        cluster.worker(0, 0).clock.advance(1.0)
        cluster.worker(3, 1).clock.advance(2.5)
        assert cluster.time == 2.5

    def test_node_time_includes_background_and_server(self, cluster):
        node = cluster.node(0)
        node.background_clock.advance(3.0)
        assert node.time == 3.0
        node.server_clock.advance(4.0)
        assert node.time == 4.0

    def test_min_worker_time(self, cluster):
        for worker in cluster.workers():
            worker.clock.advance(1.0)
        cluster.worker(0, 0).clock.advance(1.0)
        assert cluster.min_worker_time == 1.0

    def test_reset_clocks_preserves_metrics(self, cluster):
        cluster.worker(0, 0).clock.advance(1.0)
        cluster.metrics.increment("x", 1)
        cluster.reset_clocks()
        assert cluster.time == 0.0
        assert cluster.metrics.get("x") == 1

    def test_reset_metrics(self, cluster):
        cluster.metrics.increment("x", 1)
        cluster.reset_metrics()
        assert cluster.metrics.get("x") == 0

    def test_network_is_shared(self, network):
        cluster = Cluster(ClusterConfig(num_nodes=2, workers_per_node=1, network=network))
        assert cluster.network is network
        assert isinstance(cluster.network, NetworkModel)


class TestFaultHooks:
    def test_fail_node_is_idempotent(self, cluster):
        """Regression: re-failing a failed node must not re-run the guards.

        With 3 of 4 nodes down, failing one of the already-failed nodes
        again used to trip the last-survivor check and raise — the
        idempotency short-circuit must come before every guard.
        """
        for node_id in (1, 2, 3):
            cluster.fail_node(node_id)
        cluster.fail_node(2)  # no-op, must not raise
        assert cluster.failed == {1, 2, 3}
        assert cluster.active_nodes == [0]

    def test_fail_node_rejects_out_of_range(self, cluster):
        with pytest.raises(ValueError, match="out of range"):
            cluster.fail_node(-1)
        with pytest.raises(ValueError, match="out of range"):
            cluster.fail_node(cluster.num_nodes)

    def test_fail_node_keeps_last_survivor(self, cluster):
        for node_id in (1, 2, 3):
            cluster.fail_node(node_id)
        with pytest.raises(ValueError, match="last surviving"):
            cluster.fail_node(0)

    def test_restore_node_rejects_out_of_range(self, cluster):
        """Regression: restore_node(-1) used to silently advance the last
        node's clocks (negative indexing into the node list)."""
        with pytest.raises(ValueError, match="out of range"):
            cluster.restore_node(-1, now=5.0)
        assert cluster.node(cluster.num_nodes - 1).time == 0.0
        with pytest.raises(ValueError, match="out of range"):
            cluster.restore_node(cluster.num_nodes, now=5.0)

    def test_restore_of_non_failed_node_is_a_noop(self, cluster):
        """Restoring a healthy node must not move its clocks."""
        cluster.restore_node(1, now=7.5)
        node = cluster.node(1)
        assert node.time == 0.0
        assert all(clock.now == 0.0 for clock in node.worker_clocks)

    def test_restore_advances_clocks_monotonically(self, cluster):
        cluster.node(1).server_clock.advance(3.0)
        cluster.fail_node(1)
        cluster.restore_node(1, now=2.0)
        # advance_to never rewinds: the server clock stays at 3.0.
        assert cluster.node(1).server_clock.now == 3.0
        assert cluster.node(1).worker_clocks[0].now == 2.0
        assert not cluster.failed


class TestMembership:
    def test_add_node_grows_cluster_and_bumps_epoch(self, cluster):
        epoch = cluster.membership_epoch
        node_id = cluster.add_node(now=1.5)
        assert node_id == 4
        assert cluster.num_nodes == 5
        assert cluster.membership_epoch == epoch + 1
        assert cluster.node(node_id).time == 1.5
        assert cluster.worker(node_id, 0).clock.now == 1.5
        assert node_id in cluster.active_nodes

    def test_remove_node_is_idempotent_and_bumps_epoch_once(self, cluster):
        epoch = cluster.membership_epoch
        cluster.remove_node(2)
        cluster.remove_node(2)
        assert cluster.membership_epoch == epoch + 1
        assert cluster.is_removed(2)
        assert 2 not in cluster.active_nodes

    def test_remove_rejects_crashed_node(self, cluster):
        cluster.fail_node(2)
        with pytest.raises(ValueError, match="crashed"):
            cluster.remove_node(2)

    def test_removed_node_cannot_crash_or_rejoin(self, cluster):
        cluster.remove_node(3)
        with pytest.raises(ValueError, match="removed"):
            cluster.fail_node(3)
        with pytest.raises(ValueError, match="never"):
            cluster.restore_node(3)

    def test_keeps_last_active_node(self, cluster):
        for node_id in (1, 2, 3):
            cluster.remove_node(node_id)
        with pytest.raises(ValueError, match="last active"):
            cluster.remove_node(0)
