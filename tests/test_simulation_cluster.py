"""Tests for the simulated cluster."""

import pytest

from repro.simulation.cluster import Cluster, ClusterConfig
from repro.simulation.network import NetworkModel


class TestClusterConfig:
    def test_defaults_match_paper_setting(self):
        config = ClusterConfig()
        assert config.num_nodes == 8
        assert config.workers_per_node == 8
        assert config.total_workers == 64

    def test_rejects_invalid_sizes(self):
        with pytest.raises(ValueError):
            ClusterConfig(num_nodes=0)
        with pytest.raises(ValueError):
            ClusterConfig(workers_per_node=0)


class TestCluster:
    def test_worker_contexts_cover_all_workers(self, cluster):
        workers = list(cluster.workers())
        assert len(workers) == cluster.num_nodes * cluster.workers_per_node
        identities = {(w.node_id, w.worker_id) for w in workers}
        assert len(identities) == len(workers)

    def test_worker_lookup(self, cluster):
        worker = cluster.worker(2, 1)
        assert worker.node_id == 2
        assert worker.worker_id == 1
        assert worker.global_worker_id == (2, 1)

    def test_worker_clock_identity(self, cluster):
        """The context's clock is the node's clock object (shared state)."""
        worker = cluster.worker(1, 0)
        worker.clock.advance(0.5)
        assert cluster.node(1).worker_clocks[0].now == 0.5

    def test_cluster_time_is_max_over_nodes(self, cluster):
        cluster.worker(0, 0).clock.advance(1.0)
        cluster.worker(3, 1).clock.advance(2.5)
        assert cluster.time == 2.5

    def test_node_time_includes_background_and_server(self, cluster):
        node = cluster.node(0)
        node.background_clock.advance(3.0)
        assert node.time == 3.0
        node.server_clock.advance(4.0)
        assert node.time == 4.0

    def test_min_worker_time(self, cluster):
        for worker in cluster.workers():
            worker.clock.advance(1.0)
        cluster.worker(0, 0).clock.advance(1.0)
        assert cluster.min_worker_time == 1.0

    def test_reset_clocks_preserves_metrics(self, cluster):
        cluster.worker(0, 0).clock.advance(1.0)
        cluster.metrics.increment("x", 1)
        cluster.reset_clocks()
        assert cluster.time == 0.0
        assert cluster.metrics.get("x") == 1

    def test_reset_metrics(self, cluster):
        cluster.metrics.increment("x", 1)
        cluster.reset_metrics()
        assert cluster.metrics.get("x") == 0

    def test_network_is_shared(self, network):
        cluster = Cluster(ClusterConfig(num_nodes=2, workers_per_node=1, network=network))
        assert cluster.network is network
        assert isinstance(cluster.network, NetworkModel)
