"""Table 1: conformity levels of the sampling schemes.

The paper classifies the common sampling schemes into the conformity
hierarchy (Table 1): independent sampling is CONFORM, sample reuse is
BOUNDED, local sampling and direct-access repurposing are NON-CONFORM. This
benchmark verifies the classification empirically: it draws a large number of
samples through each scheme on a skewed target distribution and measures the
total-variation distance between the empirical inclusion frequencies and the
target. Schemes at levels L1–L3 must match the target (small distance);
NON-CONFORM schemes are allowed to deviate (and local sampling under a static
allocation does deviate).
"""

import numpy as np

from common import print_header, run_once
from repro.core.management import ManagementPlan
from repro.core.nups import NuPS
from repro.core.sampling.conformity import SCHEME_CONFORMITY, ConformityLevel
from repro.core.sampling.distributions import CategoricalDistribution
from repro.core.sampling.manager import SamplingConfig
from repro.core.sampling.schemes import SchemeConfig
from repro.ps.storage import ParameterStore
from repro.runner.reporting import format_table
from repro.simulation.cluster import Cluster, ClusterConfig

NUM_KEYS = 512
NUM_SAMPLES = 40_000


def _empirical_distance(scheme_name: str) -> float:
    """Total-variation distance between sampled and target frequencies."""
    cluster = Cluster(ClusterConfig(num_nodes=4, workers_per_node=1))
    store = ParameterStore(NUM_KEYS, 2, seed=0, init_scale=0.1)
    config = SamplingConfig(
        scheme_config=SchemeConfig(pool_size=32, use_frequency=8),
        scheme_override=scheme_name,
    )
    ps = NuPS(store, cluster, plan=ManagementPlan.relocate_all(NUM_KEYS),
              sampling_config=config, seed=1)
    weights = 1.0 / np.arange(1, NUM_KEYS + 1) ** 0.8
    distribution = CategoricalDistribution(weights)
    dist_id = ps.register_distribution(distribution, ConformityLevel.NON_CONFORM)

    worker = cluster.worker(0, 0)
    drawn = []
    remaining = NUM_SAMPLES
    while remaining:
        batch = min(500, remaining)
        handle = ps.prepare_sample(worker, dist_id, batch)
        while handle.remaining:
            result = ps.pull_sample(worker, handle, min(50, handle.remaining))
            drawn.extend(result.keys.tolist())
        remaining -= batch
    empirical = np.bincount(np.asarray(drawn), minlength=NUM_KEYS) / len(drawn)
    return float(0.5 * np.abs(empirical - distribution.probabilities()).sum())


def _run():
    rows = []
    distances = {}
    for scheme_name, level in SCHEME_CONFORMITY.items():
        distance = _empirical_distance(scheme_name)
        distances[scheme_name] = distance
        rows.append([
            scheme_name,
            level.name,
            "yes" if level is ConformityLevel.CONFORM else "no",
            "yes" if level.value <= ConformityLevel.BOUNDED.value else "no",
            "yes" if level.value <= ConformityLevel.LONG_TERM.value else "no",
            distance,
        ])
    print_header("Table 1 — conformity levels of common sampling schemes")
    print(format_table(
        ["scheme", "level", "CONFORM", "BOUNDED", "LONG-TERM",
         "TV distance to target (empirical)"],
        rows,
    ))
    return distances


def run() -> dict:
    """Structured Table 1 results for the pipeline."""
    distances = _run()
    return {
        "tv_distance": distances,
        "levels": {scheme: level.name
                   for scheme, level in SCHEME_CONFORMITY.items()},
        "num_keys": NUM_KEYS,
        "num_samples": NUM_SAMPLES,
    }


def test_table1_conformity_levels(benchmark):
    distances = run_once(benchmark, _run)
    # Schemes with conformity guarantees match the target distribution.
    # Sample reuse draws NUM_SAMPLES / use_frequency fresh samples, so its
    # empirical distance carries more sampling noise than independent
    # sampling; both stay far below the NON-CONFORM deviation.
    assert distances["independent"] < 0.06
    assert distances["sample_reuse"] < 0.15
    assert distances["sample_reuse_postponing"] < 0.15
    # Local sampling under a static allocation deviates substantially —
    # it only ever sees the local quarter of the key space.
    assert distances["local"] > 0.25
    assert distances["local"] > 2 * distances["sample_reuse"]
