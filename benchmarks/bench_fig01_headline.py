"""Figure 1: headline comparison on the knowledge graph embeddings task.

The paper's Figure 1 shows model quality (filtered MRR) over run time for a
single node, a classic PS, a replication PS (Petuum), a relocation PS (Lapse)
and NuPS on 8 nodes: the existing PSs fall behind the single node while NuPS
improves on it by a large factor. This benchmark regenerates that series on
the scaled-down synthetic KGE workload.
"""

from common import print_header, result_summary, run_once, run_systems
from repro.analysis.speedup import raw_speedup_from_results
from repro.runner.reporting import quality_over_time_table, summary_table

SYSTEMS = ["single-node", "classic", "essp", "lapse", "nups"]


def _run():
    results = run_systems("kge", SYSTEMS, seed=1)
    print_header("Figure 1 — KGE: model quality over (simulated) run time, 8 nodes")
    print(quality_over_time_table(results))
    print()
    print(summary_table(results))
    print()
    print("Raw speedup over the single node (epoch time):")
    for system, speedup in raw_speedup_from_results(results).items():
        print(f"  {system:12s} {speedup:6.2f}x")
    return results


def run() -> dict:
    """Structured Figure 1 results for the reproduction pipeline."""
    results = _run()
    return {
        "systems": list(SYSTEMS),
        "epoch_time": {r.system: r.mean_epoch_time() for r in results},
        "raw_speedup": raw_speedup_from_results(results),
        "summary": {r.system: result_summary(r) for r in results},
    }


def test_fig01_headline_kge(benchmark):
    results = run_once(benchmark, _run)

    # Shape assertions mirroring the paper's qualitative claims.
    by_name = {r.system: r for r in results}
    assert by_name["nups"].mean_epoch_time() < by_name["single-node"].mean_epoch_time()
    assert by_name["classic"].mean_epoch_time() > by_name["single-node"].mean_epoch_time()
    assert by_name["nups"].mean_epoch_time() < by_name["lapse"].mean_epoch_time()
    assert by_name["nups"].mean_epoch_time() < by_name["essp"].mean_epoch_time()
