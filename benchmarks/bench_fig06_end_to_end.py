"""Figure 6: end-to-end performance of the PSs on the three workloads.

The paper's Figure 6 shows, for each task, model quality over run time
(6a–6c) and over epochs (6d–6f) for the single node, classic PS, Petuum SSP /
ESSP, Lapse, and NuPS (untuned and tuned). Petuum has no WV implementation
and runs out of memory on MF, so those cells are absent — as in the paper.

This benchmark regenerates the series and the speedup callouts (raw and
effective speedups over the single node).
"""

import pytest

from common import print_header, result_summary, run_once, run_systems, trained
from repro.analysis.speedup import (
    effective_speedup_from_results,
    raw_speedup_from_results,
)
from repro.runner.reporting import quality_over_time_table, summary_table

SYSTEMS_BY_TASK = {
    # Petuum (SSP/ESSP) appears only for KGE, as in the paper.
    "kge": ["single-node", "classic", "ssp", "essp", "lapse", "nups", "nups-tuned"],
    "word_vectors": ["single-node", "classic", "lapse", "nups", "nups-tuned"],
    "matrix_factorization": ["single-node", "classic", "lapse", "nups"],
}

LABELS = {
    "kge": "Figure 6a/6d — KGE",
    "word_vectors": "Figure 6b/6e — WV",
    "matrix_factorization": "Figure 6c/6f — MF",
}


def _run(task_name):
    results = run_systems(task_name, SYSTEMS_BY_TASK[task_name], seed=1)
    print_header(f"{LABELS[task_name]}: quality over (simulated) time and epochs, 8 nodes")
    print(quality_over_time_table(results))
    print()
    print(summary_table(results))
    print()
    print("Raw speedups over the single node (epoch time):")
    for system, speedup in raw_speedup_from_results(results).items():
        print(f"  {system:22s} {speedup:6.2f}x")
    print("Effective speedups (time to 90% of best single-node quality):")
    for system, speedup in effective_speedup_from_results(results).items():
        label = f"{speedup:6.2f}x" if speedup is not None else "   not reached"
        print(f"  {system:22s} {label}")
    return {r.system: r for r in results}


def run() -> dict:
    """Structured Figure 6 results (all three tasks) for the pipeline."""
    figure = {}
    for task_name in SYSTEMS_BY_TASK:
        by_name = _run(task_name)
        results = list(by_name.values())
        figure[task_name] = {
            "epoch_time": {s: r.mean_epoch_time() for s, r in by_name.items()},
            "raw_speedup": raw_speedup_from_results(results),
            "effective_speedup": effective_speedup_from_results(results),
            "trained": {s: trained(r) for s, r in by_name.items()},
            "summary": {s: result_summary(r) for s, r in by_name.items()},
        }
    return figure


@pytest.mark.parametrize("task_name", list(SYSTEMS_BY_TASK))
def test_fig06_end_to_end(benchmark, task_name):
    by_name = run_once(benchmark, lambda: _run(task_name))
    single = by_name["single-node"]
    nups = by_name["nups"]
    classic = by_name["classic"]
    # NuPS is the fastest PS on every task and beats the single node. On MF
    # (no sampling access, no hot spots above the heuristic threshold at this
    # scale) NuPS reduces to a relocation-only PS, so it ties with Lapse.
    assert nups.mean_epoch_time() < single.mean_epoch_time()
    assert nups.mean_epoch_time() < classic.mean_epoch_time()
    assert nups.mean_epoch_time() <= by_name["lapse"].mean_epoch_time()
    # Every system actually trains the model.
    for result in by_name.values():
        initial = result.initial_quality[result.quality_metric]
        if result.higher_is_better:
            assert result.best_quality() > initial
        else:
            assert result.best_quality() < initial
