"""CI guard: simulator throughput must not regress against the baseline.

Compares a freshly measured throughput report against the committed
baseline. Two report shapes are understood:

* ``BENCH_throughput.json`` — per-system ``accesses_per_sec`` of the
  PS-level microbenchmark;
* ``BENCH_backends.json`` — per-(architecture, execution backend)
  ``points_per_sec`` of the backend comparison, so a regression in the
  parallel backend (or in the fused baseline it is measured against) fails
  the guard exactly like a PS-level one.

CI runners and developer boxes differ by large constant factors, so
absolute rates are not comparable across machines; the guard therefore
normalizes them away: it computes each entry's fresh/baseline ratio and
fails only when one entry falls more than ``TOLERANCE``x below the *median*
ratio across entries. A uniformly slower machine shifts every ratio equally
and passes; an accidentally disabled fast path in one architecture drags
that entry's ratio far below the median and fails. The committed baseline
itself is refreshed deliberately (by committing a new baseline JSON), not
by CI.

Usage::

    PYTHONPATH=src python benchmarks/bench_throughput.py FRESH.json
    python benchmarks/check_throughput_regression.py FRESH.json BASELINE.json
    PYTHONPATH=src python benchmarks/bench_backends.py FRESH_BACKENDS.json
    python benchmarks/check_throughput_regression.py FRESH_BACKENDS.json BENCH_backends.json
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

#: A system whose fresh/baseline ratio is more than this factor below the
#: median ratio fails the guard. Generous on purpose: the guard exists to
#: catch order-of-magnitude regressions, not scheduler noise.
TOLERANCE = 3.0


def _median(values):
    ordered = sorted(values)
    middle = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[middle]
    return 0.5 * (ordered[middle - 1] + ordered[middle])


def _rates(report: dict) -> dict:
    """Flatten either report shape into ``{entry_name: rate}``.

    ``BENCH_throughput.json`` carries ``systems.<name>.accesses_per_sec``;
    ``BENCH_backends.json`` carries
    ``architectures.<system>.<backend>.points_per_sec``.
    """
    if "architectures" in report:
        return {
            f"{system}.{backend}": stats["points_per_sec"]
            for system, entry in report["architectures"].items()
            for backend, stats in entry.items()
            if isinstance(stats, dict) and stats.get("points_per_sec")
        }
    return {name: stats["accesses_per_sec"]
            for name, stats in report["systems"].items()
            if stats.get("accesses_per_sec")}


def check(fresh_path: Path, baseline_path: Path) -> int:
    fresh = _rates(json.loads(fresh_path.read_text()))
    baseline = _rates(json.loads(baseline_path.read_text()))
    failures = []
    ratios = {}
    for name in sorted(baseline):
        fresh_rate = fresh.get(name)
        if not fresh_rate:
            failures.append(f"{name}: missing from the fresh report")
            continue
        ratios[name] = fresh_rate / baseline[name]
    if not ratios:
        print("no comparable systems between the two reports")
        return 1

    median_ratio = _median(ratios.values())
    print(f"{'entry':24s} {'baseline/s':>12s} {'fresh/s':>12s} "
          f"{'ratio':>7s} {'vs median':>10s}")
    for name, ratio in sorted(ratios.items()):
        relative = ratio / median_ratio
        marker = ""
        if relative * TOLERANCE < 1.0:
            failures.append(
                f"{name}: fresh/baseline ratio {ratio:.2f}x is more than "
                f"{TOLERANCE:g}x below the median ratio {median_ratio:.2f}x "
                "— this system regressed relative to the others"
            )
            marker = "  << REGRESSION"
        print(f"{name:24s} {baseline[name]:>12,d} "
              f"{fresh[name]:>12,d} {ratio:>6.2f}x "
              f"{relative:>9.2f}x{marker}")
    if failures:
        print("\nthroughput regression guard FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"\nthroughput regression guard passed (median ratio "
          f"{median_ratio:.2f}x; per-system tolerance 1/{TOLERANCE:g} of it)")
    return 0


def main(argv) -> int:
    if len(argv) != 3:
        print(__doc__)
        return 2
    return check(Path(argv[1]), Path(argv[2]))


def _report(tmp_path, name, **rates):
    path = tmp_path / f"{name}.json"
    path.write_text(json.dumps(
        {"systems": {system: {"accesses_per_sec": rate}
                     for system, rate in rates.items()}}
    ))
    return path


def test_guard_passes_on_identical_reports(tmp_path):
    path = _report(tmp_path, "report", classic=1000, nups=500)
    assert check(path, path) == 0


def test_guard_ignores_uniform_machine_speed(tmp_path):
    baseline = _report(tmp_path, "baseline", classic=10_000, nups=5_000,
                       replication=2_000)
    fresh = _report(tmp_path, "fresh", classic=1_000, nups=500,
                    replication=200)  # 10x slower box, same shape
    assert check(fresh, baseline) == 0


def test_guard_fails_when_one_system_collapses(tmp_path):
    baseline = _report(tmp_path, "baseline", classic=10_000, nups=5_000,
                       replication=2_000)
    fresh = _report(tmp_path, "fresh", classic=10_000, nups=5_000,
                    replication=500)  # replication alone lost 4x
    assert check(fresh, baseline) == 1


def test_guard_fails_on_missing_system(tmp_path):
    baseline = _report(tmp_path, "baseline", classic=10_000, nups=5_000)
    fresh = _report(tmp_path, "fresh", classic=10_000)
    assert check(fresh, baseline) == 1


def _backends_report(tmp_path, name, **rates):
    """``BENCH_backends.json``-shaped report: keys are ``system_backend``."""
    architectures: dict = {}
    for key, rate in rates.items():
        system, backend = key.rsplit("_", 1)
        architectures.setdefault(system, {})[backend] = {
            "points_per_sec": rate, "seconds": 1.0,
        }
    path = tmp_path / f"{name}.json"
    path.write_text(json.dumps({"architectures": architectures}))
    return path


def test_guard_covers_backend_reports(tmp_path):
    baseline = _backends_report(tmp_path, "baseline", classic_fused=10_000,
                                classic_parallel=20_000, lapse_fused=8_000,
                                lapse_parallel=16_000)
    assert check(baseline, baseline) == 0
    fresh = _backends_report(tmp_path, "fresh", classic_fused=10_000,
                             classic_parallel=2_000, lapse_fused=8_000,
                             lapse_parallel=16_000)  # parallel path collapsed
    assert check(fresh, baseline) == 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
