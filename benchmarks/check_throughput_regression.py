"""CI guard: simulator throughput must not regress against the baseline.

Compares a freshly measured ``BENCH_throughput.json`` report against the
committed baseline on ``accesses_per_sec``. CI runners and developer boxes
differ by large constant factors, so absolute rates are not comparable
across machines; the guard therefore normalizes them away: it computes each
system's fresh/baseline ratio and fails only when one system falls more
than ``TOLERANCE``x below the *median* ratio across systems. A uniformly
slower machine shifts every ratio equally and passes; an accidentally
disabled fast path in one architecture drags that system's ratio far below
the median and fails. The committed baseline itself is refreshed
deliberately (by committing a new ``BENCH_throughput.json``), not by CI.

Usage::

    PYTHONPATH=src python benchmarks/bench_throughput.py FRESH.json
    python benchmarks/check_throughput_regression.py FRESH.json BASELINE.json
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

#: A system whose fresh/baseline ratio is more than this factor below the
#: median ratio fails the guard. Generous on purpose: the guard exists to
#: catch order-of-magnitude regressions, not scheduler noise.
TOLERANCE = 3.0


def _median(values):
    ordered = sorted(values)
    middle = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[middle]
    return 0.5 * (ordered[middle - 1] + ordered[middle])


def check(fresh_path: Path, baseline_path: Path) -> int:
    fresh = json.loads(fresh_path.read_text())["systems"]
    baseline = json.loads(baseline_path.read_text())["systems"]
    failures = []
    ratios = {}
    for name in sorted(baseline):
        fresh_rate = fresh.get(name, {}).get("accesses_per_sec")
        if not fresh_rate:
            failures.append(f"{name}: missing from the fresh report")
            continue
        ratios[name] = fresh_rate / baseline[name]["accesses_per_sec"]
    if not ratios:
        print("no comparable systems between the two reports")
        return 1

    median_ratio = _median(ratios.values())
    print(f"{'system':14s} {'baseline/s':>12s} {'fresh/s':>12s} "
          f"{'ratio':>7s} {'vs median':>10s}")
    for name, ratio in sorted(ratios.items()):
        relative = ratio / median_ratio
        marker = ""
        if relative * TOLERANCE < 1.0:
            failures.append(
                f"{name}: fresh/baseline ratio {ratio:.2f}x is more than "
                f"{TOLERANCE:g}x below the median ratio {median_ratio:.2f}x "
                "— this system regressed relative to the others"
            )
            marker = "  << REGRESSION"
        print(f"{name:14s} {baseline[name]['accesses_per_sec']:>12,d} "
              f"{fresh[name]['accesses_per_sec']:>12,d} {ratio:>6.2f}x "
              f"{relative:>9.2f}x{marker}")
    if failures:
        print("\nthroughput regression guard FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"\nthroughput regression guard passed (median ratio "
          f"{median_ratio:.2f}x; per-system tolerance 1/{TOLERANCE:g} of it)")
    return 0


def main(argv) -> int:
    if len(argv) != 3:
        print(__doc__)
        return 2
    return check(Path(argv[1]), Path(argv[2]))


def _report(tmp_path, name, **rates):
    path = tmp_path / f"{name}.json"
    path.write_text(json.dumps(
        {"systems": {system: {"accesses_per_sec": rate}
                     for system, rate in rates.items()}}
    ))
    return path


def test_guard_passes_on_identical_reports(tmp_path):
    path = _report(tmp_path, "report", classic=1000, nups=500)
    assert check(path, path) == 0


def test_guard_ignores_uniform_machine_speed(tmp_path):
    baseline = _report(tmp_path, "baseline", classic=10_000, nups=5_000,
                       replication=2_000)
    fresh = _report(tmp_path, "fresh", classic=1_000, nups=500,
                    replication=200)  # 10x slower box, same shape
    assert check(fresh, baseline) == 0


def test_guard_fails_when_one_system_collapses(tmp_path):
    baseline = _report(tmp_path, "baseline", classic=10_000, nups=5_000,
                       replication=2_000)
    fresh = _report(tmp_path, "fresh", classic=10_000, nups=5_000,
                    replication=500)  # replication alone lost 4x
    assert check(fresh, baseline) == 1


def test_guard_fails_on_missing_system(tmp_path):
    baseline = _report(tmp_path, "baseline", classic=10_000, nups=5_000)
    fresh = _report(tmp_path, "fresh", classic=10_000)
    assert check(fresh, baseline) == 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
