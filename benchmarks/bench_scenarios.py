"""Dynamic-workload scenario sweep: management techniques under change.

Runs the four scenario-engine perturbations — hot-set drift, stragglers,
worker churn, degrading network — plus the static baseline for the paper's
four management approaches (classic, relocation/Lapse, replication/ESSP,
NuPS) and reports per-epoch localization rates, epoch durations and final
quality. Results are written to ``BENCH_scenarios.json``.

The headline check (asserted at the end of the run): under hot-set drift the
adaptive systems — relocation and NuPS — re-adapt, i.e. their localization
rate dips in the drift epoch and *recovers* afterwards, while the statically
partitioned classic PS has no locality to recover (its rate stays flat and
low) and replication's replica hit rate stays degraded.

Run with::

    PYTHONPATH=src python benchmarks/bench_scenarios.py

Set ``REPRO_BENCH_FAST=1`` for a quicker smoke run and
``REPRO_BENCH_TASK=kge|word_vectors|matrix_factorization`` to switch the
workload (default: matrix factorization, whose row partitioning produces the
clearest settled locality for drift to disturb).
"""

from __future__ import annotations

import json
import multiprocessing
import os
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from common import (  # noqa: E402
    DEFAULT_NODES,
    FAST,
    TASK_FACTORIES,
    WORKERS_PER_NODE,
    _parallel_workers,
    heuristic_key_count,
    print_header,
)

from repro.core.management import ManagementPlan  # noqa: E402
from repro.runner.config import ExperimentConfig  # noqa: E402
from repro.runner.experiment import ExperimentResult, run_experiment  # noqa: E402
from repro.runner.reporting import format_table, localization_rate  # noqa: E402
from repro.runner.systems import make_ps_factory  # noqa: E402
from repro.runner.workloads import NUPS_BENCH_OVERRIDES  # noqa: E402
from repro.scenarios import make_scenario  # noqa: E402
from repro.simulation.cluster import ClusterConfig  # noqa: E402


TASK_NAME = os.environ.get("REPRO_BENCH_TASK", "matrix_factorization")
EPOCHS = 4 if FAST else 6
DRIFT_EPOCH = 2 if FAST else 3
SYSTEMS = ("classic", "lapse", "essp", "nups")
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_scenarios.json"

#: Tolerance on localization-rate comparisons (simulation noise is tiny; the
#: drift dip at bench scale is an order of magnitude larger than this).
EPSILON = 0.004


def scenario_for(name: str):
    """The scenario preset parameterized for this sweep (None = static)."""
    if name == "static":
        return None
    if name == "drift":
        return make_scenario("drift", at=((DRIFT_EPOCH, 0),), shift=0.5)
    if name == "stragglers":
        return make_scenario("stragglers", severity=3.0, redraw_each_epoch=True)
    if name == "churn":
        return make_scenario("churn", fraction=0.25, pause_at_round=2)
    if name == "degrading-network":
        return make_scenario("degrading-network", start_epoch=1,
                             latency_growth=2.0, bandwidth_decay=0.5, steps=3)
    raise ValueError(name)


SCENARIOS = ("static", "drift", "stragglers", "churn", "degrading-network")


def _system_overrides(system: str, task) -> dict:
    overrides = {}
    if system in ("nups", "nups-tuned"):
        overrides.update(NUPS_BENCH_OVERRIDES)
        # The MF matrix at bench scale is too small for the 100x-mean
        # heuristic; fall back to a fixed hot-spot set so multi-technique
        # management (and the drift re-management hook) are exercised.
        plan = ManagementPlan.from_access_counts(task.access_counts())
        if plan.num_replicated == 0:
            overrides["plan"] = ManagementPlan.top_k_by_count(
                task.access_counts(), heuristic_key_count(task)
            )
    return overrides


def run_cell(scenario_name: str, system: str) -> ExperimentResult:
    task = TASK_FACTORIES[TASK_NAME]("bench")
    config = ExperimentConfig(
        cluster=ClusterConfig(num_nodes=DEFAULT_NODES,
                              workers_per_node=WORKERS_PER_NODE),
        epochs=EPOCHS, chunk_size=8, seed=0,
        scenario=scenario_for(scenario_name),
    )
    return run_experiment(
        task, make_ps_factory(system, **_system_overrides(system, task)),
        config, system_name=system,
    )


def _summarize(result: ExperimentResult) -> dict:
    return {
        "localization": [localization_rate(r) for r in result.records],
        "epoch_durations": [r.epoch_duration for r in result.records],
        "sim_times": [r.sim_time for r in result.records],
        "qualities": result.qualities(),
        "final_quality": result.final_quality(),
        "total_time": result.total_time,
        "relocations": [r.metrics.get("relocation.count", 0.0)
                        for r in result.records],
        "replans": result.metrics.get("management.replans", 0.0),
        "drifts": result.metrics.get("scenario.drifts", 0.0),
        "worker_pauses": result.metrics.get("scenario.worker_pauses", 0.0),
        "network_changes": result.metrics.get("scenario.network_changes", 0.0),
    }


def _run_job(scenario_name: str, system: str) -> dict:
    return _summarize(run_cell(scenario_name, system))


def check_drift_recovery(drift_results: dict) -> dict:
    """The acceptance check: adaptive systems recover, static ones do not."""
    pre, during, post = DRIFT_EPOCH - 1, DRIFT_EPOCH, EPOCHS - 1
    checks = {}
    for system in ("lapse", "nups"):
        series = drift_results[system]["localization"]
        dipped = series[during] < series[pre] - EPSILON
        recovered = series[post] >= series[pre] - EPSILON
        checks[system] = {"dipped": dipped, "recovered": recovered,
                          "pre": series[pre], "during": series[during],
                          "post": series[post]}
        assert dipped, (
            f"{system}: localization did not dip at the drift epoch "
            f"({series[pre]:.4f} -> {series[during]:.4f})"
        )
        assert recovered, (
            f"{system}: localization did not recover after the drift "
            f"({series[pre]:.4f} -> {series[post]:.4f})"
        )
    classic = drift_results["classic"]["localization"]
    flat = max(classic) - min(classic) < 0.02
    checks["classic"] = {"flat": flat, "series": classic}
    assert flat, f"classic localization should stay flat, got {classic}"
    return checks


def run() -> dict:
    """Run the full scenario sweep; returns the ``BENCH_scenarios.json`` payload.

    Used both by :func:`main` (which writes the JSON next to the repo root)
    and by the reproduction pipeline (which embeds the payload in
    ``REPRODUCTION.json`` without touching the committed baseline).
    """
    print_header(
        f"Dynamic-workload scenarios — {TASK_NAME}, "
        f"{DEFAULT_NODES}x{WORKERS_PER_NODE} workers, {EPOCHS} epochs "
        f"(drift at epoch {DRIFT_EPOCH})"
    )

    jobs = [(scenario, system) for scenario in SCENARIOS for system in SYSTEMS]
    workers = _parallel_workers(len(jobs))
    if workers > 1 and hasattr(os, "fork"):
        TASK_FACTORIES[TASK_NAME]("bench")  # warm the dataset cache pre-fork
        try:
            pool = multiprocessing.get_context("fork").Pool(workers)
        except (OSError, ValueError):
            pool = None
        if pool is not None:
            with pool:
                summaries = pool.starmap(_run_job, jobs)
        else:
            summaries = [_run_job(*job) for job in jobs]
    else:
        summaries = [_run_job(*job) for job in jobs]

    results: dict = {scenario: {} for scenario in SCENARIOS}
    for (scenario, system), summary in zip(jobs, summaries):
        results[scenario][system] = summary

    for scenario in SCENARIOS:
        print_header(f"scenario: {scenario}")
        rows = []
        for system in SYSTEMS:
            summary = results[scenario][system]
            rows.append([
                system,
                summary["total_time"],
                summary["final_quality"],
                " ".join(f"{rate:.3f}" for rate in summary["localization"]),
            ])
        print(format_table(
            ["system", "total time (s)", "final quality",
             "localization rate per epoch"],
            rows,
        ))

    drift_checks = check_drift_recovery(results["drift"])
    print_header("drift re-adaptation check")
    for system, check in drift_checks.items():
        print(f"  {system}: {check}")

    return {
        "task": TASK_NAME,
        "epochs": EPOCHS,
        "drift_epoch": DRIFT_EPOCH,
        "num_nodes": DEFAULT_NODES,
        "workers_per_node": WORKERS_PER_NODE,
        "fast_mode": FAST,
        "systems": list(SYSTEMS),
        "scenarios": list(SCENARIOS),
        "results": results,
        "drift_checks": drift_checks,
    }


def main() -> int:
    payload = run()
    OUTPUT.write_text(json.dumps(payload, indent=2, sort_keys=True))
    print(f"\nwrote {OUTPUT}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
