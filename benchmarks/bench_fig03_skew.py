"""Figure 3: number of accesses per parameter (skew), direct vs. sampling.

The paper plots per-parameter access counts over one epoch, sorted by
decreasing total count, separately for direct and sampling access, for the
KGE and WV tasks, and reports headline skew statistics ("18% of reads go to
0.02% of parameters"). This benchmark regenerates the curves (as percentile
tables) and the statistics from the synthetic workloads' dataset statistics.
"""

import numpy as np

from common import print_header, run_once
from repro.analysis.skew import access_frequency_curve, skew_report, task_access_profile
from repro.runner.reporting import format_table
from repro.runner.workloads import kge_task, word_vectors_task


PERCENTILES = [0.0001, 0.001, 0.01, 0.1, 0.25, 0.5, 0.9]


def _curve_rows(counts: np.ndarray):
    curve = access_frequency_curve(counts)
    total = curve.sum()
    rows = []
    for percentile in PERCENTILES:
        index = max(0, int(percentile * len(curve)) - 1)
        top_share = curve[: index + 1].sum() / total if total else 0.0
        rows.append([f"top {percentile:.2%} of keys", curve[index], top_share])
    return rows


def _report(task, label):
    profile = task_access_profile(task)
    print_header(f"Figure 3 — {label}: accesses per parameter over one epoch")
    curves = {}
    for kind in ("total", "direct", "sampling"):
        counts = profile[kind]
        if counts.sum() == 0:
            continue
        rows = _curve_rows(counts)
        curves[kind] = {
            "percentile": list(PERCENTILES),
            "accesses_at_rank": [row[1] for row in rows],
            "cumulative_share": [row[2] for row in rows],
        }
        print(f"\n[{kind} access] sorted access-count curve:")
        print(format_table(
            ["rank position", "accesses at rank", "cumulative share of accesses"],
            rows,
        ))
    report = skew_report(task, top_fraction=0.001)
    print("\nHeadline skew statistics:")
    print(format_table(
        ["keys", "share of accesses to top 0.1% keys", "direct share", "sampling share"],
        [[int(report["num_keys"]), report["top_share"],
          report["direct_share"], report["sampling_share"]]],
    ))
    return {"headline": report, "curves": curves}


def run() -> dict:
    """Structured Figure 3 results for the reproduction pipeline."""
    return {
        "kge": _report(kge_task("bench"), "KGE"),
        "word_vectors": _report(word_vectors_task("bench"), "WV"),
    }


def test_fig03a_kge_skew(benchmark):
    report = run_once(benchmark,
                      lambda: _report(kge_task("bench"), "KGE"))["headline"]
    # Access is heavily skewed: the top 0.1% of keys get far more than 0.1%
    # of the accesses, and both access kinds are present.
    assert report["top_share"] > 0.02
    assert 0 < report["sampling_share"] < 1


def test_fig03b_word_vectors_skew(benchmark):
    report = run_once(benchmark,
                      lambda: _report(word_vectors_task("bench"), "WV"))["headline"]
    assert report["top_share"] > 0.02
    assert report["sampling_share"] > 0.2
