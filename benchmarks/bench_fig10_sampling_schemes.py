"""Figure 10: effect of the sampling schemes on run time and model quality.

The paper runs the KGE and WV tasks with independent sampling (CONFORM),
sample reuse with use frequencies 16 and 64 (BOUNDED), and local sampling
(NON-CONFORM): both sample reuse and local sampling speed up epochs
substantially over independent sampling, with small effects on per-epoch
quality. It additionally shows that local sampling with a *static* allocation
deteriorates quality drastically (Figure 10c).
"""

import pytest

from common import NUPS_BENCH_OVERRIDES, print_header, run_once, run_system, trained
from repro.runner.reporting import summary_table

VARIANTS = [
    ("independent (CONFORM)", {"scheme_override": "independent"}),
    ("sample reuse U=16 (BOUNDED)", {"scheme_override": "sample_reuse",
                                     "use_frequency": 16}),
    ("sample reuse U=64 (BOUNDED)", {"scheme_override": "sample_reuse",
                                     "use_frequency": 64}),
    ("reuse + postponing (LONG-TERM)", {"scheme_override": "sample_reuse_postponing",
                                        "use_frequency": 16}),
    ("local sampling (NON-CONFORM)", {"scheme_override": "local"}),
]


EPOCHS = 2


def _run(task_name):
    single = run_system(task_name, "single-node", epochs=EPOCHS, seed=5)
    results = [single]
    by_label = {"single-node": single}
    for label, overrides in VARIANTS:
        merged = dict(NUPS_BENCH_OVERRIDES)
        merged.update(overrides)
        result = run_system(task_name, "nups", epochs=EPOCHS, seed=5,
                            system_overrides=merged)
        result.system = label
        results.append(result)
        by_label[label] = result
    print_header(f"Figure 10 — sampling schemes on {task_name}: epoch time and quality")
    print(summary_table(results))
    return by_label


#: Stable short keys for the pipeline's result dict / claim paths.
SHORT_KEYS = {
    "single-node": "single-node",
    "independent (CONFORM)": "independent",
    "sample reuse U=16 (BOUNDED)": "reuse16",
    "sample reuse U=64 (BOUNDED)": "reuse64",
    "reuse + postponing (LONG-TERM)": "reuse_postponing",
    "local sampling (NON-CONFORM)": "local",
}


def run() -> dict:
    """Structured Figure 10 results for the pipeline."""
    figure = {}
    for task_name in ("kge", "word_vectors"):
        by_label = _run(task_name)
        figure[task_name] = {
            "epoch_time": {SHORT_KEYS[label]: result.mean_epoch_time()
                           for label, result in by_label.items()},
            "trained": {SHORT_KEYS[label]: trained(result)
                        for label, result in by_label.items()},
        }
    return figure


@pytest.mark.parametrize("task_name", ["kge", "word_vectors"])
def test_fig10_sampling_schemes(benchmark, task_name):
    by_label = run_once(benchmark, lambda: _run(task_name))
    independent = by_label["independent (CONFORM)"]
    reuse16 = by_label["sample reuse U=16 (BOUNDED)"]
    reuse64 = by_label["sample reuse U=64 (BOUNDED)"]
    local = by_label["local sampling (NON-CONFORM)"]
    # Sample reuse and local sampling reduce epoch time versus independent
    # sampling (Section 5.5), with higher use frequencies reducing it further.
    assert reuse16.mean_epoch_time() < independent.mean_epoch_time()
    assert local.mean_epoch_time() < independent.mean_epoch_time()
    assert reuse64.mean_epoch_time() <= reuse16.mean_epoch_time() * 1.05
    # Every variant still trains the model.
    for label, result in by_label.items():
        initial = result.initial_quality[result.quality_metric]
        assert result.best_quality() > initial, label
