"""cProfile harness for the simulator's hot loop.

Perf work on this codebase should start from data, not guesses: this harness
profiles the simulator-throughput workload (the same one
``bench_throughput.py`` measures) through any PS architecture and prints the
top cumulative hot spots. Both execution modes are available — the
round-fused engine (default) and the sequential per-worker chain — so a
regression or an optimization candidate can be localized to one path.

Usage::

    PYTHONPATH=src python benchmarks/bench_profile.py                 # all systems, fused
    PYTHONPATH=src python benchmarks/bench_profile.py replication     # one system
    PYTHONPATH=src python benchmarks/bench_profile.py nups --mode sequential
    PYTHONPATH=src python benchmarks/bench_profile.py classic --top 30 --sort tottime

``REPRO_BENCH_FAST=1`` shrinks the workload like the other benchmarks.
"""

from __future__ import annotations

import argparse
import cProfile
import pstats

from bench_throughput import _drive, _system_factories, _workload

DEFAULT_TOP = 20


def profile_system(name: str, factory, batches, round_fusion: bool,
                   top: int, sort: str) -> pstats.Stats:
    mode = "round-fused" if round_fusion else "sequential"
    print(f"\n=== {name} ({mode}) — top {top} by {sort} " + "=" * 20)
    profiler = cProfile.Profile()
    profiler.enable()
    _drive(name, factory, batches, round_fusion)
    profiler.disable()
    stats = pstats.Stats(profiler).sort_stats(sort)
    stats.print_stats(top)
    return stats


def run() -> dict:
    """Profile the classic PS's round-fused hot loop (pipeline appendix).

    The reproduction pipeline only needs proof that the profiling harness
    attributes the hot loop to concrete functions; profiling one system in
    one mode keeps the appendix cheap. The printed report is the same one
    the CLI produces.
    """
    factories = _system_factories()
    stats = profile_system("classic", factories["classic"], _workload(),
                           round_fusion=True, top=DEFAULT_TOP,
                           sort="cumulative")
    entries = [
        {
            "function": f"{filename}:{line}({name})",
            "ncalls": ncalls,
            "tottime": tottime,
            "cumtime": cumtime,
        }
        for (filename, line, name), (_, ncalls, tottime, cumtime, _)
        in stats.stats.items()
    ]
    entries.sort(key=lambda entry: entry["cumtime"], reverse=True)
    top_entries = entries[:DEFAULT_TOP]
    return {
        "system": "classic",
        "mode": "round-fused",
        "sort": "cumulative",
        "num_entries": len(top_entries),
        "top": top_entries,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("systems", nargs="*",
                        help="systems to profile (default: all)")
    parser.add_argument("--mode", choices=["fused", "sequential"],
                        default="fused")
    parser.add_argument("--top", type=int, default=DEFAULT_TOP,
                        help=f"entries to print (default {DEFAULT_TOP})")
    parser.add_argument("--sort", default="cumulative",
                        help="pstats sort key (default: cumulative)")
    args = parser.parse_args()

    factories = _system_factories()
    unknown = [name for name in args.systems if name not in factories]
    if unknown:
        parser.error(f"unknown systems {unknown}; choose from {sorted(factories)}")
    selected = args.systems or sorted(factories)

    batches = _workload()
    for name in selected:
        profile_system(name, factories[name], batches,
                       round_fusion=args.mode == "fused",
                       top=args.top, sort=args.sort)


def test_profile_harness(capsys):
    """The harness profiles a system end to end and prints a report."""
    import os
    os.environ.setdefault("REPRO_BENCH_FAST", "1")
    factories = _system_factories()
    profile_system("classic", factories["classic"], _workload(),
                   round_fusion=True, top=5, sort="cumulative")
    output = capsys.readouterr().out
    assert "classic (round-fused)" in output
    assert "cumulative" in output


if __name__ == "__main__":
    main()
