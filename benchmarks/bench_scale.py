"""Scale sweep: sparse chunked storage, keys x nodes x skew, vs dense.

Exercises the storage layer (:mod:`repro.ps.chunks`) end to end and produces
the machine-checked scale claims:

* **bit identity** — converting an experiment to the sparse chunked backend
  changes nothing observable: simulated clocks, metrics and model quality are
  bit-identical to the dense oracle for every PS architecture.
* **memory ceiling** — the sparse backend runs 10^8 logical keys on 8+ nodes
  with resident state bounded by a stated memory budget, while the dense
  layout for the same architecture would need several times the *entire*
  budget (and more bytes than the whole benchmark process ever used).

Results are written to ``BENCH_scale.json``. Run with::

    PYTHONPATH=src python benchmarks/bench_scale.py

Set ``REPRO_BENCH_FAST=1`` for a quicker smoke run (the 10^8-key headline
cell is kept even in fast mode — it is the point of the benchmark).
"""

from __future__ import annotations

import json
import multiprocessing
import os
import resource
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from common import (  # noqa: E402
    FAST,
    _parallel_workers,
    print_header,
    run_system,
)

import numpy as np  # noqa: E402

from repro.core.management import ManagementPlan  # noqa: E402
from repro.ps.chunks import StorageConfig  # noqa: E402
from repro.ps.storage import ParameterStore  # noqa: E402
from repro.runner.reporting import format_table  # noqa: E402
from repro.runner.systems import build_parameter_server  # noqa: E402
from repro.simulation.cluster import Cluster, ClusterConfig  # noqa: E402


OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_scale.json"

# ------------------------------------------------------------- equivalence
#: Workload and systems of the dense-vs-sparse bit-identity comparison.
EQ_TASK = "kge"
EQ_NODES = 4 if FAST else 8
EQ_SYSTEMS = ("classic", "lapse", "essp", "nups")
EQ_STORAGE = StorageConfig(backend="sparse", chunk_rows=256)

# ------------------------------------------------------------- scale sweep
#: Logical key counts of the sweep. The largest cell stays at 10^8 even in
#: fast mode: the memory-ceiling claims quantify over it.
SCALE_KEYS = (10**6, 10**8) if FAST else (10**6, 10**7, 10**8)
SCALE_NODES = (8,) if FAST else (8, 16)
#: Zipf-like exponents of the per-node access distribution (0 = uniform).
SKEWS = (0.0, 1.0)
#: The sweep runs the paper's system; the headline cell runs every
#: architecture side by side.
SWEEP_SYSTEM = "nups"
HEADLINE_SYSTEMS = ("classic", "lapse", "essp", "nups")

VALUE_LENGTH = 8
SCALE_CHUNK_ROWS = 2048
SCALE_WORKERS_PER_NODE = 2
#: The stated memory budget of every scale cell: the store plus a per-node
#: allowance for replica state. ``MemoryBudget`` enforces both *during* the
#: run; the cells additionally record the resident bytes they ended at.
STORE_BUDGET_BYTES = 256 * 1024**2
NODE_BUDGET_BYTES = 64 * 1024**2

#: Per-node working-set size, accesses per batch, and rounds per worker.
#: Sized so that even the largest cell (16 nodes, 10^8 keys, every touched
#: key in its own chunk) stays well under the store budget.
WORKING_SET_PER_NODE = 64
BATCH = 128
ROUNDS = 4 if FAST else 8
ADVANCE_EVERY = 2
#: Keys each node contributes to the NuPS replication plan (the hot head).
HOT_KEYS_PER_NODE = 8

#: Bytes per key of each dense per-node structure (see storage.py and
#: replication.py/relocation.py): float32 values + int64 versions for the
#: store; mask + values + clock + update mask + update buffer per replica
#: node; owner + arrival time for relocation; int64 slot table for the
#: replica manager.
_DENSE_STORE_BPK = 4 * VALUE_LENGTH + 8
_DENSE_REPLICA_BPK = 1 + 4 * VALUE_LENGTH + 8 + 1 + 4 * VALUE_LENGTH
_DENSE_RELOCATION_BPK = 8 + 8
_DENSE_SLOT_TABLE_BPK = 8


def budget_total_bytes(num_nodes: int) -> int:
    """The stated budget of one cell: store plus per-node allowances."""
    return STORE_BUDGET_BYTES + num_nodes * NODE_BUDGET_BYTES


def dense_required_bytes(system: str, num_keys: int, num_nodes: int) -> int:
    """Bytes the dense layout of ``system`` would need at this cell."""
    total = num_keys * _DENSE_STORE_BPK
    if system in ("lapse", "nups"):
        total += num_keys * _DENSE_RELOCATION_BPK
    if system in ("ssp", "essp"):
        total += num_nodes * num_keys * _DENSE_REPLICA_BPK
    if system == "nups":
        total += num_keys * _DENSE_SLOT_TABLE_BPK
    return total


# --------------------------------------------------------------------------
# Part 1: dense == sparse, bit for bit, at benchmark scale.
# --------------------------------------------------------------------------

def _fingerprint(result) -> dict:
    """Everything observable about an experiment, exactly as produced."""
    return {
        "initial_quality": dict(result.initial_quality),
        "records": [
            {
                "epoch": record.epoch,
                "sim_time": record.sim_time,
                "epoch_duration": record.epoch_duration,
                "quality": dict(record.quality),
                "metrics": dict(record.metrics),
            }
            for record in result.records
        ],
        "metrics": dict(result.metrics),
    }


def _equivalence_job(system: str, backend: str) -> dict:
    overrides = {"storage": EQ_STORAGE} if backend == "sparse" else None
    result = run_system(EQ_TASK, system, num_nodes=EQ_NODES,
                        system_overrides=overrides)
    return _fingerprint(result)


def _compare_fingerprints(dense: dict, sparse: dict) -> dict:
    """Per-aspect equality flags (floats compared exactly: bit identity)."""
    clocks = all(
        d["sim_time"] == s["sim_time"]
        and d["epoch_duration"] == s["epoch_duration"]
        for d, s in zip(dense["records"], sparse["records"])
    ) and len(dense["records"]) == len(sparse["records"])
    quality = (
        dense["initial_quality"] == sparse["initial_quality"]
        and all(d["quality"] == s["quality"]
                for d, s in zip(dense["records"], sparse["records"]))
    )
    metrics = (
        dense["metrics"] == sparse["metrics"]
        and all(d["metrics"] == s["metrics"]
                for d, s in zip(dense["records"], sparse["records"]))
    )
    flags = {
        "clocks_identical": clocks,
        "quality_identical": quality,
        "metrics_identical": metrics,
    }
    flags["identical"] = all(flags.values())
    flags["epochs"] = len(dense["records"])
    flags["dense_total_time"] = (
        dense["records"][-1]["sim_time"] if dense["records"] else None
    )
    return flags


# --------------------------------------------------------------------------
# Part 2: the keys x nodes x skew sweep on the sparse backend.
# --------------------------------------------------------------------------

def _node_working_sets(rng: np.random.Generator, num_keys: int,
                       num_nodes: int) -> list:
    """Disjoint per-node key working sets drawn from the full key space."""
    draw = rng.integers(0, num_keys, size=num_nodes * WORKING_SET_PER_NODE * 2,
                        dtype=np.int64)
    working = np.unique(draw)
    return np.array_split(working, num_nodes)


def _access_probabilities(size: int, skew: float) -> np.ndarray:
    ranks = np.arange(1, size + 1, dtype=np.float64)
    weights = ranks ** -skew
    return weights / weights.sum()


def _run_scale_cell(num_keys: int, num_nodes: int, skew: float,
                    system: str, seed: int) -> dict:
    started = time.perf_counter()
    storage = StorageConfig(
        backend="sparse", chunk_rows=SCALE_CHUNK_ROWS,
        store_budget_bytes=STORE_BUDGET_BYTES,
        node_budget_bytes=NODE_BUDGET_BYTES,
    )
    store = ParameterStore(num_keys, VALUE_LENGTH, storage=storage)
    cluster = Cluster(ClusterConfig(num_nodes=num_nodes,
                                    workers_per_node=SCALE_WORKERS_PER_NODE))
    rng = np.random.default_rng(seed)
    node_sets = _node_working_sets(rng, num_keys, num_nodes)
    node_probs = [_access_probabilities(len(keys), skew) for keys in node_sets]

    overrides = {}
    if system == "nups":
        hot = np.concatenate([keys[:HOT_KEYS_PER_NODE] for keys in node_sets])
        overrides["plan"] = ManagementPlan(num_keys, hot)
    ps = build_parameter_server(system, store, cluster, None, **overrides)

    # Each node localizes its working set once (relocation PSs re-home the
    # keys; the others treat it as the documented no-op).
    for node_id, keys in enumerate(node_sets):
        ps.localize(cluster.worker(node_id, 0), keys)

    accesses = 0
    delta = np.full((BATCH, VALUE_LENGTH), 0.01, dtype=np.float32)
    for round_index in range(ROUNDS):
        for node_id in range(num_nodes):
            for worker_id in range(SCALE_WORKERS_PER_NODE):
                worker = cluster.worker(node_id, worker_id)
                keys = rng.choice(node_sets[node_id], size=BATCH,
                                  p=node_probs[node_id])
                ps.pull(worker, keys)
                ps.push(worker, keys, delta)
                accesses += 2 * BATCH
        if (round_index + 1) % ADVANCE_EVERY == 0:
            for node_id in range(num_nodes):
                for worker_id in range(SCALE_WORKERS_PER_NODE):
                    ps.advance_clock(cluster.worker(node_id, worker_id))
    ps.finish_epoch()

    # Untouched regions must read as zero without materializing anything.
    probe = int(np.max([keys.max() for keys in node_sets])) + 1
    if probe >= num_keys:
        probe = 0
        while any(probe in keys for keys in node_sets):  # pragma: no cover
            probe += 1
    untouched_zero = not store.get(np.array([probe])).any()

    state = {name: int(size) for name, size in ps.state_nbytes().items()}
    total_nbytes = sum(state.values())
    budget = budget_total_bytes(num_nodes)
    dense_required = dense_required_bytes(system, num_keys, num_nodes)
    return {
        "num_keys": num_keys,
        "num_nodes": num_nodes,
        "skew": skew,
        "system": system,
        "completed": True,
        "untouched_reads_zero": untouched_zero,
        "accesses": accesses,
        "touched_keys": int(sum(len(keys) for keys in node_sets)),
        "materialized_chunks": int(store.materialized_chunks()),
        "store_nbytes": int(store.nbytes()),
        "state_nbytes": state,
        "total_nbytes": int(total_nbytes),
        "budget_total_bytes": int(budget),
        "under_budget": bool(
            store.nbytes() <= STORE_BUDGET_BYTES and total_nbytes <= budget
        ),
        "dense_required_bytes": int(dense_required),
        "dense_over_budget": dense_required / budget,
        "wall_seconds": time.perf_counter() - started,
    }


def _cell_id(num_keys: int, num_nodes: int, skew: float, system: str) -> str:
    return f"{system}@{num_keys:.0e}x{num_nodes}n_s{skew:g}".replace("+", "")


def _run_job(kind: str, *args) -> dict:
    if kind == "equivalence":
        return _equivalence_job(*args)
    return _run_scale_cell(*args)


def _mib(num_bytes: float) -> str:
    return f"{num_bytes / 1024**2:.1f} MiB"


def run() -> dict:
    """Run the scale sweep; returns the ``BENCH_scale.json`` payload."""
    print_header(
        f"Sparse storage at scale — sweep {[f'{k:.0e}' for k in SCALE_KEYS]} "
        f"keys x {list(SCALE_NODES)} nodes x skew {list(SKEWS)}, "
        f"equivalence on {EQ_TASK} at {EQ_NODES} nodes"
    )

    headline_keys = max(SCALE_KEYS)
    headline_nodes = SCALE_NODES[0]
    headline_skew = 1.0
    sweep_cells = [
        (num_keys, num_nodes, skew, SWEEP_SYSTEM)
        for num_keys in SCALE_KEYS
        for num_nodes in SCALE_NODES
        for skew in SKEWS
    ]
    headline_cells = [
        (headline_keys, headline_nodes, headline_skew, system)
        for system in HEADLINE_SYSTEMS
        if (headline_keys, headline_nodes, headline_skew, system)
        not in sweep_cells
    ]
    scale_jobs = [
        ("scale", num_keys, num_nodes, skew, system, 1 + index)
        for index, (num_keys, num_nodes, skew, system)
        in enumerate(sweep_cells + headline_cells)
    ]
    eq_jobs = [("equivalence", system, backend)
               for system in EQ_SYSTEMS for backend in ("dense", "sparse")]

    jobs = eq_jobs + scale_jobs
    workers = _parallel_workers(len(jobs))
    outcomes = None
    if workers > 1 and hasattr(os, "fork"):
        from common import TASK_FACTORIES
        TASK_FACTORIES[EQ_TASK]("bench")  # warm the dataset cache pre-fork
        try:
            pool = multiprocessing.get_context("fork").Pool(workers)
        except (OSError, ValueError):
            pool = None
        if pool is not None:
            with pool:
                outcomes = pool.starmap(_run_job, jobs)
    if outcomes is None:
        outcomes = [_run_job(*job) for job in jobs]
    by_job = dict(zip(jobs, outcomes))

    # ------------------------------------------------- dense == sparse
    equivalence: dict = {}
    for system in EQ_SYSTEMS:
        dense = by_job[("equivalence", system, "dense")]
        sparse = by_job[("equivalence", system, "sparse")]
        equivalence[system] = _compare_fingerprints(dense, sparse)
    print_header(f"dense vs sparse on {EQ_TASK}: bit identity per architecture")
    print(format_table(
        ["system", "identical", "clocks", "quality", "metrics", "epochs"],
        [[system, f["identical"], f["clocks_identical"],
          f["quality_identical"], f["metrics_identical"], f["epochs"]]
         for system, f in equivalence.items()],
    ))
    for system, flags in equivalence.items():
        assert flags["identical"], \
            f"sparse backend diverged from the dense oracle on {system}"

    # ------------------------------------------------- the sweep table
    cells = {
        _cell_id(*job[1:5]): by_job[job] for job in scale_jobs
    }
    print_header("scale sweep: resident memory under the stated budget")
    print(format_table(
        ["cell", "keys", "nodes", "skew", "resident", "budget",
         "dense would need", "chunks", "wall (s)"],
        [[cell_id, f"{cell['num_keys']:.0e}", cell["num_nodes"],
          f"{cell['skew']:g}", _mib(cell["total_nbytes"]),
          _mib(cell["budget_total_bytes"]),
          _mib(cell["dense_required_bytes"]),
          cell["materialized_chunks"], f"{cell['wall_seconds']:.1f}"]
         for cell_id, cell in cells.items()],
    ))
    for cell_id, cell in cells.items():
        assert cell["completed"], f"scale cell {cell_id} did not complete"
        assert cell["under_budget"], f"scale cell {cell_id} exceeded its budget"
        assert cell["untouched_reads_zero"], \
            f"scale cell {cell_id}: untouched keys must read as zero"

    # ------------------------------------------------- headline numbers
    headline = {
        system: cells[_cell_id(headline_keys, headline_nodes,
                               headline_skew, system)]
        for system in HEADLINE_SYSTEMS
    }
    peak_rss_bytes = 1024 * max(
        resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
        resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss,
    )
    min_dense_required = min(cell["dense_required_bytes"]
                             for cell in headline.values())
    dense_to_budget = min(cell["dense_over_budget"]
                          for cell in headline.values())
    checks = {
        "equivalence_all_identical": {
            system: flags["identical"]
            for system, flags in equivalence.items()
        },
        "cells_completed": {cell_id: cell["completed"]
                            for cell_id, cell in cells.items()},
        "cells_under_budget": {cell_id: cell["under_budget"]
                               for cell_id, cell in cells.items()},
        "headline_keys": headline_keys,
        "headline_nodes": headline_nodes,
        "headline_under_budget": {system: cell["under_budget"]
                                  for system, cell in headline.items()},
        "dense_to_budget_ratio": dense_to_budget,
        "min_dense_required_bytes": int(min_dense_required),
        "peak_rss_bytes": int(peak_rss_bytes),
        "rss_below_dense_required": bool(peak_rss_bytes < min_dense_required),
    }
    print_header(
        f"headline: {headline_keys:.0e} keys on {headline_nodes} nodes"
    )
    print(format_table(
        ["system", "resident", "store", "dense would need", "x budget"],
        [[system, _mib(cell["total_nbytes"]), _mib(cell["store_nbytes"]),
          _mib(cell["dense_required_bytes"]),
          f"{cell['dense_over_budget']:.1f}x"]
         for system, cell in headline.items()],
    ))
    print(f"\npeak process RSS: {_mib(peak_rss_bytes)} "
          f"(dense would need at least {_mib(min_dense_required)})")
    assert checks["rss_below_dense_required"], (
        "the benchmark process peaked above the dense requirement — the "
        "memory-ceiling story does not hold on this machine"
    )

    return {
        "fast_mode": FAST,
        "value_length": VALUE_LENGTH,
        "chunk_rows": SCALE_CHUNK_ROWS,
        "workers_per_node": SCALE_WORKERS_PER_NODE,
        "budgets": {
            "store_budget_bytes": STORE_BUDGET_BYTES,
            "node_budget_bytes": NODE_BUDGET_BYTES,
        },
        "equivalence": {
            "task": EQ_TASK,
            "num_nodes": EQ_NODES,
            "systems": equivalence,
        },
        "cells": cells,
        "headline": {system: cell for system, cell in headline.items()},
        "checks": checks,
    }


def main() -> int:
    payload = run()
    OUTPUT.write_text(json.dumps(payload, indent=2, sort_keys=True))
    print(f"\nwrote {OUTPUT}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
