"""Table 2: the evaluation workloads and their access characteristics.

The paper's Table 2 lists, per task, the model (keys, values, size), the
dataset (data points, size) and the split of parameter accesses into direct
and sampling access. This benchmark prints the same table for the scaled-down
synthetic workloads.
"""

from common import print_header, run_once
from repro.analysis.skew import skew_report
from repro.runner.reporting import format_table
from repro.runner.workloads import TASK_FACTORIES


def _run():
    rows = []
    reports = {}
    structured = {}
    for name, factory in TASK_FACTORIES.items():
        task = factory("bench")
        report = skew_report(task)
        reports[name] = report
        model_mb = task.num_keys() * task.value_length() * 4 / 1e6
        structured[name] = {
            "keys": task.num_keys(),
            "values": task.num_keys() * task.value_length(),
            "model_mb": model_mb,
            "data_points": task.num_data_points(),
            "direct_share": report["direct_share"],
            "sampling_share": report["sampling_share"],
        }
        rows.append([
            task.name,
            task.num_keys(),
            task.num_keys() * task.value_length(),
            round(model_mb, 2),
            task.num_data_points(),
            f"{report['direct_share']:.0%}",
            f"{report['sampling_share']:.0%}",
        ])
    print_header("Table 2 — ML tasks, models, datasets, and share of direct/sampling access")
    print(format_table(
        ["task", "keys", "values", "model size (MB)", "data points",
         "direct access", "sampling access"],
        rows,
    ))
    return reports, structured


def run() -> dict:
    """Structured Table 2 results for the pipeline."""
    _, structured = _run()
    return structured


def test_table2_workload_characteristics(benchmark):
    reports, _ = run_once(benchmark, _run)
    # KGE and WV have substantial sampling access; MF has none (Table 2).
    assert reports["kge"]["sampling_share"] > 0.2
    assert reports["word_vectors"]["sampling_share"] > 0.2
    assert reports["matrix_factorization"]["sampling_share"] == 0.0
