"""Figure 9: effective scalability (speedup to reach 90% of single-node quality).

The paper reports, for the systems that reach the 90% quality threshold, the
speedup in the time needed to reach 90% of the best single-node model quality
when scaling from 1 to 16 nodes. Only NuPS (untuned and tuned) reaches the
threshold on all tasks; this benchmark reproduces the NuPS curve on the KGE
workload.

At benchmark scale the workload is small enough that the largest cluster
(8 nodes = 64 workers) pushes staleness past what three epochs recover: its
quality plateaus below the 90% threshold, so — exactly as the paper reports
node counts that do not reach the mark — some sweep points show "not
reached". The reproduced claim is that NuPS *does* reach the threshold at a
node count the workload supports, and does so faster than the single node.
"""

from common import FAST, print_header, run_once, run_system
from repro.analysis.speedup import effective_quality_threshold, effective_speedup
from repro.runner.reporting import format_table

NODE_COUNTS = [2, 4] if FAST else [2, 4, 8]
EPOCHS = 3
TASK = "kge"


def _run():
    single = run_system(TASK, "single-node", epochs=EPOCHS, seed=4)
    threshold = effective_quality_threshold(single)
    rows = []
    speedups = {}
    for nodes in NODE_COUNTS:
        result = run_system(TASK, "nups", num_nodes=nodes, epochs=EPOCHS, seed=4)
        speedup = effective_speedup(single, result)
        speedups[nodes] = speedup
        time_to = result.time_to_quality(threshold)
        rows.append([
            "nups", nodes,
            time_to if time_to is not None else "not reached",
            speedup if speedup is not None else "-",
        ])
    print_header("Figure 9 — effective scalability on KGE (time to 90% of single-node quality)")
    print(f"quality threshold (90% of best single-node MRR): {threshold:.4f}")
    print(f"single-node time to threshold: {single.time_to_quality(threshold)}")
    print(format_table(["system", "nodes", "time_to_threshold_s", "effective speedup"], rows))
    return speedups, threshold, single.time_to_quality(threshold)


def run() -> dict:
    """Structured Figure 9 results for the pipeline."""
    speedups, threshold, single_time_to = _run()
    reached = {nodes: speedup for nodes, speedup in speedups.items()
               if speedup is not None}
    return {
        "threshold": threshold,
        "single_time_to_threshold": single_time_to,
        "node_counts": list(NODE_COUNTS),
        "effective_speedup": {str(nodes): speedups[nodes]
                              for nodes in NODE_COUNTS},
        "reached_node_counts": sorted(reached),
        "best_speedup": max(reached.values()) if reached else None,
    }


def test_fig09_effective_scalability(benchmark):
    speedups, _, _ = run_once(benchmark, _run)
    # NuPS reaches the threshold and beats the single node to it (module
    # docstring: at benchmark scale not every node count crosses the 90%
    # mark, mirroring the paper's "not reached" entries).
    reached = [speedup for speedup in speedups.values() if speedup is not None]
    assert reached, "NuPS reached the 90% threshold at no node count"
    assert max(reached) > 1.0
