"""Figure 9: effective scalability (speedup to reach 90% of single-node quality).

The paper reports, for the systems that reach the 90% quality threshold, the
speedup in the time needed to reach 90% of the best single-node model quality
when scaling from 1 to 16 nodes. Only NuPS (untuned and tuned) reaches the
threshold on all tasks; this benchmark reproduces the NuPS curve on the KGE
workload.
"""

from common import FAST, print_header, run_once, run_system
from repro.analysis.speedup import effective_quality_threshold, effective_speedup
from repro.runner.reporting import format_table

NODE_COUNTS = [2, 8] if FAST else [2, 4, 8]
EPOCHS = 3
TASK = "kge"


def _run():
    single = run_system(TASK, "single-node", epochs=EPOCHS, seed=4)
    threshold = effective_quality_threshold(single)
    rows = []
    speedups = {}
    for nodes in NODE_COUNTS:
        result = run_system(TASK, "nups", num_nodes=nodes, epochs=EPOCHS, seed=4)
        speedup = effective_speedup(single, result)
        speedups[nodes] = speedup
        time_to = result.time_to_quality(threshold)
        rows.append([
            "nups", nodes,
            time_to if time_to is not None else "not reached",
            speedup if speedup is not None else "-",
        ])
    print_header("Figure 9 — effective scalability on KGE (time to 90% of single-node quality)")
    print(f"quality threshold (90% of best single-node MRR): {threshold:.4f}")
    print(f"single-node time to threshold: {single.time_to_quality(threshold)}")
    print(format_table(["system", "nodes", "time_to_threshold_s", "effective speedup"], rows))
    return speedups


def test_fig09_effective_scalability(benchmark):
    speedups = run_once(benchmark, _run)
    largest = max(NODE_COUNTS)
    # NuPS reaches the threshold at the largest node count and does so faster
    # than the single node (smaller node counts may need more epochs than the
    # budget allows to cross the 90% threshold at benchmark scale).
    assert speedups[largest] is not None
    assert speedups[largest] > 1.0
