"""Shared infrastructure for the benchmark harness.

Every benchmark file reproduces one table or figure of the paper's evaluation
(the file names carry the index: ``bench_fig06_*`` is Figure 6, and so on).
The benchmarks run scaled-down synthetic workloads on the simulated cluster
and print the same rows / series the paper reports; absolute numbers are
simulated seconds, but the *shape* — which system wins, by roughly what
factor, where crossovers happen — is what is being reproduced (see README.md,
"Benchmarks").

Each benchmark has two entry points:

* **pytest** (prints the tables, asserts the shape)::

      pytest benchmarks/ --benchmark-only

* **``run() -> dict``** — a structured, JSON-serializable result consumed
  by the one-command reproduction pipeline (``python -m repro reproduce``),
  which executes every benchmark through :mod:`repro.report.pipeline` and
  checks the paper-claim registry (:mod:`repro.report.claims`) against the
  returned dicts. ``run()`` performs the same computation the pytest path
  does (and prints the same tables), exactly once per case.

Set ``REPRO_BENCH_FAST=1`` to cut epochs/sweeps further for a quick smoke run.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Callable, Dict, List, Optional, Sequence

from repro.runner.config import ExperimentConfig
from repro.runner.experiment import ExperimentResult, run_experiment
from repro.runner.systems import make_ps_factory
from repro.runner.workloads import (
    NUPS_BENCH_OVERRIDES,
    kge_task,
    matrix_factorization_task,
    word_vectors_task,
)
from repro.simulation.cluster import ClusterConfig


#: Reduce epochs / sweep points when set (smoke-test mode).
FAST = bool(int(os.environ.get("REPRO_BENCH_FAST", "0")))

#: Nodes and workers of the paper's main setting.
DEFAULT_NODES = 8
WORKERS_PER_NODE = 8

#: Epochs per task for the end-to-end benchmarks.
EPOCHS = {"kge": 2 if FAST else 3,
          "word_vectors": 2 if FAST else 3,
          "matrix_factorization": 3 if FAST else 6}

#: The three workloads of Table 2 at benchmark scale.
TASK_FACTORIES: Dict[str, Callable] = {
    "kge": kge_task,
    "word_vectors": word_vectors_task,
    "matrix_factorization": matrix_factorization_task,
}

#: System-specific overrides (scaled-down NuPS settings, see workloads.py).
SYSTEM_OVERRIDES: Dict[str, Dict[str, object]] = {
    "nups": dict(NUPS_BENCH_OVERRIDES),
    "nups-tuned": dict(NUPS_BENCH_OVERRIDES),
    "nups-adaptive": dict(NUPS_BENCH_OVERRIDES),
    "nups-adaptive-tuned": dict(NUPS_BENCH_OVERRIDES),
    "relocation+replication": dict(NUPS_BENCH_OVERRIDES),
    "relocation+sampling": dict(NUPS_BENCH_OVERRIDES),
}


def experiment_config(num_nodes: int = DEFAULT_NODES, epochs: int = 3,
                      seed: int = 0) -> ExperimentConfig:
    """The standard experiment configuration used across benchmarks."""
    workers = WORKERS_PER_NODE
    return ExperimentConfig(
        cluster=ClusterConfig(num_nodes=num_nodes, workers_per_node=workers),
        epochs=epochs,
        chunk_size=8,
        seed=seed,
    )


def run_system(task_name: str, system: str, num_nodes: int = DEFAULT_NODES,
               epochs: Optional[int] = None, seed: int = 0,
               task_kwargs: Optional[dict] = None,
               system_overrides: Optional[dict] = None) -> ExperimentResult:
    """Run one (task, system) experiment at benchmark scale."""
    factory = TASK_FACTORIES[task_name]
    task = factory("bench", **(task_kwargs or {}))
    nodes = 1 if system == "single-node" else num_nodes
    overrides = dict(SYSTEM_OVERRIDES.get(system, {}))
    overrides.update(system_overrides or {})
    config = experiment_config(
        num_nodes=nodes, epochs=epochs or EPOCHS[task_name], seed=seed
    )
    return run_experiment(
        task, make_ps_factory(system, **overrides), config, system_name=system
    )


def _parallel_workers(num_jobs: int) -> int:
    """Worker-process count for a sweep of ``num_jobs`` independent runs.

    Controlled by ``REPRO_BENCH_PARALLEL``: unset picks ``cpu_count`` workers
    automatically (sequential on single-core machines), ``0`` forces
    sequential execution, and any other integer forces that many workers.
    """
    setting = os.environ.get("REPRO_BENCH_PARALLEL", "")
    if setting:
        try:
            return max(1, min(int(setting), num_jobs))
        except ValueError:
            return 1
    cpus = os.cpu_count() or 1
    return max(1, min(cpus, num_jobs))


def _run_system_job(task_name: str, system: str, kwargs: dict) -> ExperimentResult:
    return run_system(task_name, system, **kwargs)


def run_systems(task_name: str, systems: Sequence[str], **kwargs
                ) -> List[ExperimentResult]:
    """Run several systems on the same workload.

    The runs are independent, deterministic simulations, so on multi-core
    machines they execute in worker processes (fork) with results identical
    to sequential execution; see :func:`_parallel_workers` for the knob.
    """
    workers = _parallel_workers(len(systems))
    if workers > 1 and hasattr(os, "fork"):
        # Warm the dataset cache first so forked workers inherit it.
        TASK_FACTORIES[task_name]("bench", **(kwargs.get("task_kwargs") or {}))
        try:
            pool = multiprocessing.get_context("fork").Pool(workers)
        except (OSError, ValueError):
            pool = None  # cannot fork here: fall back to sequential
        if pool is not None:
            # Real benchmark failures must propagate, not silently trigger
            # a sequential re-run — only pool *creation* is best-effort.
            with pool:
                return pool.starmap(
                    _run_system_job,
                    [(task_name, system, kwargs) for system in systems],
                )
    return [run_system(task_name, system, **kwargs) for system in systems]


def heuristic_key_count(task) -> int:
    """Number of keys the untuned hot-spot heuristic replicates for ``task``.

    At the paper's scale the heuristic (access count > 100x the mean) always
    selects a non-empty hot-spot set (900 keys for KGE, 3272 for WV, 755 for
    MF). At benchmark scale the MF matrix is so small that no column exceeds
    100x the mean; the replication-extent benchmarks then fall back to a
    small fixed hot-spot set (see the fallback below) so the sweep remains
    meaningful.
    """
    from repro.core.management import ManagementPlan

    counts = task.access_counts()
    heuristic = ManagementPlan.from_access_counts(counts).num_replicated
    if heuristic > 0:
        return heuristic
    return max(4, task.num_keys() // 150)


def trained(result: ExperimentResult) -> bool:
    """Whether an experiment improved model quality over the initialization."""
    initial = result.initial_quality[result.quality_metric]
    if result.higher_is_better:
        return bool(result.best_quality() > initial)
    return bool(result.best_quality() < initial)


def result_summary(result: ExperimentResult) -> dict:
    """JSON-serializable summary of one experiment (for ``run()`` payloads)."""
    return {
        "system": result.system,
        "task": result.task,
        "num_nodes": result.num_nodes,
        "epochs": result.epochs_completed,
        "mean_epoch_time": result.mean_epoch_time(),
        "total_time": result.total_time,
        "final_quality": result.final_quality(),
        "best_quality": result.best_quality(),
        "initial_quality": result.initial_quality.get(result.quality_metric),
        "trained": trained(result),
    }


def print_header(title: str) -> None:
    print()
    print("=" * 78)
    print(title)
    print("=" * 78)


def run_once(benchmark, function: Callable[[], object]):
    """Run ``function`` exactly once under pytest-benchmark.

    The experiments are deterministic simulations; repeating them only to
    collect wall-clock statistics would multiply the harness run time for no
    informational gain.
    """
    return benchmark.pedantic(function, rounds=1, iterations=1, warmup_rounds=0)
