"""Elasticity sweep: membership-change rate x architecture, plus partitions.

Exercises the elasticity subsystem (:mod:`repro.elastic`) end to end and
produces the machine-checked elasticity claims:

* **autoscale-storm completion** — every architecture (classic,
  relocation/Lapse, replication/ESSP, NuPS) completes training under
  sustained membership churn (nodes joining and leaving on a fixed cadence),
  at every swept churn rate, with zero lost acknowledged updates.
* **planned vs crash** — the headline contrast: a planned scale-in drains
  state and loses exactly zero acknowledged updates, where crash recovery
  on the same architecture measurably loses work.
* **rebalance convergence** — repeated scale-outs keep the key space
  balanced: no active node owns more than a bounded multiple of the ideal
  share.
* **bounded degradation** — a split-brain partition degrades final quality
  by at most a small epsilon versus the healthy run: minority writes are
  buffered and replayed, majority accesses are deferred, nothing is dropped.

Results are written to ``BENCH_elastic.json``. Run with::

    PYTHONPATH=src python benchmarks/bench_elastic.py

Set ``REPRO_BENCH_FAST=1`` for a quicker smoke run.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))

from common import (  # noqa: E402
    FAST,
    TASK_FACTORIES,
    WORKERS_PER_NODE,
    _parallel_workers,
    print_header,
)

from repro.elastic import ElasticityController  # noqa: E402
from repro.faults import FaultConfig, ServerCrashes  # noqa: E402
from repro.runner.config import ExperimentConfig  # noqa: E402
from repro.runner.experiment import ExperimentResult, run_experiment  # noqa: E402
from repro.runner.reporting import format_table  # noqa: E402
from repro.runner.systems import make_ps_factory  # noqa: E402
from repro.scenarios import make_scenario  # noqa: E402
from repro.scenarios.base import Scenario  # noqa: E402
from repro.simulation.cluster import Cluster, ClusterConfig  # noqa: E402


TASK_NAME = os.environ.get("REPRO_BENCH_TASK", "matrix_factorization")
NODES = 4 if FAST else 8
EPOCHS = 3 if FAST else 4
SYSTEMS = ("classic", "lapse", "essp", "nups")
#: Swept membership-change rates: one change every N scheduling rounds.
CHURN_PERIODS = (4,) if FAST else (2, 4)
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_elastic.json"

#: Slack on the quality comparison (simulation noise at bench scale).
QUALITY_EPSILON = 0.05
#: Rebalance balance bound: max owned share / ideal share after churn.
BALANCE_BOUND = 2.0

_ELASTIC_METRICS = (
    "elastic.scale_outs", "elastic.scale_ins", "elastic.migrated_keys",
    "elastic.drained_updates", "elastic.lost_updates",
    "elastic.migration_time", "elastic.partitions", "elastic.partition_heals",
    "elastic.stale_reads", "elastic.buffered_writes",
    "elastic.replayed_writes", "elastic.divergent_keys",
    "elastic.deferred_chunks", "faults.lost_updates",
)


def _crash_scenario() -> Scenario:
    """One unplanned crash, same cadence as the planned scale-in above."""
    return Scenario(
        "late-crash",
        [ServerCrashes(crashes_per_epoch=1, down_rounds=2,
                       fault_config=FaultConfig(recovery="checkpoint"),
                       epochs=(EPOCHS - 1,))],
        description="one crash in the final epoch",
    )


def _config(scenario) -> ExperimentConfig:
    return ExperimentConfig(
        cluster=ClusterConfig(num_nodes=NODES,
                              workers_per_node=WORKERS_PER_NODE),
        epochs=EPOCHS, chunk_size=8, seed=0, scenario=scenario,
    )


def _summarize(result: ExperimentResult) -> dict:
    summary = {
        "completed": result.epochs_completed == EPOCHS,
        "epochs": result.epochs_completed,
        "total_time": result.total_time,
        "final_quality": result.final_quality(),
        "higher_is_better": result.higher_is_better,
    }
    for name in _ELASTIC_METRICS:
        summary[name.replace(".", "_")] = result.metrics.get(name, 0.0)
    return summary


def _run_job(cell: str, system: str, variant) -> dict:
    task = TASK_FACTORIES[TASK_NAME]("bench")
    if cell == "storm":
        scenario = make_scenario("autoscale-storm",
                                 period_rounds=int(variant))
    elif cell == "split_brain":
        scenario = make_scenario("split-brain", heal_after_rounds=3)
    elif cell == "healthy":
        scenario = None
    elif cell == "headline":
        scenario = (make_scenario("scale-in", at_epoch=EPOCHS - 1)
                    if variant == "planned" else _crash_scenario())
    else:
        raise ValueError(cell)
    result = run_experiment(
        task, make_ps_factory(system), _config(scenario), system_name=system
    )
    return _summarize(result)


def _quality_drop(healthy: dict, degraded: dict) -> float:
    """Sign-aware quality loss of the degraded run vs the healthy baseline."""
    delta = healthy["final_quality"] - degraded["final_quality"]
    return delta if healthy["higher_is_better"] else -delta


def _rebalance_convergence() -> dict:
    """Direct check: repeated scale-outs keep ownership balanced.

    Builds a relocation PS standalone, joins nodes one by one, and measures
    the owned-share imbalance after each join: the largest share must stay
    within ``BALANCE_BOUND`` times the ideal (uniform) share.
    """
    from repro.ps.relocation import RelocationPS
    from repro.ps.storage import ParameterStore

    num_keys = 960
    cluster = Cluster(ClusterConfig(num_nodes=2, workers_per_node=2))
    store = ParameterStore(num_keys, 4, seed=0, init_scale=0.1)
    ps = RelocationPS(store, cluster)
    controller = ElasticityController(ps)
    worst = 0.0
    joins = 3 if FAST else 6
    for _ in range(joins):
        controller.scale_out(cluster.time)
        active = cluster.active_nodes
        sizes = np.array([len(ps.local_keys(n)) for n in active], dtype=float)
        assert int(sizes.sum()) == num_keys, "rebalance dropped keys"
        ratio = float(sizes.max() / (num_keys / len(active)))
        worst = max(worst, ratio)
    return {
        "joins": joins,
        "final_nodes": len(cluster.active_nodes),
        "keys_migrated": controller.keys_migrated,
        "worst_balance_ratio": worst,
        "bound": BALANCE_BOUND,
    }


def run() -> dict:
    """Run the elasticity sweep; returns the ``BENCH_elastic.json`` payload."""
    print_header(
        f"Elasticity — {TASK_NAME}, {NODES}x{WORKERS_PER_NODE} workers, "
        f"{EPOCHS} epochs"
    )

    jobs = (
        [("storm", system, period)
         for period in CHURN_PERIODS for system in SYSTEMS]
        + [("split_brain", system, "-") for system in SYSTEMS]
        + [("healthy", system, "-") for system in SYSTEMS]
        + [("headline", "classic", variant)
           for variant in ("planned", "crash")]
    )
    workers = _parallel_workers(len(jobs))
    summaries = None
    if workers > 1 and hasattr(os, "fork"):
        TASK_FACTORIES[TASK_NAME]("bench")  # warm the dataset cache pre-fork
        try:
            pool = multiprocessing.get_context("fork").Pool(workers)
        except (OSError, ValueError):
            pool = None
        if pool is not None:
            with pool:
                summaries = pool.starmap(_run_job, jobs)
    if summaries is None:
        summaries = [_run_job(*job) for job in jobs]
    by_job = dict(zip(jobs, summaries))

    # --------------------------------------------- autoscale-storm completion
    storm = {
        str(period): {system: by_job[("storm", system, period)]
                      for system in SYSTEMS}
        for period in CHURN_PERIODS
    }
    print_header("autoscale-storm: sustained membership churn")
    rows = []
    for period, cells in storm.items():
        for system, s in cells.items():
            rows.append([
                period, system, s["completed"],
                int(s["elastic_scale_outs"]), int(s["elastic_scale_ins"]),
                int(s["elastic_migrated_keys"]),
                f"{s['total_time']:.4f}", f"{s['final_quality']:.4f}",
            ])
    print(format_table(
        ["period", "system", "completed", "joins", "leaves", "keys moved",
         "total time (s)", "final quality"], rows,
    ))
    for period, cells in storm.items():
        for system, s in cells.items():
            tag = f"{system} @ period {period}"
            assert s["completed"], f"{tag} did not complete under churn"
            assert s["elastic_scale_outs"] >= 1, f"{tag}: no node ever joined"
            assert s["elastic_scale_ins"] >= 1, f"{tag}: no node ever left"
            assert s["elastic_lost_updates"] == 0, \
                f"{tag}: planned churn lost acknowledged updates"

    # ------------------------------------------------ split-brain completion
    split_brain = {system: by_job[("split_brain", system, "-")]
                   for system in SYSTEMS}
    healthy = {system: by_job[("healthy", system, "-")]
               for system in SYSTEMS}
    print_header("split-brain: partition, degrade, heal, reconcile")
    rows = []
    for system, s in split_brain.items():
        rows.append([
            system, s["completed"], int(s["elastic_partition_heals"]),
            int(s["elastic_stale_reads"]), int(s["elastic_buffered_writes"]),
            int(s["elastic_replayed_writes"]),
            int(s["elastic_deferred_chunks"]),
            f"{_quality_drop(healthy[system], s):.4f}",
        ])
    print(format_table(
        ["system", "completed", "heals", "stale reads", "buffered",
         "replayed", "deferred chunks", "quality drop"], rows,
    ))
    degradation: dict = {}
    for system, s in split_brain.items():
        drop = _quality_drop(healthy[system], s)
        degradation[system] = {
            "healthy_quality": healthy[system]["final_quality"],
            "partitioned_quality": s["final_quality"],
            "quality_drop": drop,
        }
        assert s["completed"], f"{system} did not complete under split-brain"
        assert s["elastic_partition_heals"] >= 1, \
            f"{system}: the partition never healed"
        assert s["elastic_buffered_writes"] > 0, \
            f"{system}: the minority never wrote (nothing was degraded)"
        assert s["elastic_replayed_writes"] > 0, \
            f"{system}: buffered minority writes were not replayed"
        assert drop <= QUALITY_EPSILON, (
            f"{system}: split-brain degraded quality by {drop:.4f} "
            f"(> {QUALITY_EPSILON}); degradation is not bounded"
        )

    # --------------------------------------------------- planned vs crash
    headline = {variant: by_job[("headline", "classic", variant)]
                for variant in ("planned", "crash")}
    print_header("headline: planned scale-in vs crash recovery (classic)")
    print(format_table(
        ["transition", "lost updates", "drained updates", "final quality"],
        [["planned scale-in", int(headline["planned"]["elastic_lost_updates"]),
          int(headline["planned"]["elastic_drained_updates"]),
          f"{headline['planned']['final_quality']:.4f}"],
         ["crash + recovery", int(headline["crash"]["faults_lost_updates"]),
          0, f"{headline['crash']['final_quality']:.4f}"]],
    ))
    assert headline["planned"]["elastic_lost_updates"] == 0, \
        "a planned scale-in must lose zero acknowledged updates"
    assert headline["planned"]["elastic_scale_ins"] >= 1, \
        "the planned scale-in never happened"
    assert headline["crash"]["faults_lost_updates"] > 0, \
        "the crash baseline lost nothing; the contrast is vacuous"

    # ------------------------------------------------ rebalance convergence
    convergence = _rebalance_convergence()
    print_header("rebalance convergence: repeated scale-outs stay balanced")
    print(format_table(
        ["joins", "final nodes", "keys migrated", "worst balance ratio",
         "bound"],
        [[convergence["joins"], convergence["final_nodes"],
          convergence["keys_migrated"],
          f"{convergence['worst_balance_ratio']:.3f}",
          convergence["bound"]]],
    ))
    assert convergence["worst_balance_ratio"] <= BALANCE_BOUND, \
        "rebalancing diverged: one node owns an outsized key share"

    return {
        "task": TASK_NAME,
        "epochs": EPOCHS,
        "num_nodes": NODES,
        "workers_per_node": WORKERS_PER_NODE,
        "fast_mode": FAST,
        "systems": list(SYSTEMS),
        "churn_periods": list(CHURN_PERIODS),
        "storm": storm,
        "split_brain": split_brain,
        "healthy": healthy,
        "degradation": degradation,
        "headline": headline,
        "convergence": convergence,
        "checks": {
            "all_complete_storm": {
                f"{system}@{period}": cells[system]["completed"]
                for period, cells in storm.items() for system in cells
            },
            "all_complete_split_brain": {
                system: s["completed"] for system, s in split_brain.items()
            },
            "planned_lost_updates":
                headline["planned"]["elastic_lost_updates"],
            "crash_lost_updates": headline["crash"]["faults_lost_updates"],
            "worst_balance_ratio": convergence["worst_balance_ratio"],
        },
    }


def main() -> int:
    payload = run()
    OUTPUT.write_text(json.dumps(payload, indent=2, sort_keys=True))
    print(f"\nwrote {OUTPUT}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
