"""Section 5.8: comparison to task-specific implementations.

The paper compares NuPS against specialized implementations: DSGD and DSGD++
for matrix factorization, and tuned single-machine implementations (original
Word2Vec / Gensim; tuned KGE trainers) for the other tasks. NuPS is expected
to be competitive — in the same ballpark as the specialized systems — while
remaining a general-purpose PS.

The specialized systems are re-implemented as simplified stand-ins in
:mod:`repro.ml.task_specific` (the module docstring has the substitution notes).
"""

from common import (
    DEFAULT_NODES,
    WORKERS_PER_NODE,
    print_header,
    run_once,
    run_system,
)
from repro.data.matrix import generate_matrix
from repro.ml.task_specific import DSGDTrainer, specialized_single_node_epoch_time
from repro.runner.reporting import format_table
from repro.runner.workloads import kge_task, word_vectors_task


def _run_mf():
    matrix = generate_matrix(num_rows=1000, num_cols=200, num_cells=40000, rank=8, seed=3)
    epochs = 3
    nups = run_system("matrix_factorization", "nups", epochs=epochs, seed=8)

    rows = []
    outcomes = {"nups": nups.mean_epoch_time()}
    rows.append(["NuPS (general-purpose PS)", nups.mean_epoch_time(), nups.final_quality()])
    for label, overlap in (("DSGD", False), ("DSGD++", True)):
        trainer = DSGDTrainer(matrix, num_nodes=DEFAULT_NODES,
                              workers_per_node=WORKERS_PER_NODE,
                              overlap_communication=overlap, seed=8)
        result = trainer.train(epochs=epochs, seed=8)
        outcomes[label.lower()] = result.mean_epoch_time
        rows.append([f"{label} (task-specific MPI)", result.mean_epoch_time,
                     result.final_rmse()])
    print_header("Section 5.8 — MF: NuPS vs. DSGD / DSGD++ (epoch time, test RMSE)")
    print(format_table(["implementation", "epoch_time_s", "test RMSE"], rows))
    return outcomes


def _run_single_node_specialized():
    rows = []
    outcomes = {}
    for task_name, factory in (("kge", kge_task), ("word_vectors", word_vectors_task)):
        task = factory("bench")
        specialized = specialized_single_node_epoch_time(
            task, workers=WORKERS_PER_NODE
        )
        nups = run_system(task_name, "nups", epochs=1, seed=8)
        single = run_system(task_name, "single-node", epochs=1, seed=8)
        outcomes[task_name] = (specialized, nups.mean_epoch_time(), single.mean_epoch_time())
        rows.append([task_name, specialized, single.mean_epoch_time(), nups.mean_epoch_time()])
    print_header("Section 5.8 — single-machine specialized implementations vs. NuPS")
    print(format_table(
        ["task", "specialized single-machine epoch_s",
         "general-purpose single-node epoch_s", "NuPS (8 nodes) epoch_s"],
        rows,
    ))
    return outcomes


def run() -> dict:
    """Structured Section 5.8 results for the pipeline."""
    mf = _run_mf()
    single_machine = _run_single_node_specialized()
    return {
        "mf": mf,
        "single_machine": {
            task_name: {"specialized": specialized, "nups": nups_time,
                        "single_node": single_time}
            for task_name, (specialized, nups_time, single_time)
            in single_machine.items()
        },
    }


def test_sec58_mf_dsgd_comparison(benchmark):
    outcomes = run_once(benchmark, _run_mf)
    # NuPS is competitive: within a small factor of the specialized systems.
    assert outcomes["nups"] < 4.0 * outcomes["dsgd++"]
    # Overlapping communication makes DSGD++ at least as fast as DSGD.
    assert outcomes["dsgd++"] <= outcomes["dsgd"] * 1.01


def test_sec58_single_machine_comparison(benchmark):
    outcomes = run_once(benchmark, _run_single_node_specialized)
    for task_name, (specialized, nups_time, single_time) in outcomes.items():
        # The specialized implementation beats the general-purpose PS on one
        # machine (no consistency overhead), but distributed NuPS is
        # competitive with it (Section 5.8).
        assert specialized <= single_time
        assert nups_time < 4.0 * specialized, task_name
