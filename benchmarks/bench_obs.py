"""Telemetry-overhead microbenchmark: the cost of tracing a run.

The observability layer (``src/repro/obs``) promises two things: telemetry
**off** is bit-identical to a runner without telemetry support, and
telemetry **on** (the default level — spans, subsystem events, periodic
samples, but no per-access events) stays within a small wall-clock overhead
ceiling. This benchmark measures both, end-to-end through
:func:`repro.runner.experiment.run_experiment`, for every PS architecture:

* **off** — ``ExperimentConfig.telemetry=None`` (the reference cost);
* **on** — ``TelemetryConfig()`` defaults, the level the ≤5% geomean
  ceiling applies to (``obs.overhead_within_ceiling``);
* **detail** — ``access_events=True``, one event per pull/push/localize.
  Reported for honesty but exempt from the ceiling: per-access events
  multiply the record count by orders of magnitude by design.

Every mode of every architecture must produce bit-identical *simulated*
results (clocks, per-epoch metric deltas, quality trajectories) — the
benchmark asserts this on every run, so the overhead numbers can never hide
a behavioral change. Results go to ``BENCH_obs.json`` in the repository
root; the ``obs.*`` claims in the reproduction report evaluate against the
``overhead`` and ``checks`` sections.

Run directly::

    REPRO_BENCH_FAST=1 PYTHONPATH=src python benchmarks/bench_obs.py

or through pytest (the test asserts the JSON is produced)::

    REPRO_BENCH_FAST=1 PYTHONPATH=src python -m pytest benchmarks/bench_obs.py -q
"""

from __future__ import annotations

import json
import math
import os
import time
from pathlib import Path
from typing import Optional

from repro.obs import TelemetryConfig
from repro.runner.config import ExperimentConfig
from repro.runner.experiment import run_experiment
from repro.runner.systems import make_ps_factory
from repro.runner.workloads import make_task
from repro.simulation.cluster import ClusterConfig

FAST = bool(int(os.environ.get("REPRO_BENCH_FAST", "0")))

OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_obs.json"

TASK = "matrix_factorization"
NUM_NODES = 2
WORKERS_PER_NODE = 2
EPOCHS = 2 if FAST else 4
CHUNK_SIZE = 8
SEED = 7

#: Architectures under measurement; ``single-node`` runs on its own
#: one-node cluster (the runner rejects anything else).
SYSTEMS = ("single-node", "classic", "lapse", "essp", "nups")

#: Telemetry levels; ``ceiling_applies`` marks the level the ≤5% claim
#: covers. ``None`` disables telemetry outright.
MODES = ("off", "on", "detail")

#: Wall-clock overhead ceiling (on/off ratio, geomean across systems) that
#: the ``obs.overhead_within_ceiling`` claim asserts.
OVERHEAD_CEILING = 1.05

#: Timing repetitions per (system, mode); the best run is reported. The
#: modes are interleaved inside each repetition so CPU-frequency drift on
#: noisy CI boxes biases all three the same way.
REPEATS = 5 if FAST else 9


def _telemetry(mode: str) -> Optional[TelemetryConfig]:
    if mode == "off":
        return None
    if mode == "on":
        return TelemetryConfig()
    if mode == "detail":
        return TelemetryConfig(access_events=True)
    raise ValueError(f"unknown telemetry mode {mode!r}")


def _run(system: str, mode: str):
    """One timed experiment; returns (seconds, result)."""
    task = make_task(TASK, scale="test")
    num_nodes = 1 if system == "single-node" else NUM_NODES
    config = ExperimentConfig(
        cluster=ClusterConfig(num_nodes=num_nodes,
                              workers_per_node=WORKERS_PER_NODE),
        epochs=EPOCHS, chunk_size=CHUNK_SIZE, seed=SEED,
        telemetry=_telemetry(mode),
    )
    start = time.perf_counter()
    result = run_experiment(task, make_ps_factory(system), config,
                            system_name=system)
    return time.perf_counter() - start, result


def _fingerprint(result) -> tuple:
    """Everything simulated an experiment produced, hashable for equality."""
    return (
        result.system,
        tuple(sorted(result.metrics.items())),
        tuple(
            (r.epoch, r.sim_time, r.epoch_duration,
             tuple(sorted(r.quality.items())),
             tuple(sorted(r.metrics.items())))
            for r in result.records
        ),
    )


def _measure(system: str) -> dict:
    """Best-of-``REPEATS`` wall clock per mode, plus bit-identity check."""
    seconds = {mode: math.inf for mode in MODES}
    fingerprints = {}
    traces = {}
    for _ in range(REPEATS):
        for mode in MODES:
            elapsed, result = _run(system, mode)
            seconds[mode] = min(seconds[mode], elapsed)
            fingerprints[mode] = _fingerprint(result)
            if result.trace is not None:
                traces[mode] = result.trace
    for mode in ("on", "detail"):
        if fingerprints[mode] != fingerprints["off"]:
            raise AssertionError(
                f"{system}: telemetry mode {mode!r} changed the simulated "
                "results — the tracer must be a pure observer"
            )
    trace = traces["on"]
    return {
        "off_seconds": round(seconds["off"], 6),
        "on_seconds": round(seconds["on"], 6),
        "detail_seconds": round(seconds["detail"], 6),
        "overhead_on": round(seconds["on"] / seconds["off"], 4),
        "overhead_detail": round(seconds["detail"] / seconds["off"], 4),
        "trace_spans": len(trace["spans"]),
        "trace_events": len(trace["events"]),
        "trace_samples": len(trace["samples"]),
        "detail_events": len(traces["detail"]["events"]),
    }


def _geomean(values) -> float:
    values = list(values)
    return math.exp(sum(math.log(v) for v in values) / len(values))


def run_benchmark(output_path: Optional[Path] = OUTPUT_PATH) -> dict:
    architectures = {}
    for system in SYSTEMS:
        stats = _measure(system)
        architectures[system] = stats
        print(f"{system:12s} off {stats['off_seconds']:.3f}s  "
              f"on x{stats['overhead_on']:.3f}  "
              f"detail x{stats['overhead_detail']:.3f}  "
              f"({stats['trace_spans']} spans, {stats['trace_events']} "
              f"events, {stats['trace_samples']} samples)")
    geomean_on = _geomean(s["overhead_on"] for s in architectures.values())
    geomean_detail = _geomean(
        s["overhead_detail"] for s in architectures.values()
    )
    overhead = {
        "geomean_on": round(geomean_on, 4),
        "max_on": round(max(s["overhead_on"]
                            for s in architectures.values()), 4),
        "geomean_detail": round(geomean_detail, 4),
        "ceiling": OVERHEAD_CEILING,
    }
    print(f"geomean      on x{overhead['geomean_on']:.3f} "
          f"(ceiling x{OVERHEAD_CEILING:.2f})  "
          f"detail x{overhead['geomean_detail']:.3f} (exempt)")
    report = {
        "benchmark": "telemetry_overhead",
        "fast_mode": FAST,
        "config": {
            "task": TASK,
            "num_nodes": NUM_NODES,
            "workers_per_node": WORKERS_PER_NODE,
            "epochs": EPOCHS,
            "chunk_size": CHUNK_SIZE,
            "seed": SEED,
            "repeats": REPEATS,
        },
        "architectures": architectures,
        "overhead": overhead,
        "checks": {
            # _measure raises on any divergence, so reaching this line
            # means every (system, mode) pair matched the off reference.
            "telemetry_bit_identical": True,
            "overhead_within_ceiling": geomean_on <= OVERHEAD_CEILING,
        },
    }
    if output_path is not None:
        output_path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
        print(f"wrote {output_path}")
    return report


def run() -> dict:
    """Structured overhead report for the reproduction pipeline.

    Does not write ``BENCH_obs.json``: the committed baseline is the CI
    regression guard's reference and is only refreshed deliberately.
    """
    return run_benchmark(output_path=None)


def test_obs_benchmark(tmp_path):
    """The harness runs, measures every architecture, and writes valid JSON.

    ``_measure`` inside ``run_benchmark`` additionally guarantees that every
    telemetry level is bit-identical to the telemetry-off reference.
    """
    output = tmp_path / "BENCH_obs.json"
    report = run_benchmark(output)
    assert set(report["architectures"]) == set(SYSTEMS)
    for stats in report["architectures"].values():
        assert stats["off_seconds"] > 0
        assert stats["trace_spans"] > 0
        assert stats["trace_samples"] > 0
        # Round fusion bypasses the per-access pull/push path, so detail
        # level adds events on some architectures (e.g. the single-node
        # shared-memory PS) but not necessarily on all of them.
        assert stats["detail_events"] >= stats["trace_events"]
    assert sum(s["detail_events"] for s in report["architectures"].values()) \
        > sum(s["trace_events"] for s in report["architectures"].values())
    assert report["checks"]["telemetry_bit_identical"] is True
    assert json.loads(output.read_text())["benchmark"] == "telemetry_overhead"


if __name__ == "__main__":
    import sys

    run_benchmark(Path(sys.argv[1]) if len(sys.argv) > 1 else OUTPUT_PATH)
