"""Figure 8: raw scalability (speedup in epoch run time over the single node).

The paper runs Lapse, Petuum SSP/ESSP and NuPS for one epoch on 1, 2, 4, 8
and 16 nodes and reports the epoch-time speedup over the shared-memory single
node. NuPS scales up to near-linearly; Lapse and Petuum do not outperform the
single node even at 16 nodes.
"""


from common import FAST, print_header, run_once, run_system
from repro.analysis.speedup import raw_speedup
from repro.runner.reporting import format_table

NODE_COUNTS = [1, 2, 4, 8] if FAST else [1, 2, 4, 8, 16]
SYSTEMS = ["lapse", "essp", "nups"]
TASK = "kge"


def _run():
    single = run_system(TASK, "single-node", epochs=1, seed=3)
    baseline = single.mean_epoch_time()
    speedups = {}
    rows = []
    for system in SYSTEMS:
        for nodes in NODE_COUNTS:
            result = run_system(TASK, system, num_nodes=nodes, epochs=1, seed=3)
            speedup = raw_speedup(baseline, result.mean_epoch_time())
            speedups[(system, nodes)] = speedup
            rows.append([system, nodes, result.mean_epoch_time(), speedup])
    print_header("Figure 8 — raw scalability on KGE (speedup vs. single node, 1 epoch)")
    print(f"single-node epoch time: {baseline:.4f} simulated seconds")
    print(format_table(["system", "nodes", "epoch_time_s", "raw speedup"], rows))
    return speedups, baseline


def run() -> dict:
    """Structured Figure 8 results for the pipeline.

    ``at_largest`` resolves the mode-dependent largest node count (8 fast,
    16 full) so the claim registry stays mode-independent.
    """
    speedups, baseline = _run()
    largest = max(NODE_COUNTS)
    return {
        "single_node_epoch_time": baseline,
        "node_counts": list(NODE_COUNTS),
        "largest_nodes": largest,
        "speedup": {
            system: {str(nodes): speedups[(system, nodes)]
                     for nodes in NODE_COUNTS}
            for system in SYSTEMS
        },
        "at_largest": {system: speedups[(system, largest)]
                       for system in SYSTEMS},
        "nups_curve": [speedups[("nups", nodes)] for nodes in NODE_COUNTS],
    }


def test_fig08_raw_scalability(benchmark):
    speedups, _ = run_once(benchmark, _run)
    largest = max(NODE_COUNTS)
    # NuPS scales: more nodes help, and at the largest node count it clearly
    # outperforms the single node and every other PS.
    assert speedups[("nups", largest)] > speedups[("nups", 1)]
    assert speedups[("nups", largest)] > 2.0
    assert speedups[("nups", largest)] > speedups[("lapse", largest)]
    assert speedups[("nups", largest)] > speedups[("essp", largest)]
    # The other PSs do not meaningfully outperform the single node.
    assert speedups[("lapse", largest)] < 1.5
    assert speedups[("essp", largest)] < 1.5
