"""Adaptive parameter management: static vs adaptive NuPS under drift.

The paper fixes NuPS's management plan before training and defers dynamic
switching to future work. This benchmark closes the loop and measures what
that future work buys: three NuPS variants train KGE under hot-set drift —

* **oracle** — static plan; at the drift the scenario engine re-derives the
  plan from the post-drift dataset statistics (the intent-signaling oracle
  of ``bench_scenarios``; the best a re-managing NuPS could do),
* **static** — static plan, no signal: the replicated set goes stale and the
  new hot spots fall to relocation (hot-spot contention, the paper's
  Section 3.1.3 failure mode),
* **adaptive** — no signal either, but an online
  :class:`~repro.adaptive.controller.AdaptiveController` observes access
  skew from the hot path and re-manages the hot spots itself
  (``nups-adaptive``, :mod:`repro.adaptive`).

Because every variant processes the same data, per-epoch model quality is
nearly identical; what a stale plan costs is *time* (slower post-drift
epochs). Recovery is therefore measured as post-drift epoch throughput
relative to the oracle — ``recovery = oracle_last_epoch_time /
variant_last_epoch_time`` — together with the final-quality ratio. The
headline checks: adaptive recovers >= 95% of the oracle's post-drift
performance at oracle-level quality, static does not; on a stationary
workload adaptive matches static NuPS within noise (the final-MRR spread
across seeds is ~+-40% at this scale, times are within a few percent); and
under the storm preset (drift + stragglers + churn + degrading network) the
controller keeps adapting and still recovers.

The replication extent is four times the untuned heuristic's key count:
large enough that the replicated set carries a measurable share of the
traffic, so a stale plan visibly hurts (with the untuned 16-key extent the
effect exists but is within a few percent).

Run with::

    PYTHONPATH=src python benchmarks/bench_adaptive.py

Set ``REPRO_BENCH_FAST=1`` for a quicker smoke run.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from common import (  # noqa: E402
    DEFAULT_NODES,
    FAST,
    WORKERS_PER_NODE,
    _parallel_workers,
    print_header,
)

from repro.adaptive import AdaptiveConfig  # noqa: E402
from repro.core.management import ManagementPlan  # noqa: E402
from repro.runner.config import ExperimentConfig  # noqa: E402
from repro.runner.experiment import ExperimentResult, run_experiment  # noqa: E402
from repro.runner.reporting import format_table, localization_rate  # noqa: E402
from repro.runner.systems import make_ps_factory  # noqa: E402
from repro.runner.workloads import NUPS_BENCH_OVERRIDES, kge_task  # noqa: E402
from repro.scenarios import make_scenario  # noqa: E402
from repro.simulation.cluster import ClusterConfig  # noqa: E402


EPOCHS = 4 if FAST else 6
DRIFT_EPOCH = 2 if FAST else 3
SCENARIOS = ("drift", "storm", "stationary")
VARIANTS = ("oracle", "static", "adaptive")
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_adaptive.json"

#: Replication extent: this factor times the untuned heuristic's key count.
EXTENT_FACTOR = 4

#: Controller settings for the bench-scale workload: adapt every 5 ms of
#: simulated time on statistics with a 10 ms half-life (epochs are ~75 ms).
ADAPTIVE_PERIOD = 0.005
ADAPTIVE_HALF_LIFE = 0.010
ADAPTIVE_WARMUP = 2000

#: Recovery threshold of the headline claim: a variant "recovers" when its
#: post-drift epoch throughput reaches 95% of the oracle-remanaged NuPS.
RECOVERY_THRESHOLD = 0.95


def replication_extent(task) -> int:
    """The benchmark's replication extent (4x the untuned heuristic)."""
    counts = task.access_counts()
    untuned = ManagementPlan.from_access_counts(counts).num_replicated
    return max(4, untuned) * EXTENT_FACTOR


def adaptive_config(extent: int) -> AdaptiveConfig:
    """The controller configuration used by the adaptive variant."""
    return AdaptiveConfig(
        policy="top-k", top_k=extent,
        period=ADAPTIVE_PERIOD, half_life=ADAPTIVE_HALF_LIFE,
        warmup_observations=ADAPTIVE_WARMUP,
    )


def scenario_for(name: str, oracle: bool):
    if name == "stationary":
        return None
    if name == "drift":
        return make_scenario("drift", at=((DRIFT_EPOCH, 0),), shift=0.5,
                             oracle_remanage=oracle)
    if name == "storm":
        return make_scenario("storm", oracle_remanage=oracle)
    raise ValueError(name)


def run_cell(scenario_name: str, variant: str) -> ExperimentResult:
    task = kge_task("bench")
    extent = replication_extent(task)
    overrides = dict(NUPS_BENCH_OVERRIDES)
    overrides["plan"] = ManagementPlan.top_k_by_count(
        task.access_counts(), extent
    )
    if variant == "adaptive":
        system = "nups-adaptive"
        overrides["adaptive_config"] = adaptive_config(extent)
    else:
        system = "nups"
    config = ExperimentConfig(
        cluster=ClusterConfig(num_nodes=DEFAULT_NODES,
                              workers_per_node=WORKERS_PER_NODE),
        epochs=EPOCHS, chunk_size=8, seed=0,
        scenario=scenario_for(scenario_name, oracle=(variant == "oracle")),
    )
    return run_experiment(task, make_ps_factory(system, **overrides), config,
                          system_name=variant)


def _summarize(result: ExperimentResult) -> dict:
    metrics = result.metrics
    return {
        "epoch_durations": [r.epoch_duration for r in result.records],
        "sim_times": [r.sim_time for r in result.records],
        "qualities": result.qualities(),
        "localization": [localization_rate(r) for r in result.records],
        "final_quality": result.final_quality(),
        "total_time": result.total_time,
        "adaptations": metrics.get("adaptive.adaptations", 0.0),
        "keys_added": metrics.get("adaptive.keys_added", 0.0),
        "keys_removed": metrics.get("adaptive.keys_removed", 0.0),
        "replans": metrics.get("management.replans", 0.0),
    }


def _run_job(scenario_name: str, variant: str) -> dict:
    return _summarize(run_cell(scenario_name, variant))


def _recovery_checks(results: dict, scenario: str) -> dict:
    """Post-drift recovery of each variant relative to the oracle."""
    oracle_last = results[scenario]["oracle"]["epoch_durations"][-1]
    oracle_quality = results[scenario]["oracle"]["final_quality"]
    checks: dict = {"recovery": {}, "quality_ratio": {}}
    for variant in ("static", "adaptive"):
        summary = results[scenario][variant]
        checks["recovery"][variant] = oracle_last / summary["epoch_durations"][-1]
        checks["quality_ratio"][variant] = \
            summary["final_quality"] / oracle_quality
    checks["adaptations"] = results[scenario]["adaptive"]["adaptations"]
    checks["keys_added"] = results[scenario]["adaptive"]["keys_added"]
    checks["time_ratio_adaptive_vs_static"] = (
        results[scenario]["adaptive"]["total_time"]
        / results[scenario]["static"]["total_time"]
    )
    return checks


def _stationary_checks(results: dict) -> dict:
    """Adaptive vs static NuPS on the unperturbed workload (noise check)."""
    static = results["stationary"]["static"]
    adaptive = results["stationary"]["adaptive"]
    return {
        "time_ratio": adaptive["total_time"] / static["total_time"],
        "quality_ratio": adaptive["final_quality"] / static["final_quality"],
        "adaptations": adaptive["adaptations"],
    }


def run() -> dict:
    """Run the sweep; returns the ``BENCH_adaptive.json`` payload."""
    task = kge_task("bench")
    extent = replication_extent(task)
    print_header(
        f"Adaptive parameter management — kge, "
        f"{DEFAULT_NODES}x{WORKERS_PER_NODE} workers, {EPOCHS} epochs, "
        f"drift at epoch {DRIFT_EPOCH} (storm: epoch 2), "
        f"replication extent {extent}"
    )

    jobs = [(scenario, variant) for scenario in SCENARIOS
            for variant in VARIANTS]
    workers = _parallel_workers(len(jobs))
    if workers > 1 and hasattr(os, "fork"):
        try:
            pool = multiprocessing.get_context("fork").Pool(workers)
        except (OSError, ValueError):
            pool = None
        if pool is not None:
            with pool:
                summaries = pool.starmap(_run_job, jobs)
        else:
            summaries = [_run_job(*job) for job in jobs]
    else:
        summaries = [_run_job(*job) for job in jobs]

    results: dict = {scenario: {} for scenario in SCENARIOS}
    for (scenario, variant), summary in zip(jobs, summaries):
        results[scenario][variant] = summary

    for scenario in SCENARIOS:
        print_header(f"scenario: {scenario}")
        rows = []
        for variant in VARIANTS:
            summary = results[scenario][variant]
            rows.append([
                variant,
                summary["total_time"],
                summary["final_quality"],
                int(summary["adaptations"]),
                " ".join(f"{d * 1000:.2f}" for d in summary["epoch_durations"]),
            ])
        print(format_table(
            ["variant", "total time (s)", "final MRR", "adaptations",
             "epoch durations (ms)"],
            rows,
        ))

    drift = _recovery_checks(results, "drift")
    storm = _recovery_checks(results, "storm")
    stationary = _stationary_checks(results)

    print_header("recovery relative to the oracle-remanaged NuPS")
    print(format_table(
        ["scenario", "variant", "recovery", "quality ratio"],
        [[scenario, variant, checks["recovery"][variant],
          checks["quality_ratio"][variant]]
         for scenario, checks in (("drift", drift), ("storm", storm))
         for variant in ("static", "adaptive")],
    ))
    print(f"\nstationary: adaptive/static time ratio "
          f"{stationary['time_ratio']:.4f}, quality ratio "
          f"{stationary['quality_ratio']:.4f}")

    # The headline assertions (mirrored by the claim registry).
    assert drift["recovery"]["adaptive"] >= RECOVERY_THRESHOLD, (
        f"adaptive NuPS did not recover from drift: "
        f"{drift['recovery']['adaptive']:.3f} < {RECOVERY_THRESHOLD}"
    )
    assert drift["recovery"]["static"] < RECOVERY_THRESHOLD, (
        f"static NuPS unexpectedly recovered without a signal: "
        f"{drift['recovery']['static']:.3f} >= {RECOVERY_THRESHOLD}"
    )
    assert drift["quality_ratio"]["adaptive"] >= 0.95, (
        f"adaptive NuPS lost quality: {drift['quality_ratio']['adaptive']:.3f}"
    )
    assert drift["adaptations"] >= 1, "the controller never adapted"
    assert 0.95 <= stationary["time_ratio"] <= 1.05, (
        f"stationary run time diverged: {stationary['time_ratio']:.4f}"
    )

    return {
        "task": "kge",
        "epochs": EPOCHS,
        "drift_epoch": DRIFT_EPOCH,
        "num_nodes": DEFAULT_NODES,
        "workers_per_node": WORKERS_PER_NODE,
        "fast_mode": FAST,
        "replication_extent": extent,
        "recovery_threshold": RECOVERY_THRESHOLD,
        "variants": list(VARIANTS),
        "scenarios": list(SCENARIOS),
        "results": results,
        "drift": drift,
        "storm": storm,
        "stationary": stationary,
    }


def test_adaptive_management(benchmark):
    """Pytest face: run the sweep once and let ``run()`` assert the shape."""
    from common import run_once

    run_once(benchmark, run)


def main() -> int:
    payload = run()
    OUTPUT.write_text(json.dumps(payload, indent=2, sort_keys=True))
    print(f"\nwrote {OUTPUT}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
