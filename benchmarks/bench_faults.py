"""Fault-injection sweep: crash count x recovery mechanism x architecture.

Exercises the fault-tolerance subsystem (:mod:`repro.faults`) end to end and
produces the machine-checked recovery claims:

* **crash-storm completion** — every architecture (classic, relocation/Lapse,
  replication/ESSP, NuPS) completes training under the ``crash-storm``
  preset (repeated server crashes and restarts) without deadlock.
* **checkpoint vs restart** — with the same crash schedule, periodic
  checkpointing loses strictly less work (discarded updates) than
  restart-from-scratch recovery.
* **graceful degradation** — replication-based architectures recover crashed
  keys from surviving replicas, so they lose less work and degrade at most
  as much in final quality as the classic PS.

Results are written to ``BENCH_faults.json``. Run with::

    PYTHONPATH=src python benchmarks/bench_faults.py

Set ``REPRO_BENCH_FAST=1`` for a quicker smoke run.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from common import (  # noqa: E402
    FAST,
    TASK_FACTORIES,
    WORKERS_PER_NODE,
    _parallel_workers,
    print_header,
)

from repro.faults import FaultConfig, ServerCrashes  # noqa: E402
from repro.runner.config import ExperimentConfig  # noqa: E402
from repro.runner.experiment import ExperimentResult, run_experiment  # noqa: E402
from repro.runner.reporting import format_table  # noqa: E402
from repro.runner.systems import make_ps_factory  # noqa: E402
from repro.scenarios import make_scenario  # noqa: E402
from repro.scenarios.base import Scenario  # noqa: E402
from repro.simulation.cluster import ClusterConfig  # noqa: E402


TASK_NAME = os.environ.get("REPRO_BENCH_TASK", "matrix_factorization")
NODES = 4 if FAST else 8
EPOCHS = 3 if FAST else 4
SYSTEMS = ("classic", "lapse", "essp", "nups")
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_faults.json"

#: Slack on the quality-drop comparison (simulation noise at bench scale).
QUALITY_EPSILON = 0.02

_FAULT_METRICS = (
    "faults.crashes", "faults.restores", "faults.recovery_time",
    "faults.lost_updates", "faults.checkpoints",
    "faults.keys_recovered_from_replicas",
    "faults.keys_recovered_from_checkpoint",
    "faults.retries", "faults.timeouts", "faults.lost_chunks",
)


def _late_crash_scenario(fault_config: FaultConfig) -> Scenario:
    """Crashes in the last epoch only: maximal lost work for the rollback."""
    return Scenario(
        "late-crash",
        [ServerCrashes(crashes_per_epoch=2, down_rounds=2,
                       fault_config=fault_config, epochs=(EPOCHS - 1,))],
        description="two crashes in the final epoch",
    )


def _config(scenario) -> ExperimentConfig:
    return ExperimentConfig(
        cluster=ClusterConfig(num_nodes=NODES,
                              workers_per_node=WORKERS_PER_NODE),
        epochs=EPOCHS, chunk_size=8, seed=0, scenario=scenario,
    )


def _summarize(result: ExperimentResult) -> dict:
    summary = {
        "completed": result.epochs_completed == EPOCHS,
        "epochs": result.epochs_completed,
        "total_time": result.total_time,
        "final_quality": result.final_quality(),
        "higher_is_better": result.higher_is_better,
    }
    for name in _FAULT_METRICS:
        summary[name.split(".", 1)[1]] = result.metrics.get(name, 0.0)
    return summary


def _run_job(cell: str, system: str, variant: str) -> dict:
    task = TASK_FACTORIES[TASK_NAME]("bench")
    if cell == "crash_storm":
        scenario = make_scenario("crash-storm")
    elif cell == "recovery":
        scenario = _late_crash_scenario(FaultConfig(
            recovery=variant, checkpoint_interval=0.005,
        ))
    elif cell == "graceful":
        scenario = None if variant == "healthy" else _late_crash_scenario(
            FaultConfig(recovery="restart")
        )
    else:
        raise ValueError(cell)
    result = run_experiment(
        task, make_ps_factory(system), _config(scenario), system_name=system
    )
    return _summarize(result)


def _quality_drop(healthy: dict, crashed: dict) -> float:
    """Sign-aware quality loss of the crashed run vs the healthy baseline."""
    delta = healthy["final_quality"] - crashed["final_quality"]
    return delta if healthy["higher_is_better"] else -delta


def run() -> dict:
    """Run the fault sweep; returns the ``BENCH_faults.json`` payload."""
    print_header(
        f"Fault injection — {TASK_NAME}, {NODES}x{WORKERS_PER_NODE} workers, "
        f"{EPOCHS} epochs"
    )

    jobs = (
        [("crash_storm", system, "-") for system in SYSTEMS]
        + [("recovery", "classic", variant)
           for variant in ("checkpoint", "restart")]
        + [("graceful", system, variant)
           for system in ("classic", "essp")
           for variant in ("healthy", "crashed")]
    )
    workers = _parallel_workers(len(jobs))
    summaries = None
    if workers > 1 and hasattr(os, "fork"):
        TASK_FACTORIES[TASK_NAME]("bench")  # warm the dataset cache pre-fork
        try:
            pool = multiprocessing.get_context("fork").Pool(workers)
        except (OSError, ValueError):
            pool = None
        if pool is not None:
            with pool:
                summaries = pool.starmap(_run_job, jobs)
    if summaries is None:
        summaries = [_run_job(*job) for job in jobs]
    by_job = dict(zip(jobs, summaries))

    # ------------------------------------------------- crash-storm completion
    crash_storm = {system: by_job[("crash_storm", system, "-")]
                   for system in SYSTEMS}
    print_header("crash-storm: repeated server crashes and restarts")
    rows = [[system, s["completed"], s["crashes"], s["restores"],
             f"{s['total_time']:.4f}", f"{s['final_quality']:.4f}",
             s["lost_updates"]]
            for system, s in crash_storm.items()]
    print(format_table(
        ["system", "completed", "crashes", "restores", "total time (s)",
         "final quality", "lost updates"], rows,
    ))
    all_complete = {system: s["completed"] for system, s in crash_storm.items()}
    min_crashes = min(s["crashes"] for s in crash_storm.values())
    recovery_time_total = sum(s["recovery_time"]
                              for s in crash_storm.values())
    for system, complete in all_complete.items():
        assert complete, f"{system} did not complete under crash-storm"
    assert min_crashes >= 1, "crash-storm injected no crashes"

    # --------------------------------------------- checkpoint beats restart
    recovery = {variant: by_job[("recovery", "classic", variant)]
                for variant in ("checkpoint", "restart")}
    print_header("recovery mechanism: checkpoint vs restart-from-scratch")
    print(format_table(
        ["mechanism", "checkpoints", "lost updates", "final quality"],
        [[variant, s["checkpoints"], s["lost_updates"],
          f"{s['final_quality']:.4f}"] for variant, s in recovery.items()],
    ))
    assert recovery["checkpoint"]["lost_updates"] \
        < recovery["restart"]["lost_updates"], (
            "periodic checkpointing should lose less work than "
            "restart-from-scratch"
        )

    # ------------------------------------------------- graceful degradation
    graceful: dict = {}
    for system in ("classic", "essp"):
        healthy = by_job[("graceful", system, "healthy")]
        crashed = by_job[("graceful", system, "crashed")]
        graceful[system] = {
            "healthy_quality": healthy["final_quality"],
            "crashed_quality": crashed["final_quality"],
            "quality_drop": _quality_drop(healthy, crashed),
            "lost_updates": crashed["lost_updates"],
            "keys_recovered_from_replicas":
                crashed["keys_recovered_from_replicas"],
        }
    checks = {
        "replication_smaller_drop":
            graceful["essp"]["quality_drop"]
            <= graceful["classic"]["quality_drop"] + QUALITY_EPSILON,
        "replication_less_lost_work":
            graceful["essp"]["lost_updates"]
            < graceful["classic"]["lost_updates"],
        "replicas_used":
            graceful["essp"]["keys_recovered_from_replicas"] > 0,
    }
    graceful["checks"] = checks
    print_header("graceful degradation: replication vs classic under crashes")
    print(format_table(
        ["system", "healthy quality", "crashed quality", "quality drop",
         "lost updates", "keys from replicas"],
        [[system,
          f"{g['healthy_quality']:.4f}", f"{g['crashed_quality']:.4f}",
          f"{g['quality_drop']:.4f}", g["lost_updates"],
          g["keys_recovered_from_replicas"]]
         for system, g in graceful.items() if system != "checks"],
    ))
    for name, ok in checks.items():
        assert ok, f"graceful-degradation check failed: {name}"

    return {
        "task": TASK_NAME,
        "epochs": EPOCHS,
        "num_nodes": NODES,
        "workers_per_node": WORKERS_PER_NODE,
        "fast_mode": FAST,
        "systems": list(SYSTEMS),
        "crash_storm": crash_storm,
        "recovery": recovery,
        "graceful": graceful,
        "checks": {
            "all_complete": all_complete,
            "min_crashes": min_crashes,
            "recovery_time_total": recovery_time_total,
        },
    }


def main() -> int:
    payload = run()
    OUTPUT.write_text(json.dumps(payload, indent=2, sort_keys=True))
    print(f"\nwrote {OUTPUT}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
