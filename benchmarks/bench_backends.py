"""Execution-backend comparison: sequential vs fused vs parallel.

The runner executes every experiment through one of three backends
(``ExperimentConfig.execution_backend``): the per-worker ``sequential``
reference loop, the in-process ``fused`` round engine (PR 3), and the
``parallel`` backend (``src/repro/parallel/``) that ships each round's
conflict-free remainder to a pool of shared-memory fork workers. All three
are bit-identical by contract; this benchmark measures what the contract
*costs*:

* **per-backend comparison table** — wall-clock and training-point
  throughput per MF architecture under each backend, with the parallel /
  fused speedup per architecture (the differential suite's equality
  assertions re-checked on every run, so a speedup can never come from
  computing something cheaper);
* **cores x architecture sweep** — parallel-backend throughput as the
  worker count grows (1, 2, 4), per architecture, against the fused
  baseline.

The acceptance target — >= 1.8x fused throughput with 4 workers on at
least one architecture — only makes sense with >= 4 physical cores, so the
corresponding claim is gated on the host: ``checks.scaling_target_applicable``
records whether this machine can meaningfully attempt it, and on smaller
hosts the honest measured numbers are still recorded while the claim passes
vacuously. Results go to ``BENCH_backends.json`` in the repository root.

Run directly::

    REPRO_BENCH_FAST=1 PYTHONPATH=src python benchmarks/bench_backends.py

or through pytest::

    REPRO_BENCH_FAST=1 PYTHONPATH=src python -m pytest benchmarks/bench_backends.py -q
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Optional

from repro.parallel import ParallelConfig, parallel_disabled, shutdown_worker_pools
from repro.runner.config import ExperimentConfig
from repro.runner.experiment import resolve_execution_backend, run_experiment
from repro.runner.systems import make_ps_factory
from repro.runner.workloads import make_task
from repro.simulation.cluster import ClusterConfig

FAST = bool(int(os.environ.get("REPRO_BENCH_FAST", "0")))

OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_backends.json"

#: The five MF architectures of the differential suite. Only systems with a
#: direct point charger (classic, lapse) dispatch rounds to the pool; the
#: others exercise the backend's transparent fallback and must cost ~nothing.
ARCHITECTURES = ["classic", "lapse", "ssp", "essp", "nups"]

TASK_SCALE = "test" if FAST else "bench"
EPOCHS = 2
NUM_NODES = 2 if FAST else 4
WORKERS_PER_NODE = 2
CHUNK_SIZE = 8 if FAST else 16
SEED = 0

#: Parallel-backend pool sizes for the cores sweep. Four workers are always
#: measured (the acceptance target is defined at 4), even on smaller hosts
#: where the claim is then gated off.
WORKER_SWEEP = [1, 2, 4]

#: Wall-clock repetitions per cell; the minimum is reported.
REPEATS = 1 if FAST else 2

#: Acceptance target: parallel / fused throughput at 4 workers, best
#: architecture, on hosts with >= 4 cores.
SCALING_TARGET = 1.8
SCALING_WORKERS = 4


def _config(backend: str, num_workers: int = 2) -> ExperimentConfig:
    parallel = ParallelConfig(num_workers=num_workers) \
        if backend == "parallel" else None
    return ExperimentConfig(
        cluster=ClusterConfig(num_nodes=NUM_NODES,
                              workers_per_node=WORKERS_PER_NODE),
        epochs=EPOCHS, chunk_size=CHUNK_SIZE, seed=SEED,
        execution_backend=backend, parallel=parallel,
    )


def _drive(system: str, backend: str, num_workers: int = 2):
    """Best-of-``REPEATS`` wall-clock for one (system, backend) cell."""
    best = None
    result = None
    for _ in range(REPEATS):
        task = make_task("matrix_factorization", scale=TASK_SCALE)
        config = _config(backend, num_workers)
        start = time.perf_counter()
        run = run_experiment(task, make_ps_factory(system), config)
        elapsed = time.perf_counter() - start
        points = task.num_data_points() * run.epochs_completed
        if best is None or elapsed < best["seconds"]:
            best = {
                "seconds": round(elapsed, 6),
                "points_per_sec": round(points / elapsed) if elapsed > 0 else None,
                "effective_backend": resolve_execution_backend(config),
            }
            if backend == "parallel":
                best["num_workers"] = num_workers
            result = run
    return best, result


def _identical(a, b) -> bool:
    """Bit-identity of two experiment results (times, quality, metrics)."""
    if a.initial_quality != b.initial_quality:
        return False
    if a.epochs_completed != b.epochs_completed:
        return False
    for rec_a, rec_b in zip(a.records, b.records):
        if (rec_a.sim_time != rec_b.sim_time
                or rec_a.epoch_duration != rec_b.epoch_duration
                or rec_a.quality != rec_b.quality
                or rec_a.metrics != rec_b.metrics):
            return False
    return a.metrics == b.metrics


def run_benchmark(output_path: Optional[Path] = OUTPUT_PATH) -> dict:
    cpu_count = os.cpu_count() or 1
    disabled = parallel_disabled()
    architectures = {}
    core_sweep = {}
    all_identical = True
    best_at_target = None

    print(f"{'system':10s} {'sequential':>12s} {'fused':>12s} "
          f"{'parallel':>12s} {'par/fused':>10s}  (points/s)")
    for system in ARCHITECTURES:
        sequential, seq_result = _drive(system, "sequential")
        fused, fused_result = _drive(system, "fused")
        parallel, par_result = _drive(system, "parallel")
        identical = (_identical(par_result, seq_result)
                     and _identical(fused_result, seq_result))
        all_identical &= identical
        speedup = round(parallel["points_per_sec"] / fused["points_per_sec"], 3)
        architectures[system] = {
            "sequential": sequential,
            "fused": fused,
            "parallel": parallel,
            "speedup_parallel_vs_fused": speedup,
            "bit_identical": identical,
        }
        print(f"{system:10s} {sequential['points_per_sec']:>12,d} "
              f"{fused['points_per_sec']:>12,d} "
              f"{parallel['points_per_sec']:>12,d} {speedup:>9.2f}x"
              f"{'' if identical else '  << DIVERGED'}")

        sweep = []
        for workers in WORKER_SWEEP:
            cell, cell_result = _drive(system, "parallel", num_workers=workers)
            cell["speedup_vs_fused"] = round(
                cell["points_per_sec"] / fused["points_per_sec"], 3)
            identical = _identical(cell_result, seq_result)
            all_identical &= identical
            cell["bit_identical"] = identical
            sweep.append(cell)
            if workers == SCALING_WORKERS and identical:
                if best_at_target is None \
                        or cell["speedup_vs_fused"] > best_at_target:
                    best_at_target = cell["speedup_vs_fused"]
        core_sweep[system] = sweep
        print(f"{'':10s} workers " + "  ".join(
            f"{cell['num_workers']}: x{cell['speedup_vs_fused']:.2f}"
            for cell in sweep))

    applicable = cpu_count >= SCALING_WORKERS and not disabled
    target_met = (not applicable) or (
        best_at_target is not None and best_at_target >= SCALING_TARGET)
    print(f"\nbit-identical across backends: {all_identical}; "
          f"best parallel/fused speedup at {SCALING_WORKERS} workers: "
          f"{best_at_target}; target >= {SCALING_TARGET}x "
          f"{'applies' if applicable else 'gated off'} "
          f"(cpu_count={cpu_count}, parallel_disabled={disabled})")

    report = {
        "benchmark": "execution_backends",
        "fast_mode": FAST,
        "host": {
            "cpu_count": cpu_count,
            "parallel_disabled": disabled,
        },
        "config": {
            "task": "matrix_factorization",
            "task_scale": TASK_SCALE,
            "epochs": EPOCHS,
            "num_nodes": NUM_NODES,
            "workers_per_node": WORKERS_PER_NODE,
            "chunk_size": CHUNK_SIZE,
            "seed": SEED,
            "worker_sweep": WORKER_SWEEP,
            "repeats": REPEATS,
        },
        "architectures": architectures,
        "core_sweep": core_sweep,
        "checks": {
            "all_bit_identical": all_identical,
            "scaling_target": SCALING_TARGET,
            "scaling_workers": SCALING_WORKERS,
            "scaling_target_applicable": applicable,
            "best_speedup_at_target_workers": best_at_target,
            "scaling_target_met": target_met,
        },
    }
    # Pools were sized for this benchmark's sweep; leave nothing warm behind.
    shutdown_worker_pools()
    if output_path is not None:
        output_path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
        print(f"wrote {output_path}")
    return report


def run() -> dict:
    """Structured backend report for the reproduction pipeline.

    Does not write ``BENCH_backends.json``: the committed copy documents a
    deliberate measurement, exactly like ``BENCH_throughput.json``.
    """
    return run_benchmark(output_path=None)


def test_backends_benchmark(tmp_path):
    """The harness runs, covers every architecture, and writes valid JSON."""
    output = tmp_path / "BENCH_backends.json"
    report = run_benchmark(output)
    assert set(report["architectures"]) == set(ARCHITECTURES)
    for system, entry in report["architectures"].items():
        assert entry["bit_identical"], f"{system} diverged across backends"
        for backend in ("sequential", "fused", "parallel"):
            assert entry[backend]["points_per_sec"] > 0
    assert report["checks"]["all_bit_identical"]
    assert report["checks"]["scaling_target_met"] in (True, False)
    assert json.loads(output.read_text())["benchmark"] == "execution_backends"


if __name__ == "__main__":
    import sys

    run_benchmark(Path(sys.argv[1]) if len(sys.argv) > 1 else OUTPUT_PATH)
