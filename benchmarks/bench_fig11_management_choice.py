"""Table 3 and Figure 11: choosing the management technique per key.

The paper varies how many keys NuPS replicates — from none, over the untuned
heuristic (1x), to 256x the heuristic's key count — and reports, per setting:
the share of replicated keys, the size of the replicated values, the share of
accesses that go to replicas (Table 3), and the resulting epoch run time and
model quality (Figure 11). Replicating "enough" keys (the hot spots) improves
run time; replicating far too many keys makes replica synchronization fall
behind (lower achieved sync frequency) and deteriorates quality.
"""

import pytest

from common import (
    FAST,
    NUPS_BENCH_OVERRIDES,
    experiment_config,
    heuristic_key_count,
    print_header,
    run_once,
    TASK_FACTORIES,
)
from repro.core.management import ManagementPlan
from repro.runner.experiment import run_experiment
from repro.runner.reporting import format_table
from repro.runner.systems import make_ps_factory

FACTORS = [0, 1, 16, 256] if FAST else [0, 0.25, 1, 16, 256]
TASKS = ["kge", "matrix_factorization"] if FAST else \
    ["kge", "word_vectors", "matrix_factorization"]


def _replica_access_share(metrics: dict) -> float:
    replica = sum(value for name, value in metrics.items()
                  if name.startswith("access.") and ".replica" in name)
    total = metrics.get("access.total", 0.0)
    return replica / total if total else 0.0


def _run(task_name):
    factory = TASK_FACTORIES[task_name]
    reference_task = factory("bench")
    counts = reference_task.access_counts()
    heuristic_keys = heuristic_key_count(reference_task)
    rows = []
    outcomes = {}
    structured = {}
    for factor in FACTORS:
        k = int(round(heuristic_keys * factor)) if factor else 0
        plan = ManagementPlan.top_k_by_count(counts, k)
        task = factory("bench")
        overrides = dict(NUPS_BENCH_OVERRIDES)
        overrides["plan"] = plan
        result = run_experiment(
            task, make_ps_factory("nups", **overrides),
            experiment_config(epochs=1, seed=6),
            system_name=f"nups[{factor}x]",
        )
        sync_frequency = result.metrics.get("replica.syncs", 0.0) / max(result.total_time, 1e-12)
        outcomes[factor] = result
        structured[str(factor)] = {
            "replicated_keys": plan.num_replicated,
            "replicated_share": plan.replicated_share,
            "replica_mb": plan.replicated_value_bytes(task.value_length()) / 1e6,
            "replica_access_share": _replica_access_share(result.metrics),
            "epoch_time": result.mean_epoch_time(),
            "quality": result.final_quality(),
            "syncs_per_s": sync_frequency,
        }
        rows.append([
            f"{factor}x",
            plan.num_replicated,
            f"{plan.replicated_share:.4%}",
            round(plan.replicated_value_bytes(task.value_length()) / 1e6, 3),
            f"{_replica_access_share(result.metrics):.0%}",
            result.mean_epoch_time(),
            result.final_quality(),
            round(sync_frequency, 1),
        ])
    print_header(
        f"Table 3 / Figure 11 — replication extent on {task_name} "
        f"(heuristic replicates {heuristic_keys} keys)"
    )
    print(format_table(
        ["factor", "replicated keys", "share of keys", "replica size (MB)",
         "accesses to replicas", "epoch_time_s", "quality", "achieved syncs/s"],
        rows,
    ))
    return outcomes, structured, heuristic_keys


def run() -> dict:
    """Structured Table 3 / Figure 11 results for the pipeline.

    Claims reference the KGE and MF tasks only: those run in both fast and
    full mode (WV joins the sweep in full mode).
    """
    figure = {}
    for task_name in TASKS:
        outcomes, structured, heuristic_keys = _run(task_name)
        largest = outcomes[max(FACTORS)]
        initial = largest.initial_quality[largest.quality_metric]
        # "Still trains" mirrors the pytest assertion: quality must not be
        # worse than the initialization even at the largest extent.
        if largest.higher_is_better:
            largest_trained = bool(largest.best_quality() >= initial)
        else:
            largest_trained = bool(largest.best_quality() <= initial)
        figure[task_name] = {
            "heuristic_keys": heuristic_keys,
            "factors": [str(factor) for factor in FACTORS],
            "per_factor": structured,
            "largest_factor": str(max(FACTORS)),
            "largest_trained": largest_trained,
        }
    return figure


@pytest.mark.parametrize("task_name", TASKS)
def test_fig11_management_choice(benchmark, task_name):
    outcomes, _, _ = run_once(benchmark, lambda: _run(task_name))
    no_replication = outcomes[0]
    heuristic = outcomes[1]
    largest = outcomes[max(FACTORS)]
    # Replicating the hot spots does not hurt epoch time materially
    # (Section 5.6). At this scale the WV hot-spot set carries a smaller
    # traffic share than in the paper, so a slightly larger tolerance is used.
    assert heuristic.mean_epoch_time() <= no_replication.mean_epoch_time() * 1.25
    # The share of accesses served by replicas grows with the extent.
    assert _replica_access_share(largest.metrics) > _replica_access_share(heuristic.metrics)
    # Note: the paper additionally observes that *over*-replication slows
    # KGE/MF down and deteriorates quality because replica synchronization
    # cannot keep up with hundreds of MB of replicated values. The scaled-down
    # models here are a few MB at most, so that part of the effect does not
    # materialize at benchmark scale; we only require that the largest
    # extent still trains the model.
    initial = largest.initial_quality[largest.quality_metric]
    if largest.higher_is_better:
        assert largest.best_quality() >= initial
    else:
        assert largest.best_quality() <= initial
