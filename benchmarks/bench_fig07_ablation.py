"""Figure 7: ablation of NuPS's two features.

The paper enables multi-technique parameter management and sampling
integration separately on the KGE and WV tasks: (i) Lapse (relocation only,
no sampling support), (ii) relocation + replication, (iii) relocation +
sampling, (iv) full NuPS. Both features help individually and compound when
combined. MF is omitted because it has no sampling access (as in the paper).
"""

import pytest

from common import print_header, run_once, run_systems
from repro.runner.reporting import summary_table

VARIANTS = ["lapse", "relocation+replication", "relocation+sampling", "nups"]


def _run(task_name):
    results = run_systems(task_name, VARIANTS, seed=2)
    print_header(f"Figure 7 — ablation on {task_name}: epoch time and quality per variant")
    print(summary_table(results))
    lapse_time = results[0].mean_epoch_time()
    print("\nEpoch-time reduction over Lapse:")
    for result in results[1:]:
        reduction = 1.0 - result.mean_epoch_time() / lapse_time
        print(f"  {result.system:24s} {reduction:6.1%} faster per epoch")
    return {r.system: r for r in results}


def run() -> dict:
    """Structured Figure 7 ablation results for the pipeline."""
    figure = {}
    for task_name in ("kge", "word_vectors"):
        by_name = _run(task_name)
        epoch_time = {s: r.mean_epoch_time() for s, r in by_name.items()}
        figure[task_name] = {
            "epoch_time": epoch_time,
            "best_single_feature": min(epoch_time["relocation+replication"],
                                       epoch_time["relocation+sampling"]),
        }
    return figure


@pytest.mark.parametrize("task_name", ["kge", "word_vectors"])
def test_fig07_ablation(benchmark, task_name):
    by_name = run_once(benchmark, lambda: _run(task_name))
    lapse = by_name["lapse"].mean_epoch_time()
    multi = by_name["relocation+replication"].mean_epoch_time()
    sampling = by_name["relocation+sampling"].mean_epoch_time()
    full = by_name["nups"].mean_epoch_time()
    # Sampling integration improves over Lapse; multi-technique management at
    # least does not hurt (its individual benefit is small for WV at this
    # scale); the combination is the fastest variant
    # (Section 5.3).
    assert multi < lapse * 1.1
    assert sampling < lapse
    assert full < lapse
    assert full <= min(multi, sampling) * 1.2
