"""Simulator-throughput microbenchmark: PS accesses per wall-clock second.

Unlike the figure benchmarks, which reproduce the paper's *simulated* run
times, this benchmark tracks how fast the simulator itself executes — the
hot-loop throughput that the vectorized batch fast path (PR 1) and the
round-fused multi-worker execution engine (PR 3) optimize. It drives a
synthetic Zipf-skewed pull/push workload (with localize-ahead for
relocation-capable systems and clock advances for replication) through each
PS architecture twice:

* **round-fused** (the headline numbers): one
  :meth:`~repro.ps.base.ParameterServer.run_round` call per scheduling round
  carrying every worker's hint/pull/push/advance;
* **sequential**: the per-worker call chain the round API replaces.

Both modes must produce bit-identical simulated clocks, metrics, and stored
values — the benchmark asserts this on every run, so the published speedups
can never come from simulating something cheaper. Results go to
``BENCH_throughput.json`` in the repository root so the perf trajectory is
tracked across PRs (the CI regression guard compares against the committed
copy).

This file measures the *PS-level* round engine in isolation; the
*task-level* execution backends built on top of it — including the
shared-memory multiprocess ``parallel`` backend — are measured end-to-end
by ``benchmarks/bench_backends.py`` (``BENCH_backends.json``), which the
same regression guard also covers.

Run directly::

    REPRO_BENCH_FAST=1 PYTHONPATH=src python benchmarks/bench_throughput.py

or through pytest (the test asserts the JSON is produced)::

    REPRO_BENCH_FAST=1 PYTHONPATH=src python -m pytest benchmarks/bench_throughput.py -q
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Optional

import numpy as np

from repro.core.management import ManagementPlan
from repro.core.nups import NuPS
from repro.ps.classic import ClassicPS
from repro.ps.relocation import RelocationPS
from repro.ps.replication import ReplicationProtocol, ReplicationPS
from repro.ps.rounds import WorkerRound
from repro.ps.storage import ParameterStore
from repro.simulation.cluster import Cluster, ClusterConfig

FAST = bool(int(os.environ.get("REPRO_BENCH_FAST", "0")))

OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_throughput.json"

NUM_KEYS = 5_000 if FAST else 20_000
VALUE_LENGTH = 16
NUM_NODES = 4
WORKERS_PER_NODE = 2
BATCH_SIZE = 32
ROUNDS = 40 if FAST else 400
ZIPF_EXPONENT = 1.1
HOT_SPOT_KEYS = 64

#: Wall-clock timing repetitions per (system, mode); the best run is reported
#: (single-core boxes in CI are noisy, and the minimum tracks the code's
#: actual cost most faithfully).
REPEATS = 3


def _make_cluster() -> Cluster:
    return Cluster(ClusterConfig(num_nodes=NUM_NODES,
                                 workers_per_node=WORKERS_PER_NODE))


def _system_factories():
    def classic(store, cluster):
        return ClassicPS(store, cluster, seed=0)

    def relocation(store, cluster):
        return RelocationPS(store, cluster, seed=0)

    def replication(store, cluster):
        return ReplicationPS(store, cluster,
                             protocol=ReplicationProtocol.SSP, seed=0)

    def nups(store, cluster):
        plan = ManagementPlan(
            store.num_keys, np.arange(HOT_SPOT_KEYS, dtype=np.int64)
        )
        return NuPS(store, cluster, plan=plan, sync_interval=0.001, seed=0)

    return {
        "classic": classic,
        "relocation": relocation,
        "replication": replication,
        "nups": nups,
    }


def _workload(seed: int = 0):
    """Per-(round, worker) Zipf-skewed key batches and matching deltas."""
    rng = np.random.default_rng(seed)
    weights = 1.0 / np.arange(1, NUM_KEYS + 1, dtype=np.float64) ** ZIPF_EXPONENT
    probs = weights / weights.sum()
    batches = []
    for _ in range(ROUNDS):
        round_batches = []
        for _ in range(NUM_NODES * WORKERS_PER_NODE):
            keys = rng.choice(NUM_KEYS, size=BATCH_SIZE, p=probs).astype(np.int64)
            deltas = rng.normal(0, 0.01, size=(BATCH_SIZE, VALUE_LENGTH)) \
                .astype(np.float32)
            round_batches.append((keys, deltas))
        batches.append(round_batches)
    return batches


def _drive(name: str, factory, batches, round_fusion: bool):
    """Run the workload through one PS; returns (stats, cluster, store)."""
    cluster = _make_cluster()
    store = ParameterStore(NUM_KEYS, VALUE_LENGTH, seed=0, init_scale=0.1)
    ps = factory(store, cluster)
    workers = list(cluster.workers())

    accesses = 0
    start = time.perf_counter()
    if round_fusion:
        for round_batches in batches:
            rounds = [
                WorkerRound(worker, localize_keys=keys, pull_keys=keys,
                            push_keys=keys, push_deltas=deltas)
                for worker, (keys, deltas) in zip(workers, round_batches)
            ]
            ps.run_round(rounds)
            accesses += 2 * sum(len(keys) for keys, _ in round_batches)
            ps.housekeeping(cluster.time)
    else:
        for round_batches in batches:
            for worker, (keys, deltas) in zip(workers, round_batches):
                ps.localize(worker, keys)  # no-op for classic / replication
                ps.pull(worker, keys)
                ps.push(worker, keys, deltas)
                accesses += 2 * len(keys)
                ps.advance_clock(worker)  # no-op outside replication
            ps.housekeeping(cluster.time)
    ps.finish_epoch()
    elapsed = time.perf_counter() - start

    stats = {
        "accesses": accesses,
        "seconds": round(elapsed, 6),
        "accesses_per_sec": round(accesses / elapsed) if elapsed > 0 else None,
        "simulated_time": round(cluster.time, 6),
    }
    return stats, cluster, store


def _best_of(name: str, factory, batches, round_fusion: bool):
    best = None
    for _ in range(REPEATS):
        stats, cluster, store = _drive(name, factory, batches, round_fusion)
        if best is None or stats["seconds"] < best[0]["seconds"]:
            best = (stats, cluster, store)
    return best


def _assert_equivalent(name: str, fused, sequential) -> None:
    """Fused and sequential execution must be bit-identical."""
    _, fused_cluster, fused_store = fused
    _, seq_cluster, seq_store = sequential
    if fused_cluster.time != seq_cluster.time:
        raise AssertionError(
            f"{name}: round fusion changed simulated time: "
            f"{fused_cluster.time!r} != {seq_cluster.time!r}"
        )
    if fused_cluster.metrics.counters() != seq_cluster.metrics.counters():
        raise AssertionError(f"{name}: round fusion changed metrics")
    if not np.array_equal(fused_store.values, seq_store.values):
        raise AssertionError(f"{name}: round fusion changed stored values")


def run_benchmark(output_path: Optional[Path] = OUTPUT_PATH) -> dict:
    batches = _workload()
    results = {}
    sequential_results = {}
    for name, factory in _system_factories().items():
        fused = _best_of(name, factory, batches, round_fusion=True)
        sequential = _best_of(name, factory, batches, round_fusion=False)
        _assert_equivalent(name, fused, sequential)
        results[name] = fused[0]
        sequential_results[name] = sequential[0]
        rate = results[name]["accesses_per_sec"]
        seq_rate = sequential_results[name]["accesses_per_sec"]
        print(f"{name:12s} {rate:>12,d} accesses/s round-fused "
              f"({seq_rate:,d} sequential, x{rate / seq_rate:.2f})")
    report = {
        "benchmark": "simulator_throughput",
        "fast_mode": FAST,
        "round_fusion": True,
        "see_also": "BENCH_backends.json (task-level execution backends)",
        "config": {
            "num_keys": NUM_KEYS,
            "value_length": VALUE_LENGTH,
            "num_nodes": NUM_NODES,
            "workers_per_node": WORKERS_PER_NODE,
            "batch_size": BATCH_SIZE,
            "rounds": ROUNDS,
            "zipf_exponent": ZIPF_EXPONENT,
            "repeats": REPEATS,
        },
        "systems": results,
        "systems_sequential": sequential_results,
    }
    if output_path is not None:
        output_path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
        print(f"wrote {output_path}")
    return report


def run() -> dict:
    """Structured throughput report for the reproduction pipeline.

    Does not write ``BENCH_throughput.json``: the committed baseline is the
    CI regression guard's reference and is only refreshed deliberately.
    """
    return run_benchmark(output_path=None)


def test_throughput_benchmark(tmp_path):
    """The harness runs, reports every system, and writes valid JSON.

    ``_assert_equivalent`` inside ``run_benchmark`` additionally guarantees
    that the round-fused and sequential drives are bit-identical.
    """
    output = tmp_path / "BENCH_throughput.json"
    report = run_benchmark(output)
    assert set(report["systems"]) == {"classic", "relocation",
                                      "replication", "nups"}
    for stats in report["systems"].values():
        assert stats["accesses"] > 0
        assert stats["accesses_per_sec"] > 0
    assert json.loads(output.read_text())["benchmark"] == "simulator_throughput"


if __name__ == "__main__":
    import sys

    run_benchmark(Path(sys.argv[1]) if len(sys.argv) > 1 else OUTPUT_PATH)
