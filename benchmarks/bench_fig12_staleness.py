"""Figure 12: effect of replica staleness (synchronization frequency).

The paper varies how often NuPS synchronizes its replicas — 125, 25, 5, 1,
0.2 times per second, and not at all — and reports epoch run time and model
quality after one epoch. Frequent synchronization keeps quality close to the
no-replication baseline; very infrequent (or no) synchronization deteriorates
quality for KGE and WV but matters little for MF.

The scaled-down workloads have epochs of tens to hundreds of milliseconds
instead of tens of minutes, so the sweep is expressed in *synchronizations
per epoch* and converted to an interval from a calibration run.
"""

import pytest

from common import (
    FAST,
    NUPS_BENCH_OVERRIDES,
    TASK_FACTORIES,
    heuristic_key_count,
    print_header,
    run_once,
    run_system,
)
from repro.core.management import ManagementPlan
from repro.runner.reporting import format_table

#: Target synchronizations per epoch (the paper's 125 ... 0.2 syncs/second
#: against ~20-minute epochs, rescaled).
SYNCS_PER_EPOCH = [200, 50, 10, 2, 0] if FAST else [200, 50, 10, 2, 0]
TASKS = ["kge", "matrix_factorization"] if FAST else \
    ["kge", "word_vectors", "matrix_factorization"]


def _run(task_name):
    # Ensure a non-empty hot-spot set so that the staleness sweep actually
    # exercises replication (see heuristic_key_count for the MF fallback).
    reference_task = TASK_FACTORIES[task_name]("bench")
    plan = ManagementPlan.top_k_by_count(
        reference_task.access_counts(), heuristic_key_count(reference_task)
    )

    # Calibration: epoch length with the default configuration.
    calibration = run_system(task_name, "nups", epochs=1, seed=7,
                             system_overrides={"plan": plan})
    epoch_length = calibration.mean_epoch_time()

    rows = []
    outcomes = {}
    for target in SYNCS_PER_EPOCH:
        overrides = dict(NUPS_BENCH_OVERRIDES)
        overrides["plan"] = plan
        overrides["sync_interval"] = (epoch_length / target) if target else None
        result = run_system(task_name, "nups", epochs=1, seed=7,
                            system_overrides=overrides)
        achieved = result.metrics.get("replica.syncs", 0.0)
        outcomes[target] = result
        rows.append([
            target if target else "none",
            int(achieved),
            result.mean_epoch_time(),
            result.final_quality(),
        ])
    print_header(
        f"Figure 12 — replica staleness on {task_name} "
        f"(epoch length ~{epoch_length:.3f} simulated seconds)"
    )
    print(format_table(
        ["target syncs/epoch", "achieved syncs", "epoch_time_s", "quality after 1 epoch"],
        rows,
    ))
    return outcomes, epoch_length


def run() -> dict:
    """Structured Figure 12 results for the pipeline."""
    figure = {}
    for task_name in TASKS:
        outcomes, epoch_length = _run(task_name)
        figure[task_name] = {
            "calibrated_epoch_length": epoch_length,
            "targets": [str(target) for target in SYNCS_PER_EPOCH],
            "per_target": {
                str(target): {
                    "achieved_syncs": result.metrics.get("replica.syncs", 0.0),
                    "epoch_time": result.mean_epoch_time(),
                    "quality": result.final_quality(),
                }
                for target, result in outcomes.items()
            },
        }
    return figure


@pytest.mark.parametrize("task_name", TASKS)
def test_fig12_replica_staleness(benchmark, task_name):
    outcomes, _ = run_once(benchmark, lambda: _run(task_name))
    frequent = outcomes[max(SYNCS_PER_EPOCH)]
    never = outcomes[0]
    # Synchronizing frequently does not blow up the epoch time (the sparse
    # all-reduce payload of a few hot keys is small).
    assert frequent.mean_epoch_time() < never.mean_epoch_time() * 1.5
    # With no synchronization at all the replicas only merge at the epoch
    # boundary (the single forced sync before evaluation).
    assert never.metrics.get("replica.syncs", 0.0) <= 1
    if task_name != "matrix_factorization":
        # Frequent synchronization gives at least as good quality as never
        # synchronizing (Section 5.7); for MF staleness hardly matters.
        assert frequent.final_quality() >= never.final_quality() * 0.9
