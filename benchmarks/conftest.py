"""Pytest configuration for the benchmark harness."""

import sys
from pathlib import Path

# Make `import common` work regardless of how pytest sets up sys.path.
sys.path.insert(0, str(Path(__file__).resolve().parent))
