"""Word vectors with different sampling schemes (the Section 5.5 study).

Trains skip-gram Word2Vec on a synthetic, Zipf-skewed, topic-structured
corpus with NuPS, comparing the sampling schemes the paper analyzes:
independent sampling (CONFORM), pooled sample reuse (BOUNDED), and local
sampling (NON-CONFORM). The example reports epoch run time and the
similarity-probe accuracy for each scheme, illustrating the quality /
efficiency trade-off that the conformity levels control.

Run with::

    python examples/word_vectors.py [--quick]
"""

import argparse

from repro.runner import (
    ExperimentConfig,
    NUPS_BENCH_OVERRIDES,
    make_ps_factory,
    run_experiment,
    summary_table,
    word_vectors_task,
)
from repro.simulation import ClusterConfig

SCHEMES = [
    ("independent sampling (CONFORM)", "independent"),
    ("sample reuse U=16 (BOUNDED)", "sample_reuse"),
    ("local sampling (NON-CONFORM)", "local"),
]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--nodes", type=int, default=8)
    args = parser.parse_args()
    scale = "test" if args.quick else "bench"
    epochs = 2 if args.quick else 3

    results = []

    # Shared-memory single node as the reference point.
    task = word_vectors_task(scale)
    config = ExperimentConfig(
        cluster=ClusterConfig(num_nodes=1, workers_per_node=8),
        epochs=epochs, chunk_size=8, seed=2,
    )
    print("training word vectors on single-node ...")
    results.append(run_experiment(task, make_ps_factory("single-node"), config,
                                  system_name="single-node"))

    for label, scheme in SCHEMES:
        task = word_vectors_task(scale)
        overrides = dict(NUPS_BENCH_OVERRIDES)
        overrides["scheme_override"] = scheme
        config = ExperimentConfig(
            cluster=ClusterConfig(num_nodes=args.nodes, workers_per_node=8),
            epochs=epochs, chunk_size=8, seed=2,
        )
        print(f"training word vectors with NuPS + {label} ...")
        result = run_experiment(task, make_ps_factory("nups", **overrides), config,
                                system_name=f"nups / {label}")
        results.append(result)

    print()
    print(summary_table(results))
    print()
    fastest = min(results[1:], key=lambda r: r.mean_epoch_time())
    print(f"fastest sampling scheme: {fastest.system} "
          f"({fastest.mean_epoch_time():.4f} simulated s/epoch, "
          f"{fastest.final_quality():.1f}% probe accuracy)")


if __name__ == "__main__":
    main()
