"""Sampling schemes and conformity levels, standalone.

This example uses the sampling API directly — without an ML task — to make
the quality / efficiency trade-off of Section 4 tangible. It registers the
same skewed target distribution under all four conformity levels, draws
samples through each resulting scheme, and reports

* how closely the empirical sample frequencies match the target distribution
  (total-variation distance), and
* how much communication (relocations, remote accesses) each scheme caused.

Run with::

    python examples/sampling_schemes.py
"""

import numpy as np

from repro import Cluster, ClusterConfig, ManagementPlan, NuPS, ParameterStore
from repro.core.sampling import (
    CategoricalDistribution,
    ConformityLevel,
    SamplingConfig,
    SchemeConfig,
)
from repro.runner import format_table

NUM_KEYS = 2000
NUM_SAMPLES = 20_000


def run_level(level: ConformityLevel):
    cluster = Cluster(ClusterConfig(num_nodes=4, workers_per_node=2))
    store = ParameterStore(NUM_KEYS, 8, seed=0, init_scale=0.1)
    ps = NuPS(
        store, cluster,
        plan=ManagementPlan.relocate_all(NUM_KEYS),
        sampling_config=SamplingConfig(
            scheme_config=SchemeConfig(pool_size=64, use_frequency=8)
        ),
        seed=2,
    )
    # A Zipf-like target distribution, as used for word-frequency negatives.
    weights = 1.0 / np.arange(1, NUM_KEYS + 1) ** 0.9
    distribution = CategoricalDistribution(weights)
    dist_id = ps.register_distribution(distribution, level)
    scheme = ps.sampling_manager.scheme_for(dist_id)

    worker = cluster.worker(0, 0)
    sampled = []
    remaining = NUM_SAMPLES
    while remaining:
        batch = min(400, remaining)
        handle = ps.prepare_sample(worker, dist_id, batch)
        while handle.remaining:
            result = ps.pull_sample(worker, handle, min(40, handle.remaining))
            sampled.extend(result.keys.tolist())
        remaining -= batch

    empirical = np.bincount(np.asarray(sampled), minlength=NUM_KEYS) / len(sampled)
    tv_distance = 0.5 * np.abs(empirical - distribution.probabilities()).sum()
    metrics = cluster.metrics
    return [
        level.name,
        type(scheme).__name__,
        round(float(tv_distance), 4),
        int(metrics.get("relocation.sampling")),
        int(metrics.get("access.sample.remote")),
        round(cluster.worker(0, 0).clock.now * 1000, 2),
    ]


def main() -> None:
    rows = [run_level(level) for level in ConformityLevel]
    print("Drawing {:,} samples from a Zipf target under each conformity level:".format(
        NUM_SAMPLES))
    print()
    print(format_table(
        ["requested level", "scheme chosen by NuPS",
         "TV distance to target", "sampling relocations",
         "remote sample accesses", "worker time (simulated ms)"],
        rows,
    ))
    print()
    print("Reading the table: stronger levels (CONFORM) match the target exactly "
          "but relocate every fresh sample; weaker levels trade sample quality "
          "for less communication, down to local sampling (NON_CONFORM), which "
          "needs no sampling communication at all.")


if __name__ == "__main__":
    main()
