"""Knowledge graph embeddings: the paper's motivating workload (Figure 1).

Trains ComplEx embeddings with negative sampling on a synthetic, Zipf-skewed
knowledge graph, once on a shared-memory single node and once with NuPS on an
8-node simulated cluster, and reports model quality (filtered MRR) over
simulated run time plus the raw/effective speedups — the same comparison as
the paper's headline figure, at laptop scale.

Run with::

    python examples/kge_training.py [--quick]
"""

import argparse

from repro.analysis.speedup import effective_speedup, raw_speedup_from_results
from repro.runner import (
    ExperimentConfig,
    NUPS_BENCH_OVERRIDES,
    kge_task,
    make_ps_factory,
    quality_over_time_table,
    run_experiment,
    summary_table,
)
from repro.simulation import ClusterConfig


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="run a smaller graph and fewer epochs")
    parser.add_argument("--nodes", type=int, default=8,
                        help="number of simulated nodes for NuPS (default: 8)")
    args = parser.parse_args()

    scale = "test" if args.quick else "bench"
    epochs = 2 if args.quick else 3

    results = []
    for system, nodes, overrides in [
        ("single-node", 1, {}),
        ("lapse", args.nodes, {}),
        ("nups", args.nodes, dict(NUPS_BENCH_OVERRIDES)),
    ]:
        task = kge_task(scale)
        config = ExperimentConfig(
            cluster=ClusterConfig(num_nodes=nodes, workers_per_node=8),
            epochs=epochs, chunk_size=8, seed=1,
        )
        print(f"training {task.name} on {system} ({nodes} nodes) ...")
        results.append(run_experiment(
            task, make_ps_factory(system, **overrides), config, system_name=system
        ))

    print()
    print(quality_over_time_table(results))
    print()
    print(summary_table(results))

    single = results[0]
    print()
    for result in results[1:]:
        raw = raw_speedup_from_results([single, result])[result.system]
        effective = effective_speedup(single, result)
        effective_label = f"{effective:.2f}x" if effective else "not reached"
        print(f"{result.system:12s} raw speedup {raw:5.2f}x, "
              f"effective speedup {effective_label}")


if __name__ == "__main__":
    main()
