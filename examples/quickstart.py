"""Quickstart: the NuPS API in five minutes.

This example builds a small simulated cluster, creates a NuPS parameter
server with multi-technique management (a few replicated hot keys, the rest
managed by relocation), and exercises the full public API:

* direct access: ``localize`` / ``pull`` / ``push``,
* the sampling API: ``register_distribution`` / ``prepare_sample`` /
  ``pull_sample`` with a conformity level,
* background housekeeping (replica synchronization), and
* the metrics the simulated cluster records.

Run with::

    python examples/quickstart.py
"""

import numpy as np

from repro import (
    Cluster,
    ClusterConfig,
    ConformityLevel,
    ManagementPlan,
    NuPS,
    ParameterStore,
)
from repro.core.sampling import UniformDistribution


def main() -> None:
    # ------------------------------------------------------------ the model
    # 10,000 parameters of 16 floats each. In a real task these would be
    # embeddings; here they are just random vectors.
    num_keys, value_length = 10_000, 16
    store = ParameterStore(num_keys, value_length, seed=0, init_scale=0.1)

    # ------------------------------------------------------- the cluster
    # 4 simulated nodes with 4 workers each. All costs (network latency,
    # bandwidth, shared-memory access) are simulated; see repro.simulation.
    cluster = Cluster(ClusterConfig(num_nodes=4, workers_per_node=4))

    # ------------------------------------------------- management plan
    # Pretend keys 0..49 are hot spots (e.g. frequent words): NuPS manages
    # them with eager replication; everything else relocates on demand.
    # In real workloads the plan comes from dataset statistics via
    # ManagementPlan.from_access_counts(...).
    plan = ManagementPlan(num_keys, replicated_keys=np.arange(50))
    ps = NuPS(store, cluster, plan=plan, sync_interval=0.002)
    print("parameter server:", ps.describe())

    # ------------------------------------------------------ direct access
    worker = cluster.worker(node_id=0, worker_id=0)
    keys = np.array([3, 17, 4711, 9000])

    # Announce the long-tail keys ahead of time so they relocate to node 0.
    ps.localize(worker, keys)

    values = ps.pull(worker, keys)
    print("pulled values with shape", values.shape)

    # Compute some update and push it back (updates are additive).
    updates = -0.01 * values
    ps.push(worker, keys, updates)

    # --------------------------------------------------------- sampling API
    # Register a uniform negative-sampling distribution over all keys and ask
    # for BOUNDED conformity: NuPS transparently serves it with pooled sample
    # reuse, which cuts the communication per sample by the use frequency.
    distribution = UniformDistribution(0, num_keys)
    dist_id = ps.register_distribution(distribution, ConformityLevel.BOUNDED)

    handle = ps.prepare_sample(worker, dist_id, count=32)
    first = ps.pull_sample(worker, handle, count=8)     # partial pull
    rest = ps.pull_sample(worker, handle)               # the remaining 24
    print("sampled keys:", first.keys.tolist(), "... and", len(rest.keys), "more")

    # Negative-sample updates go back through push_sample.
    ps.push_sample(worker, first.keys, -0.01 * first.values)

    # -------------------------------------------------------- housekeeping
    # The training driver calls housekeeping periodically; it runs the
    # replica synchronization that bounds staleness for the replicated keys.
    ps.housekeeping(now=cluster.time)
    ps.finish_epoch()

    # ------------------------------------------------------------- metrics
    metrics = cluster.metrics
    print()
    print("simulated time so far:      %.6f s" % cluster.time)
    print("parameter accesses total:   %d" % metrics.get("access.total"))
    print("  served by replicas:       %d" % metrics.total_matching("access.pull.replica"))
    print("  remote accesses:          %d" % (metrics.get("access.pull.remote")
                                              + metrics.get("access.sample.remote")))
    print("relocations performed:      %d" % metrics.get("relocation.count"))
    print("replica synchronizations:   %d" % metrics.get("replica.syncs"))


if __name__ == "__main__":
    main()
