"""Matrix factorization across parameter-server architectures.

Factorizes a synthetic Zipf-skewed matrix (modeled after the paper's MF
workload) with SGD and the bold-driver learning-rate schedule, comparing the
single node, a classic PS, Lapse, and NuPS. MF has no sampling access, so all
of NuPS's benefit comes from multi-technique parameter management: the
frequent column factors are replicated, the row factors relocate to the node
that owns their rows.

Run with::

    python examples/matrix_factorization.py [--quick]
"""

import argparse

from repro.analysis.speedup import raw_speedup_from_results
from repro.runner import (
    ExperimentConfig,
    NUPS_BENCH_OVERRIDES,
    make_ps_factory,
    matrix_factorization_task,
    run_experiment,
    summary_table,
)
from repro.simulation import ClusterConfig

SYSTEMS = [
    ("single-node", 1, {}),
    ("classic", 8, {}),
    ("lapse", 8, {}),
    ("nups", 8, dict(NUPS_BENCH_OVERRIDES)),
]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--epochs", type=int, default=None)
    args = parser.parse_args()
    scale = "test" if args.quick else "bench"
    epochs = args.epochs or (3 if args.quick else 6)

    results = []
    for system, nodes, overrides in SYSTEMS:
        task = matrix_factorization_task(scale)
        config = ExperimentConfig(
            cluster=ClusterConfig(num_nodes=nodes, workers_per_node=8),
            epochs=epochs, chunk_size=8, seed=3,
        )
        print(f"factorizing with {system} ({nodes} nodes) ...")
        result = run_experiment(task, make_ps_factory(system, **overrides), config,
                                system_name=system)
        results.append(result)
        print(f"  test RMSE per epoch: "
              f"{[round(q, 3) for q in result.qualities()]}")

    print()
    print(summary_table(results))
    print()
    print("raw speedups over the single node:")
    for system, speedup in raw_speedup_from_results(results).items():
        print(f"  {system:12s} {speedup:5.2f}x")

    nups = results[-1]
    share_replicated = nups.metrics.get("access.pull.replica.local", 0) / max(
        nups.metrics.get("access.total", 1), 1
    )
    print()
    print(f"NuPS served {share_replicated:.0%} of its parameter accesses from "
          "replicated hot-spot (column) parameters.")


if __name__ == "__main__":
    main()
