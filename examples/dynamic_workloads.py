"""Dynamic workloads: the scenario engine in five minutes.

The static benchmarks freeze the workload's non-uniformity: the hot set,
cluster speeds and network costs never change within a run. Real deployments
drift. This example composes the scenario engine's perturbations onto a small
experiment and shows how the PS architectures react:

* **hot-set drift** — the Zipf permutation rotates mid-run: yesterday's cold
  keys become hot. Relocation re-localizes, NuPS additionally re-targets its
  replication plan (the re-management hook), the classic PS cannot react.
* **stragglers** — heavy-tailed per-worker slowdowns stretch epoch times.
* **worker churn** — workers pause mid-epoch; their shard is redistributed.
* **degrading network** — latency grows / bandwidth shrinks per epoch.

The coda re-runs the drift *without* the oracle re-management signal and
lets ``nups-adaptive`` detect the new hot set online instead (see
``src/repro/adaptive/``).

Run with::

    PYTHONPATH=src python examples/dynamic_workloads.py
"""

from repro.runner.config import ExperimentConfig
from repro.runner.experiment import run_experiment
from repro.runner.reporting import format_table, localization_rate
from repro.runner.systems import make_ps_factory
from repro.runner.workloads import make_task
from repro.scenarios import Scenario, HotSetDrift, make_scenario
from repro.simulation.cluster import ClusterConfig

SYSTEMS = ("classic", "lapse", "essp", "nups")
EPOCHS = 4
DRIFT_EPOCH = 2


def build_scenario(name):
    if name == "static":
        return None
    if name == "drift":
        # Fire at the first round boundary of epoch 2 (mid-run, mid-epoch).
        return Scenario("drift", [HotSetDrift(at=((DRIFT_EPOCH, 0),), shift=0.5)])
    return make_scenario(name)


def run(system, scenario_name):
    task = make_task("matrix_factorization", scale="test")
    overrides = {}
    if system == "nups":
        # The 100x-mean heuristic replicates nothing at this tiny scale;
        # replicate the hottest 2% of keys so multi-technique management
        # (and the drift re-management hook) have something to do.
        from repro.core.management import ManagementPlan

        overrides["plan"] = ManagementPlan.top_k_by_count(
            task.access_counts(), max(4, task.num_keys() // 50)
        )
    config = ExperimentConfig(
        cluster=ClusterConfig(num_nodes=4, workers_per_node=2),
        epochs=EPOCHS, chunk_size=8, seed=0,
        scenario=build_scenario(scenario_name),
    )
    return run_experiment(task, make_ps_factory(system, **overrides), config,
                          system_name=system)


def adaptive_coda():
    """Drift *without* the oracle signal: online adaptation vs a stale plan.

    The drift scenario above re-derives NuPS's management plan from the
    post-drift dataset statistics (intent signaling — an oracle). Here nobody
    is told: static NuPS keeps its stale plan, while ``nups-adaptive``
    detects the new hot set from observed accesses and re-manages itself
    (see ``src/repro/adaptive/`` and ``benchmarks/bench_adaptive.py``).
    """
    from repro.adaptive import AdaptiveConfig
    from repro.core.management import ManagementPlan

    rows = []
    for label, system in (("nups (stale plan)", "nups"),
                          ("nups-adaptive", "nups-adaptive")):
        # KGE, whose genuine hot spots (relations, head entities) make a
        # stale replicated set expensive: the drifted hot keys fall back to
        # relocation and contend (MF at this tiny scale barely notices).
        task = make_task("kge", scale="test")
        counts = task.access_counts()
        heuristic = ManagementPlan.from_access_counts(counts).num_replicated
        overrides = {
            "plan": ManagementPlan.top_k_by_count(counts, max(8, heuristic) * 4),
            "sync_interval": 0.001,
        }
        if system == "nups-adaptive":
            overrides["adaptive_config"] = AdaptiveConfig(
                policy="top-k", period=2e-3, half_life=0.02,
                warmup_observations=1000,
            )
        config = ExperimentConfig(
            cluster=ClusterConfig(num_nodes=4, workers_per_node=2),
            epochs=EPOCHS, chunk_size=8, seed=0,
            scenario=Scenario("drift-no-oracle", [HotSetDrift(
                at=((DRIFT_EPOCH, 0),), shift=0.5, oracle_remanage=False,
            )]),
        )
        result = run_experiment(task, make_ps_factory(system, **overrides),
                                config, system_name=label)
        rows.append([
            label,
            result.total_time,
            result.final_quality(),
            int(result.metrics.get("adaptive.adaptations", 0)),
            " ".join(f"{r.epoch_duration * 1000:.2f}"
                     for r in result.records),
        ])
    print("\n=== drift with no oracle: stale plan vs online adaptation ===")
    print(format_table(
        ["system", "time (s)", "final MRR", "adaptations",
         "epoch durations (ms)"],
        rows,
    ))


def main():
    for scenario_name in ("static", "drift", "stragglers", "churn",
                          "degrading-network"):
        print(f"\n=== scenario: {scenario_name} ===")
        rows = []
        for system in SYSTEMS:
            result = run(system, scenario_name)
            rows.append([
                system,
                result.total_time,
                result.final_quality(),
                " ".join(f"{localization_rate(r):.2f}" for r in result.records),
            ])
        print(format_table(
            ["system", "time (s)", "final RMSE", "localization per epoch"],
            rows,
        ))
    adaptive_coda()
    print(
        "\nReading the tables: under 'drift' the localization of lapse/nups "
        f"dips in epoch {DRIFT_EPOCH + 1} and recovers afterwards, while "
        "classic stays flat (it has no locality to lose) — the adaptive "
        "management techniques re-adapt to the new hot set. Stragglers and "
        "the degrading network stretch run times without touching quality; "
        "churn moves data between workers mid-epoch."
    )


if __name__ == "__main__":
    main()
