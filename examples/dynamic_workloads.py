"""Dynamic workloads: the scenario engine in five minutes.

The static benchmarks freeze the workload's non-uniformity: the hot set,
cluster speeds and network costs never change within a run. Real deployments
drift. This example composes the scenario engine's perturbations onto a small
experiment and shows how the PS architectures react:

* **hot-set drift** — the Zipf permutation rotates mid-run: yesterday's cold
  keys become hot. Relocation re-localizes, NuPS additionally re-targets its
  replication plan (the re-management hook), the classic PS cannot react.
* **stragglers** — heavy-tailed per-worker slowdowns stretch epoch times.
* **worker churn** — workers pause mid-epoch; their shard is redistributed.
* **degrading network** — latency grows / bandwidth shrinks per epoch.

Run with::

    PYTHONPATH=src python examples/dynamic_workloads.py
"""

from repro.runner.config import ExperimentConfig
from repro.runner.experiment import run_experiment
from repro.runner.reporting import format_table, localization_rate
from repro.runner.systems import make_ps_factory
from repro.runner.workloads import make_task
from repro.scenarios import Scenario, HotSetDrift, make_scenario
from repro.simulation.cluster import ClusterConfig

SYSTEMS = ("classic", "lapse", "essp", "nups")
EPOCHS = 4
DRIFT_EPOCH = 2


def build_scenario(name):
    if name == "static":
        return None
    if name == "drift":
        # Fire at the first round boundary of epoch 2 (mid-run, mid-epoch).
        return Scenario("drift", [HotSetDrift(at=((DRIFT_EPOCH, 0),), shift=0.5)])
    return make_scenario(name)


def run(system, scenario_name):
    task = make_task("matrix_factorization", scale="test")
    overrides = {}
    if system == "nups":
        # The 100x-mean heuristic replicates nothing at this tiny scale;
        # replicate the hottest 2% of keys so multi-technique management
        # (and the drift re-management hook) have something to do.
        from repro.core.management import ManagementPlan

        overrides["plan"] = ManagementPlan.top_k_by_count(
            task.access_counts(), max(4, task.num_keys() // 50)
        )
    config = ExperimentConfig(
        cluster=ClusterConfig(num_nodes=4, workers_per_node=2),
        epochs=EPOCHS, chunk_size=8, seed=0,
        scenario=build_scenario(scenario_name),
    )
    return run_experiment(task, make_ps_factory(system, **overrides), config,
                          system_name=system)


def main():
    for scenario_name in ("static", "drift", "stragglers", "churn",
                          "degrading-network"):
        print(f"\n=== scenario: {scenario_name} ===")
        rows = []
        for system in SYSTEMS:
            result = run(system, scenario_name)
            rows.append([
                system,
                result.total_time,
                result.final_quality(),
                " ".join(f"{localization_rate(r):.2f}" for r in result.records),
            ])
        print(format_table(
            ["system", "time (s)", "final RMSE", "localization per epoch"],
            rows,
        ))
    print(
        "\nReading the tables: under 'drift' the localization of lapse/nups "
        f"dips in epoch {DRIFT_EPOCH + 1} and recovers afterwards, while "
        "classic stays flat (it has no locality to lose) — the adaptive "
        "management techniques re-adapt to the new hot set. Stragglers and "
        "the degrading network stretch run times without touching quality; "
        "churn moves data between workers mid-epoch."
    )


if __name__ == "__main__":
    main()
