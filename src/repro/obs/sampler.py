"""Periodic time-series sampling of the live experiment.

The sampler turns the end-of-run aggregates the harness always had into a
per-run *time series*: every ``sample_every_rounds`` scheduling rounds (and
once, forced, at each epoch boundary) it snapshots

* **metric deltas** since the previous sample — every counter the interval
  touched, via the registry's dirty-set (:meth:`MetricsRegistry.drain_dirty`,
  peeked non-destructively so the runner's per-epoch dirty scope survives)
  joined with value deltas from :meth:`MetricsRegistry.diff`;
* **memory residency** — the parameter server's ``state_nbytes()`` breakdown
  (store, replica manager, sampling pools);
* **per-node clock skew** — each node's time minus the slowest node's time,
  the straggler/imbalance signal;
* **queue depths** — pending work per node from the epoch's worker queues,
  which is where churn redistribution and partition-deferred chunks show up.

Samples land in the tracer's ``samples`` list and export alongside spans and
events (JSONL, Chrome counter tracks).
"""

from __future__ import annotations

from typing import Optional


class TelemetrySampler:
    """Snapshots cluster/PS state into the tracer on a round schedule."""

    def __init__(self, tracer, cluster, ps) -> None:
        self.tracer = tracer
        self.cluster = cluster
        self.ps = ps
        self.every_rounds = int(tracer.config.sample_every_rounds)
        self._baseline = cluster.metrics.snapshot()

    def maybe_sample(self, round_index: int, epoch_state=None) -> None:
        """Sample when ``round_index`` hits the configured period."""
        if (round_index + 1) % self.every_rounds == 0:
            self.take_sample(epoch_state)

    def take_sample(self, epoch_state=None) -> None:
        """Take one sample now (also called, forced, at epoch boundaries)."""
        registry = self.cluster.metrics
        # Peek the dirty set without consuming it: the runner drains at
        # epoch boundaries to attribute counter activity to epochs, and a
        # mid-epoch drain here would silently eat that attribution (and
        # change EpochRecord.metrics — a bit-identity violation).
        touched = registry.drain_dirty()
        registry.mark_dirty(touched)
        deltas = registry.diff(self._baseline)
        for name in touched:
            deltas.setdefault(name, 0.0)
        self._baseline = registry.snapshot()

        nodes = self.cluster.nodes
        times = [node.time for node in nodes]
        floor = min(times)
        skew = [round(t - floor, 9) for t in times]

        pending = None
        if epoch_state is not None:
            per_node = [0] * len(nodes)
            for (node_id, _worker_id), queue in epoch_state.queues.items():
                per_node[node_id] += len(queue)
            pending = {"total": sum(per_node), "per_node": per_node}

        self.tracer.sample(self.cluster.time, {
            "metrics_delta": deltas,
            "state_nbytes": {k: int(v)
                             for k, v in self.ps.state_nbytes().items()},
            "clock_skew": skew,
            "queues": pending,
        })


def make_sampler(tracer, cluster, ps) -> Optional[TelemetrySampler]:
    """A sampler for ``tracer``, or ``None`` when telemetry is off."""
    if tracer is None:
        return None
    return TelemetrySampler(tracer, cluster, ps)
