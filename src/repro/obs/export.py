"""Trace exporters: JSONL event log, Chrome trace-event JSON, terminal summary.

Three consumers, three formats:

* :func:`write_jsonl` / :func:`load_jsonl` — the on-disk interchange format
  (one JSON record per line, header first). Schema pinned by the golden
  test in ``tests/test_obs.py``; version in ``header.schema``.
* :func:`to_chrome_trace` — the Chrome trace-event format (the JSON Array
  ``traceEvents`` flavor). Opens directly in Perfetto
  (https://ui.perfetto.dev) or ``chrome://tracing`` with one process lane
  per node and one thread lane per worker; timestamps are **simulated**
  microseconds, so the lanes show where simulated time went — the quantity
  the paper's figures are about — not where the host's wall clock went.
* :func:`summarize` — a terminal rendering: top spans by simulated time,
  event counts, the per-kind traffic breakdown of the final metric
  counters, and the sampled memory/skew extremes.
"""

from __future__ import annotations

import json
from collections import defaultdict
from pathlib import Path
from typing import Dict, List, Union

from repro.obs.tracer import SCHEMA_VERSION

PathLike = Union[str, Path]


# ---------------------------------------------------------------------- JSONL
def write_jsonl(trace: dict, path: PathLike) -> Path:
    """Write an in-memory trace (``Tracer.to_trace()``) as a JSONL log."""
    path = Path(path)
    header = {
        "type": "header",
        "schema": trace.get("schema", SCHEMA_VERSION),
        "meta": trace.get("meta", {}),
        "dropped": trace.get("dropped", 0),
    }
    with path.open("w") as fh:
        fh.write(json.dumps(header, sort_keys=True) + "\n")
        for family in ("spans", "events", "samples"):
            for record in trace.get(family, ()):
                fh.write(json.dumps(record, sort_keys=True) + "\n")
    return path


def load_jsonl(path: PathLike) -> dict:
    """Load a JSONL trace back into the in-memory shape."""
    trace = {"schema": None, "meta": {}, "spans": [], "events": [],
             "samples": [], "dropped": 0}
    families = {"span": trace["spans"], "event": trace["events"],
                "sample": trace["samples"]}
    with Path(path).open() as fh:
        for line_number, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{line_number}: not a JSON record: {exc}"
                ) from exc
            kind = record.get("type")
            if kind == "header":
                trace["schema"] = record.get("schema")
                trace["meta"] = record.get("meta", {})
                trace["dropped"] = record.get("dropped", 0)
            elif kind in families:
                families[kind].append(record)
            else:
                raise ValueError(
                    f"{path}:{line_number}: unknown record type {kind!r}"
                )
    if trace["schema"] is None:
        raise ValueError(f"{path}: missing header record (not a trace file?)")
    return trace


# --------------------------------------------------------- Chrome trace-event
def _lane(record: dict) -> tuple:
    """(pid, tid) of a record: coordinator is pid 0, node N is pid N+1."""
    node = record.get("node")
    worker = record.get("worker")
    if node is None:
        return 0, 0
    return int(node) + 1, 0 if worker is None else int(worker) + 1


def to_chrome_trace(trace: dict) -> dict:
    """Convert a trace to the Chrome trace-event JSON-object format.

    Spans become complete (``ph: "X"``) events, instant events become
    ``ph: "i"``, and samples become per-node counter tracks (``ph: "C"``)
    for queue depth and clock skew plus a global memory-residency track.
    Records without a simulated timestamp (wall-only events such as
    parallel-pool dispatch) are skipped: the timeline is simulated time.
    """
    out: List[dict] = []
    lanes = set()

    for span in trace.get("spans", ()):
        start = span.get("sim_start")
        end = span.get("sim_end")
        if start is None or end is None:
            continue
        pid, tid = _lane(span)
        lanes.add((pid, tid))
        args = dict(span.get("attrs", {}))
        args["wall_start"] = span.get("wall_start")
        out.append({
            "name": span["name"], "cat": span.get("cat", "span"),
            "ph": "X", "ts": start * 1e6,
            "dur": max(end - start, 0.0) * 1e6,
            "pid": pid, "tid": tid, "args": args,
        })

    for event in trace.get("events", ()):
        sim_time = event.get("sim_time")
        if sim_time is None:
            continue
        pid, tid = _lane(event)
        lanes.add((pid, tid))
        args = dict(event.get("attrs", {}))
        args["wall_time"] = event.get("wall_time")
        out.append({
            "name": event["name"], "cat": event.get("cat", "event"),
            "ph": "i", "s": "t" if event.get("node") is not None else "g",
            "ts": sim_time * 1e6, "pid": pid, "tid": tid, "args": args,
        })

    for sample in trace.get("samples", ()):
        ts = sample["sim_time"] * 1e6
        queues = sample.get("queues") or {}
        for node, depth in enumerate(queues.get("per_node", ())):
            lanes.add((node + 1, 0))
            out.append({"name": "queue depth", "ph": "C", "ts": ts,
                        "pid": node + 1, "tid": 0,
                        "args": {"pending": depth}})
        for node, skew in enumerate(sample.get("clock_skew", ())):
            lanes.add((node + 1, 0))
            out.append({"name": "clock skew", "ph": "C", "ts": ts,
                        "pid": node + 1, "tid": 0, "args": {"skew": skew}})
        nbytes = sample.get("state_nbytes") or {}
        if nbytes:
            lanes.add((0, 0))
            out.append({"name": "state nbytes", "ph": "C", "ts": ts,
                        "pid": 0, "tid": 0,
                        "args": {k: v for k, v in sorted(nbytes.items())}})

    meta: List[dict] = []
    for pid in sorted({pid for pid, _ in lanes}):
        name = "coordinator" if pid == 0 else f"node {pid - 1}"
        meta.append({"name": "process_name", "ph": "M", "pid": pid, "tid": 0,
                     "args": {"name": name}})
    for pid, tid in sorted(lanes):
        name = "main" if tid == 0 else f"worker {tid - 1}"
        meta.append({"name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
                     "args": {"name": name}})

    return {
        "traceEvents": meta + out,
        "displayTimeUnit": "ms",
        "otherData": {
            "clock": "simulated seconds (exported as microseconds)",
            **{k: str(v) for k, v in trace.get("meta", {}).items()
               if not isinstance(v, dict)},
        },
    }


def write_chrome_trace(trace: dict, path: PathLike) -> Path:
    path = Path(path)
    path.write_text(json.dumps(to_chrome_trace(trace)) + "\n")
    return path


# -------------------------------------------------------------------- summary
def _format_rows(headers: List[str], rows: List[List[str]]) -> List[str]:
    widths = [max(len(str(headers[i])),
                  *(len(str(row[i])) for row in rows)) if rows
              else len(str(headers[i])) for i in range(len(headers))]
    lines = ["  ".join(str(h).ljust(w) for h, w in zip(headers, widths))]
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
    return lines


def summarize(trace: dict, top: int = 10) -> str:
    """Render a terminal summary of a trace (``repro trace <file>``)."""
    meta = trace.get("meta", {})
    lines = []
    run = " ".join(f"{key}={meta[key]}" for key in
                   ("system", "task", "num_nodes", "workers_per_node",
                    "backend", "seed") if key in meta)
    lines.append(f"trace schema v{trace.get('schema')}  {run}".rstrip())
    lines.append(
        f"records: {len(trace.get('spans', []))} spans, "
        f"{len(trace.get('events', []))} events, "
        f"{len(trace.get('samples', []))} samples"
        + (f", {trace['dropped']} dropped" if trace.get("dropped") else "")
    )

    # Top spans by total simulated time, aggregated by span name.
    agg: Dict[str, List[float]] = defaultdict(lambda: [0, 0.0])
    for span in trace.get("spans", ()):
        if span.get("sim_end") is None:
            continue
        entry = agg[span["name"]]
        entry[0] += 1
        entry[1] += span["sim_end"] - span["sim_start"]
    if agg:
        rows = [
            [name, count, f"{total:.6f}", f"{total / count:.6f}"]
            for name, (count, total) in sorted(
                agg.items(), key=lambda kv: -kv[1][1]
            )[:top]
        ]
        lines.append("")
        lines.append(f"top spans by simulated time (of {len(agg)} kinds):")
        lines.extend(_format_rows(
            ["span", "count", "sim total (s)", "sim mean (s)"], rows))

    # Event counts by category.name.
    counts: Dict[str, int] = defaultdict(int)
    for event in trace.get("events", ()):
        counts[f"{event.get('cat', '?')}.{event['name']}"] += 1
    if counts:
        lines.append("")
        lines.append("events:")
        lines.extend(_format_rows(
            ["event", "count"],
            [[name, n] for name, n in sorted(counts.items())]))

    # Traffic breakdown from the final metric counters (written into the
    # header by the runner when the experiment completes).
    metrics = meta.get("final_metrics") or {}
    access = {k: v for k, v in metrics.items()
              if k.startswith("access.") and k != "access.total"}
    total = metrics.get("access.total", 0.0)
    if access and total:
        rows = [[kind[len("access."):], f"{count:,.0f}",
                 f"{100.0 * count / total:.1f}%"]
                for kind, count in sorted(access.items(),
                                          key=lambda kv: -kv[1])]
        lines.append("")
        lines.append(f"traffic breakdown ({total:,.0f} accesses):")
        lines.extend(_format_rows(["kind", "count", "share"], rows))

    samples = trace.get("samples", ())
    if samples:
        last = samples[-1]
        peak_skew = max((max(s.get("clock_skew") or [0.0])
                         for s in samples), default=0.0)
        nbytes = sum((last.get("state_nbytes") or {}).values())
        lines.append("")
        lines.append(
            f"sampled series: final state {nbytes:,} bytes, "
            f"peak node clock skew {peak_skew:.6f}s"
        )
    return "\n".join(lines)
