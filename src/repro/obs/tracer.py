"""Span-based tracing for the simulated cluster.

The tracer records three record families, each stamped with **both** clocks:

* **spans** — intervals with a simulated start/end (an epoch, one worker's
  scheduling round, a re-management transition). Spans nest: the tracer
  keeps a stack of open spans and links children to their parent, so the
  exported trace reconstructs the experiment → epoch → round hierarchy.
* **events** — instants (a replica sync, a checkpoint, a node crash, an
  adaptive decision, a perturbation firing). Events carry the simulated
  time of the subsystem that emitted them; wall-clock-only happenings
  (parallel-pool dispatch) record ``sim_time: null``.
* **samples** — periodic time-series snapshots taken by the
  :class:`~repro.obs.sampler.TelemetrySampler` (metric deltas, memory
  residency, clock skew, queue depths).

Telemetry is **off by default**: experiments run without a tracer unless
:class:`TelemetryConfig` is set on
:class:`~repro.runner.config.ExperimentConfig`, and every instrumentation
site guards with ``if tracer is not None`` (plus ``tracer.access_events``
on the per-access hot paths), so the off path is bit-identical to an
uninstrumented build — the house standard, enforced by the parametrized
determinism suite. The tracer itself never touches simulated state: it
only *reads* clocks and counters, so telemetry-on runs are bit-identical
too; what telemetry costs is wall-clock time, bounded by the ``obs.*``
claims of ``benchmarks/bench_obs.py``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional

#: Version of the JSONL trace schema (bumped on any record-shape change;
#: pinned by the golden-file test in ``tests/test_obs.py``).
SCHEMA_VERSION = 1


@dataclass
class TelemetryConfig:
    """Telemetry knobs of one experiment (``ExperimentConfig.telemetry``).

    Parameters
    ----------
    path:
        Optional file path; when set, the runner writes the JSONL event log
        there at the end of the experiment (see :mod:`repro.obs.export`).
        ``None`` keeps the trace in memory only
        (``ExperimentResult.trace``).
    access_events:
        Record one event per PS ``pull``/``push``/``localize`` call
        (the *detail* level). Off by default: per-access events multiply
        the record count by orders of magnitude and are the one
        instrumentation level whose overhead is **not** covered by the
        default ≤5% ceiling (``bench_obs.py`` measures both levels).
    sample_every_rounds:
        Scheduling-round period of the time-series sampler. Each sample
        snapshots metric deltas, ``state_nbytes()`` residency, per-node
        clock skew and queue depths; a forced sample closes every epoch.
    max_records:
        Hard cap on recorded spans+events+samples. Past the cap the tracer
        drops new records (counting them in ``dropped``) instead of growing
        without bound — a runaway detail-level trace degrades, it never
        OOMs the experiment.
    """

    path: Optional[str] = None
    access_events: bool = False
    sample_every_rounds: int = 8
    max_records: int = 1_000_000

    def __post_init__(self) -> None:
        if self.sample_every_rounds < 1:
            raise ValueError(
                "sample_every_rounds must be >= 1 "
                f"(got {self.sample_every_rounds}); the sampler runs every "
                "N scheduling rounds and cannot be disabled short of "
                "disabling telemetry"
            )
        if self.max_records < 1:
            raise ValueError(
                f"max_records must be >= 1 (got {self.max_records})"
            )
        if self.path is not None and not str(self.path):
            raise ValueError("path must be a non-empty string or None")


class Tracer:
    """Low-overhead recorder of spans, events and samples.

    All record methods are safe on the hot path: one list append and one
    ``perf_counter`` call each, no I/O (exporting happens once, at the end
    of the run). The tracer is attached to the cluster
    (``cluster.tracer``), where every subsystem finds it; ``None`` — the
    default — means telemetry is off.
    """

    def __init__(self, config: Optional[TelemetryConfig] = None) -> None:
        self.config = config or TelemetryConfig()
        #: Pre-read flag for the per-access hot paths: architectures guard
        #: with ``tracer.access_events`` so the default level never pays
        #: per-access record costs.
        self.access_events = bool(self.config.access_events)
        self.spans: List[dict] = []
        self.events: List[dict] = []
        self.samples: List[dict] = []
        #: Records dropped after ``max_records`` was reached.
        self.dropped = 0
        #: Run metadata for the trace header (system, task, cluster shape,
        #: final metric counters); filled by the runner.
        self.meta: Dict[str, object] = {}
        self._max_records = int(self.config.max_records)
        self._count = 0
        self._next_span_id = 0
        self._open: List[dict] = []  # stack of open spans (parent linkage)
        self._wall_origin = time.perf_counter()

    # ------------------------------------------------------------------ clock
    def wall_now(self) -> float:
        """Wall-clock seconds since the tracer was created."""
        return time.perf_counter() - self._wall_origin

    # ------------------------------------------------------------------ spans
    def begin_span(self, name: str, category: str, sim_time: float,
                   node: Optional[int] = None, worker: Optional[int] = None,
                   **attrs) -> Optional[dict]:
        """Open a span at ``sim_time``; returns the span (or None if capped).

        The span nests under the innermost span still open. Close it with
        :meth:`end_span`; an experiment aborting mid-span leaves
        ``sim_end`` as ``None``, which the exporters render as "did not
        finish".
        """
        if self._count >= self._max_records:
            self.dropped += 1
            return None
        self._count += 1
        span = {
            "type": "span",
            "id": self._next_span_id,
            "parent": self._open[-1]["id"] if self._open else None,
            "name": name,
            "cat": category,
            "sim_start": sim_time,
            "sim_end": None,
            "wall_start": self.wall_now(),
            "wall_end": None,
            "node": node,
            "worker": worker,
        }
        if attrs:
            span["attrs"] = attrs
        self._next_span_id += 1
        self.spans.append(span)
        self._open.append(span)
        return span

    def end_span(self, span: Optional[dict], sim_time: float, **attrs) -> None:
        """Close ``span`` at ``sim_time`` (no-op when the span was capped)."""
        if span is None:
            return
        span["sim_end"] = sim_time
        span["wall_end"] = self.wall_now()
        if attrs:
            span.setdefault("attrs", {}).update(attrs)
        if self._open and self._open[-1] is span:
            self._open.pop()
        elif span in self._open:  # out-of-order close: drop through to it
            self._open.remove(span)

    def complete_span(self, name: str, category: str, sim_start: float,
                      sim_end: float, node: Optional[int] = None,
                      worker: Optional[int] = None, **attrs) -> None:
        """Record a span whose interval is already known (retrospective).

        Used for the per-worker round intervals: the runner reads each
        worker's clock before and after the round and records the interval
        in one call, without touching the open-span stack.
        """
        if self._count >= self._max_records:
            self.dropped += 1
            return
        self._count += 1
        wall = self.wall_now()
        span = {
            "type": "span",
            "id": self._next_span_id,
            "parent": self._open[-1]["id"] if self._open else None,
            "name": name,
            "cat": category,
            "sim_start": sim_start,
            "sim_end": sim_end,
            "wall_start": wall,
            "wall_end": wall,
            "node": node,
            "worker": worker,
        }
        if attrs:
            span["attrs"] = attrs
        self._next_span_id += 1
        self.spans.append(span)

    # ----------------------------------------------------------------- events
    def event(self, name: str, category: str, sim_time: Optional[float],
              node: Optional[int] = None, worker: Optional[int] = None,
              **attrs) -> None:
        """Record an instant event (``sim_time=None`` for wall-only events)."""
        if self._count >= self._max_records:
            self.dropped += 1
            return
        self._count += 1
        record = {
            "type": "event",
            "name": name,
            "cat": category,
            "sim_time": sim_time,
            "wall_time": self.wall_now(),
            "node": node,
            "worker": worker,
        }
        if attrs:
            record["attrs"] = attrs
        self.events.append(record)

    # ---------------------------------------------------------------- samples
    def sample(self, sim_time: float, payload: Dict[str, object]) -> None:
        """Record one time-series sample (see ``TelemetrySampler``)."""
        if self._count >= self._max_records:
            self.dropped += 1
            return
        self._count += 1
        record = {
            "type": "sample",
            "sim_time": sim_time,
            "wall_time": self.wall_now(),
        }
        record.update(payload)
        self.samples.append(record)

    # ----------------------------------------------------------------- export
    def to_trace(self) -> dict:
        """The in-memory trace: header metadata plus all record lists."""
        return {
            "schema": SCHEMA_VERSION,
            "meta": dict(self.meta),
            "spans": self.spans,
            "events": self.events,
            "samples": self.samples,
            "dropped": self.dropped,
        }
