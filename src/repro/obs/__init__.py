"""Observability layer: simulation-native tracing and telemetry.

Spans, structured events and periodic time-series samples — each stamped
with both the simulated clock and the wall clock — recorded from every
subsystem of the simulated parameter-server cluster. Off by default
(``ExperimentConfig.telemetry=None``); see :mod:`repro.obs.tracer` for the
bit-identity contract and :mod:`repro.obs.export` for the output formats.
"""

from repro.obs.export import (
    load_jsonl,
    summarize,
    to_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.sampler import TelemetrySampler, make_sampler
from repro.obs.tracer import SCHEMA_VERSION, TelemetryConfig, Tracer

__all__ = [
    "SCHEMA_VERSION",
    "TelemetryConfig",
    "TelemetrySampler",
    "Tracer",
    "load_jsonl",
    "make_sampler",
    "summarize",
    "to_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
]
