"""Access-skew analysis (reproduces Figure 3 and the Section 2.1 statistics).

The paper plots the number of accesses per parameter over one epoch, sorted
by decreasing total access count, separately for direct and sampling access.
These functions compute those curves from a task's dataset statistics.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.data.zipf import empirical_skew_summary, frequency_histogram
from repro.ml.task import TrainingTask


def access_frequency_curve(counts: np.ndarray) -> np.ndarray:
    """Access counts sorted in decreasing order (the Figure 3 y-series).

    Thin alias of :func:`repro.data.zipf.frequency_histogram`, the one
    frequency-histogram helper shared with the online access statistics.
    """
    return frequency_histogram(counts)


def task_access_profile(task: TrainingTask) -> Dict[str, np.ndarray]:
    """Direct, sampling and total per-key access counts for one epoch."""
    direct = np.asarray(task.access_counts(), dtype=np.float64)
    sampling = np.asarray(task.sampling_access_counts(), dtype=np.float64)
    return {
        "direct": direct,
        "sampling": sampling,
        "total": direct + sampling,
    }


def skew_report(task: TrainingTask, top_fraction: float = 0.001) -> Dict[str, float]:
    """Summary statistics in the style of Section 2.1.

    Reports the share of accesses that go to the ``top_fraction`` hottest
    keys, plus the split between direct and sampling accesses (Table 2's
    rightmost columns).
    """
    profile = task_access_profile(task)
    total = profile["total"]
    summary = empirical_skew_summary(total, top_fraction=top_fraction)
    direct_total = float(profile["direct"].sum())
    sampling_total = float(profile["sampling"].sum())
    overall = direct_total + sampling_total
    return {
        "num_keys": float(len(total)),
        "top_fraction": summary["top_fraction"],
        "top_share": summary["top_share"],
        "direct_share": direct_total / overall if overall else 0.0,
        "sampling_share": sampling_total / overall if overall else 0.0,
        "total_accesses": overall,
    }
