"""Analysis utilities: access skew (Figure 3) and speedups (Figures 8/9)."""

from repro.analysis.skew import access_frequency_curve, skew_report, task_access_profile
from repro.analysis.speedup import (
    effective_speedup,
    effective_speedup_from_results,
    raw_speedup,
    scaling_table,
)

__all__ = [
    "access_frequency_curve",
    "skew_report",
    "task_access_profile",
    "raw_speedup",
    "effective_speedup",
    "effective_speedup_from_results",
    "scaling_table",
]
