"""Speedup computations (Figures 8 and 9, and the speedup callouts of Fig. 6).

The paper reports two speedups relative to the shared-memory single node:

* **raw speedup** — ratio of epoch run times, ignoring model quality;
* **effective speedup** — ratio of the times needed to reach 90% of the best
  model quality the single node achieved within the budget.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.runner.experiment import ExperimentResult


#: Fraction of the best single-node quality that defines the effective-speedup
#: threshold (Section 5.1).
EFFECTIVE_QUALITY_FRACTION = 0.9


def raw_speedup(baseline_epoch_time: float, variant_epoch_time: float) -> float:
    """Ratio of epoch run times (>1 means the variant is faster)."""
    if baseline_epoch_time <= 0 or variant_epoch_time <= 0:
        raise ValueError("epoch times must be positive")
    return baseline_epoch_time / variant_epoch_time


def effective_quality_threshold(single_node: ExperimentResult,
                                fraction: float = EFFECTIVE_QUALITY_FRACTION) -> float:
    """The quality threshold: ``fraction`` of the single node's best quality.

    For lower-is-better metrics (RMSE) the threshold is the value whose
    *improvement* over the initial quality covers ``fraction`` of the single
    node's total improvement.
    """
    best = single_node.best_quality()
    if single_node.higher_is_better:
        return fraction * best
    initial = float(single_node.initial_quality[single_node.quality_metric])
    return initial - fraction * (initial - best)


def effective_speedup(single_node: ExperimentResult, variant: ExperimentResult,
                      fraction: float = EFFECTIVE_QUALITY_FRACTION) -> Optional[float]:
    """Effective speedup of ``variant`` over the single node (None if not reached)."""
    threshold = effective_quality_threshold(single_node, fraction)
    single_time = single_node.time_to_quality(threshold)
    variant_time = variant.time_to_quality(threshold)
    if single_time is None or variant_time is None or variant_time <= 0:
        return None
    return single_time / variant_time


def effective_speedup_from_results(results: Sequence[ExperimentResult],
                                   single_node_system: str = "single-node",
                                   fraction: float = EFFECTIVE_QUALITY_FRACTION
                                   ) -> Dict[str, Optional[float]]:
    """Effective speedups of every result against the single-node result."""
    single = _find_single(results, single_node_system)
    return {
        result.system: effective_speedup(single, result, fraction)
        for result in results
        if result is not single
    }


def raw_speedup_from_results(results: Sequence[ExperimentResult],
                             single_node_system: str = "single-node"
                             ) -> Dict[str, float]:
    """Raw (epoch-time) speedups of every result against the single node."""
    single = _find_single(results, single_node_system)
    baseline = single.mean_epoch_time()
    return {
        result.system: raw_speedup(baseline, result.mean_epoch_time())
        for result in results
        if result is not single
    }


def scaling_table(results_by_nodes: Dict[int, ExperimentResult],
                  baseline: ExperimentResult) -> List[List[object]]:
    """Rows of (nodes, epoch time, raw speedup) for a scalability figure."""
    rows: List[List[object]] = []
    baseline_time = baseline.mean_epoch_time()
    for nodes in sorted(results_by_nodes):
        result = results_by_nodes[nodes]
        rows.append([
            nodes,
            result.mean_epoch_time(),
            raw_speedup(baseline_time, result.mean_epoch_time()),
        ])
    return rows


def _find_single(results: Iterable[ExperimentResult], system: str) -> ExperimentResult:
    for result in results:
        if result.system == system:
            return result
    raise ValueError(f"no result with system name {system!r} found")
