"""repro: reproduction of NuPS (SIGMOD 2022).

NuPS is a parameter server for machine learning tasks with non-uniform
parameter access. This package reproduces the system and its evaluation on a
simulated cluster:

* :mod:`repro.core` — NuPS itself: multi-technique parameter management
  (replication for hot spots, relocation for the long tail) and integrated
  sampling with conformity levels.
* :mod:`repro.ps` — the parameter-server substrate and the baselines the
  paper compares against (classic, SSP/ESSP replication, Lapse-style
  relocation, single node).
* :mod:`repro.simulation` — the simulated cluster (clocks, network cost
  model, metrics).
* :mod:`repro.ml` — the evaluation workloads: knowledge-graph embeddings,
  word vectors, matrix factorization.
* :mod:`repro.data` — synthetic skewed dataset generators.
* :mod:`repro.runner` — the experiment harness used by examples and
  benchmarks.
* :mod:`repro.scenarios` — dynamic-workload scenarios: time-varying
  perturbations (hot-set drift, stragglers, worker churn, degrading
  networks) composed onto any experiment.
* :mod:`repro.analysis` — skew and speedup analysis utilities.
"""

from repro.core import (
    ConformityLevel,
    ManagementPlan,
    NuPS,
    SamplingConfig,
    SchemeConfig,
)
from repro.ps import (
    ClassicPS,
    ParameterServer,
    ParameterStore,
    RelocationPS,
    ReplicationPS,
    ReplicationProtocol,
    SingleNodePS,
)
from repro.scenarios import Scenario, make_scenario
from repro.simulation import Cluster, ClusterConfig, NetworkModel

__version__ = "0.1.0"

__all__ = [
    "NuPS",
    "ManagementPlan",
    "ConformityLevel",
    "SamplingConfig",
    "SchemeConfig",
    "ParameterServer",
    "ParameterStore",
    "ClassicPS",
    "ReplicationPS",
    "ReplicationProtocol",
    "RelocationPS",
    "SingleNodePS",
    "Cluster",
    "ClusterConfig",
    "NetworkModel",
    "Scenario",
    "make_scenario",
    "__version__",
]
