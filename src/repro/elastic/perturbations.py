"""Elasticity perturbations for the scenario engine.

* :class:`ScaleOut` — join fresh nodes mid-run; the elasticity controller
  rebalances a share of the key space onto each (state transfer charged).
* :class:`ScaleIn` — drain and remove seeded victim nodes (planned removal:
  zero lost updates; the victims' workers pause and their shards
  redistribute).
* :class:`AutoscaleStorm` — alternate scale-out and scale-in on a fixed
  round cadence: the sustained-churn stress test.
* :class:`NetworkPartition` — split the cluster into a majority and a
  minority reachability group for a round window; the minority degrades to
  bounded-staleness reads and buffered writes, the majority defers accesses
  to minority-owned keys, and the heal replays and reconciles.

All schedules derive from the experiment seed with salts disjoint from the
standard and fault perturbations, so elastic runs are exactly reproducible.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.scenarios.base import Perturbation, ScenarioRuntime

__all__ = ["AutoscaleStorm", "NetworkPartition", "ScaleIn", "ScaleOut"]


def _elastic_rng(ctx: ScenarioRuntime, salt: int) -> np.random.Generator:
    """A per-run generator derived from the experiment seed and ``salt``."""
    return np.random.default_rng((ctx.config.seed + 1) * 99_991 + salt)


class ScaleOut(Perturbation):
    """Join ``count`` fresh nodes at one scheduled round.

    The new nodes contribute server/storage capacity immediately (after the
    migration transfer); the training worker pool stays fixed at its launch
    size — see :meth:`ScenarioRuntime.worker_keys`.
    """

    def __init__(self, count: int = 1, at_epoch: int = 0, at_round: int = 1,
                 elastic_config=None) -> None:
        if count < 1:
            raise ValueError("count must be >= 1")
        if at_epoch < 0 or at_round < 0:
            raise ValueError("at_epoch/at_round must be non-negative")
        self.count = int(count)
        self.at_epoch = int(at_epoch)
        self.at_round = int(at_round)
        self.elastic_config = elastic_config
        self._fired = False

    def on_start(self, ctx: ScenarioRuntime) -> None:
        self._fired = False
        ctx.ensure_elasticity_controller(self.elastic_config)

    def on_round(self, ctx: ScenarioRuntime) -> None:
        if self._fired or ctx.epoch != self.at_epoch \
                or ctx.round != self.at_round:
            return
        self._fired = True
        for _ in range(self.count):
            ctx.scale_out()


class ScaleIn(Perturbation):
    """Drain and remove ``count`` seeded victim nodes at one scheduled round.

    Node 0 is never a victim (it anchors recovery donors and the worker
    pool); at least two nodes must stay active. A planned removal drains the
    victim's buffered state before re-homing its keys, so — unlike a crash —
    no acknowledged update is lost.
    """

    def __init__(self, count: int = 1, at_epoch: int = 0, at_round: int = 1,
                 elastic_config=None, seed: int = 0) -> None:
        if count < 1:
            raise ValueError("count must be >= 1")
        if at_epoch < 0 or at_round < 0:
            raise ValueError("at_epoch/at_round must be non-negative")
        self.count = int(count)
        self.at_epoch = int(at_epoch)
        self.at_round = int(at_round)
        self.elastic_config = elastic_config
        self.seed = int(seed)
        self._rng: Optional[np.random.Generator] = None
        self._fired = False

    def on_start(self, ctx: ScenarioRuntime) -> None:
        self._rng = _elastic_rng(ctx, 47 + self.seed)
        self._fired = False
        ctx.ensure_elasticity_controller(self.elastic_config)

    def on_round(self, ctx: ScenarioRuntime) -> None:
        if self._fired or ctx.epoch != self.at_epoch \
                or ctx.round != self.at_round:
            return
        self._fired = True
        for _ in range(self.count):
            eligible = [n for n in ctx.cluster.active_nodes if n != 0]
            if len(eligible) < 2:
                return  # keep at least two active nodes
            victim = int(eligible[int(self._rng.integers(len(eligible)))])
            ctx.scale_in(victim)


class AutoscaleStorm(Perturbation):
    """Sustained membership churn: alternate joins and planned removals.

    Every ``period_rounds`` rounds the cluster either gains a node or loses
    one (alternating, starting with a join). Removals prefer the
    storm-added nodes (oldest first) so the launch-time worker pool survives
    arbitrarily long storms; when none is active, a seeded original node
    (never node 0) is drained instead.
    """

    def __init__(self, period_rounds: int = 2, max_changes: Optional[int] = None,
                 elastic_config=None, seed: int = 0) -> None:
        if period_rounds < 1:
            raise ValueError("period_rounds must be >= 1")
        if max_changes is not None and max_changes < 1:
            raise ValueError("max_changes must be >= 1 (or None)")
        self.period_rounds = int(period_rounds)
        self.max_changes = max_changes
        self.elastic_config = elastic_config
        self.seed = int(seed)
        self._rng: Optional[np.random.Generator] = None
        self._added: List[int] = []
        self._changes = 0
        self._grow_next = True

    def on_start(self, ctx: ScenarioRuntime) -> None:
        self._rng = _elastic_rng(ctx, 59 + self.seed)
        self._added = []
        self._changes = 0
        self._grow_next = True
        ctx.ensure_elasticity_controller(self.elastic_config)

    def on_round(self, ctx: ScenarioRuntime) -> None:
        if self.max_changes is not None and self._changes >= self.max_changes:
            return
        if ctx.round < 1 or ctx.round % self.period_rounds != 0:
            return
        if self._grow_next:
            self._added.append(ctx.scale_out())
            self._changes += 1
        else:
            victim = self._pick_victim(ctx)
            if victim is not None:
                ctx.scale_in(victim)
                self._changes += 1
        self._grow_next = not self._grow_next

    def _pick_victim(self, ctx: ScenarioRuntime) -> Optional[int]:
        active = set(ctx.cluster.active_nodes)
        for node_id in self._added:
            if node_id in active:
                self._added.remove(node_id)
                return node_id
        eligible = [n for n in sorted(active) if n != 0]
        if len(eligible) < 2:
            return None  # keep at least two active nodes
        return int(eligible[int(self._rng.integers(len(eligible)))])


class NetworkPartition(Perturbation):
    """Split the cluster for a round window; heal with reconciliation.

    At ``(at_epoch, at_round)`` a seeded minority of ``minority_size`` nodes
    (never node 0 — it anchors the quorum side) loses contact with the rest.
    The majority keeps training; the minority degrades gracefully (see
    :class:`~repro.elastic.partition_state.PartitionState`). The partition
    heals ``heal_after_rounds`` rounds later — or at the epoch boundary,
    whichever comes first — replaying buffered minority writes and counting
    divergent keys.
    """

    needs_partition_guard = True

    def __init__(self, minority_size: int = 1, at_epoch: int = 0,
                 at_round: int = 1, heal_after_rounds: int = 3,
                 seed: int = 0) -> None:
        if minority_size < 1:
            raise ValueError("minority_size must be >= 1")
        if at_epoch < 0 or at_round < 0:
            raise ValueError("at_epoch/at_round must be non-negative")
        if heal_after_rounds < 1:
            raise ValueError("heal_after_rounds must be >= 1")
        self.minority_size = int(minority_size)
        self.at_epoch = int(at_epoch)
        self.at_round = int(at_round)
        self.heal_after_rounds = int(heal_after_rounds)
        self.seed = int(seed)
        self._rng: Optional[np.random.Generator] = None
        self._fired = False
        self._heal_at: Optional[int] = None

    def on_start(self, ctx: ScenarioRuntime) -> None:
        self._rng = _elastic_rng(ctx, 53 + self.seed)
        self._fired = False
        self._heal_at = None

    def on_round(self, ctx: ScenarioRuntime) -> None:
        if self._heal_at is not None and ctx.round >= self._heal_at:
            self._heal_at = None
            ctx.heal_partition()
            return
        if self._fired or ctx.epoch != self.at_epoch \
                or ctx.round != self.at_round:
            return
        self._fired = True
        eligible = [n for n in ctx.cluster.active_nodes if n != 0]
        size = min(self.minority_size, (len(eligible) + 1) // 2)
        if size < 1 or size > len(eligible):
            return
        chosen = self._rng.choice(len(eligible), size=size, replace=False)
        minority = [eligible[int(i)] for i in sorted(chosen.tolist())]
        # The minority must stay the smaller side of the *active* set.
        if len(ctx.cluster.active_nodes) - len(minority) < len(minority):
            return
        ctx.begin_partition(minority)
        self._heal_at = ctx.round + self.heal_after_rounds

    def on_epoch_end(self, ctx: ScenarioRuntime) -> None:
        # Never carry a live partition across an epoch boundary: the epoch
        # flush needs the whole cluster.
        self._heal_at = None
        ctx.heal_partition()
