"""Split-brain state of an active network partition.

While a :class:`~repro.elastic.perturbations.NetworkPartition` is active, the
cluster is split into a majority side (which keeps quorum and trains
normally) and a minority side that cannot reach it. The
:class:`PartitionState` models the minority's graceful degradation — the
consistent-query-answering stance of serving the best certain answer instead
of failing:

* **Bounded-staleness reads.** Minority pulls are served from a snapshot of
  the global store taken at partition start, merged with the minority's own
  buffered writes — the freshest state certainly reachable on that side.
* **Buffered writes.** Minority pushes accumulate in a side-local delta
  buffer instead of being dropped; at heal they are replayed into the global
  store. Parameter updates are additive deltas, so replay commutes with the
  majority's concurrent writes and reconciliation is a merge, not a rollback.
* **Version vectors.** Each key carries a two-entry vector counting majority
  and minority writes during the partition. A key with both entries positive
  diverged (split-brain writes); the heal reports the count so benchmarks can
  quantify divergence, and the additive merge resolves it.

The majority side never reads minority state: accesses addressing keys owned
by an unreachable node raise
:class:`~repro.faults.errors.PartitionedOwnerError`, which the epoch loop
turns into deferred (re-queued) chunks — admission control, not data loss.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

__all__ = ["PartitionState"]

#: Version-vector columns.
MAJORITY, MINORITY = 0, 1


class PartitionState:
    """Reachability groups, degraded-read state, and reconciliation buffers."""

    def __init__(self, ps, minority: Iterable[int], now: float) -> None:
        self.ps = ps
        self.cluster = ps.cluster
        self.metrics = ps.cluster.metrics
        self.minority = frozenset(int(n) for n in minority)
        if not self.minority:
            raise ValueError("a partition needs at least one minority node")
        active = self.cluster.active_nodes
        self.majority = [n for n in active if n not in self.minority]
        if len(self.majority) < len(self.minority):
            raise ValueError(
                f"minority side {sorted(self.minority)} is not a minority of "
                f"the active nodes {active}; the quorum side must be larger"
            )
        if not self.majority:
            raise ValueError("the majority side cannot be empty")
        self.started_at = float(now)
        store = ps.store
        self.num_keys = store.num_keys
        self.value_length = store.value_length
        #: Snapshot of the global store at partition start: the freshest
        #: state the minority side can certainly serve.
        self.snapshot = store.get(
            np.arange(self.num_keys, dtype=np.int64)
        ).astype(np.float32, copy=True)
        #: Minority-side write buffer (deltas since partition start).
        self.buffer = np.zeros((self.num_keys, self.value_length),
                               dtype=np.float32)
        self.buffer_mask = np.zeros(self.num_keys, dtype=bool)
        #: Per-key version vector: writes per side during the partition.
        self.versions = np.zeros((self.num_keys, 2), dtype=np.int64)
        self.stale_reads = 0
        self.buffered_writes = 0

    # ------------------------------------------------------------ reachability
    def is_minority(self, node_id: int) -> bool:
        return node_id in self.minority

    def unreachable_owners(self, node_id: int, owners: np.ndarray) -> np.ndarray:
        """Mask over ``owners`` of shards the caller's side cannot reach."""
        if node_id in self.minority:
            reachable = self.minority
        else:
            reachable = set(self.majority)
        return np.fromiter(
            (int(owner) not in reachable for owner in owners),
            dtype=bool, count=len(owners),
        )

    # -------------------------------------------------------- degraded access
    def degraded_pull(self, worker, keys: np.ndarray) -> np.ndarray:
        """Serve a minority pull from the snapshot plus the side's own writes.

        Charged like local reads: the snapshot lives on the minority side
        (surviving replicas), so no partition-crossing message is needed.
        """
        keys = np.asarray(keys, dtype=np.int64)
        values = self.snapshot[keys] + self.buffer[keys]
        worker.clock.advance(
            len(keys) * self.cluster.network.local_access_cost
        )
        self.stale_reads += len(keys)
        self.metrics.increment("elastic.stale_reads", len(keys),
                               node=worker.node_id)
        self.metrics.record_access("pull.stale", worker.node_id, len(keys))
        return values

    def degraded_push(self, worker, keys: np.ndarray,
                      deltas: np.ndarray) -> None:
        """Buffer a minority push for replay at heal (never dropped)."""
        keys = np.asarray(keys, dtype=np.int64)
        deltas = np.asarray(deltas, dtype=np.float32)
        np.add.at(self.buffer, keys, deltas)
        self.buffer_mask[keys] = True
        np.add.at(self.versions[:, MINORITY], keys, 1)
        worker.clock.advance(
            len(keys) * self.cluster.network.local_access_cost
        )
        self.buffered_writes += len(keys)
        self.metrics.increment("elastic.buffered_writes", len(keys),
                               node=worker.node_id)
        self.metrics.record_access("push.buffered", worker.node_id, len(keys))

    def record_majority_writes(self, keys: np.ndarray) -> None:
        """Bump the majority column for writes that went through normally."""
        np.add.at(self.versions[:, MAJORITY],
                  np.asarray(keys, dtype=np.int64), 1)

    # ------------------------------------------------------------------- heal
    def heal(self, now: float) -> dict:
        """Merge the minority's buffered writes back into the global store.

        Divergent keys (written on both sides while split) are detected from
        the version vectors and reported; the additive replay is the
        reconciliation — deltas commute, so no update from either side is
        lost. The replay payload is charged to the minority nodes'
        background clocks (they re-send their buffered deltas) and to the
        network counters.
        """
        replayed = np.flatnonzero(self.buffer_mask)
        if len(replayed):
            self.ps.store.add(replayed, self.buffer[replayed])
            payload = len(replayed) * self.ps.store.value_bytes()
            network = self.cluster.network
            transfer = network.transfer_cost(payload)
            share = transfer / len(self.minority)
            for node_id in sorted(self.minority):
                background = self.cluster.node(node_id).background_clock
                background.advance_to(max(float(now), background.now) + share)
            self.metrics.increment("network.messages", len(self.minority))
            self.metrics.increment("network.bytes", payload)
            # Replicas of replayed keys now lag the store by the replayed
            # deltas; flush outstanding replica buffers, then refresh so
            # post-heal reads see the merged values. The flush must come
            # first: refresh_all discards buffered updates by contract.
            manager = getattr(self.ps, "replica_manager", None)
            if manager is not None:
                manager.force_sync(float(now))
                manager.refresh_all()
        divergent = int(np.count_nonzero(
            (self.versions[:, MAJORITY] > 0) & (self.versions[:, MINORITY] > 0)
        ))
        duration = float(now) - self.started_at
        self.metrics.increment("elastic.replayed_writes", len(replayed))
        self.metrics.increment("elastic.divergent_keys", divergent)
        self.metrics.increment("elastic.partition_heals", 1)
        self.metrics.increment("elastic.partition_time", duration)
        return {
            "replayed_keys": int(len(replayed)),
            "divergent_keys": divergent,
            "duration": duration,
            "stale_reads": self.stale_reads,
            "buffered_writes": self.buffered_writes,
        }
