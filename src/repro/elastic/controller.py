"""Planned membership transitions: scale-out and scale-in with state migration.

The :class:`ElasticityController` is the planned-transition counterpart of the
fault controller (:mod:`repro.faults.controller`): where a crash loses every
update buffered on the victim, a planned transition *drains* first — buffered
state is flushed to the global store while the node is still reachable — and
only then re-homes ownership, so a scale-in loses exactly zero acknowledged
updates. The migration itself is not free: the re-homed keys' values travel
over the network model, charged to the participating nodes' background
clocks and to the ``network.*`` counters, and the moved keys become usable on
their new owners only after the transfer (``available_at``).

Like the fault controller, the elasticity controller is standalone — it needs
only a parameter server (and its cluster), no scenario runtime — so invariant
tests can drive membership sequences directly against any architecture.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

__all__ = ["ElasticConfig", "ElasticityController"]


@dataclass
class ElasticConfig:
    """Tunables of planned membership transitions.

    Parameters
    ----------
    join_delay:
        Coordination overhead of one membership change (join handshake or
        leave announcement): the epoch bump, partitioner rebuild, and route
        refresh take this long before any state moves.
    """

    join_delay: float = 0.002

    def __post_init__(self) -> None:
        if self.join_delay < 0:
            raise ValueError("join_delay must be non-negative")


class ElasticityController:
    """Coordinates planned scale-out/scale-in for one parameter server."""

    def __init__(self, ps, config: Optional[ElasticConfig] = None) -> None:
        self.ps = ps
        self.cluster = ps.cluster
        self.config = config or ElasticConfig()
        self.scale_outs = 0
        self.scale_ins = 0
        self.keys_migrated = 0
        self.updates_drained = 0

    @property
    def metrics(self):
        return self.cluster.metrics

    # -------------------------------------------------------------- scale-out
    def scale_out(self, now: float) -> int:
        """Join a fresh node at simulated time ``now``; return its node id.

        The cluster allocates the node (bumping the membership epoch), the
        parameter server cedes a proportional share of its key space to it
        (:meth:`~repro.ps.base.ParameterServer.on_node_added`), and the ceded
        keys' values are shipped to the new node: the transfer occupies the
        donors' background threads (split evenly) and the new node's
        background thread (it receives everything), and the keys become
        usable on the new node at ``available_at``.
        """
        now = float(now)
        node_id = self.cluster.add_node(now=now)
        network = self.cluster.network
        donors = [n for n in self.cluster.active_nodes if n != node_id]
        # Cost shape mirrors crash recovery: announcement + state transfer.
        # The transfer size is known only after the rebalance, so compute the
        # availability time from the prospective move with the same formula.
        moved = self.ps.on_node_added(
            node_id,
            available_at=now + self.config.join_delay + network.message_cost(0),
        )
        payload = len(moved) * self.ps.store.value_bytes()
        transfer = network.transfer_cost(payload)
        available_at = (
            now + self.config.join_delay + network.message_cost(0) + transfer
        )
        if len(moved) and hasattr(self.ps, "arrival_time"):
            # Relocation-style servers gate access on arrival; stretch the
            # provisional arrival to cover the actual transfer size.
            self.ps.arrival_time[moved] = available_at
        self._charge_migration(now, payload, donors, receiver=node_id)

        self.scale_outs += 1
        self.keys_migrated += int(len(moved))
        self.metrics.increment("elastic.scale_outs", 1)
        self.metrics.increment("elastic.migrated_keys", len(moved))
        self.metrics.increment("elastic.migration_time", available_at - now)
        tracer = getattr(self.cluster, "tracer", None)
        if tracer is not None:
            tracer.complete_span(
                "scale_out", "elastic", now, available_at, node=node_id,
                migrated_keys=int(len(moved)), payload_bytes=int(payload),
                membership_epoch=self.cluster.membership_epoch,
            )
        return node_id

    # --------------------------------------------------------------- scale-in
    def scale_in(self, node_id: int, now: float) -> Dict[str, float]:
        """Drain and remove ``node_id`` at ``now``; return a transition summary.

        Order matters: the drain (flushing the node's buffered updates into
        the global store) happens while the node still owns its keys, then
        the cluster drops it from membership, and finally ownership is
        re-homed onto the survivors with the state travelling along. Because
        nothing reachable is discarded, a planned scale-in loses zero
        acknowledged updates — the headline contrast with crash recovery,
        which loses whatever the checkpoint missed.
        """
        now = float(now)
        drained = int(self.ps.drain_node(node_id, now))
        self.cluster.remove_node(node_id)
        successors = self.cluster.active_nodes
        network = self.cluster.network
        moved = self.ps.migrate_out(
            node_id, successors,
            available_at=now + self.config.join_delay + network.message_cost(0),
        )
        payload = len(moved) * self.ps.store.value_bytes()
        transfer = network.transfer_cost(payload)
        available_at = (
            now + self.config.join_delay + network.message_cost(0) + transfer
        )
        if len(moved) and hasattr(self.ps, "arrival_time"):
            self.ps.arrival_time[moved] = available_at
        self._charge_migration(now, payload, successors, receiver=node_id)

        self.scale_ins += 1
        self.keys_migrated += int(len(moved))
        self.updates_drained += drained
        self.metrics.increment("elastic.scale_ins", 1)
        self.metrics.increment("elastic.migrated_keys", len(moved))
        self.metrics.increment("elastic.migration_time", available_at - now)
        self.metrics.increment("elastic.drained_updates", drained)
        # Recorded explicitly (as zero) so the claim "planned scale-in loses
        # no acknowledged updates" reads from the same metric family as the
        # crash path's faults.lost_updates.
        self.metrics.increment("elastic.lost_updates", 0)
        tracer = getattr(self.cluster, "tracer", None)
        if tracer is not None:
            tracer.complete_span(
                "scale_in", "elastic", now, available_at, node=node_id,
                migrated_keys=int(len(moved)), drained_updates=drained,
                payload_bytes=int(payload),
                membership_epoch=self.cluster.membership_epoch,
            )
        return {
            "node_id": int(node_id),
            "moved_keys": int(len(moved)),
            "drained_updates": drained,
            "lost_updates": 0,
            "available_at": available_at,
        }

    # ------------------------------------------------------------- internals
    def _charge_migration(self, now: float, payload_bytes: float, peers,
                          receiver: int) -> None:
        """Charge one migration: peers split the transfer, the hub takes it all.

        For a scale-out the hub is the new node (it receives everything, the
        donors split the send); for a scale-in it is the *leaving* node (it
        sends everything, the survivors split the receive) — the occupancy
        pattern is symmetric either way.
        """
        if not payload_bytes:
            return
        network = self.cluster.network
        transfer = network.transfer_cost(payload_bytes)
        peers = [n for n in peers if n != receiver]
        if peers:
            share = transfer / len(peers)
            for peer in peers:
                background = self.cluster.node(peer).background_clock
                background.advance_to(max(now, background.now) + share)
        background = self.cluster.node(receiver).background_clock
        background.advance_to(max(now, background.now) + transfer)
        self.metrics.increment("network.messages", 1 + len(peers))
        self.metrics.increment("network.bytes", payload_bytes)

    # ------------------------------------------------------------- inspection
    def describe(self) -> dict:
        return {
            "join_delay": self.config.join_delay,
            "scale_outs": self.scale_outs,
            "scale_ins": self.scale_ins,
            "keys_migrated": self.keys_migrated,
            "updates_drained": self.updates_drained,
            "membership_epoch": self.cluster.membership_epoch,
        }
