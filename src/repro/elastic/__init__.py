"""Elastic membership and partition tolerance.

This package turns the fixed-size simulated cluster into an elastic one:

* :mod:`repro.elastic.controller` — the :class:`ElasticityController`
  orchestrates planned scale-out/scale-in transitions: membership epochs,
  state drains, key migration, and the network/background-clock charges the
  transfer incurs.
* :mod:`repro.elastic.partition_state` — :class:`PartitionState` models an
  active network partition: bounded-staleness minority reads, buffered
  minority writes replayed at heal, and per-key version vectors that detect
  split-brain write divergence.
* :mod:`repro.elastic.perturbations` — scenario perturbations
  (:class:`ScaleOut`, :class:`ScaleIn`, :class:`AutoscaleStorm`,
  :class:`NetworkPartition`) driving both through the scenario engine.

Elasticity-off runs are bit-identical to a build without this package: the
cluster's ``removed`` set stays empty, no partitioner is wrapped, and no
proxy is installed unless a perturbation asks for one.
"""

from repro.elastic.controller import ElasticConfig, ElasticityController
from repro.elastic.partition_state import PartitionState
from repro.elastic.perturbations import (
    AutoscaleStorm,
    NetworkPartition,
    ScaleIn,
    ScaleOut,
)

__all__ = [
    "AutoscaleStorm",
    "ElasticConfig",
    "ElasticityController",
    "NetworkPartition",
    "PartitionState",
    "ScaleIn",
    "ScaleOut",
]
