"""Plain-text reporting helpers used by examples and benchmarks.

The benchmarks print the same rows and series the paper's tables and figures
report; these helpers format them consistently.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.runner.experiment import EpochRecord, ExperimentResult


def localization_rate(record: EpochRecord) -> float:
    """Share of an epoch's parameter accesses served locally.

    Counts shared-memory and replica accesses (labels ending in ``.local``
    or ``.replica``) against the epoch's total, from the record's per-epoch
    metric deltas. The scenario benchmarks use this to trace how locality
    reacts to hot-set drift; NaN when the epoch recorded no accesses.
    """
    metrics = record.metrics
    local = sum(
        value for name, value in metrics.items()
        if name.startswith("access.")
        and (name.endswith(".local") or name.endswith(".replica"))
    )
    total = metrics.get("access.total", 0.0)
    return local / total if total else float("nan")


def format_value(value: object, precision: int = 4) -> str:
    """Human-friendly formatting for table cells."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 10 ** (-precision):
            return f"{value:.3g}"
        return f"{value:.{precision}g}"
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 precision: int = 4) -> str:
    """Render an aligned plain-text table."""
    rendered_rows = [[format_value(cell, precision) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    lines = [render_row(list(headers)), render_row(["-" * w for w in widths])]
    lines.extend(render_row(row) for row in rendered_rows)
    return "\n".join(lines)


def quality_over_time_table(results: Sequence[ExperimentResult],
                            metric: Optional[str] = None) -> str:
    """Quality-over-time series for several systems (Figure 6-style output)."""
    rows: List[List[object]] = []
    for result in results:
        metric_name = metric or result.quality_metric
        for record in result.records:
            rows.append([
                result.system,
                record.epoch,
                record.sim_time,
                record.epoch_duration,
                record.quality.get(metric_name, float("nan")),
            ])
    headers = ["system", "epoch", "sim_time_s", "epoch_time_s", metric or "quality"]
    return format_table(headers, rows)


def summary_table(results: Sequence[ExperimentResult]) -> str:
    """One-line-per-system summary: epochs, mean epoch time, final quality."""
    rows = []
    for result in results:
        rows.append([
            result.system,
            result.num_nodes,
            result.epochs_completed,
            result.mean_epoch_time(),
            result.final_quality(),
        ])
    headers = ["system", "nodes", "epochs", "mean_epoch_time_s", "final_quality"]
    return format_table(headers, rows)
