"""Experiment harness: wires tasks, parameter servers and the simulated cluster.

Used by the examples and by every benchmark in ``benchmarks/``.
"""

from repro.runner.config import ExperimentConfig
from repro.runner.experiment import EpochRecord, ExperimentResult, run_experiment
from repro.runner.systems import SYSTEM_NAMES, build_parameter_server, make_ps_factory
from repro.runner.reporting import format_table, quality_over_time_table, summary_table
from repro.runner.workloads import (
    NUPS_BENCH_OVERRIDES,
    kge_task,
    make_task,
    matrix_factorization_task,
    word_vectors_task,
)

__all__ = [
    "ExperimentConfig",
    "EpochRecord",
    "ExperimentResult",
    "run_experiment",
    "SYSTEM_NAMES",
    "build_parameter_server",
    "make_ps_factory",
    "format_table",
    "quality_over_time_table",
    "summary_table",
    "NUPS_BENCH_OVERRIDES",
    "make_task",
    "kge_task",
    "word_vectors_task",
    "matrix_factorization_task",
]
