"""Experiment configuration (the knobs behind the paper's Section 5 setup).

:class:`ExperimentConfig` bundles everything one training experiment needs
beyond the task and the PS factory: the simulated cluster shape (the
paper's main setting is 8 nodes x 8 workers, Section 5.1), the epoch and
simulated-time budgets, the scheduling granularity, an optional
dynamic-workload scenario, and the round-fusion execution toggle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.ps.chunks import StorageConfig
from repro.simulation.cluster import ClusterConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.adaptive.controller import AdaptiveConfig
    from repro.obs import TelemetryConfig
    from repro.parallel import ParallelConfig
    from repro.scenarios.base import Scenario


@dataclass
class ExperimentConfig:
    """Configuration of one training experiment.

    Parameters
    ----------
    cluster:
        The simulated cluster (number of nodes, workers per node, network
        cost model). The paper's main setting is 8 nodes x 8 workers.
    epochs:
        Maximum number of epochs to train.
    time_budget:
        Optional budget in *simulated* seconds; training stops at the first
        epoch boundary after the budget is exhausted, mirroring the paper's
        fixed 6-hour budget.
    chunk_size:
        Number of data points a worker processes per scheduling round. The
        runner interleaves chunks across all workers round-robin, which is
        how the simulation approximates parallel execution.
    housekeeping_every_chunks:
        How often (in scheduling rounds) PS housekeeping runs — replica
        synchronization and sampling-pool maintenance.
    evaluate_every:
        Evaluate model quality every this many epochs.
    seed:
        Random seed for sharding, model initialization and training.
    scenario:
        Optional dynamic-workload scenario (see :mod:`repro.scenarios`): a
        composition of time-varying perturbations — hot-set drift,
        stragglers, worker churn, degrading networks — that the runner
        invokes at epoch and round boundaries. ``None`` (the default) runs
        the static experiment, bit-identical to a runner without scenario
        support.
    adaptive:
        Optional :class:`~repro.adaptive.controller.AdaptiveConfig` enabling
        online adaptive parameter management (see :mod:`repro.adaptive`):
        the runner attaches an adaptive controller to the experiment's
        parameter server, which observes access skew from the hot path and
        re-manages hot spots through ``remanage`` during training — no
        oracle signal required. Requires a re-management-capable system
        (NuPS). ``None`` (the default) collects no statistics and is
        bit-identical to a runner without adaptive support.
    round_fusion:
        Route each scheduling round through the task's
        :meth:`~repro.ml.task.TrainingTask.process_round` hook (default), so
        tasks and parameter servers with round-fused fast paths can batch the
        round's PS traffic across workers. ``False`` forces the sequential
        per-worker reference loop. Both settings produce bit-identical
        :class:`~repro.runner.experiment.ExperimentResult`\\ s — the fused
        engine routes conflicting accesses through the sequential path and
        fuses only what commutes exactly (see :mod:`repro.ps.rounds`).
        Scenario perturbations (drift, churn, stragglers, networks) compose
        with either setting.
    execution_backend:
        Explicit execution-backend selection: ``"sequential"`` (the
        per-worker reference loop), ``"fused"`` (in-process round fusion) or
        ``"parallel"`` (round fusion with the conflict-free remainder
        executed by shared-memory worker processes; see
        :mod:`repro.parallel`). ``None`` (the default) derives the backend
        from ``round_fusion``, keeping existing configs bit-for-bit
        unchanged. All three backends produce bit-identical results — the
        differential suite (``tests/test_parallel_backend.py``) enforces
        exact equality of clocks, metrics and parameter values. The parallel
        backend silently downgrades to ``"fused"`` where worker processes
        must not be spawned (inside the report pipeline's fork workers, or
        when ``REPRO_PARALLEL_DISABLE`` is set).
    parallel:
        Optional :class:`~repro.parallel.ParallelConfig` tuning the parallel
        backend (pool size, worker timeout, dispatch threshold). Only
        meaningful with ``execution_backend="parallel"``.
    storage:
        Optional :class:`~repro.ps.chunks.StorageConfig` selecting the
        parameter store's storage backend. ``None`` (the default) keeps
        whatever backend the task's store was created with (dense, for all
        built-in tasks). Passing ``StorageConfig(backend="sparse", ...)``
        converts the store to chunked sparse storage after task
        initialization — bit-identical training results, bounded resident
        memory (see :mod:`repro.ps.chunks`).
    telemetry:
        Optional :class:`~repro.obs.TelemetryConfig` enabling the
        observability layer (see :mod:`repro.obs`): a span/event tracer
        plus a periodic time-series sampler attached to the cluster, with
        the trace exposed on ``ExperimentResult.trace`` and optionally
        written as a JSONL log. ``None`` (the default) records nothing and
        is bit-identical to a runner without telemetry support; telemetry
        *on* is also bit-identical in simulated state (the tracer only
        reads clocks and counters) and costs bounded wall-clock overhead
        (``benchmarks/bench_obs.py``).
    """

    cluster: ClusterConfig = field(default_factory=ClusterConfig)
    epochs: int = 3
    time_budget: Optional[float] = None
    chunk_size: int = 16
    housekeeping_every_chunks: int = 1
    evaluate_every: int = 1
    seed: int = 0
    scenario: Optional["Scenario"] = None
    adaptive: Optional["AdaptiveConfig"] = None
    round_fusion: bool = True
    storage: Optional[StorageConfig] = None
    execution_backend: Optional[str] = None
    parallel: Optional["ParallelConfig"] = None
    telemetry: Optional["TelemetryConfig"] = None

    def __post_init__(self) -> None:
        if self.epochs < 1:
            raise ValueError(
                f"epochs must be >= 1 (got {self.epochs}); an experiment "
                "trains at least one epoch — use time_budget to stop early"
            )
        if self.chunk_size < 1:
            raise ValueError(
                f"chunk_size must be >= 1 (got {self.chunk_size}); it is the "
                "number of data points a worker processes per scheduling round"
            )
        if self.housekeeping_every_chunks < 1:
            raise ValueError(
                "housekeeping_every_chunks must be >= 1 "
                f"(got {self.housekeeping_every_chunks}); housekeeping runs "
                "every N scheduling rounds and cannot be disabled"
            )
        if self.evaluate_every < 1:
            raise ValueError(
                f"evaluate_every must be >= 1 (got {self.evaluate_every}); "
                "quality is evaluated every N epochs"
            )
        if self.time_budget is not None and self.time_budget <= 0:
            raise ValueError(
                f"time_budget must be positive when set (got "
                f"{self.time_budget}); it is a budget in simulated seconds, "
                "or None for no budget"
            )
        if isinstance(self.scenario, str):
            from repro.scenarios.presets import SCENARIO_NAMES

            raise TypeError(
                f"scenario must be a Scenario object, not the string "
                f"{self.scenario!r}; build it with "
                f"repro.scenarios.make_scenario({self.scenario!r}) — "
                f"known presets: {', '.join(SCENARIO_NAMES)}"
            )
        if self.scenario is not None and not hasattr(self.scenario, "bind"):
            raise TypeError(
                "scenario must be a repro.scenarios.Scenario (or expose a "
                f"compatible bind method), got {type(self.scenario).__name__}"
            )
        if isinstance(self.adaptive, str):
            raise TypeError(
                f"adaptive must be an AdaptiveConfig object, not the string "
                f"{self.adaptive!r}; build it with "
                f"repro.adaptive.AdaptiveConfig(policy={self.adaptive!r})"
            )
        if self.adaptive is not None and not hasattr(self.adaptive, "policy"):
            raise TypeError(
                "adaptive must be a repro.adaptive.AdaptiveConfig (or expose "
                f"a compatible policy attribute), got {type(self.adaptive).__name__}"
            )
        if isinstance(self.storage, str):
            raise TypeError(
                f"storage must be a StorageConfig object, not the string "
                f"{self.storage!r}; build it with "
                f"repro.ps.chunks.StorageConfig(backend={self.storage!r})"
            )
        if self.storage is not None and not isinstance(self.storage, StorageConfig):
            raise TypeError(
                "storage must be a repro.ps.chunks.StorageConfig, "
                f"got {type(self.storage).__name__}"
            )
        backends = ("sequential", "fused", "parallel")
        if self.execution_backend is not None \
                and self.execution_backend not in backends:
            raise ValueError(
                f"execution_backend must be one of {backends} or None "
                f"(got {self.execution_backend!r}); None derives the backend "
                "from round_fusion"
            )
        if not self.round_fusion and self.execution_backend in ("fused",
                                                                "parallel"):
            raise ValueError(
                f"execution_backend={self.execution_backend!r} contradicts "
                "round_fusion=False; drop one of the two settings "
                "(execution_backend alone fully determines the backend)"
            )
        if self.parallel is not None:
            from repro.parallel import ParallelConfig

            if not isinstance(self.parallel, ParallelConfig):
                raise TypeError(
                    "parallel must be a repro.parallel.ParallelConfig, "
                    f"got {type(self.parallel).__name__}"
                )
        if isinstance(self.telemetry, (str, bool)):
            raise TypeError(
                f"telemetry must be a TelemetryConfig object, not "
                f"{self.telemetry!r}; build it with "
                "repro.obs.TelemetryConfig(path=...) — or leave it None "
                "to disable telemetry"
            )
        if self.telemetry is not None:
            from repro.obs import TelemetryConfig

            if not isinstance(self.telemetry, TelemetryConfig):
                raise TypeError(
                    "telemetry must be a repro.obs.TelemetryConfig, "
                    f"got {type(self.telemetry).__name__}"
                )
