"""Factories for every parameter-server configuration the paper evaluates.

The benchmark harness refers to systems by name. Each name maps to a builder
``(store, cluster, task, **overrides) -> ParameterServer``:

==========================  ====================================================
Name                        Paper system
==========================  ====================================================
``single-node``             shared-memory single node baseline
``classic``                 classic PS (Lapse with relocation disabled / PS-Lite)
``ssp``                     Petuum SSP (bounded staleness, lazy replicas)
``essp``                    Petuum ESSP (bounded staleness, eager replicas)
``lapse``                   relocation PS (Lapse)
``nups``                    NuPS, untuned configuration (hot-spot heuristic,
                            sample reuse U=16)
``nups-tuned``              NuPS, tuned configuration (task-specific replication
                            extent, local sampling)
``relocation+replication``  ablation: multi-technique management, no sampling
                            integration
``relocation+sampling``     ablation: relocation only, with sampling integration
``nups-adaptive``           NuPS + online adaptive management (hot-spot
                            heuristic re-derived from observed access skew)
``nups-adaptive-tuned``     NuPS tuned + online adaptive management (top-k
                            extent re-targeted from observed access skew)
==========================  ====================================================
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.adaptive.controller import AdaptiveConfig, install_adaptive
from repro.core.management import DEFAULT_HOT_SPOT_FACTOR, ManagementPlan
from repro.core.nups import NuPS
from repro.core.replica_manager import DEFAULT_SYNC_INTERVAL
from repro.core.sampling.manager import SamplingConfig
from repro.core.sampling.schemes import SchemeConfig
from repro.ml.task import TrainingTask
from repro.ps.base import ParameterServer
from repro.ps.classic import ClassicPS
from repro.ps.local import SingleNodePS
from repro.ps.relocation import RelocationPS
from repro.ps.replication import ReplicationProtocol, ReplicationPS
from repro.ps.storage import ParameterStore
from repro.simulation.cluster import Cluster


#: Default Petuum staleness threshold used by the benchmarks. The paper found
#: ESSP with staleness 10 (clocking every ~10 data points) to perform best;
#: the scaled-down workloads here run far fewer clocks per epoch, so the
#: default staleness is scaled down accordingly to keep the replicas' staleness
#: a comparable fraction of an epoch.
DEFAULT_REPLICATION_STALENESS = 2

#: The tuned configuration replicates this many times more keys than the
#: untuned heuristic for the word vectors task (Section 5.1: 64x more keys).
TUNED_WV_REPLICATION_FACTOR = 64


def _untuned_plan(task: TrainingTask,
                  hot_spot_factor: float = DEFAULT_HOT_SPOT_FACTOR) -> ManagementPlan:
    return ManagementPlan.from_access_counts(task.access_counts(), hot_spot_factor)


def _tuned_plan(task: TrainingTask) -> ManagementPlan:
    """Tuned replication extent per task (Section 5.1).

    KGE and MF keep the untuned extent; WV replicates 64x more keys.
    """
    counts = task.access_counts()
    untuned = ManagementPlan.from_access_counts(counts, DEFAULT_HOT_SPOT_FACTOR)
    if task.name == "word_vectors":
        k = min(len(counts), untuned.num_replicated * TUNED_WV_REPLICATION_FACTOR)
        return ManagementPlan.top_k_by_count(counts, k)
    return untuned


def build_single_node(store: ParameterStore, cluster: Cluster,
                      task: TrainingTask, **overrides) -> ParameterServer:
    return SingleNodePS(store, cluster, seed=overrides.get("seed", 0))


def build_classic(store: ParameterStore, cluster: Cluster,
                  task: TrainingTask, **overrides) -> ParameterServer:
    return ClassicPS(store, cluster, seed=overrides.get("seed", 0))


def build_ssp(store: ParameterStore, cluster: Cluster,
              task: TrainingTask, **overrides) -> ParameterServer:
    return ReplicationPS(
        store, cluster,
        protocol=ReplicationProtocol.SSP,
        staleness=overrides.get("staleness", DEFAULT_REPLICATION_STALENESS),
        seed=overrides.get("seed", 0),
    )


def build_essp(store: ParameterStore, cluster: Cluster,
               task: TrainingTask, **overrides) -> ParameterServer:
    return ReplicationPS(
        store, cluster,
        protocol=ReplicationProtocol.ESSP,
        staleness=overrides.get("staleness", DEFAULT_REPLICATION_STALENESS),
        seed=overrides.get("seed", 0),
    )


def build_lapse(store: ParameterStore, cluster: Cluster,
                task: TrainingTask, **overrides) -> ParameterServer:
    return RelocationPS(store, cluster, seed=overrides.get("seed", 0))


def build_nups(store: ParameterStore, cluster: Cluster,
               task: TrainingTask, **overrides) -> ParameterServer:
    """NuPS untuned: hot-spot heuristic plus sample reuse (BOUNDED, U=16)."""
    plan = overrides.get("plan")
    if plan is None:
        plan = _untuned_plan(task, overrides.get("hot_spot_factor", DEFAULT_HOT_SPOT_FACTOR))
    sampling_config = overrides.get("sampling_config")
    if sampling_config is None:
        sampling_config = SamplingConfig(
            scheme_config=SchemeConfig(
                pool_size=overrides.get("pool_size", 250),
                use_frequency=overrides.get("use_frequency", 16),
            ),
            scheme_override=overrides.get("scheme_override"),
        )
    return NuPS(
        store, cluster,
        plan=plan,
        sampling_config=sampling_config,
        sync_interval=overrides.get("sync_interval", DEFAULT_SYNC_INTERVAL),
        integrate_sampling=overrides.get("integrate_sampling", True),
        seed=overrides.get("seed", 0),
    )


def build_nups_tuned(store: ParameterStore, cluster: Cluster,
                     task: TrainingTask, **overrides) -> ParameterServer:
    """NuPS tuned: task-specific replication extent plus local sampling."""
    overrides.setdefault("plan", _tuned_plan(task))
    overrides.setdefault("scheme_override", "local")
    return build_nups(store, cluster, task, **overrides)


def build_nups_adaptive(store: ParameterStore, cluster: Cluster,
                        task: TrainingTask, **overrides) -> ParameterServer:
    """NuPS + online adaptive management (no oracle re-management needed).

    Starts from the same dataset-statistics plan as ``nups`` and then lets
    an :class:`~repro.adaptive.controller.AdaptiveController` track observed
    access skew and re-manage hot spots during training. Pass an
    ``adaptive_config`` override to tune the controller.
    """
    adaptive_config = overrides.pop("adaptive_config", None) \
        or AdaptiveConfig(policy="hot-spot")
    ps = build_nups(store, cluster, task, **overrides)
    install_adaptive(ps, adaptive_config)
    return ps


def build_nups_adaptive_tuned(store: ParameterStore, cluster: Cluster,
                              task: TrainingTask, **overrides) -> ParameterServer:
    """NuPS tuned + online top-k re-targeting of the replication extent."""
    adaptive_config = overrides.pop("adaptive_config", None) \
        or AdaptiveConfig(policy="top-k")
    ps = build_nups_tuned(store, cluster, task, **overrides)
    install_adaptive(ps, adaptive_config)
    return ps


def build_relocation_replication(store: ParameterStore, cluster: Cluster,
                                 task: TrainingTask, **overrides) -> ParameterServer:
    """Ablation: multi-technique management without sampling integration."""
    overrides.setdefault("integrate_sampling", False)
    return build_nups(store, cluster, task, **overrides)


def build_relocation_sampling(store: ParameterStore, cluster: Cluster,
                              task: TrainingTask, **overrides) -> ParameterServer:
    """Ablation: relocation-only management with sampling integration."""
    overrides.setdefault("plan", ManagementPlan.relocate_all(store.num_keys))
    return build_nups(store, cluster, task, **overrides)


SYSTEM_BUILDERS: Dict[str, Callable[..., ParameterServer]] = {
    "single-node": build_single_node,
    "classic": build_classic,
    "ssp": build_ssp,
    "essp": build_essp,
    "lapse": build_lapse,
    "nups": build_nups,
    "nups-tuned": build_nups_tuned,
    "nups-adaptive": build_nups_adaptive,
    "nups-adaptive-tuned": build_nups_adaptive_tuned,
    "relocation+replication": build_relocation_replication,
    "relocation+sampling": build_relocation_sampling,
}

SYSTEM_NAMES = tuple(SYSTEM_BUILDERS)


def build_parameter_server(name: str, store: ParameterStore, cluster: Cluster,
                           task: TrainingTask, **overrides) -> ParameterServer:
    """Build the named system on the given store/cluster for the given task."""
    try:
        builder = SYSTEM_BUILDERS[name]
    except KeyError:
        valid = ", ".join(SYSTEM_NAMES)
        raise ValueError(f"unknown system {name!r}; expected one of: {valid}") from None
    return builder(store, cluster, task, **overrides)


def make_ps_factory(name: str, storage=None, **overrides) -> Callable:
    """A ``(store, cluster, task) -> ParameterServer`` factory for ``name``.

    This is the factory shape :func:`repro.runner.experiment.run_experiment`
    expects. ``storage`` optionally converts the store to another backend
    (e.g. ``StorageConfig(backend="sparse")``) before the PS is built —
    useful for harnesses that call factories directly; experiments driven by
    :class:`~repro.runner.config.ExperimentConfig` should prefer its
    ``storage`` field, which converts before the factory runs.
    """
    if name not in SYSTEM_BUILDERS:
        valid = ", ".join(SYSTEM_NAMES)
        raise ValueError(f"unknown system {name!r}; expected one of: {valid}")

    def factory(store: ParameterStore, cluster: Cluster, task: TrainingTask) -> ParameterServer:
        if storage is not None and store.storage != storage:
            store = store.with_storage(storage)
        return build_parameter_server(name, store, cluster, task, **overrides)

    return factory
