"""Standard workload presets shared by examples, tests and benchmarks.

The paper's workloads (Table 2) are billions of parameters trained for hours
on a cluster; the presets here are scaled-down synthetic equivalents that run
in seconds to minutes on one machine while preserving the properties the
parameter server reacts to: Zipf-skewed access, a sampling share comparable
to the paper's, and enough learnable structure that quality-over-time curves
are meaningful. Two sizes are provided:

* ``"test"`` — tiny datasets for the unit/integration test suite.
* ``"bench"`` — the sizes used by the benchmark harness in ``benchmarks/``.

The module also centralizes the NuPS settings that must be re-scaled together
with the workloads (replica synchronization interval, sample-reuse pool size),
so every benchmark uses the same, documented configuration.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict

import numpy as np

from repro.data.corpus import generate_corpus
from repro.data.knowledge_graph import generate_knowledge_graph
from repro.data.matrix import generate_matrix
from repro.ml.kge import KGETask
from repro.ml.matrix_factorization import MatrixFactorizationTask
from repro.ml.task import TrainingTask
from repro.ml.word2vec import WordVectorsTask


def _freeze_arrays(dataset):
    """Mark every array attribute of a cached dataset as read-only.

    The cached datasets are shared across every task instance built for the
    same (scale, seed) — a benchmark sweep hands one dataset to a dozen
    systems. The tasks treat datasets as read-only by convention; freezing the
    arrays turns a violation of that convention from silent cross-run
    corruption into an immediate ``ValueError``.
    """
    for value in vars(dataset).values():
        if isinstance(value, np.ndarray):
            value.setflags(write=False)
        elif isinstance(value, (list, tuple)):
            for item in value:
                if isinstance(item, np.ndarray):
                    item.setflags(write=False)
    return dataset


# The synthetic datasets are deterministic in their parameters and treated as
# read-only by the tasks (enforced via ``_freeze_arrays``), so benchmark
# sweeps that build one task per system (a dozen times per figure) share a
# single generated dataset per (scale, seed) instead of regenerating it.
@lru_cache(maxsize=8)
def _cached_knowledge_graph(num_entities, num_relations, num_triples,
                            entity_exponent, seed):
    return _freeze_arrays(generate_knowledge_graph(
        num_entities=num_entities, num_relations=num_relations,
        num_triples=num_triples, entity_exponent=entity_exponent, seed=seed,
    ))


@lru_cache(maxsize=8)
def _cached_corpus(vocab_size, num_sentences, sentence_length, num_topics, seed):
    return _freeze_arrays(generate_corpus(
        vocab_size=vocab_size, num_sentences=num_sentences,
        sentence_length=sentence_length, num_topics=num_topics, seed=seed,
    ))


@lru_cache(maxsize=8)
def _cached_matrix(num_rows, num_cols, num_cells, rank, col_exponent, seed):
    return _freeze_arrays(generate_matrix(
        num_rows=num_rows, num_cols=num_cols, num_cells=num_cells, rank=rank,
        col_exponent=col_exponent, seed=seed,
    ))


#: NuPS replica synchronization interval used by the scaled-down workloads.
#: The paper's default is 40 ms against epochs of tens of minutes; simulated
#: epochs here are tens to hundreds of milliseconds, so the interval is scaled
#: down to keep dozens-to-hundreds of synchronizations per epoch.
BENCH_SYNC_INTERVAL = 0.001

#: Sample-reuse pool size for the scaled-down workloads. The paper uses 250
#: against millions of sampling accesses per node and epoch; the scaled-down
#: workloads draw only a few thousand samples per node and epoch, so the pool
#: is shrunk to keep several pool refreshes per epoch.
BENCH_POOL_SIZE = 50

#: Keyword arguments for the ``nups`` / ``nups-tuned`` system builders that
#: apply the scaled-down settings above.
NUPS_BENCH_OVERRIDES: Dict[str, object] = {
    "sync_interval": BENCH_SYNC_INTERVAL,
    "pool_size": BENCH_POOL_SIZE,
}


def kge_task(scale: str = "bench", seed: int = 1, **task_kwargs) -> KGETask:
    """Knowledge graph embeddings on a synthetic Zipf-skewed graph."""
    if scale == "bench":
        graph = _cached_knowledge_graph(
            10000, 32, 8000, 1.1, seed,
        )
        defaults = dict(dim=8, num_negatives=8)
    elif scale == "test":
        graph = generate_knowledge_graph(
            num_entities=500, num_relations=8, num_triples=1200, seed=seed,
        )
        defaults = dict(dim=4, num_negatives=2)
    else:
        raise ValueError(f"unknown scale {scale!r}; expected 'bench' or 'test'")
    defaults.update(task_kwargs)
    return KGETask(graph, **defaults)


def word_vectors_task(scale: str = "bench", seed: int = 2, **task_kwargs) -> WordVectorsTask:
    """Skip-gram word vectors on a synthetic Zipf-skewed, topic-structured corpus."""
    if scale == "bench":
        corpus = _cached_corpus(3000, 1500, 10, 10, seed)
        defaults = dict(dim=8, window=2, num_negatives=3, learning_rate=0.3)
    elif scale == "test":
        corpus = generate_corpus(
            vocab_size=300, num_sentences=150, sentence_length=8,
            num_topics=6, seed=seed,
        )
        defaults = dict(dim=4, window=2, num_negatives=2, learning_rate=0.3)
    else:
        raise ValueError(f"unknown scale {scale!r}; expected 'bench' or 'test'")
    defaults.update(task_kwargs)
    return WordVectorsTask(corpus, **defaults)


def matrix_factorization_task(scale: str = "bench", seed: int = 3,
                              **task_kwargs) -> MatrixFactorizationTask:
    """Latent-factor matrix factorization on a synthetic Zipf-1.1 matrix."""
    if scale == "bench":
        matrix = _cached_matrix(1000, 200, 40000, 8, 1.4, seed)
        defaults: Dict[str, object] = {"learning_rate": 0.5}
    elif scale == "test":
        matrix = generate_matrix(
            num_rows=150, num_cols=40, num_cells=4000, rank=4, seed=seed,
        )
        defaults = {}
    else:
        raise ValueError(f"unknown scale {scale!r}; expected 'bench' or 'test'")
    defaults.update(task_kwargs)
    return MatrixFactorizationTask(matrix, **defaults)


TASK_FACTORIES = {
    "kge": kge_task,
    "word_vectors": word_vectors_task,
    "matrix_factorization": matrix_factorization_task,
}


def make_task(name: str, scale: str = "bench", **kwargs) -> TrainingTask:
    """Build one of the three standard workloads by name."""
    try:
        factory = TASK_FACTORIES[name]
    except KeyError:
        valid = ", ".join(sorted(TASK_FACTORIES))
        raise ValueError(f"unknown task {name!r}; expected one of: {valid}") from None
    return factory(scale=scale, **kwargs)
