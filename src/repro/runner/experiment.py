"""The training driver: interleaved simulated-parallel execution.

``run_experiment`` trains one task on one parameter server over the simulated
cluster. Per scheduling round, every worker processes one chunk of its local
data shard; PS housekeeping (replica synchronization, sampling-pool
maintenance) runs between rounds. Per-worker simulated clocks advance as the
PS charges access costs and the task charges compute costs, so the epoch's
simulated run time is the time of the slowest worker — exactly how wall-clock
epoch time behaves on a real cluster.

After every epoch the model is evaluated from the (synchronized) parameter
store, which produces the quality-over-time and quality-over-epoch series the
paper's figures report.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.ml.task import RoundWorkItem, TrainingTask, sequential_process_round
from repro.parallel.config import parallel_disabled
from repro.ps.base import ParameterServer
from repro.runner.config import ExperimentConfig
from repro.simulation.cluster import Cluster

PSFactory = Callable[..., ParameterServer]


def resolve_execution_backend(config: ExperimentConfig) -> str:
    """The backend an experiment with ``config`` will actually execute on.

    ``execution_backend=None`` derives the backend from the legacy
    ``round_fusion`` flag. ``"parallel"`` downgrades to ``"fused"`` (which is
    bit-identical) when the environment vetoes worker processes: inside the
    report pipeline's fork workers (``REPRO_PARALLEL_DISABLE``, the
    no-pools-inside-pools guard) or on platforms without ``os.fork``. The
    resolution is a pure function of config + environment — benchmarks call
    it to report which backend a run really used.
    """
    backend = config.execution_backend
    if backend is None:
        backend = "fused" if config.round_fusion else "sequential"
    if backend == "parallel" and (parallel_disabled() or not hasattr(os, "fork")):
        backend = "fused"
    return backend


@dataclass
class EpochRecord:
    """Quality, timing and activity of one training epoch."""

    epoch: int
    sim_time: float
    epoch_duration: float
    quality: Dict[str, float]
    #: Per-epoch *deltas* of the cluster's metric counters (what happened
    #: during this epoch, not cumulatively), snapshot via the registry's
    #: dirty-set: a counter the epoch touched is included even when its net
    #: delta is zero. Benchmarks use these to trace how e.g. the
    #: localization rate reacts to mid-run perturbations.
    metrics: Dict[str, float] = field(default_factory=dict)


@dataclass
class ExperimentResult:
    """The outcome of one experiment: per-epoch records plus PS counters."""

    system: str
    task: str
    num_nodes: int
    workers_per_node: int
    initial_quality: Dict[str, float]
    records: List[EpochRecord] = field(default_factory=list)
    metrics: Dict[str, float] = field(default_factory=dict)
    quality_metric: str = "quality"
    higher_is_better: bool = True
    #: In-memory telemetry trace (``Tracer.to_trace()``), set only when the
    #: experiment ran with ``config.telemetry``; ``None`` otherwise.
    trace: Optional[dict] = None

    # --------------------------------------------------------------- accessors
    @property
    def epochs_completed(self) -> int:
        return len(self.records)

    @property
    def total_time(self) -> float:
        return self.records[-1].sim_time if self.records else 0.0

    def qualities(self, metric: Optional[str] = None) -> List[float]:
        metric = metric or self.quality_metric
        return [record.quality[metric] for record in self.records]

    def times(self) -> List[float]:
        return [record.sim_time for record in self.records]

    def final_quality(self, metric: Optional[str] = None) -> float:
        metric = metric or self.quality_metric
        if not self.records:
            return float(self.initial_quality.get(metric, float("nan")))
        return float(self.records[-1].quality[metric])

    def best_quality(self, metric: Optional[str] = None) -> float:
        metric = metric or self.quality_metric
        values = self.qualities(metric)
        if not values:
            return float(self.initial_quality.get(metric, float("nan")))
        return max(values) if self.higher_is_better else min(values)

    def mean_epoch_time(self) -> float:
        if not self.records:
            return float("nan")
        return float(np.mean([record.epoch_duration for record in self.records]))

    def time_to_quality(self, threshold: float) -> Optional[float]:
        """Simulated time of the first epoch at which quality reaches ``threshold``.

        Returns ``None`` when the threshold is never reached (the paper then
        reports the variant as not reaching the 90% mark within the budget).
        """
        for record in self.records:
            value = record.quality[self.quality_metric]
            reached = value >= threshold if self.higher_is_better else value <= threshold
            if reached:
                return record.sim_time
        return None

    def describe(self) -> Dict[str, object]:
        return {
            "system": self.system,
            "task": self.task,
            "nodes": self.num_nodes,
            "epochs": self.epochs_completed,
            "final_quality": self.final_quality(),
            "mean_epoch_time": self.mean_epoch_time(),
        }


def run_experiment(
    task: TrainingTask,
    ps_factory: PSFactory,
    config: Optional[ExperimentConfig] = None,
    system_name: Optional[str] = None,
) -> ExperimentResult:
    """Train ``task`` on the PS built by ``ps_factory`` and record quality.

    ``ps_factory`` is called as ``ps_factory(store, cluster, task)`` and must
    return a :class:`~repro.ps.base.ParameterServer` operating on that store
    and cluster (see :mod:`repro.runner.systems` for the standard factories).
    """
    config = config or ExperimentConfig()
    cluster = Cluster(config.cluster)
    tracer = None
    if config.telemetry is not None:
        # Install the tracer before the PS is built: architectures cache
        # the reference in __init__, and every subsystem reads it from the
        # cluster. With telemetry off, cluster.tracer stays None and no
        # instrumentation site records anything.
        from repro.obs import Tracer

        tracer = Tracer(config.telemetry)
        cluster.tracer = tracer
    store = task.create_store(seed=config.seed)
    if config.storage is not None:
        # Convert the task's store to the configured backend before the PS
        # sees it (PSs derive their own state layout from store.storage).
        # The conversion copies values/versions block-wise, so dense and
        # sparse runs start from bit-identical state.
        store = store.with_storage(config.storage)
    ps = ps_factory(store, cluster, task)
    # Evaluate against the store the PS actually trains: factories are
    # allowed to swap backends themselves (make_ps_factory(storage=...)),
    # and evaluating the pre-swap store would silently freeze quality.
    store = ps.store
    if config.adaptive is not None and getattr(ps, "adaptive_controller", None) is None:
        # Online adaptive management: attach the statistics tap and the
        # periodic controller to the raw PS (hot-set-drift scenarios remap
        # keys *above* this layer, so the controller observes and re-manages
        # physical keys — exactly the space management plans live in). A PS
        # built by an adaptive system factory arrives with its controller
        # already attached; the config then applies to plain factories.
        from repro.adaptive.controller import install_adaptive

        install_adaptive(ps, config.adaptive)
    # A dynamic-workload scenario wraps the PS (key remapping for hot-set
    # drift) and receives callbacks at epoch and round boundaries. Without a
    # scenario the experiment runs on the raw PS, exactly as before.
    runtime = config.scenario.bind(task, ps, cluster, config) \
        if config.scenario is not None else None
    train_ps = runtime.training_ps if runtime is not None else ps
    task.register_sampling(train_ps)

    backend = resolve_execution_backend(config)
    if tracer is not None:
        tracer.meta.update({
            "system": system_name or ps.name,
            "task": task.name,
            "num_nodes": cluster.num_nodes,
            "workers_per_node": cluster.workers_per_node,
            "backend": backend,
            "seed": config.seed,
            "epochs": config.epochs,
        })
    executor = None
    if backend == "parallel":
        # Export the store to shared memory and borrow the worker pool. The
        # executor attaches to the raw PS: tasks find it through attribute
        # delegation from whatever wrapper they train against, but only the
        # PSs whose charging supports the fused fast path ever dispatch.
        from repro.parallel import ParallelExecutor

        executor = ParallelExecutor(ps.store, config.parallel)
        executor.tracer = tracer
        ps.parallel_executor = executor
    try:
        result = _run_training(
            task, ps, train_ps, store, cluster, config, runtime,
            system_name, backend,
        )
    finally:
        if executor is not None:
            ps.parallel_executor = None
            executor.close()
    if tracer is not None:
        tracer.meta["final_metrics"] = cluster.metrics.counters()
        result.trace = tracer.to_trace()
        if config.telemetry.path is not None:
            from repro.obs import write_jsonl

            write_jsonl(result.trace, config.telemetry.path)
    return result


def _run_training(task, ps, train_ps, store, cluster, config, runtime,
                  system_name, backend):
    """The epoch loop of :func:`run_experiment` (split out for pool cleanup)."""

    shards = task.create_shards(
        cluster.num_nodes, cluster.workers_per_node, seed=config.seed
    )
    workers = list(cluster.workers())
    worker_rngs = {
        (w.node_id, w.worker_id): np.random.default_rng(
            config.seed * 1_000_003 + w.node_id * 131 + w.worker_id
        )
        for w in workers
    }
    if runtime is not None:
        runtime.on_experiment_start()

    tracer = cluster.tracer
    sampler = None
    experiment_span = None
    if tracer is not None:
        from repro.obs import make_sampler

        sampler = make_sampler(tracer, cluster, ps)
        experiment_span = tracer.begin_span(
            "experiment", "run", cluster.time, backend=backend
        )

    def evaluate() -> Dict[str, float]:
        eval_store = runtime.logical_store(store) if runtime is not None else store
        return task.evaluate(eval_store)

    result = ExperimentResult(
        system=system_name or ps.name,
        task=task.name,
        num_nodes=cluster.num_nodes,
        workers_per_node=cluster.workers_per_node,
        initial_quality=evaluate(),
        quality_metric=task.quality_metric,
        higher_is_better=task.higher_is_better,
    )

    for epoch in range(config.epochs):
        # Snapshot before the scenario's epoch-start hooks so that work they
        # trigger (drift flushes, network changes) is attributed to this
        # epoch's record rather than falling between epochs.
        epoch_start = cluster.time
        counters_before = cluster.metrics.counters()
        cluster.metrics.drain_dirty()  # open this epoch's dirty scope
        epoch_span = None
        if tracer is not None:
            epoch_span = tracer.begin_span("epoch", "run", epoch_start,
                                           epoch=epoch + 1)
        if runtime is not None:
            runtime.begin_epoch(epoch)
        _run_epoch(task, train_ps, cluster, shards, workers, worker_rngs,
                   config, runtime, fused=backend != "sequential",
                   tracer=tracer, sampler=sampler)
        train_ps.finish_epoch()
        task.on_epoch_end(epoch)
        if runtime is not None:
            runtime.end_epoch(epoch)

        if (epoch + 1) % config.evaluate_every == 0 or epoch + 1 == config.epochs:
            quality = evaluate()
        else:
            quality = dict(result.records[-1].quality) if result.records else \
                dict(result.initial_quality)
        counters_after = cluster.metrics.counters()
        # Dirty-set snapshot rather than value diffing: a counter the epoch
        # touched is reported even when its delta is zero (+1 then -1 within
        # the epoch is activity, not absence of it).
        epoch_metrics = {
            name: counters_after.get(name, 0.0) - counters_before.get(name, 0.0)
            for name in sorted(cluster.metrics.drain_dirty())
        }
        result.records.append(EpochRecord(
            epoch=epoch + 1,
            sim_time=cluster.time,
            epoch_duration=cluster.time - epoch_start,
            quality=quality,
            metrics=epoch_metrics,
        ))
        if tracer is not None:
            tracer.end_span(epoch_span, cluster.time)
        if config.time_budget is not None and cluster.time >= config.time_budget:
            break

    if tracer is not None:
        tracer.end_span(experiment_span, cluster.time,
                        epochs_completed=result.epochs_completed)
    result.metrics = cluster.metrics.counters()
    return result


class _WorkerQueue:
    """Pending data of one worker: a FIFO of index arrays plus a cursor.

    With a static workload the queue holds the worker's single shard array
    and ``take``/``peek`` are plain slices — the same views the previous
    position-based loop produced. Worker churn appends redistributed segments
    from paused workers; the concatenation a multi-segment ``peek`` builds is
    cached and handed to the matching ``take``, so churn-redistributed
    queues stop rebuilding the same array every round (the runner peeks each
    chunk for prefetching one round before taking it).
    """

    __slots__ = ("segments", "offset", "_peek_count", "_peek_cache")

    def __init__(self, shard: np.ndarray) -> None:
        self.segments = [shard] if len(shard) else []
        self.offset = 0
        self._peek_count = -1
        self._peek_cache = None

    def __len__(self) -> int:
        if not self.segments:
            return 0
        return sum(len(segment) for segment in self.segments) - self.offset

    def take(self, count: int) -> np.ndarray:
        """Remove and return up to ``count`` leading indices."""
        if not self.segments:
            return np.empty(0, dtype=np.int64)
        head = self.segments[0]
        end = self.offset + count
        if end < len(head):
            chunk = head[self.offset:end]
            self.offset = end
            self._invalidate_peek()
            return chunk
        if end == len(head) or len(self.segments) == 1:
            chunk = head[self.offset:]
            self.segments.pop(0)
            self.offset = 0
            self._invalidate_peek()
            return chunk
        if self._peek_count == count:
            # The runner peeked this chunk (to prefetch it) one round ago;
            # reuse the concatenation instead of rebuilding it.
            chunk = self._peek_cache
            self._invalidate_peek()
            self._consume(len(chunk))
            return chunk
        parts = [head[self.offset:]]
        taken = len(parts[0])
        self.segments.pop(0)
        self.offset = 0
        while taken < count and self.segments:
            head = self.segments[0]
            use = min(len(head), count - taken)
            if use == len(head):
                parts.append(self.segments.pop(0))
            else:
                parts.append(head[:use])
                self.offset = use
            taken += use
        self._invalidate_peek()
        return np.concatenate(parts)

    def peek(self, count: int) -> np.ndarray:
        """The next up-to-``count`` indices without removing them."""
        if not self.segments:
            return np.empty(0, dtype=np.int64)
        head = self.segments[0]
        if self.offset + count <= len(head) or len(self.segments) == 1:
            return head[self.offset: self.offset + count]
        if self._peek_count == count:
            return self._peek_cache
        parts = [head[self.offset:]]
        seen = len(parts[0])
        for segment in self.segments[1:]:
            if seen >= count:
                break
            parts.append(segment[: count - seen])
            seen += len(parts[-1])
        result = np.concatenate(parts)
        self._peek_count = count
        self._peek_cache = result
        return result

    def drain(self) -> np.ndarray:
        """Remove and return everything that is still pending."""
        remaining = self.take(len(self))
        self.segments = []
        self.offset = 0
        self._invalidate_peek()
        return remaining

    def append(self, indices: np.ndarray) -> None:
        if len(indices):
            self.segments.append(indices)
            # A cached short peek may now be extendable; drop it.
            self._invalidate_peek()

    def _invalidate_peek(self) -> None:
        self._peek_count = -1
        self._peek_cache = None

    def _consume(self, count: int) -> None:
        """Advance the cursor past ``count`` elements without materializing."""
        while count and self.segments:
            head = self.segments[0]
            available = len(head) - self.offset
            if count >= available:
                self.segments.pop(0)
                self.offset = 0
                count -= available
            else:
                self.offset += count
                count = 0


class _EpochState:
    """The per-epoch work queues of all workers, with shard redistribution."""

    def __init__(self, workers, shards, chunk_size: int) -> None:
        self.chunk_size = int(chunk_size)
        self.queues: Dict[tuple, _WorkerQueue] = {
            (w.node_id, w.worker_id): _WorkerQueue(
                shards[w.node_id][w.worker_id]
            )
            for w in workers
        }

    def pending(self, worker_key: tuple) -> int:
        return len(self.queues[worker_key])

    def has_pending(self) -> bool:
        return any(len(queue) for queue in self.queues.values())

    def take_chunk(self, worker_key: tuple) -> np.ndarray:
        return self.queues[worker_key].take(self.chunk_size)

    def peek_chunk(self, worker_key: tuple) -> np.ndarray:
        return self.queues[worker_key].peek(self.chunk_size)

    def redistribute(self, worker_key: tuple, active_keys) -> None:
        """Split ``worker_key``'s remaining work over the ``active_keys``."""
        receivers = [key for key in active_keys if key != worker_key]
        if not receivers:
            return  # nobody to take the work over; leave it queued
        remaining = self.queues[worker_key].drain()
        if len(remaining) == 0:
            return
        for receiver, part in zip(
            receivers, np.array_split(remaining, len(receivers))
        ):
            self.queues[receiver].append(part)


def _degraded_process_round(task, ps, cluster, items, state=None) -> None:
    """Process a round item by item, surviving dead-owner timeouts.

    Active only while a fault proxy is installed *and* a node is down or a
    network partition is live (see ``ScenarioRuntime.fault_degraded`` /
    ``ScenarioRuntime.elastic_degraded``): each worker's chunk runs through
    the sequential reference path on its own so that a
    :class:`~repro.faults.errors.DeadOwnerError` drops just that chunk —
    one round of one worker's lost work — instead of aborting the epoch.

    A :class:`~repro.faults.errors.PartitionedOwnerError` is admission
    control, not loss: the chunk is re-queued at the back of its worker's
    queue (retried after the partition heals) and the worker is charged one
    round-trip of backoff. The partition heals on a round schedule, so the
    deferred work always drains.
    """
    from repro.faults.errors import DeadOwnerError, PartitionedOwnerError

    for item in items:
        try:
            sequential_process_round(task, ps, [item])
        except PartitionedOwnerError:
            worker = item.worker
            if state is not None:
                state.queues[(worker.node_id, worker.worker_id)].append(
                    item.chunk
                )
            worker.clock.advance(cluster.network.message_cost(0))
            cluster.metrics.increment(
                "elastic.deferred_chunks", 1, node=worker.node_id
            )
        except DeadOwnerError:
            cluster.metrics.increment(
                "faults.lost_chunks", 1, node=item.worker.node_id
            )
            cluster.metrics.increment(
                "faults.lost_points", len(item.chunk),
                node=item.worker.node_id,
            )


def _run_epoch(task, ps, cluster, shards, workers, worker_rngs, config,
               runtime=None, fused=True, tracer=None, sampler=None) -> None:
    """One epoch: every worker processes its full shard, chunk by chunk.

    Per scheduling round the driver collects every active worker's next
    chunk into :class:`~repro.ml.task.RoundWorkItem`\\ s and hands the whole
    round to the task. With ``fused`` (the resolved backend is ``"fused"``
    or ``"parallel"``) the task's ``process_round`` hook runs — tasks and
    PSs with round-fused fast paths batch the round's traffic there, and
    dispatch the conflict-free remainder to the worker pool when a parallel
    executor is attached — otherwise the sequential per-worker reference
    loop runs. All backends are bit-identical; assembling the round first
    only reorders per-worker queue bookkeeping, which has no simulation
    state.
    """
    state = _EpochState(workers, shards, config.chunk_size)
    if runtime is not None:
        runtime.attach_epoch_state(state)
    # Prefetch the very first chunk of every worker so that its parameters
    # can be relocated before processing starts.
    first_pairs = []
    for worker in workers:
        first_chunk = state.peek_chunk(worker.global_worker_id)
        if len(first_chunk):
            first_pairs.append((worker, first_chunk))
    if first_pairs:
        task.prefetch_round(ps, first_pairs)
    rounds_since_housekeeping = 0
    round_index = 0
    while state.has_pending():
        items = []
        for worker in workers:
            key = worker.global_worker_id
            if runtime is not None and not runtime.is_active(key):
                continue
            chunk = state.take_chunk(key)
            if len(chunk) == 0:
                continue
            # Localize the *next* chunk's parameters while this chunk is
            # being processed (asynchronous relocate-before-access).
            next_chunk = state.peek_chunk(key)
            items.append(RoundWorkItem(
                worker, chunk,
                next_chunk if len(next_chunk) else None,
                worker_rngs[key],
            ))
        if items:
            if tracer is not None:
                starts = [item.worker.clock.now for item in items]
            if runtime is not None and (
                runtime.fault_degraded() or runtime.elastic_degraded()
            ):
                _degraded_process_round(task, ps, cluster, items, state)
            elif fused:
                task.process_round(ps, items)
            else:
                sequential_process_round(task, ps, items)
            if tracer is not None:
                # One retrospective span per worker: the simulated interval
                # its clock advanced over while processing this round's
                # chunk. Exported as one Perfetto lane per (node, worker).
                for item, sim_start in zip(items, starts):
                    worker = item.worker
                    tracer.complete_span(
                        "round", "round", sim_start, worker.clock.now,
                        node=worker.node_id, worker=worker.worker_id,
                        round=round_index, points=len(item.chunk),
                    )
        rounds_since_housekeeping += 1
        if rounds_since_housekeeping >= config.housekeeping_every_chunks:
            now = cluster.time
            ps.housekeeping(now)
            if tracer is not None:
                tracer.event("housekeeping", "round", now, round=round_index)
            rounds_since_housekeeping = 0
        if runtime is not None:
            runtime.on_round(round_index)
        if sampler is not None:
            sampler.maybe_sample(round_index, state)
        round_index += 1
        if not items:
            # Every pending queue belongs to a paused worker and nothing was
            # redistributed this round; bail out rather than spin forever.
            break
    ps.housekeeping(cluster.time)
    if sampler is not None:
        sampler.take_sample(state)  # close the epoch's time series
    if runtime is not None:
        runtime.detach_epoch_state()
