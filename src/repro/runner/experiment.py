"""The training driver: interleaved simulated-parallel execution.

``run_experiment`` trains one task on one parameter server over the simulated
cluster. Per scheduling round, every worker processes one chunk of its local
data shard; PS housekeeping (replica synchronization, sampling-pool
maintenance) runs between rounds. Per-worker simulated clocks advance as the
PS charges access costs and the task charges compute costs, so the epoch's
simulated run time is the time of the slowest worker — exactly how wall-clock
epoch time behaves on a real cluster.

After every epoch the model is evaluated from the (synchronized) parameter
store, which produces the quality-over-time and quality-over-epoch series the
paper's figures report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.ml.task import TrainingTask
from repro.ps.base import ParameterServer
from repro.runner.config import ExperimentConfig
from repro.simulation.cluster import Cluster

PSFactory = Callable[..., ParameterServer]


@dataclass
class EpochRecord:
    """Quality and timing of one training epoch."""

    epoch: int
    sim_time: float
    epoch_duration: float
    quality: Dict[str, float]


@dataclass
class ExperimentResult:
    """The outcome of one experiment: per-epoch records plus PS counters."""

    system: str
    task: str
    num_nodes: int
    workers_per_node: int
    initial_quality: Dict[str, float]
    records: List[EpochRecord] = field(default_factory=list)
    metrics: Dict[str, float] = field(default_factory=dict)
    quality_metric: str = "quality"
    higher_is_better: bool = True

    # --------------------------------------------------------------- accessors
    @property
    def epochs_completed(self) -> int:
        return len(self.records)

    @property
    def total_time(self) -> float:
        return self.records[-1].sim_time if self.records else 0.0

    def qualities(self, metric: Optional[str] = None) -> List[float]:
        metric = metric or self.quality_metric
        return [record.quality[metric] for record in self.records]

    def times(self) -> List[float]:
        return [record.sim_time for record in self.records]

    def final_quality(self, metric: Optional[str] = None) -> float:
        metric = metric or self.quality_metric
        if not self.records:
            return float(self.initial_quality.get(metric, float("nan")))
        return float(self.records[-1].quality[metric])

    def best_quality(self, metric: Optional[str] = None) -> float:
        metric = metric or self.quality_metric
        values = self.qualities(metric)
        if not values:
            return float(self.initial_quality.get(metric, float("nan")))
        return max(values) if self.higher_is_better else min(values)

    def mean_epoch_time(self) -> float:
        if not self.records:
            return float("nan")
        return float(np.mean([record.epoch_duration for record in self.records]))

    def time_to_quality(self, threshold: float) -> Optional[float]:
        """Simulated time of the first epoch at which quality reaches ``threshold``.

        Returns ``None`` when the threshold is never reached (the paper then
        reports the variant as not reaching the 90% mark within the budget).
        """
        for record in self.records:
            value = record.quality[self.quality_metric]
            reached = value >= threshold if self.higher_is_better else value <= threshold
            if reached:
                return record.sim_time
        return None

    def describe(self) -> Dict[str, object]:
        return {
            "system": self.system,
            "task": self.task,
            "nodes": self.num_nodes,
            "epochs": self.epochs_completed,
            "final_quality": self.final_quality(),
            "mean_epoch_time": self.mean_epoch_time(),
        }


def run_experiment(
    task: TrainingTask,
    ps_factory: PSFactory,
    config: Optional[ExperimentConfig] = None,
    system_name: Optional[str] = None,
) -> ExperimentResult:
    """Train ``task`` on the PS built by ``ps_factory`` and record quality.

    ``ps_factory`` is called as ``ps_factory(store, cluster, task)`` and must
    return a :class:`~repro.ps.base.ParameterServer` operating on that store
    and cluster (see :mod:`repro.runner.systems` for the standard factories).
    """
    config = config or ExperimentConfig()
    cluster = Cluster(config.cluster)
    store = task.create_store(seed=config.seed)
    ps = ps_factory(store, cluster, task)
    task.register_sampling(ps)

    shards = task.create_shards(
        cluster.num_nodes, cluster.workers_per_node, seed=config.seed
    )
    workers = list(cluster.workers())
    worker_rngs = {
        (w.node_id, w.worker_id): np.random.default_rng(
            config.seed * 1_000_003 + w.node_id * 131 + w.worker_id
        )
        for w in workers
    }

    result = ExperimentResult(
        system=system_name or ps.name,
        task=task.name,
        num_nodes=cluster.num_nodes,
        workers_per_node=cluster.workers_per_node,
        initial_quality=task.evaluate(store),
        quality_metric=task.quality_metric,
        higher_is_better=task.higher_is_better,
    )

    for epoch in range(config.epochs):
        epoch_start = cluster.time
        _run_epoch(task, ps, cluster, shards, workers, worker_rngs, config)
        ps.finish_epoch()
        task.on_epoch_end(epoch)

        if (epoch + 1) % config.evaluate_every == 0 or epoch + 1 == config.epochs:
            quality = task.evaluate(store)
        else:
            quality = dict(result.records[-1].quality) if result.records else \
                dict(result.initial_quality)
        result.records.append(EpochRecord(
            epoch=epoch + 1,
            sim_time=cluster.time,
            epoch_duration=cluster.time - epoch_start,
            quality=quality,
        ))
        if config.time_budget is not None and cluster.time >= config.time_budget:
            break

    result.metrics = cluster.metrics.counters()
    return result


def _run_epoch(task, ps, cluster, shards, workers, worker_rngs, config) -> None:
    """One epoch: every worker processes its full shard, chunk by chunk."""
    positions = {
        (w.node_id, w.worker_id): 0 for w in workers
    }
    # Prefetch the very first chunk of every worker so that its parameters
    # can be relocated before processing starts.
    for worker in workers:
        shard = shards[worker.node_id][worker.worker_id]
        task.prefetch(ps, worker, shard[: config.chunk_size])
    rounds_since_housekeeping = 0
    remaining = True
    while remaining:
        remaining = False
        for worker in workers:
            key = (worker.node_id, worker.worker_id)
            shard = shards[worker.node_id][worker.worker_id]
            position = positions[key]
            if position >= len(shard):
                continue
            chunk = shard[position: position + config.chunk_size]
            positions[key] = position + len(chunk)
            # Localize the *next* chunk's parameters while this chunk is being
            # processed (asynchronous relocate-before-access).
            next_chunk = shard[position + len(chunk): position + len(chunk) + config.chunk_size]
            if len(next_chunk):
                task.prefetch(ps, worker, next_chunk)
            task.process_chunk(ps, worker, chunk, worker_rngs[key])
            # Drive the bounded-staleness clock of replication PSs; a no-op
            # for every other architecture. One clock per chunk corresponds
            # to the paper's best-performing setting of advancing the clock
            # every ~10 data points.
            ps.advance_clock(worker)
            if positions[key] < len(shard):
                remaining = True
        rounds_since_housekeeping += 1
        if rounds_since_housekeeping >= config.housekeeping_every_chunks:
            ps.housekeeping(cluster.time)
            rounds_since_housekeeping = 0
    ps.housekeeping(cluster.time)
