"""Retry-with-backoff semantics for architectures without native waiting.

Relocation-based parameter servers track per-key arrival times, so an access
to a key still in flight after a failover simply *waits* — crash recovery
falls out of the existing machinery. Statically partitioned architectures
(Classic, SSP/ESSP replication) have no such notion: their accesses resolve
owners through the partitioner and would happily read a key whose new owner
has not received its state yet. The
:class:`FaultTolerantParameterServer` proxy closes that gap: every pull and
push first passes a gate that checks whether any requested key's ownership
moved in a still-unfinished recovery. If so, the worker retries with
exponential backoff; if the retry budget cannot bridge the remaining
recovery time, the access fails with a
:class:`~repro.faults.errors.DeadOwnerError` that the epoch loop turns into
one dropped chunk.

The proxy is only installed when a fault perturbation is active, and its
gate returns immediately while no node is down — a fault-free run through
the proxy is bit-identical to one without it.
"""

from __future__ import annotations

import numpy as np

from repro.faults.errors import DeadOwnerError
from repro.ps.base import PullResult, SampleHandle
from repro.simulation.cluster import WorkerContext

__all__ = ["FaultTolerantParameterServer"]


class FaultTolerantParameterServer:
    """Wraps a parameter server with dead-owner retry/timeout semantics."""

    def __init__(self, inner) -> None:
        self._inner = inner
        #: Attached lazily by ``ScenarioRuntime.ensure_fault_controller``.
        self.controller = None

    # ----------------------------------------------------------- delegation
    @property
    def inner(self):
        return self._inner

    @property
    def name(self) -> str:
        return self._inner.name

    @property
    def store(self):
        return self._inner.store

    @property
    def network(self):
        return self._inner.network

    @property
    def cluster(self):
        return self._inner.cluster

    @property
    def metrics(self):
        return self._inner.metrics

    def __getattr__(self, attribute):
        return getattr(self._inner, attribute)

    # -------------------------------------------------------------- round API
    def direct_point_charger(self):
        """Fused round engines must not bypass the dead-owner gate.

        Returning ``None`` (instead of delegating via ``__getattr__``) sends
        tasks down the sequential path, whose every access goes through this
        wrapper's gated ``pull``/``push``.
        """
        return None

    def run_round(self, rounds) -> list:
        """Execute a round sequentially through the gated API."""
        results = []
        for entry in rounds:
            worker = entry.worker
            if entry.localize_keys is not None:
                self.localize(worker, entry.localize_keys)
            values = None
            if entry.pull_keys is not None:
                values = self.pull(worker, entry.pull_keys)
            if entry.push_keys is not None:
                self.push(worker, entry.push_keys, entry.push_deltas)
            if entry.advance:
                self.advance_clock(worker)
            results.append(values)
        return results

    # ------------------------------------------------------------------- gate
    def _gate(self, worker: WorkerContext, keys) -> None:
        """Block, retry, or fail an access touching keys in mid-recovery."""
        controller = self.controller
        if controller is None or not controller.down:
            return
        clock = worker.clock
        config = controller.config
        for node_id in sorted(controller.down):
            available_at = controller.down[node_id]
            if available_at <= clock.now:
                continue
            moved = controller.moved_mask(node_id)
            if moved is None:
                continue
            if not np.any(moved[np.asarray(keys, dtype=np.int64)]):
                continue
            # Exponential backoff: delays b, 2b, 4b, ... for max_retries
            # attempts sum to b * (2^r - 1).
            budget = config.retry_backoff * (2 ** config.max_retries - 1)
            if clock.now + budget >= available_at:
                retries = 0
                delay = config.retry_backoff
                while clock.now < available_at and retries < config.max_retries:
                    clock.advance(delay)
                    delay *= 2.0
                    retries += 1
                clock.advance_to(available_at)
                self.metrics.increment("faults.retries", retries)
            else:
                clock.advance(budget)
                self.metrics.increment("faults.timeouts", 1)
                raise DeadOwnerError(
                    f"worker ({worker.node_id}, {worker.worker_id}) gave up "
                    f"after {config.max_retries} retries: owner of requested "
                    f"keys (crashed node {node_id}) recovers at "
                    f"t={available_at:.6f}, beyond the retry budget"
                )

    # ------------------------------------------------------------ direct API
    def pull(self, worker: WorkerContext, keys) -> np.ndarray:
        self._gate(worker, keys)
        return self._inner.pull(worker, keys)

    def push(self, worker: WorkerContext, keys, deltas) -> None:
        self._gate(worker, keys)
        self._inner.push(worker, keys, deltas)

    def localize(self, worker: WorkerContext, keys) -> None:
        self._inner.localize(worker, keys)

    def advance_clock(self, worker: WorkerContext) -> None:
        self._inner.advance_clock(worker)

    def housekeeping(self, now: float) -> None:
        self._inner.housekeeping(now)

    def finish_epoch(self) -> None:
        self._inner.finish_epoch()

    # ---------------------------------------------------------- sampling API
    def register_distribution(self, distribution, level=None) -> int:
        if level is None:
            return self._inner.register_distribution(distribution)
        return self._inner.register_distribution(distribution, level)

    def prepare_sample(self, worker: WorkerContext, distribution_id: int,
                       count: int) -> SampleHandle:
        return self._inner.prepare_sample(worker, distribution_id, count)

    def pull_sample(self, worker: WorkerContext, handle: SampleHandle,
                    count=None) -> PullResult:
        return self._inner.pull_sample(worker, handle, count)

    def push_sample(self, worker: WorkerContext, keys, deltas) -> None:
        self._inner.push_sample(worker, keys, deltas)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultTolerantParameterServer({self._inner!r})"
