"""Retry-with-backoff semantics for architectures without native waiting.

Relocation-based parameter servers track per-key arrival times, so an access
to a key still in flight after a failover simply *waits* — crash recovery
falls out of the existing machinery. Statically partitioned architectures
(Classic, SSP/ESSP replication) have no such notion: their accesses resolve
owners through the partitioner and would happily read a key whose new owner
has not received its state yet. The
:class:`FaultTolerantParameterServer` proxy closes that gap: every pull and
push first passes a gate that checks whether any requested key's ownership
moved in a still-unfinished recovery. If so, the worker retries with
exponential backoff; if the retry budget cannot bridge the remaining
recovery time, the access fails with a
:class:`~repro.faults.errors.DeadOwnerError` that the epoch loop turns into
one dropped chunk.

The proxy is membership-epoch-aware: an access routed at a *removed* (not
merely crashed) owner fails fast with a
:class:`~repro.faults.errors.RemovedOwnerError` instead of burning the whole
backoff budget — a removed node never recovers, so retrying is pointless.
It also hosts the network-partition guard
(:class:`~repro.elastic.partition_state.PartitionState`): while a partition
is active, minority-side accesses degrade to bounded-staleness reads and
buffered writes, and majority-side accesses to unreachable owners raise
:class:`~repro.faults.errors.PartitionedOwnerError` for the epoch loop to
defer (admission control), never to drop.

The retry schedule is explicitly seeded: with ``FaultConfig.retry_jitter``
greater than zero, every retry delay is stretched by a deterministic
pseudo-random factor drawn from a generator derived from
``FaultConfig.retry_seed``. At the default ``retry_jitter = 0.0`` the
generator is never consumed and the schedule is the exact deterministic
doubling it always was.

The proxy is only installed when a fault or partition perturbation is
active, and its gates return immediately while no node is down and no
partition is live — a fault-free run through the proxy is bit-identical to
one without it.
"""

from __future__ import annotations

import numpy as np

from repro.faults.errors import DeadOwnerError, RemovedOwnerError
from repro.ps.base import PullResult, SampleHandle
from repro.simulation.cluster import WorkerContext

__all__ = ["FaultTolerantParameterServer"]


class FaultTolerantParameterServer:
    """Wraps a parameter server with dead-owner retry/timeout semantics."""

    def __init__(self, inner) -> None:
        self._inner = inner
        #: Attached lazily by ``ScenarioRuntime.ensure_fault_controller``.
        self.controller = None
        #: Active :class:`~repro.elastic.partition_state.PartitionState`, or
        #: None. Attached by ``ScenarioRuntime.begin_partition``.
        self.partition = None
        #: Membership epoch the proxy was built against (diagnostics).
        self.membership_epoch = inner.cluster.membership_epoch
        self._retry_rng = None

    # ----------------------------------------------------------- delegation
    @property
    def inner(self):
        return self._inner

    @property
    def name(self) -> str:
        return self._inner.name

    @property
    def store(self):
        return self._inner.store

    @property
    def network(self):
        return self._inner.network

    @property
    def cluster(self):
        return self._inner.cluster

    @property
    def metrics(self):
        return self._inner.metrics

    def __getattr__(self, attribute):
        return getattr(self._inner, attribute)

    # -------------------------------------------------------------- round API
    def direct_point_charger(self):
        """Fused round engines must not bypass the dead-owner gate.

        Returning ``None`` (instead of delegating via ``__getattr__``) sends
        tasks down the sequential path, whose every access goes through this
        wrapper's gated ``pull``/``push``.
        """
        return None

    def run_round(self, rounds) -> list:
        """Execute a round sequentially through the gated API."""
        results = []
        for entry in rounds:
            worker = entry.worker
            if entry.localize_keys is not None:
                self.localize(worker, entry.localize_keys)
            values = None
            if entry.pull_keys is not None:
                values = self.pull(worker, entry.pull_keys)
            if entry.push_keys is not None:
                self.push(worker, entry.push_keys, entry.push_deltas)
            if entry.advance:
                self.advance_clock(worker)
            results.append(values)
        return results

    # ------------------------------------------------------------------ gates
    def _current_owners(self, keys) -> np.ndarray:
        """Current owner node of each key (dynamic for relocation servers)."""
        keys = np.asarray(keys, dtype=np.int64)
        current_owner = getattr(self._inner, "current_owner", None)
        if current_owner is not None:
            return current_owner.take(keys)
        return self._inner.partitioner.owners(keys)

    def _removed_owner_gate(self, worker: WorkerContext, keys) -> None:
        """Fail fast on accesses routed at owners that left the cluster."""
        cluster = self._inner.cluster
        if not cluster.removed:
            return
        owners = set(int(o) for o in np.unique(self._current_owners(keys)))
        stale = sorted(owners & cluster.removed)
        if stale:
            self.metrics.increment("elastic.removed_owner_errors", 1,
                                   node=worker.node_id)
            raise RemovedOwnerError(
                f"worker ({worker.node_id}, {worker.worker_id}) addressed "
                f"keys owned by removed node(s) {stale}: routing is stale "
                f"(cluster is at membership epoch "
                f"{cluster.membership_epoch}, proxy was built at epoch "
                f"{self.membership_epoch}); removed owners never recover, "
                "so there is no point retrying — re-partition the key space"
            )

    def _partition_block(self, worker: WorkerContext, keys) -> None:
        """Raise when a majority-side access crosses the active partition."""
        partition = self.partition
        from repro.faults.errors import PartitionedOwnerError

        owners = self._current_owners(keys)
        unreachable = partition.unreachable_owners(worker.node_id, owners)
        if unreachable.any():
            blocked = sorted(
                int(o) for o in np.unique(np.asarray(owners)[unreachable])
            )
            self.metrics.increment("elastic.partition_rejections", 1,
                                   node=worker.node_id)
            raise PartitionedOwnerError(
                f"worker ({worker.node_id}, {worker.worker_id}) on the "
                f"majority side addressed keys owned by unreachable node(s) "
                f"{blocked} across an active network partition; the access "
                "is deferred until the partition heals"
            )

    def _retry_delay_factor(self) -> float:
        """Deterministic jitter factor for one retry delay (1.0 unjittered)."""
        config = self.controller.config
        jitter = getattr(config, "retry_jitter", 0.0)
        if jitter <= 0.0:
            return 1.0
        if self._retry_rng is None:
            seed = getattr(config, "retry_seed", 0)
            self._retry_rng = np.random.default_rng((seed + 1) * 7919)
        return 1.0 + jitter * float(self._retry_rng.random())

    def _gate(self, worker: WorkerContext, keys) -> None:
        """Block, retry, or fail an access touching keys in mid-recovery."""
        self._removed_owner_gate(worker, keys)
        controller = self.controller
        if controller is None or not controller.down:
            return
        clock = worker.clock
        config = controller.config
        for node_id in sorted(controller.down):
            available_at = controller.down[node_id]
            if available_at <= clock.now:
                continue
            moved = controller.moved_mask(node_id)
            if moved is None:
                continue
            if not np.any(moved[np.asarray(keys, dtype=np.int64)]):
                continue
            # Exponential backoff: delays b, 2b, 4b, ... for max_retries
            # attempts sum to b * (2^r - 1).
            budget = config.retry_backoff * (2 ** config.max_retries - 1)
            if clock.now + budget >= available_at:
                retries = 0
                delay = config.retry_backoff
                while clock.now < available_at and retries < config.max_retries:
                    clock.advance(delay * self._retry_delay_factor())
                    delay *= 2.0
                    retries += 1
                clock.advance_to(available_at)
                self.metrics.increment("faults.retries", retries)
            else:
                clock.advance(budget)
                self.metrics.increment("faults.timeouts", 1)
                raise DeadOwnerError(
                    f"worker ({worker.node_id}, {worker.worker_id}) gave up "
                    f"after {config.max_retries} retries: owner of requested "
                    f"keys (crashed node {node_id}) recovers at "
                    f"t={available_at:.6f}, beyond the retry budget"
                )

    # ------------------------------------------------------------ direct API
    def pull(self, worker: WorkerContext, keys) -> np.ndarray:
        partition = self.partition
        if partition is not None:
            if partition.is_minority(worker.node_id):
                return partition.degraded_pull(worker, keys)
            self._partition_block(worker, keys)
        self._gate(worker, keys)
        return self._inner.pull(worker, keys)

    def push(self, worker: WorkerContext, keys, deltas) -> None:
        partition = self.partition
        if partition is not None:
            if partition.is_minority(worker.node_id):
                partition.degraded_push(worker, keys, deltas)
                return
            self._partition_block(worker, keys)
            self._gate(worker, keys)
            self._inner.push(worker, keys, deltas)
            partition.record_majority_writes(keys)
            return
        self._gate(worker, keys)
        self._inner.push(worker, keys, deltas)

    def localize(self, worker: WorkerContext, keys) -> None:
        partition = self.partition
        if partition is not None:
            # Localization is a placement hint; it must not relocate state
            # across the partition. Minority hints drop entirely; majority
            # hints drop the unreachable subset.
            if partition.is_minority(worker.node_id):
                return
            keys = np.asarray(keys, dtype=np.int64)
            if len(keys):
                owners = self._current_owners(keys)
                keys = keys[~partition.unreachable_owners(worker.node_id,
                                                          owners)]
            if len(keys) == 0:
                return
        self._inner.localize(worker, keys)

    def advance_clock(self, worker: WorkerContext) -> None:
        partition = self.partition
        if partition is not None and partition.is_minority(worker.node_id):
            # A minority worker's clock tick must not trigger the inner PS's
            # buffered-update flush (it would cross the partition).
            return
        self._inner.advance_clock(worker)

    def housekeeping(self, now: float) -> None:
        self._inner.housekeeping(now)

    def finish_epoch(self) -> None:
        self._inner.finish_epoch()

    # ---------------------------------------------------------- sampling API
    def register_distribution(self, distribution, level=None) -> int:
        if level is None:
            return self._inner.register_distribution(distribution)
        return self._inner.register_distribution(distribution, level)

    def prepare_sample(self, worker: WorkerContext, distribution_id: int,
                       count: int) -> SampleHandle:
        return self._inner.prepare_sample(worker, distribution_id, count)

    def pull_sample(self, worker: WorkerContext, handle: SampleHandle,
                    count=None) -> PullResult:
        return self._inner.pull_sample(worker, handle, count)

    def push_sample(self, worker: WorkerContext, keys, deltas) -> None:
        partition = self.partition
        if partition is not None:
            if partition.is_minority(worker.node_id):
                partition.degraded_push(worker, keys, deltas)
                return
            self._partition_block(worker, keys)
            self._inner.push_sample(worker, keys, deltas)
            partition.record_majority_writes(keys)
            return
        self._inner.push_sample(worker, keys, deltas)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultTolerantParameterServer({self._inner!r})"
