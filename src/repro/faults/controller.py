"""The fault controller: crash detection, recovery, and repair orchestration.

One :class:`FaultController` per experiment coordinates what happens when a
server node dies:

1. the node is marked failed in the cluster (its shard becomes unreachable),
2. the keys it owned are re-assigned to the survivors by live
   re-partitioning (``ParameterServer.fail_over``), and
3. each lost key's *value* is repaired from the freshest available source —
   a surviving replica if the architecture keeps one
   (``ParameterServer.recover_values``), else the latest checkpoint.

The repaired keys become reachable again only after a recovery delay
(failure detection timeout + re-partition coordination + state transfer), so
accesses racing the recovery either wait (architectures with native arrival
tracking), retry with backoff (via the fault proxy), or time out. All of it
is charged to simulated clocks and recorded under ``faults.*`` metrics.

The controller is deliberately standalone — it needs only a parameter
server and its cluster, no scenario runtime — so invariant tests can drive
crash/restore sequences directly against any architecture.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.faults.checkpoint import CheckpointManager

__all__ = ["FaultConfig", "FaultController"]


@dataclass
class FaultConfig:
    """Tunables of the recovery machinery.

    Parameters
    ----------
    recovery:
        ``"checkpoint"`` restores lost keys from periodic snapshots;
        ``"restart"`` keeps only the initial snapshot (restart-from-scratch
        baseline — every crash rolls its keys back to epoch zero).
    checkpoint_interval:
        Simulated seconds between checkpoints (``recovery="checkpoint"``).
    detection_timeout:
        Time until the survivors declare a silent node dead.
    max_retries:
        Retry budget of an access that hits a dead owner before it fails
        with a :class:`~repro.faults.errors.DeadOwnerError`.
    retry_backoff:
        Initial retry delay; doubles on every attempt.
    retry_jitter:
        Relative jitter applied to each retry delay: every delay is
        stretched by a factor in ``[1, 1 + retry_jitter]`` drawn from a
        deterministic generator seeded with ``retry_seed``. The default of
        ``0.0`` keeps the exact un-jittered doubling schedule (and never
        consumes the generator), so existing runs are bit-identical.
    retry_seed:
        Seed of the jitter generator. Explicit so retry schedules are
        reproducible across runs and processes.
    """

    recovery: str = "checkpoint"
    checkpoint_interval: float = 0.010
    detection_timeout: float = 0.002
    max_retries: int = 3
    retry_backoff: float = 0.001
    retry_jitter: float = 0.0
    retry_seed: int = 0

    def __post_init__(self) -> None:
        if self.recovery not in ("checkpoint", "restart"):
            raise ValueError(
                f"unknown recovery mechanism {self.recovery!r}; "
                "expected 'checkpoint' or 'restart'"
            )
        if self.checkpoint_interval <= 0:
            raise ValueError("checkpoint_interval must be positive")
        if self.detection_timeout < 0:
            raise ValueError("detection_timeout must be non-negative")
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.retry_backoff <= 0:
            raise ValueError("retry_backoff must be positive")
        if self.retry_jitter < 0:
            raise ValueError("retry_jitter must be non-negative")
        if self.retry_seed < 0:
            raise ValueError("retry_seed must be non-negative")


class FaultController:
    """Coordinates crash, recovery, and restore for one parameter server."""

    def __init__(
        self,
        ps,
        config: Optional[FaultConfig] = None,
        start_time: float = 0.0,
    ) -> None:
        self.ps = ps
        self.cluster = ps.cluster
        self.config = config or FaultConfig()
        interval = (
            self.config.checkpoint_interval
            if self.config.recovery == "checkpoint"
            else None
        )
        self.checkpoint = CheckpointManager(
            ps.store, self.cluster, interval=interval, start_time=start_time
        )
        #: node_id -> simulated time its keys become reachable again
        self.down: Dict[int, float] = {}
        #: node_id -> bool mask over the key space of the keys it owned
        self._moved: Dict[int, np.ndarray] = {}

    @property
    def metrics(self):
        return self.cluster.metrics

    # ------------------------------------------------------------------- crash
    def crash_node(self, node_id: int, now: float) -> float:
        """Kill ``node_id`` at simulated time ``now``; return the recovery time.

        Fails the node in the cluster, repairs each lost key's value from
        the freshest surviving replica (falling back to the checkpoint), and
        re-partitions ownership to the survivors. Returns the simulated
        instant at which the moved keys become reachable on their new
        owners.
        """
        if node_id in self.cluster.failed:
            return self.down.get(node_id, float(now))
        # Fail first so active_nodes / replica donors exclude the victim.
        self.cluster.fail_node(node_id)
        survivors = self.cluster.active_nodes
        lost = np.asarray(self.ps.keys_owned_by(node_id), dtype=np.int64)

        recovered = 0
        lost_updates = 0
        if len(lost):
            values, mask = self.ps.recover_values(lost)
            if values is not None and mask.any():
                # Direct write: a repair is not a training update, so it
                # must not bump version counters or access metrics.
                self.ps.store.write_rows(lost[mask], values[mask])
            recovered = int(mask.sum())
            lost_updates = self.checkpoint.restore(lost[~mask])

        network = self.cluster.network
        transfer = network.transfer_cost(len(lost) * self.ps.store.value_bytes())
        t_recovered = (
            float(now)
            + self.config.detection_timeout
            + network.message_cost(0)
            + transfer
        )
        self.ps.fail_over(node_id, survivors, available_at=t_recovered)
        # The survivors split the state transfer on their background threads.
        if survivors and transfer:
            share = transfer / len(survivors)
            for survivor in survivors:
                background = self.cluster.node(survivor).background_clock
                background.advance_to(max(float(now), background.now) + share)

        moved_mask = np.zeros(self.ps.store.num_keys, dtype=bool)
        moved_mask[lost] = True
        self._moved[node_id] = moved_mask
        self.down[node_id] = t_recovered

        metrics = self.metrics
        metrics.increment("faults.crashes", 1)
        metrics.increment("faults.recovery_time", t_recovered - float(now))
        metrics.increment("faults.lost_updates", lost_updates)
        metrics.increment("faults.keys_recovered_from_replicas", recovered)
        metrics.increment(
            "faults.keys_recovered_from_checkpoint", len(lost) - recovered
        )
        tracer = getattr(self.cluster, "tracer", None)
        if tracer is not None:
            tracer.event(
                "crash", "faults", float(now), node=node_id,
                keys_lost=int(len(lost)), recovered_from_replicas=recovered,
                lost_updates=int(lost_updates),
                recovery_time=round(t_recovered - float(now), 9),
            )
        return t_recovered

    # ----------------------------------------------------------------- restore
    def restore_node(self, node_id: int, now: float) -> None:
        """Bring a crashed node back at ``now`` (but never before recovery)."""
        if node_id not in self.down:
            return
        t = max(float(now), self.down.pop(node_id))
        self._moved.pop(node_id, None)
        self.cluster.restore_node(node_id, t)
        self.ps.on_node_restored(node_id, t)
        self.metrics.increment("faults.restores", 1)
        tracer = getattr(self.cluster, "tracer", None)
        if tracer is not None:
            tracer.event("restore", "faults", t, node=node_id)

    # ------------------------------------------------------------ housekeeping
    def on_round(self, now: float) -> None:
        """Per-round upkeep: fire any checkpoint that has come due."""
        self.checkpoint.maybe_checkpoint(now)

    # ------------------------------------------------------------- inspection
    def moved_mask(self, node_id: int) -> Optional[np.ndarray]:
        """Keys whose ownership moved when ``node_id`` crashed (or None)."""
        return self._moved.get(node_id)

    def describe(self) -> dict:
        return {
            "recovery": self.config.recovery,
            "checkpoint_interval": self.config.checkpoint_interval,
            "checkpoints_taken": self.checkpoint.checkpoints_taken,
            "down_nodes": sorted(self.down),
        }
