"""Fault injection and recovery for the simulated parameter-server cluster.

The paper evaluates parameter management on healthy clusters only; this
subsystem closes that gap with three layers that compose with every PS
architecture and the scenario engine:

* **Failure modes** — server crash/restart (:class:`ServerCrashes`,
  :class:`~repro.faults.perturbations.WorkerKill`) injected from seeded
  schedules via the cluster's ``fail_node``/``restore_node`` hooks, and
  message loss/duplication/timeout via
  :class:`~repro.faults.network.FaultyNetworkModel`.
* **Recovery mechanisms** — periodic consistent checkpoints
  (:class:`~repro.faults.checkpoint.CheckpointManager`), owner failover by
  live re-partitioning (``ParameterServer.fail_over``), replica repair, and
  retry-with-backoff semantics
  (:class:`~repro.faults.proxy.FaultTolerantParameterServer`) for
  architectures without native waiting.
* **Measurement** — ``benchmarks/bench_faults.py`` sweeps crash count x
  recovery mechanism x architecture and registers recovery-time, lost-work
  and quality-under-failure claims.

Fault-off runs are bit-identical to a build without this package: all hooks
default to empty state (an empty failed set, no proxy, no controller), so no
clock, metric or value ever moves unless a fault perturbation is active.
"""

from repro.faults.checkpoint import CheckpointManager
from repro.faults.controller import FaultConfig, FaultController
from repro.faults.errors import (
    DeadOwnerError,
    PartitionedOwnerError,
    RemovedOwnerError,
)
from repro.faults.network import FaultyNetworkModel
from repro.faults.perturbations import LossyNetwork, ServerCrashes, WorkerKill
from repro.faults.proxy import FaultTolerantParameterServer

__all__ = [
    "CheckpointManager",
    "DeadOwnerError",
    "FaultConfig",
    "FaultController",
    "FaultyNetworkModel",
    "FaultTolerantParameterServer",
    "LossyNetwork",
    "PartitionedOwnerError",
    "RemovedOwnerError",
    "ServerCrashes",
    "WorkerKill",
]
