"""Periodic consistent checkpoints of the parameter store.

A checkpoint is a deep copy of the :class:`~repro.ps.storage.ParameterStore`
(values *and* write-version counters) taken at a simulated instant. Writing
it out is not free: each surviving node streams its share of the model to
stable storage on its background thread, so aggressive checkpoint intervals
show up in epoch run time. On a crash, keys that no live replica covers are
rolled back to the latest checkpoint; the version counters quantify exactly
how many updates the rollback discarded (the "lost work" the benchmarks
report).

``interval=None`` disables periodic checkpointing but still snapshots the
initial state, which models the *restart-from-scratch* baseline: every
rollback returns to epoch zero.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.ps.storage import ParameterStore
from repro.simulation.cluster import Cluster
from repro.simulation.events import PeriodicSchedule

__all__ = ["CheckpointManager"]


class CheckpointManager:
    """Takes and restores consistent snapshots of a parameter store."""

    def __init__(
        self,
        store: ParameterStore,
        cluster: Cluster,
        interval: Optional[float] = None,
        start_time: float = 0.0,
    ) -> None:
        if interval is not None and interval <= 0:
            raise ValueError(
                f"checkpoint interval must be positive (or None to disable "
                f"periodic checkpoints); got {interval}"
            )
        self.store = store
        self.cluster = cluster
        self.interval = interval
        # The t0 snapshot doubles as the restart-from-scratch baseline. On
        # the sparse backend ``copy`` clones only the materialized chunks
        # (untouched regions restore to their deterministic initial fill), so
        # checkpointing a mostly-untouched 10^8-key store stays cheap.
        self.snapshot = store.copy()
        self.snapshot_time = float(start_time)
        self.checkpoints_taken = 0
        if interval is None:
            self.schedule = PeriodicSchedule.disabled()
        else:
            self.schedule = PeriodicSchedule(interval, start=start_time)

    # ------------------------------------------------------------------ taking
    def maybe_checkpoint(self, now: float) -> bool:
        """Take the checkpoint due at ``now``, if any.

        A backlog of overdue intervals collapses into a single checkpoint
        (several snapshots at one instant would all be identical).
        """
        due = self.schedule.due_count(now)
        if not due:
            return False
        for _ in range(due):
            self.schedule.fire(now, 0.0)
        self.take(now)
        return True

    def take(self, now: float) -> None:
        """Snapshot the store and charge the write-out to surviving nodes.

        The model is partitioned across the active nodes; each streams its
        share to stable storage on its background thread (one message
        handling plus the payload transfer).
        """
        self.snapshot = self.store.copy()
        self.snapshot_time = float(now)
        self.checkpoints_taken += 1
        active = self.cluster.active_nodes
        if active:
            network = self.cluster.network
            share = self.store.total_bytes() / len(active)
            cost = network.message_handling_cost + network.transfer_cost(int(share))
            for node_id in active:
                background = self.cluster.node(node_id).background_clock
                background.advance_to(max(now, background.now) + cost)
        self.cluster.metrics.increment("faults.checkpoints", 1)
        tracer = getattr(self.cluster, "tracer", None)
        if tracer is not None:
            tracer.event(
                "checkpoint", "faults", float(now),
                total_bytes=int(self.store.total_bytes()),
                checkpoints_taken=self.checkpoints_taken,
            )

    # --------------------------------------------------------------- restoring
    def restore(self, keys: np.ndarray) -> int:
        """Roll ``keys`` back to the snapshot; return the updates discarded.

        Writes values and version counters directly (bypassing the store's
        access counters: a rollback is not a training update). The return
        value is the total number of post-snapshot writes to ``keys`` that
        the rollback threw away.
        """
        keys = np.asarray(keys, dtype=np.int64)
        if len(keys) == 0:
            return 0
        snapshot_versions = self.snapshot.read_versions(keys)
        lost = int((self.store.read_versions(keys) - snapshot_versions).sum())
        self.store.write_rows(keys, self.snapshot.get(keys))
        self.store.write_versions(keys, snapshot_versions)
        return max(lost, 0)
