"""A lossy network model: message loss, duplication, and retransmit timeouts.

Rather than flipping per-message coins (which would poison determinism and
make fault-off runs diverge), loss is modeled in *expectation*: with loss
rate ``p`` a message needs ``1 / (1 - p)`` attempts on average, each failed
attempt costing one retransmit timeout before the sender retries. Because
the base :class:`~repro.simulation.network.NetworkModel` defines its derived
costs (``remote_access_cost``, ``relocation_cost``, ``allreduce_cost``) in
terms of :meth:`message_cost`, overriding ``message_cost`` here propagates
lossiness through every access path automatically. Duplicated messages do
not delay the sender (the first copy already arrived) but occupy receiver
threads, so duplication inflates the occupancy costs only.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from repro.simulation.network import NetworkModel

__all__ = ["FaultyNetworkModel"]


@dataclass(frozen=True)
class FaultyNetworkModel(NetworkModel):
    """A :class:`NetworkModel` whose messages are lost and duplicated.

    Parameters
    ----------
    loss_rate:
        Probability that a message is lost in transit (``0 <= p < 1``). Each
        lost message costs one ``timeout`` before the retransmission.
    duplication_rate:
        Expected fraction of messages delivered twice. Duplicates inflate
        server/receiver occupancy but not sender-visible latency.
    timeout:
        Retransmit timeout: how long a sender waits before declaring a
        message lost and retrying.
    """

    loss_rate: float = 0.0
    duplication_rate: float = 0.0
    timeout: float = 1e-3

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError(
                f"loss_rate must be in [0, 1); got {self.loss_rate}"
            )
        if self.duplication_rate < 0.0:
            raise ValueError(
                f"duplication_rate must be non-negative; got {self.duplication_rate}"
            )
        if self.timeout < 0.0:
            raise ValueError(f"timeout must be non-negative; got {self.timeout}")

    # ------------------------------------------------------------ construction
    @classmethod
    def wrap(
        cls,
        base: NetworkModel,
        loss_rate: float = 0.0,
        duplication_rate: float = 0.0,
        timeout: float = 1e-3,
    ) -> "FaultyNetworkModel":
        """Build a lossy model sharing ``base``'s latency/bandwidth parameters."""
        params = {
            field.name: getattr(base, field.name)
            for field in fields(NetworkModel)
        }
        return cls(
            loss_rate=loss_rate,
            duplication_rate=duplication_rate,
            timeout=timeout,
            **params,
        )

    # ------------------------------------------------------------------- costs
    @property
    def expected_attempts(self) -> float:
        """Average transmissions per successfully delivered message."""
        return 1.0 / (1.0 - self.loss_rate)

    def message_cost(self, payload_bytes: int) -> float:
        attempts = self.expected_attempts
        base = super().message_cost(payload_bytes)
        # attempts - 1 failed sends, each waiting out one retransmit timeout.
        return attempts * base + (attempts - 1.0) * self.timeout

    def server_occupancy(self, value_bytes: int) -> float:
        factor = self.expected_attempts * (1.0 + self.duplication_rate)
        return factor * super().server_occupancy(value_bytes)

    def relocation_occupancy(self, value_bytes: int) -> float:
        factor = self.expected_attempts * (1.0 + self.duplication_rate)
        return factor * super().relocation_occupancy(value_bytes)
