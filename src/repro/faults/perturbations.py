"""Fault perturbations for the scenario engine.

* :class:`ServerCrashes` — seeded server crash/restart schedules: a node's
  shard becomes unreachable mid-epoch, its workers stop, the fault
  controller repairs values and fails ownership over to the survivors, and
  (unless ``permanent``) the node rejoins a few rounds later.
* :class:`WorkerKill` — permanent worker loss (not a pause-until-epoch-end:
  the victims never come back; their remaining shards are redistributed).
* :class:`LossyNetwork` — swaps the cluster's cost model for a
  :class:`~repro.faults.network.FaultyNetworkModel` during an epoch window:
  message loss, duplication, and retransmit timeouts priced into every
  access path.

All schedules derive from the experiment seed (same formula as the standard
perturbations, disjoint salts), so fault runs are exactly reproducible.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.faults.network import FaultyNetworkModel
from repro.scenarios.base import Perturbation, ScenarioRuntime

__all__ = ["LossyNetwork", "ServerCrashes", "WorkerKill"]


def _fault_rng(ctx: ScenarioRuntime, salt: int) -> np.random.Generator:
    """A per-run generator derived from the experiment seed and ``salt``."""
    return np.random.default_rng((ctx.config.seed + 1) * 99_991 + salt)


class ServerCrashes(Perturbation):
    """Crash ``crashes_per_epoch`` server nodes per epoch; restart them later.

    Crash rounds are drawn from ``crash_round_range`` (half-open) per epoch.
    Victims are drawn from nodes ``1..num_nodes-1`` — node 0 never crashes,
    which keeps a stable recovery donor and guarantees the cluster and the
    worker pool always have a survivor. ``rolling=True`` cycles through the
    eligible nodes deterministically instead of sampling (a rolling-restart
    schedule); ``permanent=True`` never restarts a victim.

    The perturbation owns the per-round upkeep of the fault controller, so a
    scenario containing it automatically gets periodic checkpointing per the
    supplied ``fault_config``.
    """

    needs_fault_proxy = True

    def __init__(
        self,
        crashes_per_epoch: int = 1,
        down_rounds: int = 2,
        fault_config=None,
        crash_round_range: Tuple[int, int] = (1, 5),
        rolling: bool = False,
        permanent: bool = False,
        epochs: Optional[Sequence[int]] = None,
        seed: int = 0,
    ) -> None:
        if crashes_per_epoch < 1:
            raise ValueError("crashes_per_epoch must be >= 1")
        if down_rounds < 1:
            raise ValueError("down_rounds must be >= 1")
        lo, hi = crash_round_range
        if not 0 <= lo < hi:
            raise ValueError("crash_round_range must be a non-empty range")
        self.crashes_per_epoch = int(crashes_per_epoch)
        self.down_rounds = int(down_rounds)
        self.fault_config = fault_config
        self.crash_round_range = (int(lo), int(hi))
        self.rolling = bool(rolling)
        self.permanent = bool(permanent)
        self.epochs = None if epochs is None else {int(e) for e in epochs}
        self.seed = int(seed)
        self._rng: Optional[np.random.Generator] = None
        self._schedule: Dict[int, List[int]] = {}
        self._down: Dict[int, int] = {}  # node_id -> restore round
        self._next_rolling = 1
        self.controller = None

    # ------------------------------------------------------------- lifecycle
    def on_start(self, ctx: ScenarioRuntime) -> None:
        self._rng = _fault_rng(ctx, 41 + self.seed)
        self._schedule = {}
        self._down = {}
        self._next_rolling = 1
        self.controller = ctx.ensure_fault_controller(self.fault_config)

    def on_epoch_start(self, ctx: ScenarioRuntime) -> None:
        self._schedule = {}
        if self.epochs is not None and ctx.epoch not in self.epochs:
            return
        num_nodes = ctx.cluster.num_nodes
        eligible = num_nodes - 1  # node 0 is never a victim
        if eligible < 1:
            return
        count = min(self.crashes_per_epoch, eligible)
        lo, hi = self.crash_round_range
        rounds = np.sort(self._rng.integers(lo, hi, size=count))
        if self.rolling:
            victims = []
            for _ in range(count):
                victims.append(self._next_rolling)
                self._next_rolling = self._next_rolling % (num_nodes - 1) + 1
        else:
            victims = (
                1 + self._rng.choice(eligible, size=count, replace=False)
            ).tolist()
        for round_index, victim in zip(rounds.tolist(), victims):
            self._schedule.setdefault(int(round_index), []).append(int(victim))

    def on_round(self, ctx: ScenarioRuntime) -> None:
        now = ctx.cluster.time
        if not self.permanent:
            due = [n for n, r in self._down.items() if ctx.round >= r]
            for node_id in sorted(due):
                self._restore(ctx, node_id, now)
        for node_id in self._schedule.pop(ctx.round, []):
            self._crash(ctx, node_id, now)
        self.controller.on_round(now)

    def on_epoch_end(self, ctx: ScenarioRuntime) -> None:
        # Nodes still down at the epoch boundary rejoin before the next
        # epoch's shard creation (unless the crash is permanent).
        if not self.permanent:
            for node_id in sorted(self._down):
                self._restore(ctx, node_id, ctx.cluster.time)

    # ------------------------------------------------------------- internals
    def _crash(self, ctx: ScenarioRuntime, node_id: int, now: float) -> None:
        if node_id in self._down or node_id in ctx.cluster.failed:
            return
        if ctx.cluster.is_removed(node_id):
            return  # removed nodes have no state left to crash
        if len(ctx.cluster.active_nodes) <= 1:
            return  # never take down the last survivor
        self.controller.crash_node(node_id, now=now)
        for nid, worker_id in ctx.worker_keys():
            if nid == node_id:
                ctx.pause_worker(nid, worker_id)
        if not self.permanent:
            self._down[node_id] = ctx.round + self.down_rounds

    def _restore(self, ctx: ScenarioRuntime, node_id: int, now: float) -> None:
        self.controller.restore_node(node_id, now=now)
        for nid, worker_id in ctx.worker_keys():
            if nid == node_id:
                ctx.resume_worker(nid, worker_id)
        self._down.pop(node_id, None)


class WorkerKill(Perturbation):
    """Permanently kill seeded workers: they never rejoin the experiment.

    Unlike :class:`~repro.scenarios.perturbations.WorkerChurn`, victims are
    not resumed at the epoch's end — the cluster finishes the experiment
    short-handed. Worker ``(0, 0)`` is never a victim so at least one worker
    always survives.
    """

    def __init__(self, count: int = 1, at_epoch: int = 0, at_round: int = 1,
                 seed: int = 0) -> None:
        if count < 1:
            raise ValueError("count must be >= 1")
        if at_epoch < 0 or at_round < 0:
            raise ValueError("at_epoch/at_round must be non-negative")
        self.count = int(count)
        self.at_epoch = int(at_epoch)
        self.at_round = int(at_round)
        self.seed = int(seed)
        self._rng: Optional[np.random.Generator] = None
        self._fired = False

    def on_start(self, ctx: ScenarioRuntime) -> None:
        self._rng = _fault_rng(ctx, 43 + self.seed)
        self._fired = False

    def on_round(self, ctx: ScenarioRuntime) -> None:
        if self._fired or ctx.epoch != self.at_epoch \
                or ctx.round != self.at_round:
            return
        self._fired = True
        eligible = [key for key in ctx.worker_keys() if key != (0, 0)]
        count = min(self.count, len(eligible) - 1) if len(eligible) > 1 else 0
        if count < 1:
            return
        chosen = self._rng.choice(len(eligible), size=count, replace=False)
        for index in sorted(chosen.tolist()):
            node_id, worker_id = eligible[index]
            ctx.pause_worker(node_id, worker_id)
            ctx.metrics.increment("faults.worker_kills", 1, node=node_id)


class LossyNetwork(Perturbation):
    """Lossy interconnect during an epoch window.

    From ``from_epoch`` up to (exclusive) ``until_epoch``, the cluster's cost
    model is replaced by a :class:`FaultyNetworkModel` wrapping the
    experiment's base model; outside the window the base model is restored.
    """

    def __init__(self, loss_rate: float = 0.05, duplication_rate: float = 0.0,
                 timeout: float = 1e-3, from_epoch: int = 0,
                 until_epoch: Optional[int] = None) -> None:
        if from_epoch < 0:
            raise ValueError("from_epoch must be non-negative")
        if until_epoch is not None and until_epoch <= from_epoch:
            raise ValueError("until_epoch must come after from_epoch")
        self.loss_rate = float(loss_rate)
        self.duplication_rate = float(duplication_rate)
        self.timeout = float(timeout)
        self.from_epoch = int(from_epoch)
        self.until_epoch = until_epoch

    def _in_window(self, epoch: int) -> bool:
        if epoch < self.from_epoch:
            return False
        return self.until_epoch is None or epoch < self.until_epoch

    def on_epoch_start(self, ctx: ScenarioRuntime) -> None:
        if self._in_window(ctx.epoch):
            model = FaultyNetworkModel.wrap(
                ctx.base_network,
                loss_rate=self.loss_rate,
                duplication_rate=self.duplication_rate,
                timeout=self.timeout,
            )
            if model != ctx.cluster.network:
                ctx.set_network(model)
                ctx.metrics.increment("faults.lossy_epochs", 1)
        elif ctx.cluster.network != ctx.base_network:
            ctx.set_network(ctx.base_network)
