"""Errors raised by the fault-tolerance and elasticity subsystems."""

from __future__ import annotations

__all__ = ["DeadOwnerError", "PartitionedOwnerError", "RemovedOwnerError"]


class DeadOwnerError(RuntimeError):
    """An access exhausted its retries against a crashed parameter owner.

    Raised by :class:`~repro.faults.proxy.FaultTolerantParameterServer` when
    a pull or push targets keys whose (pre-failover) owner is down and the
    bounded retry-with-backoff budget cannot bridge the remaining recovery
    time. The epoch loop catches it and drops the affected chunk — one
    round of lost work, not a crashed experiment.
    """


class RemovedOwnerError(DeadOwnerError):
    """An access targeted a node that was *removed* from the cluster.

    Unlike a crashed owner, a removed owner never recovers, so retrying with
    backoff would burn the whole budget for nothing: the fault proxy raises
    this immediately (fail fast). Seeing it means ownership state is stale —
    a membership change happened without the corresponding re-partitioning
    (the error message names the membership epochs involved).

    Subclasses :class:`DeadOwnerError` so existing drop-the-chunk handling
    still applies when nobody fixes the routing.
    """


class PartitionedOwnerError(RuntimeError):
    """An access crossed an active network partition and cannot be served.

    Raised by the partition guard when a worker on one side of a
    :class:`~repro.elastic.perturbations.NetworkPartition` addresses keys
    owned by the other side and no graceful-degradation path applies (the
    majority side has no stale replica discipline for minority-owned keys).
    Deliberately *not* a :class:`DeadOwnerError`: the epoch loop defers the
    chunk and retries it after the heal (admission control / backpressure)
    instead of dropping it.
    """
