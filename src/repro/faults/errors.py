"""Errors raised by the fault-tolerance subsystem."""

from __future__ import annotations

__all__ = ["DeadOwnerError"]


class DeadOwnerError(RuntimeError):
    """An access exhausted its retries against a crashed parameter owner.

    Raised by :class:`~repro.faults.proxy.FaultTolerantParameterServer` when
    a pull or push targets keys whose (pre-failover) owner is down and the
    bounded retry-with-backoff budget cannot bridge the remaining recovery
    time. The epoch loop catches it and drops the affected chunk — one
    round of lost work, not a crashed experiment.
    """
