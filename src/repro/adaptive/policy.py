"""Management policies: observed access statistics -> desired plan.

A policy decides which keys *should* be managed by replication given the
statistics in :class:`~repro.adaptive.stats.AccessStats` and the currently
installed :class:`~repro.core.management.ManagementPlan`. Two policies mirror
the paper's two ways of choosing the replicated set (Section 5.1), computed
online instead of from dataset statistics:

* :class:`HotSpotPolicy` — the untuned heuristic: replicate keys whose
  observed frequency exceeds ``factor`` times the mean frequency.
* :class:`TopKPolicy` — the tuned configurations: replicate the ``k``
  hottest observed keys.

Both apply *hysteresis bands* so that keys hovering around the decision
boundary do not flip between replication and relocation on every adaptation
step (replica creation and teardown are not free): a key must clear the
entry condition to become replicated but only falls back to relocation once
it drops below a lower exit bound.
"""

from __future__ import annotations

import numpy as np

from repro.adaptive.stats import AccessStats
from repro.core.management import DEFAULT_HOT_SPOT_FACTOR, ManagementPlan

__all__ = ["HotSpotPolicy", "ManagementPolicy", "TopKPolicy", "make_policy"]


class ManagementPolicy:
    """Base class: compute the desired replicated key set from statistics."""

    name = "abstract"

    def desired_replicated(self, stats: AccessStats,
                           current: ManagementPlan) -> np.ndarray:
        """The keys the policy wants replicated (sorted, unique)."""
        raise NotImplementedError

    def desired_plan(self, stats: AccessStats,
                     current: ManagementPlan) -> ManagementPlan:
        """The desired plan over the current plan's key space."""
        return ManagementPlan(current.num_keys,
                              self.desired_replicated(stats, current))

    def describe(self) -> dict:
        return {"policy": self.name}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


def _with_hysteresis(enter_keys: np.ndarray, retain_keys: np.ndarray,
                     current: ManagementPlan) -> np.ndarray:
    """Entering keys plus currently replicated keys that may be retained."""
    retained = np.intersect1d(current.replicated_keys, retain_keys,
                              assume_unique=False)
    return np.union1d(enter_keys, retained)


class HotSpotPolicy(ManagementPolicy):
    """The 100x-mean heuristic computed online, with a hysteresis band.

    A key *enters* the replicated set when its observed frequency exceeds
    ``factor * mean``; a replicated key *stays* until it falls below
    ``exit_fraction * factor * mean``. With ``exit_fraction=1.0`` the band
    collapses to the paper's plain threshold.
    """

    name = "hot-spot"

    def __init__(self, factor: float = DEFAULT_HOT_SPOT_FACTOR,
                 exit_fraction: float = 0.5) -> None:
        if factor <= 0:
            raise ValueError("factor must be positive")
        if not 0 < exit_fraction <= 1:
            raise ValueError("exit_fraction must be in (0, 1]")
        self.factor = float(factor)
        self.exit_fraction = float(exit_fraction)

    def desired_replicated(self, stats: AccessStats,
                           current: ManagementPlan) -> np.ndarray:
        keys, estimates = stats.hot_keys()
        enter_threshold = self.factor * stats.mean_frequency()
        exit_threshold = self.exit_fraction * enter_threshold
        enter = keys[estimates > enter_threshold]
        retain = keys[estimates > exit_threshold]
        return _with_hysteresis(enter, retain, current)

    def describe(self) -> dict:
        return {"policy": self.name, "factor": self.factor,
                "exit_fraction": self.exit_fraction}


class TopKPolicy(ManagementPolicy):
    """Replicate the ``k`` hottest observed keys, with a rank-slack band.

    A key *enters* the replicated set when it ranks in the observed top
    ``k``; a replicated key *stays* while it ranks within the top
    ``ceil(k * (1 + slack))``. The slack absorbs near-ties at rank ``k``
    that would otherwise swap two keys on every adaptation step.
    """

    name = "top-k"

    def __init__(self, k: int, slack: float = 0.25) -> None:
        if k < 0:
            raise ValueError("k must be non-negative")
        if slack < 0:
            raise ValueError("slack must be non-negative")
        self.k = int(k)
        self.slack = float(slack)

    def desired_replicated(self, stats: AccessStats,
                           current: ManagementPlan) -> np.ndarray:
        if self.k == 0:
            return np.empty(0, dtype=np.int64)
        keys, _ = stats.hot_keys()
        enter = keys[: self.k]
        retain_rank = int(np.ceil(self.k * (1.0 + self.slack)))
        retain = keys[:retain_rank]
        return _with_hysteresis(enter, retain, current)

    def describe(self) -> dict:
        return {"policy": self.name, "k": self.k, "slack": self.slack}


def make_policy(name: str, *, hot_spot_factor: float = DEFAULT_HOT_SPOT_FACTOR,
                exit_fraction: float = 0.5, top_k: int = 0,
                slack: float = 0.25) -> ManagementPolicy:
    """Build a policy by name (``"hot-spot"`` or ``"top-k"``)."""
    if name == "hot-spot":
        return HotSpotPolicy(factor=hot_spot_factor,
                             exit_fraction=exit_fraction)
    if name == "top-k":
        return TopKPolicy(k=top_k, slack=slack)
    raise ValueError(f"unknown policy {name!r}; expected 'hot-spot' or 'top-k'")
