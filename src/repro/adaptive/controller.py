"""The adaptive controller: periodic plan diffing + incremental re-management.

An :class:`AdaptiveController` closes the observe-decide-act loop around a
re-management-capable parameter server (``NuPS``): access statistics stream
in through the server's hot-path tap (:mod:`repro.adaptive.stats`), a
:class:`~repro.adaptive.policy.ManagementPolicy` turns them into a desired
:class:`~repro.core.management.ManagementPlan`, and the controller — driven
by a :class:`~repro.simulation.events.PeriodicSchedule` in simulated time —
diffs the desired plan against the installed one and issues *incremental*
transitions through ``NuPS.remanage``: at most ``max_changes_per_step`` keys
switch technique per adaptation step, hottest additions first, so a large
drift is absorbed over a few steps instead of one bulk rebuild.

Transitions are not free. Creating a replica ships the key's current value
to every node (a recursive-doubling broadcast, charged to each node's
background thread and to the network counters, mirroring
:meth:`repro.core.replica_manager.ReplicaManager._sync_once`); tearing one
down costs a control message per node. A controller that never changes the
plan leaves *no trace* in the simulation — no clock, metric, or value ever
moves — so an adaptive run over a stationary workload whose policy keeps the
initial plan is bit-identical to the corresponding static run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.adaptive.policy import ManagementPolicy, make_policy
from repro.adaptive.stats import AccessStats
from repro.core.management import DEFAULT_HOT_SPOT_FACTOR, ManagementPlan
from repro.simulation.events import PeriodicSchedule

__all__ = ["AdaptiveConfig", "AdaptiveController", "install_adaptive"]


@dataclass
class AdaptiveConfig:
    """Configuration of the adaptive-management subsystem.

    Parameters
    ----------
    policy:
        ``"hot-spot"`` (the paper's 100x-mean heuristic computed online) or
        ``"top-k"`` (the tuned fixed-extent variant).
    hot_spot_factor / exit_fraction:
        Entry threshold factor and hysteresis exit band of the hot-spot
        policy (a replicated key falls back to relocation only below
        ``exit_fraction * factor * mean``).
    top_k / slack:
        Replication extent and rank-slack band of the top-k policy.
        ``top_k=None`` adopts the extent of the plan installed at attach
        time (re-target the same number of keys, online).
    period:
        Adaptation period in *simulated* seconds (the controller's
        :class:`~repro.simulation.events.PeriodicSchedule` interval).
    half_life:
        Exponential-decay half-life of the access statistics, in simulated
        seconds. Shorter half-lives track drift faster but are noisier.
    capacity:
        Space-saving sketch size: the maximum number of keys tracked online
        (cost stays O(hot set), independent of the key-space size).
    warmup_observations:
        Minimum number of observed accesses before the first adaptation
        (prevents re-managing on an empty histogram at startup).
    max_changes_per_step:
        Cap on keys switching technique per adaptation step (``None`` =
        unbounded). Additions are prioritized over removals, hottest first.
    """

    policy: str = "hot-spot"
    hot_spot_factor: float = DEFAULT_HOT_SPOT_FACTOR
    exit_fraction: float = 0.5
    top_k: Optional[int] = None
    slack: float = 0.25
    period: float = 0.01
    half_life: float = 0.02
    capacity: int = 512
    warmup_observations: int = 2000
    max_changes_per_step: Optional[int] = None

    def __post_init__(self) -> None:
        if self.policy not in ("hot-spot", "top-k"):
            raise ValueError(
                f"unknown policy {self.policy!r}; expected 'hot-spot' or 'top-k'"
            )
        if self.period <= 0:
            raise ValueError("period must be positive")
        if self.half_life <= 0:
            raise ValueError("half_life must be positive")
        if self.capacity <= 0:
            raise ValueError("capacity must be positive")
        if self.warmup_observations < 0:
            raise ValueError("warmup_observations must be non-negative")
        if self.max_changes_per_step is not None and self.max_changes_per_step < 1:
            raise ValueError("max_changes_per_step must be >= 1 (or None)")


class AdaptiveController:
    """Periodically re-derives the management plan from online statistics."""

    def __init__(self, ps, stats: AccessStats, policy: ManagementPolicy,
                 config: AdaptiveConfig) -> None:
        self.ps = ps
        self.stats = stats
        self.policy = policy
        self.config = config
        self.schedule = PeriodicSchedule(config.period)
        self.evaluations = 0      #: adaptation steps evaluated (incl. no-ops)
        self.adaptations = 0      #: steps that actually changed the plan
        self.keys_added = 0
        self.keys_removed = 0
        self.membership_changes = 0
        self._membership_dirty = False

    # -------------------------------------------------------------- lifecycle
    def on_membership_change(self, now: float) -> None:
        """Note a cluster resize; re-plan at the next housekeeping tick.

        Membership changes shift every per-node cost the policy implicitly
        balances (replica broadcast fan-out, relocation spread), so the
        controller re-evaluates the plan at the next housekeeping even if
        its periodic schedule is not due yet. Never called in elasticity-off
        runs, leaving the adaptive schedule untouched.
        """
        self.membership_changes += 1
        self._membership_dirty = True

    def on_housekeeping(self, now: float) -> None:
        """Run the adaptation steps due at simulated time ``now``.

        Called from the parameter server's ``housekeeping``. A backlog of
        overdue periods collapses into a single adaptation (re-evaluating
        the same statistics several times at one instant is pointless).
        """
        due = self.schedule.due_count(now)
        if due == 0 and not self._membership_dirty:
            return
        for _ in range(due):
            self.schedule.fire(now, 0.0)
        self._membership_dirty = False
        self._adapt(now)

    # --------------------------------------------------------------- one step
    def _adapt(self, now: float) -> None:
        self.stats.decay_to(now)
        if self.stats.lifetime_observed < self.config.warmup_observations:
            return
        self.evaluations += 1
        current = self.ps.plan
        desired = self.policy.desired_replicated(self.stats, current)
        added = np.setdiff1d(desired, current.replicated_keys,
                             assume_unique=False)
        removed = np.setdiff1d(current.replicated_keys, desired,
                               assume_unique=False)
        if len(added) == 0 and len(removed) == 0:
            return
        added, removed = self._cap_transition(added, removed)
        replicated = np.union1d(
            np.setdiff1d(current.replicated_keys, removed), added
        )
        plan = ManagementPlan(current.num_keys, replicated)
        self.ps.remanage(plan, now=now)
        self._charge_transition(len(added), len(removed), now)
        self.adaptations += 1
        self.keys_added += int(len(added))
        self.keys_removed += int(len(removed))
        metrics = self.ps.metrics
        metrics.increment("adaptive.adaptations", 1)
        metrics.increment("adaptive.keys_added", len(added))
        metrics.increment("adaptive.keys_removed", len(removed))
        tracer = self.ps.tracer
        if tracer is not None:
            tracer.event(
                "adapt", "adaptive", now,
                keys_added=int(len(added)), keys_removed=int(len(removed)),
                replicated=int(plan.num_replicated),
                evaluations=self.evaluations,
            )

    def _cap_transition(self, added: np.ndarray, removed: np.ndarray):
        """Limit one step to ``max_changes_per_step`` keys (hottest first).

        Additions cover currently unmanaged hot spots — the urgent half of a
        transition — so they take the budget first, ordered by decreasing
        estimate (ties by key). Removals fill the remainder, coldest first.
        Whatever is cut here is reconsidered at the next step.
        """
        cap = self.config.max_changes_per_step
        if cap is None or len(added) + len(removed) <= cap:
            return added, removed
        estimate = self.stats.sketch.estimate
        if len(added) >= cap:
            add_order = sorted(added.tolist(),
                               key=lambda key: (-estimate(key), key))
            return np.asarray(add_order[:cap], dtype=np.int64), removed[:0]
        budget = cap - len(added)
        remove_order = sorted(removed.tolist(),
                              key=lambda key: (estimate(key), key))
        return added, np.asarray(remove_order[:budget], dtype=np.int64)

    def _charge_transition(self, n_added: int, n_removed: int,
                           now: float) -> None:
        """Charge replica creation/teardown traffic to the network model."""
        cluster = self.ps.cluster
        network = cluster.network
        # Resize-aware: the broadcast spans current members only (equals
        # cluster.num_nodes whenever membership never changed).
        members = [n for n in range(cluster.num_nodes)
                   if n not in cluster.removed]
        num_nodes = len(members)
        if num_nodes <= 1:
            return
        metrics = self.ps.metrics
        rounds = (num_nodes - 1).bit_length()
        occupancy = 0.0
        if n_added:
            # Ship the new replicas' initial values to every node with the
            # same recursive-doubling pattern replica synchronization uses.
            payload = n_added * self.ps.store.value_bytes()
            occupancy += rounds * (
                network.message_handling_cost + network.transfer_cost(payload)
            )
            metrics.increment("network.messages", rounds * num_nodes)
            metrics.increment("network.bytes", payload * num_nodes)
            metrics.increment("adaptive.replicas_created", n_added)
        if n_removed:
            # Teardown is metadata only: one control message per node.
            occupancy += network.message_handling_cost
            metrics.increment("network.messages", num_nodes)
            metrics.increment("adaptive.replicas_dropped", n_removed)
        if occupancy:
            for node_id in members:
                if node_id in cluster.failed:
                    continue  # crashed nodes sit out the broadcast
                background = cluster.node(node_id).background_clock
                start = max(now, background.now)
                background.advance_to(start + occupancy)

    # -------------------------------------------------------------- reporting
    def describe(self) -> dict:
        return {
            "policy": self.policy.describe(),
            "period": self.config.period,
            "half_life": self.config.half_life,
            "capacity": self.config.capacity,
            "evaluations": self.evaluations,
            "adaptations": self.adaptations,
            "keys_added": self.keys_added,
            "keys_removed": self.keys_removed,
            "membership_changes": self.membership_changes,
            "stats": self.stats.describe(),
        }


def install_adaptive(ps, config: AdaptiveConfig) -> AdaptiveController:
    """Attach an adaptive controller to a re-management-capable PS.

    Builds the :class:`~repro.adaptive.stats.AccessStats` tap and the
    configured policy, wires them into ``ps`` via its ``attach_adaptive``
    hook, and returns the controller. Raises ``TypeError`` for parameter
    servers without re-management support (everything except NuPS) and
    ``RuntimeError`` when a controller is already attached.
    """
    if not hasattr(ps, "remanage") or not hasattr(ps, "attach_adaptive"):
        raise TypeError(
            f"{type(ps).__name__} does not support adaptive management "
            "(needs remanage/attach_adaptive; only NuPS-style servers do)"
        )
    if getattr(ps, "adaptive_controller", None) is not None:
        raise RuntimeError("an adaptive controller is already attached")
    top_k = config.top_k
    if config.policy == "top-k" and top_k is None:
        top_k = ps.plan.num_replicated
    policy = make_policy(
        config.policy,
        hot_spot_factor=config.hot_spot_factor,
        exit_fraction=config.exit_fraction,
        top_k=top_k or 0,
        slack=config.slack,
    )
    stats = AccessStats(ps.store.num_keys, capacity=config.capacity,
                        half_life=config.half_life)
    controller = AdaptiveController(ps, stats, policy, config)
    ps.attach_adaptive(controller)
    return controller
