"""Adaptive parameter management: online hot-spot detection + re-management.

The paper fixes NuPS's management plan before training from dataset
statistics and explicitly lists "fine-grained dynamic switching" as future
work (see :mod:`repro.core.management`). This subsystem closes that loop
without an oracle: per-key access statistics are collected online from the
parameter-server hot path (:mod:`repro.adaptive.stats`), pluggable policies
turn them into a desired :class:`~repro.core.management.ManagementPlan`
(:mod:`repro.adaptive.policy`), and an
:class:`~repro.adaptive.controller.AdaptiveController` periodically diffs the
current plan against the desired one and issues incremental transitions
through ``NuPS.remanage``, charging replica creation/teardown traffic to the
network model (:mod:`repro.adaptive.controller`).

The subsystem is strictly opt-in: with ``ExperimentConfig.adaptive`` unset
(and no controller attached), no statistics are collected and every run is
bit-identical to a build without this package.
"""

from repro.adaptive.controller import (
    AdaptiveConfig,
    AdaptiveController,
    install_adaptive,
)
from repro.adaptive.policy import (
    HotSpotPolicy,
    ManagementPolicy,
    TopKPolicy,
    make_policy,
)
from repro.adaptive.stats import AccessStats, SpaceSavingSketch

__all__ = [
    "AccessStats",
    "AdaptiveConfig",
    "AdaptiveController",
    "HotSpotPolicy",
    "ManagementPolicy",
    "SpaceSavingSketch",
    "TopKPolicy",
    "install_adaptive",
    "make_policy",
]
