"""Online per-key access statistics for adaptive management.

The management policies need two quantities the paper derives offline from
dataset statistics: the *mean* per-key access frequency (the denominator of
the 100x-mean hot-spot heuristic, Section 5.1) and the identity and frequency
of the *hottest* keys. Collecting an exact per-key histogram online would
cost O(num_keys) memory and O(batch) maintenance on the PS hot path — cheap
in this simulator, but exactly the cost a real server cannot pay for billions
of keys. :class:`AccessStats` therefore keeps cost O(hot set):

* a scalar exponential-decay counter of total observed accesses (enough for
  the mean: the key-space size is known), and
* a bounded :class:`SpaceSavingSketch` — the Metwally et al. space-saving
  top-k summary — holding frequency estimates for at most ``capacity`` keys.

Both decay with a configurable half-life in *simulated* time, so the
statistics track the recent workload and age out a hot set that has drifted
away. Decay is applied lazily at adaptation boundaries (the controller calls
:meth:`AccessStats.decay_to` before reading), which keeps the hot-path
``observe`` a pure accumulate: feeding keys from the per-worker batch path or
from round-fusion charge plans never touches clocks, metrics, or values, so
runs with statistics collection disabled are bit-identical to runs without
the subsystem, and enabled runs remain a deterministic function of the seed.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.data.zipf import empirical_skew_summary, frequency_histogram

__all__ = ["AccessStats", "SpaceSavingSketch"]


class SpaceSavingSketch:
    """Bounded top-k frequency sketch (space-saving, batch variant).

    Tracks at most ``capacity`` keys with over-estimating counters. A batch
    of new keys that does not fit evicts the currently smallest counters:
    each new key inherits the evicted counter's value plus its own batch
    count — the classic space-saving property that a *tracked* counter never
    under-estimates, applied per batch instead of per item. Eviction order is
    deterministic: victims are the smallest ``(count, key)`` pairs, new keys
    enter by decreasing batch count (ties by key), so equal streams produce
    equal sketches.

    Batch-overflow rule: when one batch carries more *new* distinct keys
    than the sketch has slots, only the ``capacity`` hottest of them (by
    batch count, ties by key) enter; the colder remainder of that batch is
    dropped rather than chained through further evictions. Size ``capacity``
    well above the per-batch novelty (the default 512 vs. key batches of at
    most a few hundred) and the rule never triggers.
    """

    __slots__ = ("capacity", "_index", "_keys", "_counts", "_size")

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = int(capacity)
        self._index: Dict[int, int] = {}
        self._keys = np.zeros(self.capacity, dtype=np.int64)
        self._counts = np.zeros(self.capacity, dtype=np.float64)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    # ----------------------------------------------------------------- update
    def update(self, keys: list, counts: list) -> None:
        """Add ``counts[i]`` observations of ``keys[i]`` (keys distinct)."""
        index = self._index
        sketch_counts = self._counts
        fresh: list = []
        for key, count in zip(keys, counts):
            slot = index.get(key)
            if slot is not None:
                sketch_counts[slot] += count
            else:
                fresh.append((key, count))
        if not fresh:
            return
        size = self._size
        sketch_keys = self._keys
        free = self.capacity - size
        if free:
            for key, count in fresh[:free]:
                sketch_keys[size] = key
                sketch_counts[size] = count
                index[key] = size
                size += 1
            self._size = size
            fresh = fresh[free:]
            if not fresh:
                return
        # Evict the smallest (count, key) counters, one per remaining fresh
        # key; the hottest fresh keys take the smallest victims. Both orders
        # are total, so the result is independent of dict/stream order.
        fresh.sort(key=lambda pair: (-pair[1], pair[0]))
        victims = np.lexsort((sketch_keys[:size], sketch_counts[:size]))
        for (key, count), slot in zip(fresh, victims.tolist()):
            evicted = int(sketch_keys[slot])
            del index[evicted]
            sketch_keys[slot] = key
            sketch_counts[slot] += count  # inherit the evicted estimate
            index[key] = slot

    def scale(self, factor: float) -> None:
        """Multiply every counter by ``factor`` (exponential decay)."""
        if factor < 0:
            raise ValueError("factor must be non-negative")
        self._counts[: self._size] *= factor

    # ---------------------------------------------------------------- queries
    def estimate(self, key: int) -> float:
        """Frequency estimate of ``key`` (0.0 when not tracked)."""
        slot = self._index.get(int(key))
        return float(self._counts[slot]) if slot is not None else 0.0

    def items(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(keys, estimates)`` sorted by decreasing estimate, ties by key.

        The deterministic total order makes top-k selections reproducible
        even when estimates tie exactly.
        """
        size = self._size
        keys = self._keys[:size]
        counts = self._counts[:size]
        order = np.lexsort((keys, -counts))
        return keys[order].copy(), counts[order].copy()

    def min_estimate(self) -> float:
        """The smallest tracked estimate (the sketch's error bound)."""
        if self._size == 0:
            return 0.0
        return float(self._counts[: self._size].min())


class AccessStats:
    """Decayed access statistics observed from the PS hot path.

    ``observe`` is the tap the parameter server calls with each direct-access
    key batch (the same key arrays its charge plans are built from); it only
    accumulates. ``decay_to`` ages the statistics to a simulated timestamp
    with half-life ``half_life`` and is called by the controller at
    adaptation boundaries, so decay granularity equals the adaptation period.
    """

    def __init__(self, num_keys: int, capacity: int = 512,
                 half_life: float = 0.02) -> None:
        if num_keys <= 0:
            raise ValueError("num_keys must be positive")
        if half_life <= 0:
            raise ValueError("half_life must be positive")
        self.num_keys = int(num_keys)
        self.half_life = float(half_life)
        self.sketch = SpaceSavingSketch(capacity)
        #: Decayed total of observed accesses (same decay as the sketch).
        self.total_observed = 0.0
        #: Undecayed lifetime total (warm-up gating, reporting).
        self.lifetime_observed = 0.0
        self._time = 0.0

    # ----------------------------------------------------------------- taps
    def observe(self, keys: np.ndarray) -> None:
        """Record one batch of accessed keys (hot path: accumulate only)."""
        n = len(keys)
        if n == 0:
            return
        self.total_observed += n
        self.lifetime_observed += n
        if n <= 32:
            grouped: Dict[int, int] = {}
            for key in keys.tolist():
                grouped[key] = grouped.get(key, 0) + 1
            self.sketch.update(list(grouped.keys()), list(grouped.values()))
        else:
            unique, counts = np.unique(np.asarray(keys), return_counts=True)
            self.sketch.update(unique.tolist(), counts.tolist())

    # ----------------------------------------------------------------- decay
    def decay_to(self, now: float) -> None:
        """Age the statistics to simulated time ``now`` (idempotent)."""
        now = float(now)
        if now <= self._time:
            return
        factor = 0.5 ** ((now - self._time) / self.half_life)
        self.sketch.scale(factor)
        self.total_observed *= factor
        self._time = now

    # --------------------------------------------------------------- queries
    def mean_frequency(self) -> float:
        """Decayed mean access frequency over the whole key space."""
        return self.total_observed / self.num_keys

    def hot_keys(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(keys, estimates)`` of the tracked hot set, hottest first."""
        return self.sketch.items()

    def skew_summary(self, top_fraction: float = 0.001) -> dict:
        """Observed-skew summary in the style of Section 2.1.

        Computed over the sketch's frequency histogram (the same
        :func:`~repro.data.zipf.frequency_histogram` curve the offline skew
        analysis reports), padded with zeros for untracked keys.
        """
        _, estimates = self.sketch.items()
        histogram = np.zeros(self.num_keys, dtype=np.float64)
        histogram[: len(estimates)] = frequency_histogram(estimates)
        return empirical_skew_summary(histogram, top_fraction=top_fraction)

    def describe(self) -> dict:
        return {
            "num_keys": self.num_keys,
            "half_life": self.half_life,
            "capacity": self.sketch.capacity,
            "tracked": len(self.sketch),
            "total_observed": self.total_observed,
            "lifetime_observed": self.lifetime_observed,
        }
