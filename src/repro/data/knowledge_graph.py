"""Synthetic knowledge graph generator (stand-in for Wikidata5M).

The generator produces subject–relation–object triples with two properties:

1. **Skewed entity frequencies.** Subjects and objects are drawn from a Zipf
   distribution over entities, so a small set of entities participates in a
   large share of the triples — matching the access skew of Figure 3a.
2. **Learnable structure.** Entities are assigned latent clusters and each
   relation maps subject clusters to object clusters. A ComplEx model can
   learn this structure, so filtered MRR improves with training, which makes
   quality-over-time curves meaningful.

A held-out test split supports filtered ranking evaluation as in LibKGE.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from repro.data.zipf import zipf_probabilities


@dataclass
class KnowledgeGraph:
    """A synthetic knowledge graph with train/test splits."""

    num_entities: int
    num_relations: int
    train_triples: np.ndarray  # (N, 3) int64: subject, relation, object
    test_triples: np.ndarray   # (M, 3) int64
    entity_frequencies: np.ndarray  # per-entity occurrence counts in train
    relation_frequencies: np.ndarray  # per-relation occurrence counts in train
    entity_clusters: np.ndarray = field(repr=False, default=None)

    @property
    def num_train(self) -> int:
        return len(self.train_triples)

    @property
    def num_test(self) -> int:
        return len(self.test_triples)

    def all_true_triples(self) -> set:
        """Set of (s, r, o) tuples across both splits (for filtered ranking)."""
        combined = np.concatenate([self.train_triples, self.test_triples])
        return {tuple(int(x) for x in row) for row in combined}


def generate_knowledge_graph(
    num_entities: int = 2000,
    num_relations: int = 16,
    num_triples: int = 20000,
    num_clusters: int = 8,
    entity_exponent: float = 1.2,
    relation_exponent: float = 0.8,
    noise: float = 0.05,
    test_fraction: float = 0.05,
    seed: int = 0,
) -> KnowledgeGraph:
    """Generate a skewed, learnable synthetic knowledge graph.

    Parameters mirror the shape of Wikidata5M at a much smaller scale: many
    entities, few relations, entity participation heavily skewed.

    ``noise`` is the fraction of triples whose object is drawn at random
    instead of from the relation's target cluster; it keeps the task from
    being trivially separable.
    """
    if num_entities < num_clusters:
        raise ValueError("num_entities must be at least num_clusters")
    if not 0 <= noise <= 1:
        raise ValueError("noise must be in [0, 1]")
    if not 0 < test_fraction < 1:
        raise ValueError("test_fraction must be in (0, 1)")
    rng = np.random.default_rng(seed)

    # Latent structure: entity clusters and per-relation cluster maps.
    entity_clusters = rng.integers(0, num_clusters, size=num_entities)
    relation_cluster_map = rng.integers(
        0, num_clusters, size=(num_relations, num_clusters)
    )
    # Entities of each cluster, for fast object sampling.
    cluster_members: Dict[int, np.ndarray] = {
        c: np.flatnonzero(entity_clusters == c) for c in range(num_clusters)
    }
    for c, members in cluster_members.items():
        if len(members) == 0:
            # Guarantee non-empty clusters (tiny graphs in tests).
            cluster_members[c] = rng.integers(0, num_entities, size=1)

    entity_probs = zipf_probabilities(num_entities, entity_exponent, shuffle=True, rng=rng)
    relation_probs = zipf_probabilities(num_relations, relation_exponent, shuffle=True, rng=rng)

    subjects = rng.choice(num_entities, size=num_triples, p=entity_probs)
    relations = rng.choice(num_relations, size=num_triples, p=relation_probs)

    objects = np.empty(num_triples, dtype=np.int64)
    random_objects = rng.choice(num_entities, size=num_triples, p=entity_probs)
    use_noise = rng.random(num_triples) < noise
    for i in range(num_triples):
        if use_noise[i]:
            objects[i] = random_objects[i]
            continue
        target_cluster = relation_cluster_map[relations[i], entity_clusters[subjects[i]]]
        members = cluster_members[int(target_cluster)]
        # Prefer frequent entities inside the cluster to keep object access skewed.
        member_probs = entity_probs[members]
        member_probs = member_probs / member_probs.sum()
        objects[i] = rng.choice(members, p=member_probs)

    triples = np.stack(
        [subjects.astype(np.int64), relations.astype(np.int64), objects], axis=1
    )
    triples = np.unique(triples, axis=0)
    rng.shuffle(triples)

    num_test = max(1, int(round(test_fraction * len(triples))))
    test_triples = triples[:num_test]
    train_triples = triples[num_test:]

    entity_frequencies = np.bincount(
        np.concatenate([train_triples[:, 0], train_triples[:, 2]]),
        minlength=num_entities,
    ).astype(np.float64)
    relation_frequencies = np.bincount(
        train_triples[:, 1], minlength=num_relations
    ).astype(np.float64)

    return KnowledgeGraph(
        num_entities=num_entities,
        num_relations=num_relations,
        train_triples=train_triples,
        test_triples=test_triples,
        entity_frequencies=entity_frequencies,
        relation_frequencies=relation_frequencies,
        entity_clusters=entity_clusters,
    )
