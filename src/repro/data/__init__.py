"""Synthetic, skew-preserving dataset generators.

The paper evaluates on Wikidata5M, the One Billion Word Benchmark, and a
synthetic Zipf-1.1 matrix. The first two are not shippable here, so this
package generates synthetic stand-ins that preserve the property the
parameter server reacts to — heavily skewed (Zipf-like) access frequencies —
while also embedding enough latent structure that the models can actually
learn something (so that model-quality-over-time curves are meaningful).
"""

from repro.data.zipf import zipf_probabilities, zipf_sample
from repro.data.knowledge_graph import KnowledgeGraph, generate_knowledge_graph
from repro.data.corpus import Corpus, generate_corpus
from repro.data.matrix import MatrixDataset, generate_matrix

__all__ = [
    "zipf_probabilities",
    "zipf_sample",
    "KnowledgeGraph",
    "generate_knowledge_graph",
    "Corpus",
    "generate_corpus",
    "MatrixDataset",
    "generate_matrix",
]
