"""Zipf utilities shared by the synthetic data generators.

Real-world datasets have skewed frequency distributions (Section 2.1): word
frequencies and graph degrees follow Zipf-like laws. The generators in this
package therefore draw item frequencies from a Zipf distribution with a
configurable exponent (the paper's synthetic matrix uses exponent 1.1).
"""

from __future__ import annotations

import numpy as np


def zipf_probabilities(num_items: int, exponent: float = 1.1,
                       shuffle: bool = False,
                       rng: np.random.Generator | None = None) -> np.ndarray:
    """Normalized Zipf probabilities ``p_i ∝ 1 / rank_i**exponent``.

    With ``shuffle=True`` the probabilities are randomly permuted so that hot
    items are spread over the id space (real datasets do not place the most
    frequent item at id 0; and range partitioning should not trivially place
    all hot keys on one server).
    """
    if num_items <= 0:
        raise ValueError("num_items must be positive")
    if exponent < 0:
        raise ValueError("exponent must be non-negative")
    ranks = np.arange(1, num_items + 1, dtype=np.float64)
    weights = 1.0 / np.power(ranks, exponent)
    probabilities = weights / weights.sum()
    if shuffle:
        rng = rng or np.random.default_rng(0)
        probabilities = rng.permutation(probabilities)
    return probabilities


def zipf_sample(rng: np.random.Generator, num_items: int, size: int,
                exponent: float = 1.1,
                probabilities: np.ndarray | None = None) -> np.ndarray:
    """Draw ``size`` item ids from a Zipf distribution over ``num_items`` items."""
    if probabilities is None:
        probabilities = zipf_probabilities(num_items, exponent)
    if len(probabilities) != num_items:
        raise ValueError("probabilities length must equal num_items")
    return rng.choice(num_items, size=size, p=probabilities).astype(np.int64)


def frequency_histogram(counts: np.ndarray) -> np.ndarray:
    """Per-item frequencies sorted in decreasing order.

    The canonical "accesses per parameter" histogram of Figure 3: position
    ``i`` holds the frequency of the ``i``-th most frequently accessed item.
    Shared by the offline skew analysis (:mod:`repro.analysis.skew`) and the
    online access statistics (:mod:`repro.adaptive.stats`), which summarize
    observed frequencies with exactly the same curve.
    """
    counts = np.asarray(counts, dtype=np.float64)
    if counts.ndim != 1:
        raise ValueError("counts must be one-dimensional")
    return np.sort(counts)[::-1]


def empirical_skew_summary(counts: np.ndarray, top_fraction: float = 0.0002) -> dict:
    """Summarize skew the way the paper does in Section 2.1.

    Returns the share of total accesses that go to the ``top_fraction`` most
    frequently accessed items (e.g. "18% of reads go to 0.02% of parameters").
    """
    counts = np.asarray(counts, dtype=np.float64)
    if counts.ndim != 1 or len(counts) == 0:
        raise ValueError("counts must be a non-empty one-dimensional array")
    if not 0 < top_fraction <= 1:
        raise ValueError("top_fraction must be in (0, 1]")
    total = counts.sum()
    sorted_counts = frequency_histogram(counts)
    top_k = max(1, int(round(top_fraction * len(counts))))
    top_share = sorted_counts[:top_k].sum() / total if total > 0 else 0.0
    return {
        "num_items": int(len(counts)),
        "total_accesses": float(total),
        "top_fraction": float(top_k / len(counts)),
        "top_share": float(top_share),
    }
