"""Synthetic text corpus generator (stand-in for the One Billion Word Benchmark).

The generator produces sentences over a vocabulary with two properties:

1. **Zipf word frequencies**, matching the skew shown in Figure 3b: a small
   set of words accounts for a large share of all tokens.
2. **Topical structure**: each sentence is generated from one of several
   latent topics, and every (non-stop) word belongs to one topic. Words of
   the same topic co-occur, so skip-gram training pulls their vectors
   together. This structure supports a similarity-probe evaluation that
   stands in for the paper's analogical-reasoning accuracy (which requires a
   natural-language corpus we cannot ship).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.data.zipf import zipf_probabilities


@dataclass
class Corpus:
    """A synthetic corpus: sentences of word ids plus evaluation probes."""

    vocab_size: int
    sentences: List[np.ndarray]
    word_frequencies: np.ndarray  # empirical token counts per word
    word_topics: np.ndarray       # latent topic of each word (for evaluation)
    similarity_probes: np.ndarray  # (P, 3): anchor, same-topic, other-topic

    @property
    def num_sentences(self) -> int:
        return len(self.sentences)

    @property
    def num_tokens(self) -> int:
        return int(sum(len(s) for s in self.sentences))


def generate_corpus(
    vocab_size: int = 2000,
    num_sentences: int = 2000,
    sentence_length: int = 12,
    num_topics: int = 10,
    frequency_exponent: float = 1.1,
    topic_purity: float = 0.85,
    num_probes: int = 500,
    seed: int = 0,
) -> Corpus:
    """Generate a Zipf-skewed, topic-structured corpus.

    ``topic_purity`` is the probability that a token is drawn from the
    sentence's topic vocabulary (the rest is drawn from the global frequency
    distribution), controlling how much co-occurrence signal there is.
    """
    if vocab_size < num_topics * 2:
        raise ValueError("vocab_size must be at least twice num_topics")
    if not 0 <= topic_purity <= 1:
        raise ValueError("topic_purity must be in [0, 1]")
    rng = np.random.default_rng(seed)

    # Global Zipf frequencies over words; hot words spread over the id space.
    global_probs = zipf_probabilities(vocab_size, frequency_exponent, shuffle=True, rng=rng)
    word_topics = rng.integers(0, num_topics, size=vocab_size)

    # Per-topic word distributions: the topic's own words weighted by their
    # global probability.
    topic_words: List[np.ndarray] = []
    topic_word_probs: List[np.ndarray] = []
    for topic in range(num_topics):
        members = np.flatnonzero(word_topics == topic)
        if len(members) == 0:
            members = rng.integers(0, vocab_size, size=2)
        probs = global_probs[members]
        topic_words.append(members)
        topic_word_probs.append(probs / probs.sum())

    sentences: List[np.ndarray] = []
    for _ in range(num_sentences):
        topic = int(rng.integers(0, num_topics))
        from_topic = rng.random(sentence_length) < topic_purity
        sentence = np.empty(sentence_length, dtype=np.int64)
        num_topic_tokens = int(from_topic.sum())
        if num_topic_tokens:
            sentence[from_topic] = rng.choice(
                topic_words[topic], size=num_topic_tokens, p=topic_word_probs[topic]
            )
        num_global_tokens = sentence_length - num_topic_tokens
        if num_global_tokens:
            sentence[~from_topic] = rng.choice(
                vocab_size, size=num_global_tokens, p=global_probs
            )
        sentences.append(sentence)

    word_frequencies = np.bincount(
        np.concatenate(sentences), minlength=vocab_size
    ).astype(np.float64)

    similarity_probes = _build_similarity_probes(
        rng, word_topics, word_frequencies, num_probes
    )

    return Corpus(
        vocab_size=vocab_size,
        sentences=sentences,
        word_frequencies=word_frequencies,
        word_topics=word_topics,
        similarity_probes=similarity_probes,
    )


def _build_similarity_probes(
    rng: np.random.Generator,
    word_topics: np.ndarray,
    word_frequencies: np.ndarray,
    num_probes: int,
) -> np.ndarray:
    """Build (anchor, same-topic word, other-topic word) probes.

    Only words that actually occur in the corpus are used, and probes prefer
    reasonably frequent words so that their vectors receive enough updates to
    be evaluated meaningfully.
    """
    occurring = np.flatnonzero(word_frequencies > 0)
    if len(occurring) < 3:
        return np.empty((0, 3), dtype=np.int64)
    # Focus on the more frequent half of occurring words.
    frequent = occurring[np.argsort(word_frequencies[occurring])[::-1]]
    frequent = frequent[: max(3, len(frequent) // 2)]

    probes = []
    topics_of_frequent = word_topics[frequent]
    for _ in range(num_probes * 4):
        if len(probes) >= num_probes:
            break
        anchor = frequent[rng.integers(0, len(frequent))]
        same_candidates = frequent[
            (topics_of_frequent == word_topics[anchor]) & (frequent != anchor)
        ]
        diff_candidates = frequent[topics_of_frequent != word_topics[anchor]]
        if len(same_candidates) == 0 or len(diff_candidates) == 0:
            continue
        same = same_candidates[rng.integers(0, len(same_candidates))]
        diff = diff_candidates[rng.integers(0, len(diff_candidates))]
        probes.append((int(anchor), int(same), int(diff)))
    return np.asarray(probes, dtype=np.int64).reshape(-1, 3)
