"""Synthetic matrix-factorization dataset.

Mirrors the paper's matrix factorization workload (Section 5.1): a synthetic
matrix whose revealed cells follow a Zipf-1.1 distribution over rows and
columns, modeled after the Netflix Prize data. Cell values are generated from
ground-truth low-rank factors plus noise, so SGD matrix factorization can
recover them and test RMSE decreases over training.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.zipf import zipf_probabilities


@dataclass
class MatrixDataset:
    """Revealed cells of a synthetic low-rank matrix, with a test split."""

    num_rows: int
    num_cols: int
    rank: int
    train_cells: np.ndarray   # (N, 2) int64: row, col
    train_values: np.ndarray  # (N,) float32
    test_cells: np.ndarray    # (M, 2) int64
    test_values: np.ndarray   # (M,) float32
    row_frequencies: np.ndarray  # revealed cells per row (train)
    col_frequencies: np.ndarray  # revealed cells per column (train)

    @property
    def num_train(self) -> int:
        return len(self.train_cells)

    @property
    def num_test(self) -> int:
        return len(self.test_cells)


def generate_matrix(
    num_rows: int = 2000,
    num_cols: int = 400,
    num_cells: int = 40000,
    rank: int = 8,
    exponent: float = 1.1,
    col_exponent: float | None = None,
    noise: float = 0.1,
    test_fraction: float = 0.05,
    seed: int = 0,
) -> MatrixDataset:
    """Generate a Zipf-skewed low-rank matrix completion dataset.

    The paper's matrix is 10m x 1m with 1b revealed zipf(1.1) cells; this
    generator reproduces the recipe at configurable (much smaller) scale.
    ``col_exponent`` lets the column skew differ from the row skew (at small
    scale a slightly heavier column skew is needed for a handful of columns
    to stand out as hot spots the way they do at the paper's scale).
    """
    if rank <= 0:
        raise ValueError("rank must be positive")
    if not 0 < test_fraction < 1:
        raise ValueError("test_fraction must be in (0, 1)")
    rng = np.random.default_rng(seed)

    row_probs = zipf_probabilities(num_rows, exponent, shuffle=True, rng=rng)
    col_probs = zipf_probabilities(
        num_cols, exponent if col_exponent is None else col_exponent,
        shuffle=True, rng=rng,
    )

    rows = rng.choice(num_rows, size=num_cells, p=row_probs)
    cols = rng.choice(num_cols, size=num_cells, p=col_probs)
    cells = np.stack([rows, cols], axis=1).astype(np.int64)
    # Deduplicate revealed cells, keeping the realized skew.
    cells = np.unique(cells, axis=0)
    rng.shuffle(cells)

    # Ground-truth low-rank factors.
    row_factors = rng.normal(0.0, 1.0 / np.sqrt(rank), size=(num_rows, rank))
    col_factors = rng.normal(0.0, 1.0 / np.sqrt(rank), size=(num_cols, rank))
    values = np.einsum(
        "ij,ij->i", row_factors[cells[:, 0]], col_factors[cells[:, 1]]
    )
    values = values + rng.normal(0.0, noise, size=len(values))
    values = values.astype(np.float32)

    num_test = max(1, int(round(test_fraction * len(cells))))
    test_cells, train_cells = cells[:num_test], cells[num_test:]
    test_values, train_values = values[:num_test], values[num_test:]

    row_frequencies = np.bincount(train_cells[:, 0], minlength=num_rows).astype(np.float64)
    col_frequencies = np.bincount(train_cells[:, 1], minlength=num_cols).astype(np.float64)

    return MatrixDataset(
        num_rows=num_rows,
        num_cols=num_cols,
        rank=rank,
        train_cells=train_cells,
        train_values=train_values,
        test_cells=test_cells,
        test_values=test_values,
        row_frequencies=row_frequencies,
        col_frequencies=col_frequencies,
    )
