"""The common parameter-server API.

All parameter servers in this repository — the baselines from Section 3.1 and
NuPS itself — implement :class:`ParameterServer`. The API mirrors the paper:

* ``pull(worker, keys)`` / ``push(worker, keys, deltas)`` — global reads and
  additive writes (direct access).
* ``localize(worker, keys)`` — the relocation hint of Lapse; a no-op for PSs
  that do not support relocation.
* ``advance_clock(worker)`` — the bounded-staleness clock of replication PSs;
  a no-op elsewhere.
* ``register_distribution`` / ``prepare_sample`` / ``pull_sample`` — the
  sampling API proposed in Section 4.3. The base class provides the fallback
  behaviour of *existing* PSs: the application-level scheme of drawing
  independent samples and accessing them via direct access. NuPS overrides
  these with its sampling manager.

Every call receives a :class:`~repro.simulation.cluster.WorkerContext`; the
PS charges the access cost to that worker's simulated clock and records the
access in the cluster's metrics registry.
"""

from __future__ import annotations

import itertools
from abc import ABC
from typing import Dict, NamedTuple, Optional, Sequence

import numpy as np

from repro.simulation.cluster import Cluster, WorkerContext
from repro.ps.partition import (
    ElasticPartitioner,
    FailoverPartitioner,
    Partitioner,
    RangePartitioner,
)
from repro.ps.storage import ParameterStore


class PullResult(NamedTuple):
    """Result of ``pull_sample``: sampled keys and their current values."""

    keys: np.ndarray
    values: np.ndarray


class SampleHandle:
    """Handle returned by ``prepare_sample`` and consumed by ``pull_sample``.

    A handle owns the (not yet pulled) sample keys for one ``prepare_sample``
    invocation. Schemes may reorder or postpone keys inside the handle, but
    exactly ``total`` samples are delivered over its lifetime.

    The pending keys are stored as a NumPy array plus a cursor so that the
    common case — delivering the next ``count`` keys — is a single slice
    rather than a Python-level list mutation. Schemes that postpone samples
    append to a small overflow tail (:meth:`append_back`).
    """

    _ids = itertools.count()

    def __init__(self, distribution_id: int, keys: np.ndarray) -> None:
        self.handle_id = next(SampleHandle._ids)
        self.distribution_id = distribution_id
        self._keys = np.asarray(keys, dtype=np.int64)
        self._cursor = 0
        self._tail: list[int] = []
        self.total = len(self._keys)
        self.delivered = 0

    @classmethod
    def placeholder(cls, distribution_id: int, count: int) -> "SampleHandle":
        """A handle whose keys are decided lazily at pull time.

        Used by schemes (local sampling, direct-access repurposing) that
        resolve keys only when the samples are actually pulled; the handle
        carries no pending keys, only the delivery accounting.
        """
        handle = cls(distribution_id, np.empty(0, dtype=np.int64))
        handle.total = int(count)
        return handle

    @property
    def remaining(self) -> int:
        return self.total - self.delivered

    @property
    def pending_count(self) -> int:
        """Number of not-yet-delivered keys physically held by the handle."""
        return len(self._keys) - self._cursor + len(self._tail)

    @property
    def pending(self) -> list:
        """The not-yet-delivered keys as a list (read-only convenience view)."""
        return self._keys[self._cursor:].tolist() + list(self._tail)

    def take(self, count: int) -> np.ndarray:
        """Remove and return the next ``count`` pending keys, in order."""
        if count <= 0:
            return np.empty(0, dtype=np.int64)
        end = self._cursor + count
        if end > len(self._keys) and self._tail:
            # Fold the overflow tail back into the array (rare: postponing).
            self._keys = np.concatenate([
                self._keys[self._cursor:],
                np.asarray(self._tail, dtype=np.int64),
            ])
            self._cursor = 0
            self._tail = []
            end = count
        keys = self._keys[self._cursor:end]
        self._cursor += len(keys)
        return keys

    def pop_front(self) -> Optional[int]:
        """Remove and return the next pending key (None when exhausted)."""
        if self._cursor < len(self._keys):
            key = int(self._keys[self._cursor])
            self._cursor += 1
            return key
        if self._tail:
            return int(self._tail.pop(0))
        return None

    def append_back(self, key: int) -> None:
        """Move ``key`` to the end of the handle (used by postponing)."""
        self._tail.append(int(key))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SampleHandle(id={self.handle_id}, dist={self.distribution_id}, "
            f"remaining={self.remaining})"
        )


class ParameterServer(ABC):
    """Base class for all parameter servers in this repository."""

    #: Human-readable architecture name used in reports and benchmarks.
    name = "abstract"

    #: True for architectures whose access paths already block on in-flight
    #: ownership changes (the relocation family's wait-until-arrival
    #: machinery). Those handle dead-owner accesses natively and do not need
    #: the retry/timeout proxy from :mod:`repro.faults.proxy`.
    native_failover_wait = False

    def __init__(
        self,
        store: ParameterStore,
        cluster: Cluster,
        partitioner: Optional[Partitioner] = None,
        seed: int = 0,
    ) -> None:
        self.store = store
        self.cluster = cluster
        self.partitioner = partitioner or RangePartitioner(
            store.num_keys, cluster.num_nodes
        )
        if self.partitioner.num_keys != store.num_keys:
            raise ValueError(
                "partitioner covers a different key space than the store: "
                f"{self.partitioner.num_keys} != {store.num_keys}"
            )
        self.metrics = cluster.metrics
        #: Optional telemetry tracer, installed on the cluster by the runner
        #: before the PS is built (None = telemetry off). Hot paths guard
        #: every record with ``tracer is not None and tracer.access_events``
        #: so the off path costs one attribute read and a None check.
        self.tracer = getattr(cluster, "tracer", None)
        self.rng = np.random.default_rng(seed)
        self._distributions: Dict[int, object] = {}
        self._next_distribution_id = 0
        # Store geometry is fixed for the lifetime of a PS and the network
        # model only changes at explicit scenario boundaries, so the
        # per-access cost constants are computed once per network model. The
        # batch fast paths are called tens of thousands of times per simulated
        # epoch; recomputing these on every call shows up in profiles.
        self._cached_value_bytes = store.value_bytes()
        self.refresh_network()

    def refresh_network(self) -> None:
        """Re-derive cached per-access cost constants from the cluster's network.

        Called after :meth:`~repro.simulation.cluster.Cluster.set_network`
        swaps the cost model mid-experiment (time-varying network scenarios).
        Subclasses that cache additional constants extend this. Note that the
        base constructor invokes this override virtually before subclass
        ``__init__`` bodies run, so overrides must only depend on base-class
        attributes (``network``, ``_cached_value_bytes``) and module
        constants.
        """
        self.network = self.cluster.network
        self._local_access_cost = self.network.local_access_cost
        self._remote_access_cost = self.network.remote_access_cost(
            self._cached_value_bytes
        )
        self._server_occupancy = self.network.server_occupancy(
            self._cached_value_bytes
        )

    # ------------------------------------------------------------ direct API
    def pull(self, worker: WorkerContext, keys: Sequence[int] | np.ndarray) -> np.ndarray:
        """Read the current values of ``keys`` (a working copy per the paper)."""
        raise NotImplementedError

    def push(self, worker: WorkerContext, keys: Sequence[int] | np.ndarray,
             deltas: np.ndarray) -> None:
        """Additively apply ``deltas`` to ``keys``."""
        raise NotImplementedError

    def localize(self, worker: WorkerContext, keys: Sequence[int] | np.ndarray) -> None:
        """Hint that ``keys`` will soon be accessed at the worker's node.

        Only relocation-capable PSs act on this; the default is a no-op, which
        matches classic and replication PSs.
        """

    def advance_clock(self, worker: WorkerContext) -> None:
        """Advance the bounded-staleness clock of the calling worker.

        Only replication PSs act on this; the default is a no-op.
        """

    def housekeeping(self, now: float) -> None:
        """Run background work that is due at simulated time ``now``.

        The training driver calls this periodically; NuPS uses it to run
        replica synchronization and sample-pool preparation.
        """

    def finish_epoch(self) -> None:
        """Flush any buffered state at an epoch boundary (default: no-op)."""

    # ------------------------------------------------------------- fault API
    def keys_owned_by(self, node_id: int) -> np.ndarray:
        """The keys whose primary copy lives on ``node_id`` right now.

        These are the keys that become unreachable (and whose un-checkpointed
        updates are lost) when the node crashes. The default answers from the
        live partitioner; relocation PSs override it to answer from the
        dynamic ownership array.
        """
        return self.partitioner.keys_of(node_id)

    def fail_over(self, node_id: int, survivors: Sequence[int],
                  available_at: float) -> np.ndarray:
        """Re-home ``node_id``'s keys onto ``survivors``; return the moved keys.

        ``available_at`` is the simulated time at which the re-homed keys
        become reachable again (detection plus state transfer); the default
        static-architecture implementation ignores it — the retry/timeout
        proxy (:mod:`repro.faults.proxy`) enforces the availability gap for
        architectures without native waiting.

        The default swaps the live partitioner for a
        :class:`~repro.ps.partition.FailoverPartitioner`. Classic and
        replication PSs resolve every ownership lookup through the
        partitioner at access time, so the swap alone re-routes all future
        traffic to the survivors.
        """
        if getattr(self, "_pre_fault_partitioner", None) is None:
            self._pre_fault_partitioner = self.partitioner
        failover = FailoverPartitioner(self.partitioner, node_id, list(survivors))
        self.partitioner = failover
        return failover.moved_keys

    def on_node_restored(self, node_id: int, now: float) -> None:
        """Undo the failover for ``node_id`` after it rejoins the cluster.

        Rebuilds the partitioner from the pre-fault one, re-applying
        failovers for any nodes that are *still* down (in node order). Called
        after :meth:`~repro.simulation.cluster.Cluster.restore_node`, so the
        cluster's failed set no longer contains ``node_id``.
        """
        base = getattr(self, "_pre_fault_partitioner", None)
        if base is None:
            return
        partitioner = base
        still_failed = sorted(self.cluster.failed)
        for failed in still_failed:
            survivors = self.cluster.active_nodes
            partitioner = FailoverPartitioner(partitioner, failed, survivors)
        self.partitioner = partitioner
        if not still_failed:
            self._pre_fault_partitioner = None

    def recover_values(self, keys: np.ndarray) -> tuple:
        """Best-effort recovery of current values for ``keys`` after a crash.

        Returns ``(values, mask)`` where ``mask[i]`` says whether ``keys[i]``
        could be recovered from surviving redundant state (replicas); only
        masked rows of ``values`` are meaningful. The default PS holds no
        redundant state, so nothing is recoverable and the checkpoint must
        cover everything.
        """
        return None, np.zeros(len(keys), dtype=bool)

    # -------------------------------------------------------- membership API
    def _elastic_partitioner(self) -> ElasticPartitioner:
        """Swap the live partitioner for its elastic wrapper (idempotent).

        If a failover chain is active (some node crashed), the *pre-fault*
        base is wrapped too, so that a later restore rebuilds the chain on
        top of the rebalanced map instead of resurrecting stale ownership.
        """
        pre = getattr(self, "_pre_fault_partitioner", None)
        if pre is not None:
            self._pre_fault_partitioner = ElasticPartitioner.ensure(
                pre, epoch=self.cluster.membership_epoch
            )
        elastic = ElasticPartitioner.ensure(
            self.partitioner, epoch=self.cluster.membership_epoch
        )
        self.partitioner = elastic
        return elastic

    def on_node_added(self, node_id: int, available_at: float) -> np.ndarray:
        """Rebalance ownership onto freshly joined ``node_id``; return moved keys.

        Called after :meth:`~repro.simulation.cluster.Cluster.add_node`.
        ``available_at`` is the simulated time at which migrated keys are
        usable on the new node (join handshake plus state transfer); static
        architectures serve from the updated map immediately — the migration
        cost is charged by the elasticity controller — while relocation PSs
        gate access through their native arrival times.
        """
        elastic = self._elastic_partitioner()
        moved = elastic.rebalance_add(
            node_id, self.cluster.active_nodes, self.cluster.membership_epoch
        )
        pre = getattr(self, "_pre_fault_partitioner", None)
        if pre is not None and pre is not elastic:
            pre.rebalance_add(
                node_id, self.cluster.active_nodes, self.cluster.membership_epoch
            )
        return moved

    def drain_node(self, node_id: int, now: float) -> int:
        """Flush state buffered on ``node_id`` ahead of a planned removal.

        Returns the number of keys whose buffered (acknowledged but not yet
        globally applied) updates were pushed out — the updates a crash of
        the same node would have lost. The default PS buffers nothing.
        """
        return 0

    def migrate_out(self, node_id: int, successors: Sequence[int],
                    available_at: float) -> np.ndarray:
        """Re-home ``node_id``'s keys onto ``successors`` (planned scale-in).

        Unlike :meth:`fail_over` this is a *permanent* ownership rewrite —
        no failover chain, no later restore — and the state arrives intact
        (the elasticity controller drains buffers first and charges the
        transfer), so no updates are lost. Returns the moved keys.
        """
        elastic = self._elastic_partitioner()
        moved = elastic.rebalance_remove(
            node_id, list(successors), self.cluster.membership_epoch
        )
        pre = getattr(self, "_pre_fault_partitioner", None)
        if pre is not None and pre is not elastic:
            pre.rebalance_remove(
                node_id, list(successors), self.cluster.membership_epoch
            )
        return moved

    # ------------------------------------------------------------- round API
    def run_round(self, rounds: Sequence) -> list:
        """Execute one scheduling round of multi-worker operations.

        ``rounds`` is a sequence of :class:`repro.ps.rounds.WorkerRound`
        entries in worker order. The contract is *exactly* the sequential
        per-worker loop: for each entry, ``localize`` the hint keys, ``pull``
        the pull keys, ``push`` the push keys, and ``advance_clock`` — one
        worker after the other. Returns the per-entry pull values (``None``
        where no pull was requested).

        The base implementation *is* that loop, so it is bit-identical by
        construction. Parameter servers with fused implementations override
        this, batching the conflict-free part of the round (see
        :mod:`repro.ps.rounds`) while keeping the same contract.
        """
        return self._run_round_sequential(rounds)

    def direct_point_charger(self):
        """A per-data-point charger for the task-level round engine, or None.

        Tasks that fuse a whole round of per-point direct accesses (e.g.
        matrix factorization: pull two keys, compute, push two keys, charge
        compute — per data point) move the *values* through batched gathers
        and scatters and replay the *charging* through this object, which
        must reproduce the PS's per-call cost grouping bit-exactly. ``None``
        (the default) tells the task to fall back to the sequential path —
        the right answer whenever access costs depend on state the engine
        cannot replay cheaply (replication freshness, sampling pools).
        """
        return None

    def _run_round_sequential(self, rounds: Sequence) -> list:
        """The reference per-worker loop (shared sequential fallback)."""
        results = []
        for entry in rounds:
            worker = entry.worker
            if entry.localize_keys is not None:
                self.localize(worker, entry.localize_keys)
            values = None
            if entry.pull_keys is not None:
                values = self.pull(worker, entry.pull_keys)
            if entry.push_keys is not None:
                self.push(worker, entry.push_keys, entry.push_deltas)
            if entry.advance:
                self.advance_clock(worker)
            results.append(values)
        return results

    # ---------------------------------------------------------- sampling API
    def register_distribution(self, distribution: object, level: object = None) -> int:
        """Register a sampling distribution and return its id.

        ``distribution`` must expose ``sample(rng, size) -> np.ndarray`` over
        parameter keys (see :mod:`repro.core.sampling.distributions`). The
        ``level`` argument is the requested conformity level; the base class
        ignores it because existing PSs always sample independently in
        application code.
        """
        distribution_id = self._next_distribution_id
        self._next_distribution_id += 1
        self._distributions[distribution_id] = distribution
        return distribution_id

    def prepare_sample(self, worker: WorkerContext, distribution_id: int,
                       count: int) -> SampleHandle:
        """Prepare ``count`` samples from a registered distribution.

        The default implementation reproduces what applications do on top of
        existing PSs (Section 4.2, "independent sampling"): draw iid keys in
        application code. No preparatory communication happens.
        """
        distribution = self._get_distribution(distribution_id)
        keys = distribution.sample(self.rng, count)
        return SampleHandle(distribution_id, np.asarray(keys, dtype=np.int64))

    def pull_sample(self, worker: WorkerContext, handle: SampleHandle,
                    count: Optional[int] = None) -> PullResult:
        """Deliver the next ``count`` samples of ``handle`` (default: all).

        The default implementation accesses the sampled keys via direct
        access (``pull``), exactly like an application built on an existing
        PS would.
        """
        count = handle.remaining if count is None else int(count)
        if count < 0:
            raise ValueError("count must be non-negative")
        if count > handle.remaining:
            raise ValueError(
                f"requested {count} samples but only {handle.remaining} remain"
            )
        keys = handle.take(count)
        handle.delivered += count
        values = self.pull(worker, keys) if count else np.empty(
            (0, self.store.value_length), dtype=np.float32
        )
        return PullResult(keys=keys, values=values)

    def push_sample(self, worker: WorkerContext, keys: np.ndarray,
                    deltas: np.ndarray) -> None:
        """Write back updates for previously pulled sample keys.

        Default: direct-access push. NuPS overrides this so that updates to
        sampled keys follow the same management path as the samples came from.
        """
        self.push(worker, keys, deltas)

    # --------------------------------------------------------------- helpers
    def _get_distribution(self, distribution_id: int) -> object:
        try:
            return self._distributions[distribution_id]
        except KeyError:
            raise KeyError(
                f"unknown distribution id {distribution_id}; "
                "call register_distribution first"
            ) from None

    def _validate_push(self, keys: np.ndarray, deltas: np.ndarray) -> tuple:
        keys = np.asarray(keys, dtype=np.int64)
        deltas = np.asarray(deltas, dtype=np.float32)
        if deltas.shape != (len(keys), self.store.value_length):
            raise ValueError(
                f"deltas must have shape ({len(keys)}, {self.store.value_length}), "
                f"got {deltas.shape}"
            )
        return keys, deltas

    def _charge_local(self, worker: WorkerContext, count: int, kind: str) -> None:
        """Charge ``count`` shared-memory accesses to the worker."""
        if count <= 0:
            return
        worker.clock.advance(count * self._local_access_cost)
        self.metrics.record_access(f"{kind}.local", worker.node_id, count)

    def _charge_remote(self, worker: WorkerContext, count: int, kind: str,
                       server_id: Optional[int] = None) -> None:
        """Charge ``count`` classic remote accesses (2 messages each).

        When ``server_id`` is given, each access also occupies that server's
        request-processing thread; if the server is backed up (hot keys), the
        worker experiences queueing delay on top of the wire latency.
        """
        if count <= 0:
            return
        worker.clock.advance(count * self._remote_access_cost)
        if server_id is not None and server_id != worker.node_id:
            # The serving node's request thread is busy for the handling and
            # transfer time of every request. The cumulative busy time of the
            # hottest server is a floor on the epoch's run time (throughput
            # ceiling) — the mechanism that makes classic PSs collapse when
            # hot keys concentrate traffic on one server.
            server = self.cluster.node(server_id).server_clock
            server.advance(count * self._server_occupancy)
        self.metrics.record_access(f"{kind}.remote", worker.node_id, count)
        self.metrics.increment("network.messages", 2 * count, node=worker.node_id)
        self.metrics.increment(
            "network.bytes", count * self._cached_value_bytes, node=worker.node_id
        )

    def _charge_remote_keys(self, worker: WorkerContext, keys: np.ndarray,
                            kind: str) -> None:
        """Charge remote accesses for ``keys``, routed to their home servers."""
        if len(keys) == 0:
            return
        owners = self.partitioner.owners(np.asarray(keys, dtype=np.int64))
        if len(keys) <= 64:
            # Group by server with a dict: sorting tiny batches costs more.
            counts: Dict[int, int] = {}
            for owner in owners.tolist():
                counts[owner] = counts.get(owner, 0) + 1
            for server in sorted(counts):
                self._charge_remote(worker, counts[server], kind, server_id=server)
            return
        servers, group_counts = np.unique(owners, return_counts=True)
        for server, count in zip(servers.tolist(), group_counts.tolist()):
            self._charge_remote(worker, int(count), kind, server_id=int(server))

    @property
    def value_bytes(self) -> int:
        """Bytes per parameter value (drives the network-cost model)."""
        return self.store.value_bytes()

    def state_nbytes(self) -> Dict[str, int]:
        """Resident bytes of the PS's per-node state, by component.

        Unlike :meth:`ParameterStore.total_bytes` (the *logical* cost-model
        size, identical across storage backends), this reports the bytes
        actually allocated right now — on the sparse backend only touched
        chunks count. Subclasses extend the dict with their own state
        (replica matrices, ownership vectors, slot tables) so benchmarks can
        attribute memory per component.
        """
        return {"store": self.store.nbytes()}

    def describe(self) -> Dict[str, object]:
        """A short description of the PS configuration (for reports)."""
        return {
            "name": self.name,
            "num_keys": self.store.num_keys,
            "value_length": self.store.value_length,
            "num_nodes": self.cluster.num_nodes,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(nodes={self.cluster.num_nodes})"
