"""The common parameter-server API.

All parameter servers in this repository — the baselines from Section 3.1 and
NuPS itself — implement :class:`ParameterServer`. The API mirrors the paper:

* ``pull(worker, keys)`` / ``push(worker, keys, deltas)`` — global reads and
  additive writes (direct access).
* ``localize(worker, keys)`` — the relocation hint of Lapse; a no-op for PSs
  that do not support relocation.
* ``advance_clock(worker)`` — the bounded-staleness clock of replication PSs;
  a no-op elsewhere.
* ``register_distribution`` / ``prepare_sample`` / ``pull_sample`` — the
  sampling API proposed in Section 4.3. The base class provides the fallback
  behaviour of *existing* PSs: the application-level scheme of drawing
  independent samples and accessing them via direct access. NuPS overrides
  these with its sampling manager.

Every call receives a :class:`~repro.simulation.cluster.WorkerContext`; the
PS charges the access cost to that worker's simulated clock and records the
access in the cluster's metrics registry.
"""

from __future__ import annotations

import itertools
from abc import ABC
from typing import Dict, NamedTuple, Optional, Sequence

import numpy as np

from repro.simulation.cluster import Cluster, WorkerContext
from repro.ps.partition import Partitioner, RangePartitioner
from repro.ps.storage import ParameterStore


class PullResult(NamedTuple):
    """Result of ``pull_sample``: sampled keys and their current values."""

    keys: np.ndarray
    values: np.ndarray


class SampleHandle:
    """Handle returned by ``prepare_sample`` and consumed by ``pull_sample``.

    A handle owns the (not yet pulled) sample keys for one ``prepare_sample``
    invocation. Schemes may reorder or postpone keys inside the handle, but
    exactly ``total`` samples are delivered over its lifetime.
    """

    _ids = itertools.count()

    def __init__(self, distribution_id: int, keys: np.ndarray) -> None:
        self.handle_id = next(SampleHandle._ids)
        self.distribution_id = distribution_id
        self.pending = list(int(k) for k in keys)
        self.total = len(self.pending)
        self.delivered = 0

    @property
    def remaining(self) -> int:
        return self.total - self.delivered

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SampleHandle(id={self.handle_id}, dist={self.distribution_id}, "
            f"remaining={self.remaining})"
        )


class ParameterServer(ABC):
    """Base class for all parameter servers in this repository."""

    #: Human-readable architecture name used in reports and benchmarks.
    name = "abstract"

    def __init__(
        self,
        store: ParameterStore,
        cluster: Cluster,
        partitioner: Optional[Partitioner] = None,
        seed: int = 0,
    ) -> None:
        self.store = store
        self.cluster = cluster
        self.partitioner = partitioner or RangePartitioner(
            store.num_keys, cluster.num_nodes
        )
        if self.partitioner.num_keys != store.num_keys:
            raise ValueError(
                "partitioner covers a different key space than the store: "
                f"{self.partitioner.num_keys} != {store.num_keys}"
            )
        self.metrics = cluster.metrics
        self.network = cluster.network
        self.rng = np.random.default_rng(seed)
        self._distributions: Dict[int, object] = {}
        self._next_distribution_id = 0

    # ------------------------------------------------------------ direct API
    def pull(self, worker: WorkerContext, keys: Sequence[int] | np.ndarray) -> np.ndarray:
        """Read the current values of ``keys`` (a working copy per the paper)."""
        raise NotImplementedError

    def push(self, worker: WorkerContext, keys: Sequence[int] | np.ndarray,
             deltas: np.ndarray) -> None:
        """Additively apply ``deltas`` to ``keys``."""
        raise NotImplementedError

    def localize(self, worker: WorkerContext, keys: Sequence[int] | np.ndarray) -> None:
        """Hint that ``keys`` will soon be accessed at the worker's node.

        Only relocation-capable PSs act on this; the default is a no-op, which
        matches classic and replication PSs.
        """

    def advance_clock(self, worker: WorkerContext) -> None:
        """Advance the bounded-staleness clock of the calling worker.

        Only replication PSs act on this; the default is a no-op.
        """

    def housekeeping(self, now: float) -> None:
        """Run background work that is due at simulated time ``now``.

        The training driver calls this periodically; NuPS uses it to run
        replica synchronization and sample-pool preparation.
        """

    def finish_epoch(self) -> None:
        """Flush any buffered state at an epoch boundary (default: no-op)."""

    # ---------------------------------------------------------- sampling API
    def register_distribution(self, distribution: object, level: object = None) -> int:
        """Register a sampling distribution and return its id.

        ``distribution`` must expose ``sample(rng, size) -> np.ndarray`` over
        parameter keys (see :mod:`repro.core.sampling.distributions`). The
        ``level`` argument is the requested conformity level; the base class
        ignores it because existing PSs always sample independently in
        application code.
        """
        distribution_id = self._next_distribution_id
        self._next_distribution_id += 1
        self._distributions[distribution_id] = distribution
        return distribution_id

    def prepare_sample(self, worker: WorkerContext, distribution_id: int,
                       count: int) -> SampleHandle:
        """Prepare ``count`` samples from a registered distribution.

        The default implementation reproduces what applications do on top of
        existing PSs (Section 4.2, "independent sampling"): draw iid keys in
        application code. No preparatory communication happens.
        """
        distribution = self._get_distribution(distribution_id)
        keys = distribution.sample(self.rng, count)
        return SampleHandle(distribution_id, np.asarray(keys, dtype=np.int64))

    def pull_sample(self, worker: WorkerContext, handle: SampleHandle,
                    count: Optional[int] = None) -> PullResult:
        """Deliver the next ``count`` samples of ``handle`` (default: all).

        The default implementation accesses the sampled keys via direct
        access (``pull``), exactly like an application built on an existing
        PS would.
        """
        count = handle.remaining if count is None else int(count)
        if count < 0:
            raise ValueError("count must be non-negative")
        if count > handle.remaining:
            raise ValueError(
                f"requested {count} samples but only {handle.remaining} remain"
            )
        keys = np.asarray(handle.pending[:count], dtype=np.int64)
        del handle.pending[:count]
        handle.delivered += count
        values = self.pull(worker, keys) if count else np.empty(
            (0, self.store.value_length), dtype=np.float32
        )
        return PullResult(keys=keys, values=values)

    def push_sample(self, worker: WorkerContext, keys: np.ndarray,
                    deltas: np.ndarray) -> None:
        """Write back updates for previously pulled sample keys.

        Default: direct-access push. NuPS overrides this so that updates to
        sampled keys follow the same management path as the samples came from.
        """
        self.push(worker, keys, deltas)

    # --------------------------------------------------------------- helpers
    def _get_distribution(self, distribution_id: int) -> object:
        try:
            return self._distributions[distribution_id]
        except KeyError:
            raise KeyError(
                f"unknown distribution id {distribution_id}; "
                "call register_distribution first"
            ) from None

    def _validate_push(self, keys: np.ndarray, deltas: np.ndarray) -> tuple:
        keys = np.asarray(keys, dtype=np.int64)
        deltas = np.asarray(deltas, dtype=np.float32)
        if deltas.shape != (len(keys), self.store.value_length):
            raise ValueError(
                f"deltas must have shape ({len(keys)}, {self.store.value_length}), "
                f"got {deltas.shape}"
            )
        return keys, deltas

    def _charge_local(self, worker: WorkerContext, count: int, kind: str) -> None:
        """Charge ``count`` shared-memory accesses to the worker."""
        if count <= 0:
            return
        worker.clock.advance(count * self.network.local_access_cost)
        self.metrics.record_access(f"{kind}.local", worker.node_id, count)

    def _charge_remote(self, worker: WorkerContext, count: int, kind: str,
                       server_id: Optional[int] = None) -> None:
        """Charge ``count`` classic remote accesses (2 messages each).

        When ``server_id`` is given, each access also occupies that server's
        request-processing thread; if the server is backed up (hot keys), the
        worker experiences queueing delay on top of the wire latency.
        """
        if count <= 0:
            return
        value_bytes = self.store.value_bytes()
        per_access = self.network.remote_access_cost(value_bytes)
        worker.clock.advance(count * per_access)
        if server_id is not None and server_id != worker.node_id:
            # The serving node's request thread is busy for the handling and
            # transfer time of every request. The cumulative busy time of the
            # hottest server is a floor on the epoch's run time (throughput
            # ceiling) — the mechanism that makes classic PSs collapse when
            # hot keys concentrate traffic on one server.
            server = self.cluster.node(server_id).server_clock
            server.advance(count * self.network.server_occupancy(value_bytes))
        self.metrics.record_access(f"{kind}.remote", worker.node_id, count)
        self.metrics.increment("network.messages", 2 * count, node=worker.node_id)
        self.metrics.increment(
            "network.bytes", count * value_bytes, node=worker.node_id
        )

    def _charge_remote_keys(self, worker: WorkerContext, keys: np.ndarray,
                            kind: str) -> None:
        """Charge remote accesses for ``keys``, routed to their home servers."""
        if len(keys) == 0:
            return
        owners = self.partitioner.owners(np.asarray(keys, dtype=np.int64))
        for server in np.unique(owners):
            count = int(np.count_nonzero(owners == server))
            self._charge_remote(worker, count, kind, server_id=int(server))

    @property
    def value_bytes(self) -> int:
        return self.store.value_bytes()

    def describe(self) -> Dict[str, object]:
        """A short description of the PS configuration (for reports)."""
        return {
            "name": self.name,
            "num_keys": self.store.num_keys,
            "value_length": self.store.value_length,
            "num_nodes": self.cluster.num_nodes,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(nodes={self.cluster.num_nodes})"
