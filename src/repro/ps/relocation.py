"""Relocation parameter server (Lapse-like).

A relocation PS moves parameters between nodes at run time so that accesses
can be processed locally (Section 3.1.3). Applications issue ``localize``
hints ahead of access; the PS relocates the parameter asynchronously using
Lapse's three-message protocol (request to the home node, forward to the
current owner, response carrying the value). Accesses to parameters that the
node currently owns go through shared memory; accesses to parameters owned
elsewhere are processed remotely, routed via the home node.

Relocation keeps exactly one current copy of every parameter, so it provides
per-key sequential consistency. Its weakness — reproduced here — is hot-spot
contention: when several nodes localize the same key in quick succession, the
key keeps moving, accesses find it gone, and workers either wait for an
in-flight relocation or fall back to remote access.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.ps.base import ParameterServer
from repro.simulation.cluster import Cluster, WorkerContext
from repro.ps.partition import Partitioner
from repro.ps.storage import ParameterStore


class RelocationPS(ParameterServer):
    """Lapse-like PS: dynamic parameter allocation via ``localize``."""

    name = "relocation"

    def __init__(
        self,
        store: ParameterStore,
        cluster: Cluster,
        partitioner: Partitioner | None = None,
        relocation_enabled: bool = True,
        seed: int = 0,
    ) -> None:
        super().__init__(store, cluster, partitioner, seed)
        #: ``relocation_enabled=False`` degrades this PS to a classic PS
        #: (the paper uses exactly this configuration as its classic baseline).
        self.relocation_enabled = relocation_enabled
        all_keys = np.arange(store.num_keys, dtype=np.int64)
        #: Current owner node of every key; starts at the static partition.
        self.current_owner = self.partitioner.owners(all_keys).astype(np.int64)
        #: Simulated time at which the most recent relocation of a key
        #: completes at its new owner. Accesses before that time must wait.
        self.arrival_time = np.zeros(store.num_keys, dtype=np.float64)

    # ------------------------------------------------------------- direct API
    def localize(self, worker: WorkerContext, keys: Sequence[int] | np.ndarray) -> None:
        """Asynchronously relocate ``keys`` to the worker's node."""
        if not self.relocation_enabled:
            return
        keys = np.asarray(keys, dtype=np.int64)
        if len(keys) == 0:
            return
        node_id = worker.node_id
        background = self.cluster.node(node_id).background_clock
        value_bytes = self.store.value_bytes()
        relocation_latency = self.network.relocation_cost(value_bytes)
        occupancy = self.network.relocation_occupancy(value_bytes)
        for key in keys:
            key = int(key)
            if self.current_owner[key] == node_id:
                continue
            # The relocation is handled asynchronously by the node's
            # communication thread: the thread is busy for ``occupancy`` per
            # relocation, and the key arrives one protocol round-trip after
            # the request leaves (whichever of the two finishes later).
            start = max(worker.clock.now, background.now)
            background.advance_to(start + occupancy)
            arrival = max(start + relocation_latency, background.now)
            self.current_owner[key] = node_id
            self.arrival_time[key] = arrival
            self.metrics.increment("relocation.count", 1, node=node_id)
            self.metrics.increment("network.messages", 3, node=node_id)
            self.metrics.increment(
                "network.bytes", value_bytes, node=node_id
            )

    def pull(self, worker: WorkerContext, keys: Sequence[int] | np.ndarray) -> np.ndarray:
        keys = np.asarray(keys, dtype=np.int64)
        self._charge_access(worker, keys, "pull")
        return self.store.get(keys)

    def push(self, worker: WorkerContext, keys: Sequence[int] | np.ndarray,
             deltas: np.ndarray) -> None:
        keys, deltas = self._validate_push(keys, deltas)
        self._charge_access(worker, keys, "push")
        self.store.add(keys, deltas)

    # --------------------------------------------------------------- internals
    def _charge_access(self, worker: WorkerContext, keys: np.ndarray, kind: str) -> None:
        """Charge each access as local, wait-then-local, or routed-remote."""
        if len(keys) == 0:
            return
        node_id = worker.node_id
        for key in keys:
            key = int(key)
            if self.current_owner[key] == node_id:
                arrival = self.arrival_time[key]
                if arrival > worker.clock.now:
                    # The key is on its way here: wait for the relocation to
                    # finish, then access through shared memory.
                    worker.clock.advance_to(arrival)
                    self.metrics.increment(
                        "relocation.waits", 1, node=node_id
                    )
                self._charge_local(worker, 1, kind)
            else:
                self._charge_routed_remote(worker, key, kind)

    def _charge_routed_remote(self, worker: WorkerContext, key: int, kind: str) -> None:
        """Synchronous remote access routed via the home node.

        If the key still resides at its home node the access takes the same
        two messages as in a classic PS; if it has been relocated elsewhere
        the home node forwards the request, which adds a third message. The
        serving node's request thread is occupied either way.
        """
        node_id = worker.node_id
        value_bytes = self.store.value_bytes()
        owner = int(self.current_owner[key])
        home = self.partitioner.owner(key)
        messages = 2 if owner == home else 3
        cost = (messages - 1) * self.network.message_cost(0) \
            + self.network.message_cost(value_bytes)
        worker.clock.advance(cost)
        if owner != node_id:
            server = self.cluster.node(owner).server_clock
            server.advance(self.network.server_occupancy(value_bytes))
        self.metrics.record_access(f"{kind}.remote", node_id, 1)
        self.metrics.increment("network.messages", messages, node=node_id)
        self.metrics.increment("network.bytes", value_bytes, node=node_id)

    # ------------------------------------------------------------- inspection
    def is_local(self, node_id: int, key: int) -> bool:
        """Whether ``key`` is currently allocated at ``node_id``."""
        return bool(self.current_owner[int(key)] == node_id)

    def local_keys(self, node_id: int) -> np.ndarray:
        """All keys currently allocated at ``node_id``."""
        return np.flatnonzero(self.current_owner == node_id).astype(np.int64)

    def owner_of(self, key: int) -> int:
        """Current owner node of ``key``."""
        return int(self.current_owner[int(key)])
