"""Relocation parameter server (Lapse-like).

A relocation PS moves parameters between nodes at run time so that accesses
can be processed locally (Section 3.1.3). Applications issue ``localize``
hints ahead of access; the PS relocates the parameter asynchronously using
Lapse's three-message protocol (request to the home node, forward to the
current owner, response carrying the value). Accesses to parameters that the
node currently owns go through shared memory; accesses to parameters owned
elsewhere are processed remotely, routed via the home node.

Relocation keeps exactly one current copy of every parameter, so it provides
per-key sequential consistency. Its weakness — reproduced here — is hot-spot
contention: when several nodes localize the same key in quick succession, the
key keeps moving, accesses find it gone, and workers either wait for an
in-flight relocation or fall back to remote access.

Charging is implemented twice: a vectorized batch fast path that partitions
each key batch with NumPy masks and charges clocks/metrics once per group,
and the original per-key scalar path kept behind ``batch_charging=False`` as
a debugging/equivalence oracle. Both produce bit-identical simulated clocks
and metrics (the batch path folds per-access costs with the exact
left-to-right prefix sums of :mod:`repro.simulation.clock`).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.ps.base import ParameterServer
from repro.ps.chunks import ChunkedVector, flatnonzero_equal
from repro.ps.rounds import RoundAccounting
from repro.simulation.clock import fold_costs
from repro.simulation.cluster import Cluster, WorkerContext
from repro.ps.partition import Partitioner
from repro.ps.storage import ParameterStore


def first_occurrence_in_order(keys: np.ndarray) -> np.ndarray:
    """Positions of the first occurrence of each distinct key, in batch order."""
    if len(keys) <= 64:
        # A set walk beats np.unique's sort at this size; positions come out
        # ascending either way.
        seen: set = set()
        first_list = []
        for position, key in enumerate(keys.tolist()):
            if key not in seen:
                seen.add(key)
                first_list.append(position)
        if len(first_list) == len(keys):
            return np.arange(len(keys), dtype=np.int64)
        return np.asarray(first_list, dtype=np.int64)
    _, first = np.unique(keys, return_index=True)
    first.sort()
    return first


#: Batches at or below this size take the hybrid path: a Python loop over the
#: keys (NumPy dispatch overhead dominates at this size) that still defers
#: clock and metrics updates to one grouped write per batch. Above it, the
#: mask-based NumPy path wins. Both are bit-identical to the scalar oracle.
SMALL_BATCH = 64


class RelocationPS(ParameterServer):
    """Lapse-like PS: dynamic parameter allocation via ``localize``."""

    name = "relocation"

    #: Accesses to keys with a pending ``arrival_time`` block until the key
    #: arrives — the same machinery absorbs failover: keys lost in a crash are
    #: re-homed with ``arrival_time`` set to the recovery completion time, so
    #: workers naturally wait out the recovery instead of erroring.
    native_failover_wait = True

    def __init__(
        self,
        store: ParameterStore,
        cluster: Cluster,
        partitioner: Partitioner | None = None,
        relocation_enabled: bool = True,
        seed: int = 0,
        batch_charging: bool = True,
    ) -> None:
        super().__init__(store, cluster, partitioner, seed)
        #: ``relocation_enabled=False`` degrades this PS to a classic PS
        #: (the paper uses exactly this configuration as its classic baseline).
        self.relocation_enabled = relocation_enabled
        #: Vectorized batch charging (the fast path). ``False`` selects the
        #: per-key scalar reference path; both are bit-identical.
        self.batch_charging = bool(batch_charging)
        if store.backend == "sparse":
            # Chunked owner state: untouched chunks read as the static
            # partition (evaluated per chunk, never stored) and as
            # "already arrived" — exactly the dense initial state — so the
            # resident footprint tracks the keys that actually relocated.
            static = self.partitioner
            chunk_rows = store.storage.chunk_rows

            def _static_owners(lo: int, hi: int) -> np.ndarray:
                return static._compute_owners(
                    np.arange(lo, hi, dtype=np.int64)
                ).astype(np.int64)

            #: Current owner node of every key; starts at the static partition.
            self.current_owner = ChunkedVector(
                store.num_keys, np.int64, fill_fn=_static_owners,
                chunk_rows=chunk_rows, label="relocation.current_owner")
            #: Simulated time at which the most recent relocation of a key
            #: completes at its new owner. Accesses before that time must wait.
            self.arrival_time = ChunkedVector(
                store.num_keys, np.float64, 0.0,
                chunk_rows=chunk_rows, label="relocation.arrival_time")
        else:
            all_keys = np.arange(store.num_keys, dtype=np.int64)
            self.current_owner = self.partitioner.owners(all_keys).astype(np.int64)
            self.arrival_time = np.zeros(store.num_keys, dtype=np.float64)

    def refresh_network(self) -> None:
        """Re-derive the cached cost constants (see the base class)."""
        super().refresh_network()
        message0 = self.network.message_cost(0)
        message_value = self.network.message_cost(self._cached_value_bytes)
        self._cost_two_messages = 1 * message0 + message_value
        self._cost_three_messages = 2 * message0 + message_value
        self._relocation_latency = self.network.relocation_cost(
            self._cached_value_bytes
        )
        self._relocation_occupancy = self.network.relocation_occupancy(
            self._cached_value_bytes
        )

    # ------------------------------------------------------------- direct API
    def localize(self, worker: WorkerContext, keys: Sequence[int] | np.ndarray) -> None:
        """Asynchronously relocate ``keys`` to the worker's node."""
        if not self.relocation_enabled:
            return
        keys = np.asarray(keys, dtype=np.int64)
        if len(keys) == 0:
            return
        tracer = self.tracer
        if tracer is not None and tracer.access_events:
            tracer.event("localize", "access", worker.clock.now,
                         node=worker.node_id, worker=worker.worker_id,
                         keys=len(keys))
        if not self.batch_charging:
            self._localize_scalar(worker, keys)
            return
        self._relocate_batch(worker.node_id, keys, worker_clock=worker.clock.now)

    def _relocate_batch(self, node_id: int, keys: np.ndarray,
                        worker_clock: float | None = None,
                        sampling: bool = False, acc=None) -> None:
        """Batch relocation shared by :meth:`localize` and ``localize_async``.

        ``worker_clock`` is the issuing worker's time for synchronous hints
        (the communication thread starts no earlier than the worker); ``None``
        means background-issued relocations that start at the thread's own
        time. ``sampling`` additionally counts ``relocation.sampling``.
        Bit-identical to the per-key scalar oracles.
        """
        # Within one call only the first occurrence of a key relocates (the
        # second finds the key already owned by this node), and keys that are
        # already local are free.
        if len(keys) <= SMALL_BATCH:
            seen = set()
            moving_list = []
            owners = self.current_owner.take(keys).tolist()
            for key, owner in zip(keys.tolist(), owners):
                if owner != node_id and key not in seen:
                    seen.add(key)
                    moving_list.append(key)
            if not moving_list:
                return
            moving = np.asarray(moving_list, dtype=np.int64)
        else:
            ordered = keys[first_occurrence_in_order(keys)]
            moving = ordered[self.current_owner[ordered] != node_id]
        n = len(moving)
        if n == 0:
            return
        background = self.cluster.node(node_id).background_clock
        relocation_latency = self._relocation_latency
        occupancy = self._relocation_occupancy
        # The relocations are handled back to back by the node's communication
        # thread: relocation k starts when relocation k-1 releases the thread,
        # so the start times are an exact prefix sum of the occupancies.
        if worker_clock is None:
            first_start = background.now
        else:
            first_start = max(worker_clock, background.now)
        if n <= SMALL_BATCH:
            # ``max(start + latency, start + occupancy)`` equals
            # ``start + max(latency, occupancy)`` bit-for-bit (IEEE addition
            # is monotone and both candidates are computed as plain sums).
            effective = relocation_latency if relocation_latency >= occupancy \
                else occupancy
            start = first_start
            arrival_list = []
            for _ in range(n):
                arrival_list.append(start + effective)
                start = start + occupancy
            background.advance_to(start)
            arrivals: np.ndarray | list = arrival_list
        else:
            starts = np.empty(n, dtype=np.float64)
            starts[0] = first_start
            starts[1:] = occupancy
            np.add.accumulate(starts, out=starts)
            background.advance_to(float(starts[-1]) + occupancy)
            arrivals = np.maximum(starts + relocation_latency, starts + occupancy)
        self.current_owner[moving] = node_id
        self.arrival_time[moving] = arrivals
        if acc is not None:
            acc.add_counter(node_id, "relocation.count", n)
            if sampling:
                acc.add_counter(node_id, "relocation.sampling", n)
            acc.add_counter(node_id, "network.messages", 3 * n)
            acc.add_counter(node_id, "network.bytes",
                            n * self._cached_value_bytes)
            return
        self.metrics.increment("relocation.count", n, node=node_id)
        if sampling:
            self.metrics.increment("relocation.sampling", n, node=node_id)
        self.metrics.increment("network.messages", 3 * n, node=node_id)
        self.metrics.increment(
            "network.bytes", n * self._cached_value_bytes, node=node_id
        )

    def _localize_scalar(self, worker: WorkerContext, keys: np.ndarray) -> None:
        """Per-key reference implementation of :meth:`localize`."""
        node_id = worker.node_id
        background = self.cluster.node(node_id).background_clock
        value_bytes = self.store.value_bytes()
        relocation_latency = self.network.relocation_cost(value_bytes)
        occupancy = self.network.relocation_occupancy(value_bytes)
        for key in keys:
            key = int(key)
            if self.current_owner[key] == node_id:
                continue
            # The relocation is handled asynchronously by the node's
            # communication thread: the thread is busy for ``occupancy`` per
            # relocation, and the key arrives one protocol round-trip after
            # the request leaves (whichever of the two finishes later).
            start = max(worker.clock.now, background.now)
            background.advance_to(start + occupancy)
            arrival = max(start + relocation_latency, background.now)
            self.current_owner[key] = node_id
            self.arrival_time[key] = arrival
            self.metrics.increment("relocation.count", 1, node=node_id)
            self.metrics.increment("network.messages", 3, node=node_id)
            self.metrics.increment(
                "network.bytes", value_bytes, node=node_id
            )

    def pull(self, worker: WorkerContext, keys: Sequence[int] | np.ndarray) -> np.ndarray:
        keys = np.asarray(keys, dtype=np.int64)
        tracer = self.tracer
        if tracer is not None and tracer.access_events:
            tracer.event("pull", "access", worker.clock.now,
                         node=worker.node_id, worker=worker.worker_id,
                         keys=len(keys))
        self._charge_access(worker, keys, "pull")
        return self.store.get(keys)

    def push(self, worker: WorkerContext, keys: Sequence[int] | np.ndarray,
             deltas: np.ndarray) -> None:
        keys, deltas = self._validate_push(keys, deltas)
        tracer = self.tracer
        if tracer is not None and tracer.access_events:
            tracer.event("push", "access", worker.clock.now,
                         node=worker.node_id, worker=worker.worker_id,
                         keys=len(keys))
        self._charge_access(worker, keys, "push")
        self.store.add(keys, deltas)

    # -------------------------------------------------------------- round API
    def run_round(self, rounds: Sequence) -> list:
        """Round-fused execution (see the base class for the contract).

        Segments are walked in worker order against live ownership state, so
        mid-round relocations from other workers' hints are seen exactly as
        the sequential path sees them. The fusion: one charge plan per
        segment serves both its pull and its push (ownership cannot change
        between them), the sub-``SMALL_BATCH`` per-key Python loop is
        replaced with a single wait-aware fold, and order-free bookkeeping —
        additive metric counters, constant-increment server occupancy — is
        deferred to one aggregated write per round.
        """
        if len(rounds) <= 1 or not self.batch_charging:
            return self._run_round_sequential(rounds)
        acc = RoundAccounting()
        results: list = []
        for entry in rounds:
            worker = entry.worker
            if entry.localize_keys is not None:
                self._localize_deferred(worker, entry.localize_keys, acc)
            values = None
            charge_plan = None
            if entry.pull_keys is not None:
                charge_plan = self._charge_access_deferred(
                    worker, entry.pull_keys, "pull", acc
                )
                values = self.store.get(entry.pull_keys)
            if entry.push_keys is not None:
                keys, deltas = self._validate_push(entry.push_keys,
                                                   entry.push_deltas)
                # Pushing the keys just pulled (the dominant train-step
                # shape): the pull's charge plan is reused verbatim.
                reuse = charge_plan if entry.push_keys is entry.pull_keys \
                    else None
                self._charge_access_deferred(worker, keys, "push", acc,
                                             reuse=reuse)
                self.store.add(keys, deltas)
            if entry.advance:
                self.advance_clock(worker)
            results.append(values)
        acc.flush(self, self._server_occupancy)
        return results

    def _localize_deferred(self, worker: WorkerContext, keys: np.ndarray,
                           acc: RoundAccounting) -> None:
        """:meth:`localize` with metric counters deferred to ``acc``."""
        if not self.relocation_enabled or len(keys) == 0:
            return
        self._relocate_batch(worker.node_id, keys,
                             worker_clock=worker.clock.now, acc=acc)

    def _charge_access_deferred(self, worker: WorkerContext, keys: np.ndarray,
                                kind: str, acc: RoundAccounting,
                                reuse=None):
        """One call's `_charge_access` with bookkeeping deferred to ``acc``.

        Bit-identical to the sequential hybrid/vectorized/scalar paths.
        Returns an opaque charge plan; a follow-up call over the *same* keys
        (the pull-then-push shape of a training step) passes it back via
        ``reuse`` to skip recomputing ownership state, which cannot have
        changed in between — only ``localize`` moves keys, and the round
        engine issues hints before the accesses. Waits are always re-checked
        against the live clock, exactly as the sequential path would.
        """
        n = len(keys)
        if n == 0:
            return None
        node_id = worker.node_id
        clock = worker.clock
        local_cost = 1 * self._local_access_cost
        if reuse is not None:
            costs_l, arrivals_l, local_l, n_local, n_remote, routed_extra, \
                server_counts = reuse
            if costs_l is None:
                # All-local and fully arrived at pull time; arrivals only
                # recede further into the past, so the plain fold applies.
                clock.advance_repeated(local_cost, n)
                acc.add_access(node_id, f"{kind}.local", n)
                return reuse
        else:
            owners = self.current_owner.take(keys)
            local_mask = owners == node_id
            n_local = int(np.count_nonzero(local_mask))
            n_remote = n - n_local
            routed_extra = 0
            server_counts = None
            if n_remote == 0:
                arrivals = self.arrival_time.take(keys)
                if float(arrivals.max()) <= clock.now:
                    # The localize-ahead steady state: one repeated fold.
                    clock.advance_repeated(local_cost, n)
                    acc.add_access(node_id, f"{kind}.local", n)
                    return (None, None, None, n, 0, 0, None)
                costs_l = [local_cost] * n
                arrivals_l = arrivals.tolist()
                local_l = None  # every position is local
            else:
                costs = np.empty(n, dtype=np.float64)
                if n_local:
                    costs[local_mask] = local_cost
                    arrivals_l = self.arrival_time.take(keys).tolist()
                    local_l = local_mask.tolist()
                else:
                    arrivals_l = None
                    local_l = ()
                remote_mask = ~local_mask if n_local else slice(None)
                remote_owners = owners[remote_mask]
                homes = self.partitioner.owners(keys[remote_mask])
                routed = remote_owners != homes
                routed_extra = int(np.count_nonzero(routed))
                costs[remote_mask] = np.where(
                    routed, self._cost_three_messages, self._cost_two_messages
                )
                costs_l = costs.tolist()
                server_counts = {}
                for owner in remote_owners.tolist():
                    server_counts[owner] = server_counts.get(owner, 0) + 1

        # Fold the costs into the worker clock (Python float additions are
        # the same IEEE-754 doubles as NumPy's), waiting at in-flight
        # relocations exactly like the sequential walk.
        now = clock.now
        waits = 0
        if arrivals_l is None:
            # No local key can be in flight: a plain left fold.
            for cost in costs_l:
                now += cost
        elif local_l is None:
            # Every position is local, some arrivals may be pending.
            for cost, arrival in zip(costs_l, arrivals_l):
                if arrival > now:
                    now = arrival
                    waits += 1
                now += cost
        else:
            for position, cost in enumerate(costs_l):
                if local_l[position]:
                    arrival = arrivals_l[position]
                    if arrival > now:
                        now = arrival
                        waits += 1
                now += cost
        clock.advance_to(now)

        if n_local:
            acc.add_access(node_id, f"{kind}.local", n_local)
        if waits:
            acc.add_counter(node_id, "relocation.waits", waits)
        if n_remote:
            acc.add_access(node_id, f"{kind}.remote", n_remote)
            acc.add_counter(node_id, "network.messages",
                            2 * n_remote + routed_extra)
            acc.add_counter(node_id, "network.bytes",
                            n_remote * self._cached_value_bytes)
            for server, count in server_counts.items():
                acc.add_server(server, count)
        return (costs_l, arrivals_l, local_l, n_local, n_remote, routed_extra,
                server_counts)

    def direct_point_charger(self):
        """Per-point charge replay for the task-level round engine."""
        if not self.batch_charging:
            return None  # the scalar oracle is the reference; do not fuse
        return _RelocationPointCharger(self)

    # --------------------------------------------------------------- internals
    def _charge_access(self, worker: WorkerContext, keys: np.ndarray, kind: str) -> None:
        """Charge each access as local, wait-then-local, or routed-remote."""
        if len(keys) == 0:
            return
        if not self.batch_charging:
            self._charge_access_scalar(worker, keys, kind)
            return
        if len(keys) <= SMALL_BATCH:
            self._charge_access_small(worker, keys, kind)
            return
        node_id = worker.node_id
        owners = self.current_owner[keys]
        local_mask = owners == node_id
        n = len(keys)
        n_local = int(np.count_nonzero(local_mask))
        n_remote = n - n_local
        value_bytes = self._cached_value_bytes

        # Per-position worker-clock cost, in batch order.
        costs = np.empty(n, dtype=np.float64)
        if n_local:
            costs[local_mask] = 1 * self._local_access_cost
        routed_extra = 0
        if n_remote:
            remote_idx = np.flatnonzero(~local_mask)
            remote_keys = keys[remote_idx]
            remote_owners = owners[remote_idx]
            homes = self.partitioner.owners(remote_keys)
            # If the key still resides at its home node the access takes the
            # same two messages as in a classic PS; if it has been relocated
            # elsewhere the home node forwards the request (third message).
            routed = remote_owners != homes
            routed_extra = int(np.count_nonzero(routed))
            costs[remote_idx] = np.where(
                routed, self._cost_three_messages, self._cost_two_messages
            )

        # Fold the costs into the worker clock, pausing at in-flight
        # relocations: a local key whose relocation has not arrived yet blocks
        # the worker until the arrival time.
        clock = worker.clock
        waits = 0
        wait_candidates: np.ndarray | tuple = ()
        if n_local:
            arrivals = self.arrival_time[keys]
            wait_candidates = np.flatnonzero(local_mask & (arrivals > clock.now))
        if len(wait_candidates) == 0:
            clock.advance_sequence(costs)
        else:
            now = clock.now
            segment_start = 0
            for position in wait_candidates.tolist():
                now = fold_costs(now, costs[segment_start:position])
                arrival = float(arrivals[position])
                if arrival > now:
                    # The key is on its way here: wait for the relocation to
                    # finish, then access through shared memory.
                    now = arrival
                    waits += 1
                segment_start = position
            now = fold_costs(now, costs[segment_start:])
            clock.advance_to(now)

        # The serving nodes' request threads are occupied once per remote
        # access (grouped by current owner; each clock is independent, so the
        # per-server fold is bit-identical to the interleaved per-key loop).
        if n_remote:
            server_occupancy = self._server_occupancy
            servers, counts = np.unique(remote_owners, return_counts=True)
            for server, count in zip(servers.tolist(), counts.tolist()):
                self.cluster.node(server).server_clock.advance_repeated(
                    server_occupancy, count
                )

        metrics = self.metrics
        if n_local:
            metrics.record_access(f"{kind}.local", node_id, n_local)
        if waits:
            metrics.increment("relocation.waits", waits, node=node_id)
        if n_remote:
            metrics.record_access(f"{kind}.remote", node_id, n_remote)
            metrics.increment(
                "network.messages", 2 * n_remote + routed_extra, node=node_id
            )
            metrics.increment(
                "network.bytes", n_remote * value_bytes, node=node_id
            )

    def _charge_access_small(self, worker: WorkerContext, keys: np.ndarray,
                             kind: str) -> None:
        """Hybrid path for small batches: Python loop, grouped bookkeeping.

        Performs the same sequence of clock additions as the scalar oracle
        (so simulated times are bit-identical) but defers metrics and server
        occupancy to one grouped update per batch.
        """
        node_id = worker.node_id
        owners = self.current_owner.take(keys).tolist()
        arrivals = self.arrival_time.take(keys).tolist()
        local_cost = 1 * self._local_access_cost
        clock = worker.clock
        now = clock.now
        n = len(owners)
        if owners.count(node_id) == n and max(arrivals) <= now:
            # Everything is already here and arrived (the localize-ahead
            # steady state): one repeated fold, one metrics write.
            clock.advance_repeated(local_cost, n)
            self.metrics.record_access(f"{kind}.local", node_id, n)
            return
        n_local = 0
        n_remote = 0
        waits = 0
        messages = 0
        homes = None
        cost_two = cost_three = 0.0
        server_counts: dict[int, int] = {}
        for i, owner in enumerate(owners):
            if owner == node_id:
                arrival = arrivals[i]
                if arrival > now:
                    # The key is on its way here: wait for the relocation to
                    # finish, then access through shared memory.
                    now = arrival
                    waits += 1
                now = now + local_cost
                n_local += 1
            else:
                if homes is None:
                    homes = self.partitioner.owners(keys).tolist()
                    cost_two = self._cost_two_messages
                    cost_three = self._cost_three_messages
                if owner == homes[i]:
                    now = now + cost_two
                    messages += 2
                else:
                    now = now + cost_three
                    messages += 3
                n_remote += 1
                server_counts[owner] = server_counts.get(owner, 0) + 1
        clock.advance_to(now)

        metrics = self.metrics
        if n_local:
            metrics.record_access(f"{kind}.local", node_id, n_local)
        if waits:
            metrics.increment("relocation.waits", waits, node=node_id)
        if n_remote:
            server_occupancy = self._server_occupancy
            for server, count in server_counts.items():
                self.cluster.node(server).server_clock.advance_repeated(
                    server_occupancy, count
                )
            metrics.record_access(f"{kind}.remote", node_id, n_remote)
            metrics.increment("network.messages", messages, node=node_id)
            metrics.increment(
                "network.bytes", n_remote * self._cached_value_bytes, node=node_id
            )

    def _charge_access_scalar(self, worker: WorkerContext, keys: np.ndarray,
                              kind: str) -> None:
        """Per-key reference implementation of :meth:`_charge_access`."""
        node_id = worker.node_id
        for key in keys:
            key = int(key)
            if self.current_owner[key] == node_id:
                arrival = self.arrival_time[key]
                if arrival > worker.clock.now:
                    # The key is on its way here: wait for the relocation to
                    # finish, then access through shared memory.
                    worker.clock.advance_to(arrival)
                    self.metrics.increment(
                        "relocation.waits", 1, node=node_id
                    )
                self._charge_local(worker, 1, kind)
            else:
                self._charge_routed_remote(worker, key, kind)

    def _charge_routed_remote(self, worker: WorkerContext, key: int, kind: str) -> None:
        """Synchronous remote access routed via the home node.

        If the key still resides at its home node the access takes the same
        two messages as in a classic PS; if it has been relocated elsewhere
        the home node forwards the request, which adds a third message. The
        serving node's request thread is occupied either way.
        """
        node_id = worker.node_id
        value_bytes = self.store.value_bytes()
        owner = int(self.current_owner[key])
        home = self.partitioner.owner(key)
        messages = 2 if owner == home else 3
        cost = (messages - 1) * self.network.message_cost(0) \
            + self.network.message_cost(value_bytes)
        worker.clock.advance(cost)
        if owner != node_id:
            server = self.cluster.node(owner).server_clock
            server.advance(self.network.server_occupancy(value_bytes))
        self.metrics.record_access(f"{kind}.remote", node_id, 1)
        self.metrics.increment("network.messages", messages, node=node_id)
        self.metrics.increment("network.bytes", value_bytes, node=node_id)

    # ------------------------------------------------------------- inspection
    def is_local(self, node_id: int, key: int) -> bool:
        """Whether ``key`` is currently allocated at ``node_id``."""
        return bool(self.current_owner[int(key)] == node_id)

    def local_keys(self, node_id: int) -> np.ndarray:
        """All keys currently allocated at ``node_id``."""
        return flatnonzero_equal(self.current_owner, node_id)

    def owner_of(self, key: int) -> int:
        """Current owner node of ``key``."""
        return int(self.current_owner[int(key)])

    def state_nbytes(self) -> dict:
        sizes = super().state_nbytes()
        sizes["ownership"] = (
            int(self.current_owner.nbytes) + int(self.arrival_time.nbytes)
        )
        return sizes

    # -------------------------------------------------------------- fault API
    def keys_owned_by(self, node_id: int) -> np.ndarray:
        """Keys whose current (dynamic) copy lives on ``node_id``."""
        return self.local_keys(node_id)

    def fail_over(self, node_id: int, survivors: Sequence[int],
                  available_at: float) -> np.ndarray:
        """Re-home the crashed node's keys and gate access on recovery.

        The home map (static partitioner) is swapped as in the base class so
        routed remote accesses stop consulting the dead home node. The
        *current* copies the node held are reassigned round-robin to the
        survivors with ``arrival_time = available_at``: subsequent accesses
        reuse the existing wait-until-arrival path and block until the
        recovered state has been transferred — no retry proxy needed.
        """
        lost = self.local_keys(node_id)
        super().fail_over(node_id, survivors, available_at)
        if len(lost):
            survivors_arr = np.asarray(list(survivors), dtype=np.int64)
            self.current_owner[lost] = survivors_arr[
                np.arange(len(lost)) % len(survivors_arr)
            ]
            self.arrival_time[lost] = float(available_at)
        return lost

    # --------------------------------------------------------- membership API
    def on_node_added(self, node_id: int, available_at: float) -> np.ndarray:
        """Re-home a share of current copies onto the joining node.

        The home map is rebalanced as in the base class; the *current* copies
        of the ceded keys move to the new node with
        ``arrival_time = available_at``, so accesses issued before the
        transfer completes wait on the native arrival gate — the same
        mechanism in-flight relocations use.
        """
        moved = super().on_node_added(node_id, available_at)
        if len(moved):
            self.current_owner[moved] = node_id
            self.arrival_time[moved] = float(available_at)
        return moved

    def migrate_out(self, node_id: int, successors: Sequence[int],
                    available_at: float) -> np.ndarray:
        """Permanently re-home the leaving node's current copies.

        Mirrors :meth:`fail_over`'s round-robin reassignment, but rewrites
        the home map through the elastic partitioner (no failover chain) and
        moves *state*, not just routing: the drained values travel with the
        keys, so nothing is lost.
        """
        lost = self.local_keys(node_id)
        super().migrate_out(node_id, successors, available_at)
        if len(lost):
            successors_arr = np.asarray(list(successors), dtype=np.int64)
            self.current_owner[lost] = successors_arr[
                np.arange(len(lost)) % len(successors_arr)
            ]
            self.arrival_time[lost] = float(available_at)
        return lost


class _RelocationPointCharger:
    """Exact per-point charge replay for a round of direct accesses.

    Replays, per data point, the relocation PS's pull call, push call and
    compute charge over the same keys: local keys wait for in-flight
    relocations against the live running clock and cost one shared-memory
    access; remote keys cost two or three messages depending on whether the
    current owner is the home node, and occupy the owner's request thread
    (a constant increment, so the per-server counts aggregate across the
    round). Ownership state is read live at each worker's slot — after its
    own localize hint, before any later worker's — exactly like the
    sequential path.
    """

    __slots__ = ("ps", "acc")

    def __init__(self, ps: RelocationPS) -> None:
        self.ps = ps
        self.acc = RoundAccounting()

    def charge_chunk(self, worker: WorkerContext, keys2d: np.ndarray,
                     compute_cost: float) -> None:
        """Charge one worker's chunk: per point, pull + push + compute."""
        ps = self.ps
        node_id = worker.node_id
        num_points, keys_per_point = keys2d.shape
        flat = keys2d.ravel()
        owners = ps.current_owner.take(flat)
        local_mask = owners == node_id
        n_local = int(np.count_nonzero(local_mask))
        total = num_points * keys_per_point
        n_remote = total - n_local
        local_l = local_mask.tolist()
        arrivals_l = ps.arrival_time.take(flat).tolist() if n_local else None
        owners_l = None
        homes_l = None
        cost_two = cost_three = 0.0
        if n_remote:
            owners_l = owners.tolist()
            homes_l = ps.partitioner.owners(flat).tolist()
            cost_two = ps._cost_two_messages
            cost_three = ps._cost_three_messages
        local_cost = 1 * ps._local_access_cost
        compute = compute_cost * worker.compute_scale
        clock = worker.clock
        now = clock.now
        waits = 0
        messages = 0
        acc = self.acc
        for point in range(num_points):
            base = point * keys_per_point
            for _call in range(2):  # the pull call, then the push call
                for position in range(base, base + keys_per_point):
                    if local_l[position]:
                        arrival = arrivals_l[position]
                        if arrival > now:
                            now = arrival
                            waits += 1
                        now += local_cost
                    else:
                        owner = owners_l[position]
                        if owner == homes_l[position]:
                            now += cost_two
                            messages += 2
                        else:
                            now += cost_three
                            messages += 3
                        acc.add_server(owner, 1)
            now += compute
        clock.advance_to(now)
        if n_local:
            acc.add_access(node_id, "pull.local", n_local)
            acc.add_access(node_id, "push.local", n_local)
        if waits:
            acc.add_counter(node_id, "relocation.waits", waits)
        if n_remote:
            acc.add_access(node_id, "pull.remote", n_remote)
            acc.add_access(node_id, "push.remote", n_remote)
            acc.add_counter(node_id, "network.messages", messages)
            acc.add_counter(node_id, "network.bytes",
                            2 * n_remote * ps._cached_value_bytes)

    def finish(self) -> None:
        """Write the round's aggregated counters and server occupancy."""
        self.acc.flush(self.ps, self.ps._server_occupancy)
