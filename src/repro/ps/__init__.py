"""Parameter servers.

This package provides the parameter-server substrate of the reproduction:

* :class:`~repro.ps.storage.ParameterStore` — the dense key/value store that
  holds the model.
* :class:`~repro.ps.partition.RangePartitioner` /
  :class:`~repro.ps.partition.HashPartitioner` — static key-to-server maps.
* :class:`~repro.ps.base.ParameterServer` — the common API (``pull``,
  ``push``, ``localize``, ``advance_clock``, sampling hooks).
* Baseline architectures from the paper's Section 3.1:
  :class:`~repro.ps.local.SingleNodePS` (shared memory),
  :class:`~repro.ps.classic.ClassicPS` (static allocation, PS-Lite-like),
  :class:`~repro.ps.replication.ReplicationPS` (Petuum-like SSP / ESSP), and
  :class:`~repro.ps.relocation.RelocationPS` (Lapse-like).

NuPS itself, the paper's contribution, lives in :mod:`repro.core`.
"""

from repro.ps.base import ParameterServer, PullResult
from repro.ps.rounds import WorkerRound
from repro.ps.storage import ParameterStore
from repro.ps.partition import HashPartitioner, Partitioner, RangePartitioner
from repro.ps.local import SingleNodePS
from repro.ps.classic import ClassicPS
from repro.ps.replication import ReplicationPS, ReplicationProtocol
from repro.ps.relocation import RelocationPS

__all__ = [
    "ParameterServer",
    "PullResult",
    "WorkerRound",
    "ParameterStore",
    "Partitioner",
    "RangePartitioner",
    "HashPartitioner",
    "SingleNodePS",
    "ClassicPS",
    "ReplicationPS",
    "ReplicationProtocol",
    "RelocationPS",
]
