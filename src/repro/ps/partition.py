"""Static key-to-server partitioning.

Classic parameter servers allocate parameters to servers statically
(Section 3.1.1), typically by range-partitioning the key space. The same
static map doubles as the *home node* map in a relocation PS: the home node
always knows which node currently owns a key, so a requester contacts the
home node first (the first of Lapse's three relocation messages).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np


#: Key spaces at or below this size serve :meth:`Partitioner.owners` from a
#: dense key -> owner table (one ``take`` per call). Above it the table would
#: dominate memory (8 GiB at 10^9 keys), so lookups go hierarchical:
#: chunk-level table first, partition formula for the mixed boundary chunks.
DENSE_TABLE_MAX_KEYS = 1 << 22

#: Keys per chunk of the hierarchical owner table. At 10^9 logical keys the
#: chunk table is ~2 MB instead of an 8 GiB per-key table.
OWNER_CHUNK_KEYS = 1 << 12


class Partitioner(ABC):
    """Maps parameter keys to the server (node) that statically owns them."""

    #: Whether :meth:`owner` is non-decreasing in the key. Monotone
    #: partitioners (range partitioning) get exact chunk-homogeneity
    #: detection in the hierarchical lookup; non-monotone ones (hashing)
    #: fall back to the vectorized partition formula per call.
    monotone_owners = False

    def __init__(self, num_keys: int, num_servers: int) -> None:
        if num_keys <= 0:
            raise ValueError("num_keys must be positive")
        if num_servers <= 0:
            raise ValueError("num_servers must be positive")
        self.num_keys = int(num_keys)
        self.num_servers = int(num_servers)
        self._owner_table: np.ndarray | None = None
        self._chunk_owner_table: np.ndarray | None = None

    @abstractmethod
    def owner(self, key: int) -> int:
        """Server id of ``key``."""

    def owners(self, keys: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`owner` for an array of keys.

        Small key spaces are served from a precomputed key -> owner lookup
        table: ``owners`` sits on the access-charging hot path, and one
        ``take`` beats re-evaluating the partition formula on every call.
        Beyond :data:`DENSE_TABLE_MAX_KEYS` the lookup goes hierarchical
        (chunk-then-offset): a chunk-level table resolves chunks owned by a
        single server, and only keys in mixed (boundary) chunks re-evaluate
        the partition formula — O(1) per key with no ``num_keys``-length
        allocation.

        Out-of-range keys raise ``KeyError`` exactly like scalar
        :meth:`owner`: negative keys are rejected by an explicit (cheap,
        once-per-batch) check rather than silently wrapping through
        ``take``'s negative indexing, and too-large keys by ``take``'s
        bounds check or the explicit check on the hierarchical path.
        """
        keys = np.asarray(keys, dtype=np.int64)
        if not keys.size:
            return keys.copy()
        if int(keys.min()) < 0:
            raise KeyError(
                f"keys out of range [0, {self.num_keys}): min={int(keys.min())}"
            )
        if self.num_keys <= DENSE_TABLE_MAX_KEYS:
            if self._owner_table is None:
                all_keys = np.arange(self.num_keys, dtype=np.int64)
                self._owner_table = self._compute_owners(all_keys)
            return self._owner_table.take(keys, mode="raise")
        hi = int(keys.max())
        if hi >= self.num_keys:
            raise KeyError(
                f"keys out of range [0, {self.num_keys}): max={hi}"
            )
        if self._chunk_owner_table is None:
            self._chunk_owner_table = self._build_chunk_owner_table()
        chunk_ids = keys >> (OWNER_CHUNK_KEYS.bit_length() - 1)
        owners = self._chunk_owner_table.take(chunk_ids)
        mixed = owners < 0
        if mixed.any():
            owners[mixed] = self._compute_owners(keys[mixed])
        return owners

    def _build_chunk_owner_table(self) -> np.ndarray:
        """Chunk id -> owner, or -1 where a chunk spans multiple servers."""
        num_chunks = -(-self.num_keys // OWNER_CHUNK_KEYS)
        starts = np.arange(num_chunks, dtype=np.int64) * OWNER_CHUNK_KEYS
        ends = np.minimum(starts + OWNER_CHUNK_KEYS - 1, self.num_keys - 1)
        if not self.monotone_owners:
            # Without monotonicity equal endpoints prove nothing; every
            # chunk goes through the partition formula.
            return np.full(num_chunks, -1, dtype=np.int64)
        start_owners = self._compute_owners(starts)
        end_owners = self._compute_owners(ends)
        return np.where(start_owners == end_owners, start_owners, -1)

    @abstractmethod
    def _compute_owners(self, keys: np.ndarray) -> np.ndarray:
        """Evaluate the partition formula for an array of (valid) keys."""

    def keys_of(self, server: int) -> np.ndarray:
        """All keys statically assigned to ``server``."""
        if not 0 <= server < self.num_servers:
            raise ValueError(f"server {server} out of range [0, {self.num_servers})")
        all_keys = np.arange(self.num_keys, dtype=np.int64)
        return all_keys[self.owners(all_keys) == server]

    def partition_sizes(self) -> np.ndarray:
        """Number of keys per server (length ``num_servers``)."""
        all_keys = np.arange(self.num_keys, dtype=np.int64)
        return np.bincount(self.owners(all_keys), minlength=self.num_servers)


class RangePartitioner(Partitioner):
    """Contiguous range partitioning (the classic-PS default).

    Key ``k`` belongs to server ``k // ceil(num_keys / num_servers)``, i.e.
    servers own contiguous, nearly equal-sized ranges.
    """

    monotone_owners = True

    def __init__(self, num_keys: int, num_servers: int) -> None:
        super().__init__(num_keys, num_servers)
        self._range_size = -(-self.num_keys // self.num_servers)  # ceil division

    def owner(self, key: int) -> int:
        self._check_key(key)
        return min(key // self._range_size, self.num_servers - 1)

    def _compute_owners(self, keys: np.ndarray) -> np.ndarray:
        return np.minimum(keys // self._range_size, self.num_servers - 1)

    def _check_key(self, key: int) -> None:
        if not 0 <= key < self.num_keys:
            raise KeyError(f"key {key} out of range [0, {self.num_keys})")


class FailoverPartitioner(Partitioner):
    """A partitioner with one server's keys re-assigned to the survivors.

    Wraps an existing partitioner (the ``base``) and redistributes the keys of
    ``failed_server`` round-robin over ``survivors``. Because every ownership
    lookup in the static architectures (classic, replication) goes through the
    live partitioner, installing a ``FailoverPartitioner`` *is* the complete
    owner-failover mechanism for them: subsequent accesses route to the
    survivor that took over the key, with no change to the access hot paths.

    Instances chain: when a second node fails while the first is still down,
    the second failover wraps the first. ``base`` always names the partitioner
    that was active immediately before this failover, so restores can rebuild
    the chain for the nodes that are still down.
    """

    def __init__(self, base: Partitioner, failed_server: int,
                 survivors: "np.ndarray | list[int]") -> None:
        super().__init__(base.num_keys, base.num_servers)
        survivors = np.asarray(survivors, dtype=np.int64)
        if len(survivors) == 0:
            raise ValueError("failover needs at least one surviving server")
        if failed_server in survivors:
            raise ValueError(
                f"failed server {failed_server} cannot be its own survivor"
            )
        self.base = base
        self.failed_server = int(failed_server)
        self.survivors = survivors
        all_keys = np.arange(self.num_keys, dtype=np.int64)
        table = base.owners(all_keys).copy()
        moved = np.flatnonzero(table == failed_server)
        table[moved] = survivors[np.arange(len(moved)) % len(survivors)]
        self._owner_table = table
        #: Keys whose ownership this failover moved off the failed server.
        self.moved_keys = moved

    def owner(self, key: int) -> int:
        if not 0 <= key < self.num_keys:
            raise KeyError(f"key {key} out of range [0, {self.num_keys})")
        return int(self._owner_table[key])

    def _compute_owners(self, keys: np.ndarray) -> np.ndarray:
        return self._owner_table.take(keys)


class ElasticPartitioner(Partitioner):
    """An explicit owner-table partitioner that rebalances on membership changes.

    Wraps the partitioner that was live when the first membership change
    happened and keeps a dense key -> owner table that
    :meth:`rebalance_add` / :meth:`rebalance_remove` rewrite incrementally:

    * **add** — every existing owner cedes its fair share (``1 / n_active``
      of its keys, taken from the tail of its key range) to the new node, so
      the table converges to balance while moving only ``~1/n_active`` of
      the key space (incremental rebalancing, not a full reshuffle).
    * **remove** — the leaving node's keys are re-assigned round-robin over
      its successors, exactly like a failover, except the caller drains the
      state *before* the switch (planned scale-in loses nothing).

    ``epoch`` records the cluster membership epoch the table was last
    rebalanced for, so proxies can diagnose stale ownership.
    """

    def __init__(self, base: Partitioner, epoch: int = 0) -> None:
        super().__init__(base.num_keys, base.num_servers)
        self.base = base
        self.epoch = int(epoch)
        all_keys = np.arange(self.num_keys, dtype=np.int64)
        self._owner_table = base.owners(all_keys).copy()
        #: Keys moved by the most recent rebalance (empty before the first).
        self.last_moved = np.empty(0, dtype=np.int64)

    @classmethod
    def ensure(cls, partitioner: Partitioner, epoch: int = 0) -> "ElasticPartitioner":
        """``partitioner`` itself if already elastic, else a wrapping instance."""
        if isinstance(partitioner, cls):
            return partitioner
        return cls(partitioner, epoch=epoch)

    def owner(self, key: int) -> int:
        if not 0 <= key < self.num_keys:
            raise KeyError(f"key {key} out of range [0, {self.num_keys})")
        return int(self._owner_table[key])

    def _compute_owners(self, keys: np.ndarray) -> np.ndarray:
        return self._owner_table.take(keys)

    # ---------------------------------------------------------- rebalancing
    def rebalance_add(self, new_node: int, active_nodes: "list[int]",
                      epoch: int) -> np.ndarray:
        """Cede each active owner's fair share to ``new_node``; return moved keys.

        ``active_nodes`` is the post-join active set (including
        ``new_node``). Each pre-existing owner gives ``count // n_active``
        of its keys — the tail of its sorted key list, so range partitions
        stay mostly contiguous — which lands the new node within one key per
        donor of the ideal ``num_keys / n_active`` share.
        """
        new_node = int(new_node)
        if new_node < 0:
            raise ValueError(f"new_node must be non-negative, got {new_node}")
        n_active = len(active_nodes)
        if n_active < 2:
            raise ValueError("rebalance_add needs at least one donor node")
        self.num_servers = max(self.num_servers, new_node + 1)
        moved_parts = []
        for owner in sorted(int(n) for n in active_nodes):
            if owner == new_node:
                continue
            owned = np.flatnonzero(self._owner_table == owner)
            share = len(owned) // n_active
            if share:
                moved_parts.append(owned[-share:])
        moved = np.concatenate(moved_parts) if moved_parts else \
            np.empty(0, dtype=np.int64)
        self._owner_table[moved] = new_node
        self._chunk_owner_table = None
        self.epoch = int(epoch)
        self.last_moved = moved
        return moved

    def rebalance_remove(self, node_id: int, successors: "list[int]",
                         epoch: int) -> np.ndarray:
        """Re-home ``node_id``'s keys round-robin over ``successors``."""
        successors_arr = np.asarray(list(successors), dtype=np.int64)
        if len(successors_arr) == 0:
            raise ValueError("rebalance_remove needs at least one successor")
        if int(node_id) in successors_arr:
            raise ValueError(
                f"removed node {node_id} cannot be its own successor"
            )
        moved = np.flatnonzero(self._owner_table == int(node_id))
        self._owner_table[moved] = successors_arr[
            np.arange(len(moved)) % len(successors_arr)
        ]
        self._chunk_owner_table = None
        self.epoch = int(epoch)
        self.last_moved = moved
        return moved


class HashPartitioner(Partitioner):
    """Hash (modulo) partitioning.

    Spreads adjacent keys across servers, which avoids placing all hot keys of
    a frequency-sorted key space on one server. Used by some PSs and useful
    for ablations.
    """

    def owner(self, key: int) -> int:
        if not 0 <= key < self.num_keys:
            raise KeyError(f"key {key} out of range [0, {self.num_keys})")
        return int(key % self.num_servers)

    def _compute_owners(self, keys: np.ndarray) -> np.ndarray:
        return keys % self.num_servers
