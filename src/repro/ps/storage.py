"""Parameter storage with pluggable dense/sparse backends.

The parameter store is the ground-truth home of all model parameters. Keys
are contiguous integers ``0 .. num_keys - 1`` and every key maps to a fixed
length ``float32`` vector. Parameter servers layer their management
techniques (replication, relocation, caching) on top of one shared store;
the store itself knows nothing about nodes or the network.

Two storage backends sit behind the same API (selected via
:class:`~repro.ps.chunks.StorageConfig`):

* ``dense`` — the original contiguous arrays. This is the bit-identity
  oracle: every sparse-backend operation must produce exactly the values,
  versions, clocks and metrics the dense backend produces.
* ``sparse`` — fixed-size chunks materialized on first write (see
  :mod:`repro.ps.chunks`), with an optional memory budget. Untouched chunks
  read as zeros without being allocated, so a store over 10^8+ logical keys
  costs memory proportional to the *touched* key set, not the key space.

Updates are *additive* (``add``), which matches how the paper's workloads use
a PS: workers push gradients or gradient-like deltas that the server adds to
the current value. A ``set`` operation exists for initialization and for
replica synchronization.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.ps.chunks import (
    DENSE_STORAGE,
    ChunkedMatrix,
    ChunkedVector,
    MemoryBudget,
    StorageConfig,
)


def scatter_add_rows(target, keys: np.ndarray, deltas,
                     keys_list: list | None = None) -> None:
    """``np.add.at(target, keys, deltas)`` with a duplicate-free fast path.

    ``np.add.at`` is an order of magnitude slower than fancy ``+=``; when the
    keys of a small batch are distinct the two are bit-identical (exactly one
    addition lands on every row either way), so the fast path applies there
    and the general unbuffered path only when duplicates are present.

    Chunked targets (:mod:`repro.ps.chunks`) implement the same accumulation
    semantics per materialized chunk and are dispatched to directly.
    """
    if not isinstance(target, np.ndarray):
        target.add_at(keys, deltas)
        return
    n = len(keys)
    if n == 1:
        # Basic indexing: no fancy-index machinery at all.
        index = int(keys[0]) if keys_list is None else keys_list[0]
        if target.ndim == 1:
            target[index] += deltas if np.isscalar(deltas) else deltas[0]
        else:
            target[index] += deltas[0]
        return
    if n <= 64:
        as_list = keys.tolist() if keys_list is None else keys_list
        if len(set(as_list)) == n:
            target[keys] += deltas
            return
    np.add.at(target, keys, deltas)


class ParameterStore:
    """``num_keys x value_length`` float32 parameter storage (dense or sparse)."""

    def __init__(self, num_keys: int, value_length: int, seed: int | None = None,
                 init_scale: float = 0.0,
                 storage: StorageConfig | None = None) -> None:
        if num_keys <= 0:
            raise ValueError("num_keys must be positive")
        if value_length <= 0:
            raise ValueError("value_length must be positive")
        self.num_keys = int(num_keys)
        self.value_length = int(value_length)
        self.storage = storage if storage is not None else DENSE_STORAGE
        rng = np.random.default_rng(seed)
        if self.storage.backend == "dense":
            self._budget = None
            if init_scale:
                self._values = rng.normal(
                    0.0, init_scale, size=(num_keys, value_length)
                ).astype(np.float32)
            else:
                self._values = np.zeros((num_keys, value_length), dtype=np.float32)
            # Monotonic per-key version counters; bumped on every write. Used
            # by tests and by replica managers to detect missed updates.
            self._versions = np.zeros(num_keys, dtype=np.int64)
        else:
            budget = None
            if self.storage.store_budget_bytes is not None:
                budget = MemoryBudget(
                    self.storage.store_budget_bytes,
                    label=f"parameter store ({self.num_keys} keys)",
                )
            self._budget = budget
            chunk_rows = self.storage.chunk_rows
            if init_scale:
                # A random initialization is one RNG stream over the *full*
                # matrix; reproducing it lazily per chunk is impossible, so
                # the sparse backend materializes eagerly here (budget
                # checked) to stay bit-identical to the dense oracle. Lazy
                # sparseness pays off for zero-initialized stores (scale
                # sweeps, embedding output vectors) and API-driven init.
                full = rng.normal(
                    0.0, init_scale, size=(num_keys, value_length)
                ).astype(np.float32)
                self._values = ChunkedMatrix.from_dense(
                    full, chunk_rows, budget, label="store.values"
                )
            else:
                self._values = ChunkedMatrix(
                    num_keys, value_length, np.float32, chunk_rows,
                    budget, label="store.values"
                )
            self._versions = ChunkedVector(
                num_keys, np.int64, 0, None, chunk_rows,
                budget, label="store.versions"
            )
        # Set when the value matrix lives in a shared-memory segment (the
        # parallel execution backend's export); see share_values().
        self._shm_values = None

    # ---------------------------------------------------------------- access
    def get(self, keys: Sequence[int] | np.ndarray) -> np.ndarray:
        """Return a *copy* of the values for ``keys`` (shape ``(len, dim)``)."""
        keys = self._validate_keys(keys)
        # take() copies like fancy indexing but skips its dispatch overhead.
        return self._values.take(keys, axis=0)

    def get_single(self, key: int) -> np.ndarray:
        """Return a copy of the value for one key."""
        self._validate_key(key)
        return self._values[key].copy()

    def view(self, keys: Sequence[int] | np.ndarray) -> np.ndarray:
        """Return the values for ``keys`` without copying when possible.

        For a contiguous ascending key range ``k, k+1, ..., k+n-1`` the result
        is a true zero-copy, read-only *view* of the backing storage (on the
        sparse backend this holds when the range lies inside one materialized
        chunk). Any other key shape falls back to fancy indexing, which
        returns a read-only *copy*. Callers must not mutate the returned
        array either way; writers go through :meth:`add`/:meth:`set`.
        """
        keys = self._validate_keys(keys)
        n = len(keys)
        if n:
            first = int(keys[0])
            contiguous = (
                int(keys[-1]) - first == n - 1
                and (n == 1 or bool((np.diff(keys) == 1).all()))
            )
            if contiguous:
                block = self._contiguous_block(first, first + n)
                if block is not None:
                    block.flags.writeable = False
                    return block
        values = self._values.take(keys, axis=0)
        values.flags.writeable = False
        return values

    def _contiguous_block(self, lo: int, hi: int) -> np.ndarray | None:
        """A zero-copy slice of rows ``[lo, hi)``, if the backend has one."""
        if isinstance(self._values, np.ndarray):
            return self._values[lo:hi]
        chunk_rows = self._values.chunk_rows
        cid = lo // chunk_rows
        if (hi - 1) // chunk_rows != cid:
            return None  # the range spans chunks: no single backing array
        chunk = self._values._chunks.get(cid)
        if chunk is None:
            return None  # not materialized: view() falls back to a copy
        base = cid * chunk_rows
        return chunk[lo - base:hi - base]

    def add(self, keys: Sequence[int] | np.ndarray, deltas: np.ndarray) -> None:
        """Add ``deltas`` to the values of ``keys`` (duplicate keys accumulate)."""
        keys = self._validate_keys(keys)
        deltas = self._validate_deltas(keys, deltas)
        # Repeated keys must accumulate (np.add.at semantics, unlike
        # fancy-index +=); scatter_add_rows picks the fast path when safe.
        keys_list = keys.tolist() if keys.size <= 64 else None
        scatter_add_rows(self._values, keys, deltas, keys_list)
        scatter_add_rows(self._versions, keys, 1, keys_list)

    def add_distinct(self, keys: np.ndarray, deltas: np.ndarray) -> None:
        """:meth:`add` for callers that guarantee distinct, in-range keys.

        Fancy ``+=`` lands exactly one addition per row when the keys are
        distinct — bit-identical to :meth:`add` — while skipping validation
        and duplicate detection. Used by internal hot paths (replication
        flushes, the round-fused engine) whose key sets come from
        ``np.unique``/``flatnonzero``.
        """
        self._values[keys] += deltas
        self._versions[keys] += 1

    def set(self, keys: Sequence[int] | np.ndarray, values: np.ndarray) -> None:
        """Overwrite the values of ``keys`` with ``values``."""
        keys = self._validate_keys(keys)
        values = self._validate_deltas(keys, values)
        self._values[keys] = values
        # The version bumps once per occurrence, consistent with add
        # (fancy-index += would silently drop duplicate keys).
        scatter_add_rows(self._versions, keys, 1)

    def write_rows(self, keys: Sequence[int] | np.ndarray,
                   values: np.ndarray) -> None:
        """Overwrite values *without* bumping version counters.

        The restore/recovery entry point: fault handlers re-install
        recovered or checkpointed values without counting the write as a
        training update, so version deltas keep measuring exactly the lost
        work. Works on both backends (the sparse backend materializes the
        touched chunks), unlike direct writes through :attr:`values`.
        """
        keys = self._validate_keys(keys)
        values = self._validate_deltas(keys, values)
        self._values[keys] = values

    def read_versions(self, keys: Sequence[int] | np.ndarray) -> np.ndarray:
        """A copy of the version counters for ``keys``."""
        keys = self._validate_keys(keys)
        return self._versions.take(keys)

    def write_versions(self, keys: Sequence[int] | np.ndarray,
                       versions: np.ndarray) -> None:
        """Overwrite version counters (rollback support; no bump)."""
        keys = self._validate_keys(keys)
        versions = np.asarray(versions, dtype=np.int64)
        if versions.shape != (len(keys),):
            raise ValueError(
                f"versions must have shape ({len(keys)},), got {versions.shape}"
            )
        self._versions[keys] = versions

    def permute(self, new_key_of: Sequence[int] | np.ndarray) -> None:
        """Relabel the key space: old key ``k`` becomes key ``new_key_of[k]``.

        Values and version counters move with their key. Used by the scenario
        engine's hot-set drift: rotating the workload-to-key mapping (and
        moving the values along, so learning semantics are untouched) changes
        *which physical keys are hot* without touching the dataset — the
        management state of the parameter servers on top (owners, replicas,
        plans) intentionally does not move, which is exactly what forces them
        to re-adapt.
        """
        perm = np.asarray(new_key_of, dtype=np.int64)
        if perm.shape != (self.num_keys,):
            raise ValueError(
                f"permutation must have shape ({self.num_keys},), got {perm.shape}"
            )
        check = np.zeros(self.num_keys, dtype=bool)
        check[perm] = True
        if not check.all():
            raise ValueError("new_key_of is not a permutation of the key space")
        if isinstance(self._values, np.ndarray):
            if self._shm_values is not None:
                # Shared-memory export (parallel backend): the segment is
                # what worker processes have mapped, so the matrix must stay
                # bound to it — scatter the permutation in place instead of
                # rebinding. One temporary copy, bit-identical rows.
                values = self._values.copy()
                self._values[perm] = values
            else:
                values = np.empty_like(self._values)
                values[perm] = self._values
                self._values = values
            versions = np.empty_like(self._versions)
            versions[perm] = self._versions
            self._versions = versions
            return
        # Sparse backend: a permutation scatters rows across the whole key
        # space, so the store densifies (budget checked) and permutes in
        # place — the chunk views stay bound to the same backing arrays.
        dense_values = self._values.densify()
        dense_versions = self._versions.densify()
        values = np.empty_like(dense_values)
        versions = np.empty_like(dense_versions)
        values[perm] = dense_values
        versions[perm] = dense_versions
        dense_values[...] = values
        dense_versions[...] = versions

    def version(self, key: int) -> int:
        """The number of writes applied to ``key`` so far."""
        self._validate_key(key)
        return int(self._versions[key])

    # -------------------------------------------------------- shared memory
    @property
    def values_shared(self) -> bool:
        """Whether the value matrix currently lives in shared memory."""
        return self._shm_values is not None

    def share_values(self) -> dict:
        """Export the value matrix into a shared-memory segment.

        Dense backend: the matrix is copied into the segment once and the
        store rebinds to the shared view. Sparse backend: the chunks densify
        *into* the segment (budget checked, like any densification) and stay
        pinned as views into it, so chunked writes and worker-process reads
        see the same memory. Returns the picklable segment spec worker
        processes attach with; idempotent while shared. Version counters are
        coordinator-only state and never move.
        """
        if self._shm_values is not None:
            return self._shm_values.spec()
        from repro.parallel.shm import SharedArray

        shared = SharedArray.create(
            (self.num_keys, self.value_length), np.float32
        )
        if isinstance(self._values, np.ndarray):
            shared.array[...] = self._values
            self._values = shared.array
        else:
            self._values.densify_to(shared.array)
        self._shm_values = shared
        return shared.spec()

    def unshare_values(self) -> None:
        """Copy the value matrix back to private memory and free the segment.

        The reverse of :meth:`share_values`: values move into a freshly
        allocated private array (sparse chunks re-pin to it), the segment is
        unlinked, and ``/dev/shm`` is clean again. No-op when not shared.
        """
        if self._shm_values is None:
            return
        shared = self._shm_values
        private = np.array(shared.array)
        if isinstance(self._values, np.ndarray):
            self._values = private
        else:
            self._values.densify_to(private)
        self._shm_values = None
        shared.close()
        shared.unlink()

    # ------------------------------------------------------------- inspection
    @property
    def backend(self) -> str:
        """The active storage backend (``"dense"`` or ``"sparse"``)."""
        return self.storage.backend

    @property
    def values(self) -> np.ndarray:
        """The full value matrix (read-write; owned by the store).

        On the sparse backend this densifies on demand (budget checked):
        the full matrix is materialized once and the chunks become views
        into it, so chunked operations and direct writes stay coherent.
        """
        if isinstance(self._values, np.ndarray):
            return self._values
        return self._values.densify()

    @property
    def versions(self) -> np.ndarray:
        """Per-key write counters (owned by the store).

        Direct writes through :attr:`values` bypass the counters: recovery
        code uses that to restore values without counting the restore itself
        as an update, so version deltas measure exactly the lost work.
        Densifies on demand on the sparse backend, like :attr:`values`.
        """
        if isinstance(self._versions, np.ndarray):
            return self._versions
        return self._versions.densify()

    def value_bytes(self) -> int:
        """Wire size in bytes of one parameter value."""
        return self.value_length * 4

    def total_bytes(self) -> int:
        """Logical size of the stored model in bytes.

        This is the cost-model size (what a checkpoint write-out or full
        transfer moves) and is identical on both backends; resident memory
        is :meth:`nbytes`.
        """
        return self.num_keys * self.value_bytes()

    def nbytes(self) -> int:
        """Resident bytes of the backing storage (values + versions).

        Dense: the full arrays. Sparse: materialized chunks only — the
        number the scale benchmarks hold against the memory budget.
        """
        return int(self._values.nbytes) + int(self._versions.nbytes)

    def materialized_chunks(self) -> int:
        """Materialized chunk count (0 on a fresh sparse store; dense: all)."""
        if isinstance(self._values, np.ndarray):
            return -(-self.num_keys // self.storage.chunk_rows)
        return self._values.materialized_chunks

    def copy(self) -> "ParameterStore":
        """Deep copy (used by experiments that restart from a checkpoint).

        Built without the throwaway zero allocation a ``__init__`` round-trip
        would make (at scale that would double checkpoint peak memory); on
        the sparse backend only materialized chunks are copied. The clone is
        not budget-tracked — snapshots model stable storage, not node RAM.
        """
        clone = ParameterStore.__new__(ParameterStore)
        clone.num_keys = self.num_keys
        clone.value_length = self.value_length
        clone.storage = self.storage
        clone._budget = None
        clone._values = self._values.copy()
        clone._versions = self._versions.copy()
        clone._shm_values = None
        return clone

    def with_storage(self, storage: StorageConfig) -> "ParameterStore":
        """A copy of this store on a different storage backend.

        Converting to ``sparse`` materializes only the chunks that hold a
        nonzero value or version (zero-initialized regions — e.g. untouched
        embedding output vectors — stay unmaterialized), charged against the
        new store's budget. Converting to ``dense`` assembles the full
        arrays. Either way the logical contents are identical, which is what
        the dense==sparse bit-identity suite checks end to end.
        """
        if not isinstance(storage, StorageConfig):
            raise TypeError(
                "storage must be a repro.ps.chunks.StorageConfig, got "
                f"{type(storage).__name__}"
            )
        clone = ParameterStore(self.num_keys, self.value_length,
                               storage=storage)
        step = storage.chunk_rows if storage.backend == "sparse" \
            else DENSE_STORAGE.chunk_rows
        for lo in range(0, self.num_keys, step):
            hi = min(lo + step, self.num_keys)
            block = np.arange(lo, hi, dtype=np.int64)
            values = self._values.take(block, axis=0)
            if values.any():
                clone._values[block] = values
            versions = self._versions.take(block)
            if versions.any():
                clone._versions[block] = versions
        return clone

    # ------------------------------------------------------------ validation
    def _validate_key(self, key: int) -> None:
        if not 0 <= key < self.num_keys:
            raise KeyError(f"key {key} out of range [0, {self.num_keys})")

    def _validate_keys(self, keys: Sequence[int] | np.ndarray) -> np.ndarray:
        keys = np.asarray(keys, dtype=np.int64)
        if keys.ndim != 1:
            raise ValueError(f"keys must be one-dimensional, got shape {keys.shape}")
        if not keys.size:
            return keys
        if keys.size <= 64:
            # Python min/max on a short list beats two NumPy reductions.
            as_list = keys.tolist()
            lo, hi = min(as_list), max(as_list)
        else:
            lo, hi = int(keys.min()), int(keys.max())
        if lo < 0 or hi >= self.num_keys:
            raise KeyError(
                f"keys out of range [0, {self.num_keys}): min={lo}, max={hi}"
            )
        return keys

    def _validate_deltas(self, keys: np.ndarray, deltas: np.ndarray) -> np.ndarray:
        deltas = np.asarray(deltas, dtype=np.float32)
        expected = (len(keys), self.value_length)
        if deltas.shape != expected:
            raise ValueError(
                f"deltas must have shape {expected}, got {deltas.shape}"
            )
        return deltas

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ParameterStore(num_keys={self.num_keys}, "
            f"value_length={self.value_length}, backend={self.backend!r})"
        )
