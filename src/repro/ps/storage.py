"""Dense parameter storage.

The parameter store is the ground-truth home of all model parameters. Keys
are contiguous integers ``0 .. num_keys - 1`` and every key maps to a fixed
length ``float32`` vector. Parameter servers layer their management
techniques (replication, relocation, caching) on top of one shared store;
the store itself knows nothing about nodes or the network.

Updates are *additive* (``add``), which matches how the paper's workloads use
a PS: workers push gradients or gradient-like deltas that the server adds to
the current value. A ``set`` operation exists for initialization and for
replica synchronization.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def scatter_add_rows(target: np.ndarray, keys: np.ndarray, deltas,
                     keys_list: list | None = None) -> None:
    """``np.add.at(target, keys, deltas)`` with a duplicate-free fast path.

    ``np.add.at`` is an order of magnitude slower than fancy ``+=``; when the
    keys of a small batch are distinct the two are bit-identical (exactly one
    addition lands on every row either way), so the fast path applies there
    and the general unbuffered path only when duplicates are present.
    """
    n = len(keys)
    if n == 1:
        # Basic indexing: no fancy-index machinery at all.
        index = int(keys[0]) if keys_list is None else keys_list[0]
        if target.ndim == 1:
            target[index] += deltas if np.isscalar(deltas) else deltas[0]
        else:
            target[index] += deltas[0]
        return
    if n <= 64:
        as_list = keys.tolist() if keys_list is None else keys_list
        if len(set(as_list)) == n:
            target[keys] += deltas
            return
    np.add.at(target, keys, deltas)


class ParameterStore:
    """Dense ``num_keys x value_length`` float32 parameter storage."""

    def __init__(self, num_keys: int, value_length: int, seed: int | None = None,
                 init_scale: float = 0.0) -> None:
        if num_keys <= 0:
            raise ValueError("num_keys must be positive")
        if value_length <= 0:
            raise ValueError("value_length must be positive")
        self.num_keys = int(num_keys)
        self.value_length = int(value_length)
        rng = np.random.default_rng(seed)
        if init_scale:
            self._values = rng.normal(
                0.0, init_scale, size=(num_keys, value_length)
            ).astype(np.float32)
        else:
            self._values = np.zeros((num_keys, value_length), dtype=np.float32)
        # Monotonic per-key version counters; bumped on every write. Used by
        # tests and by replica managers to detect missed updates.
        self._versions = np.zeros(num_keys, dtype=np.int64)

    # ---------------------------------------------------------------- access
    def get(self, keys: Sequence[int] | np.ndarray) -> np.ndarray:
        """Return a *copy* of the values for ``keys`` (shape ``(len, dim)``)."""
        keys = self._validate_keys(keys)
        # take() copies like fancy indexing but skips its dispatch overhead.
        return self._values.take(keys, axis=0)

    def get_single(self, key: int) -> np.ndarray:
        """Return a copy of the value for one key."""
        self._validate_key(key)
        return self._values[key].copy()

    def view(self, keys: Sequence[int] | np.ndarray) -> np.ndarray:
        """Return a read-only view of the values for ``keys``.

        Used by the shared-memory single-node baseline, where workers read
        the store directly. Callers must not mutate the returned array.
        """
        keys = self._validate_keys(keys)
        values = self._values[keys]
        values.flags.writeable = False
        return values

    def add(self, keys: Sequence[int] | np.ndarray, deltas: np.ndarray) -> None:
        """Add ``deltas`` to the values of ``keys`` (duplicate keys accumulate)."""
        keys = self._validate_keys(keys)
        deltas = self._validate_deltas(keys, deltas)
        # Repeated keys must accumulate (np.add.at semantics, unlike
        # fancy-index +=); scatter_add_rows picks the fast path when safe.
        keys_list = keys.tolist() if keys.size <= 64 else None
        scatter_add_rows(self._values, keys, deltas, keys_list)
        scatter_add_rows(self._versions, keys, 1, keys_list)

    def add_distinct(self, keys: np.ndarray, deltas: np.ndarray) -> None:
        """:meth:`add` for callers that guarantee distinct, in-range keys.

        Fancy ``+=`` lands exactly one addition per row when the keys are
        distinct — bit-identical to :meth:`add` — while skipping validation
        and duplicate detection. Used by internal hot paths (replication
        flushes, the round-fused engine) whose key sets come from
        ``np.unique``/``flatnonzero``.
        """
        self._values[keys] += deltas
        self._versions[keys] += 1

    def set(self, keys: Sequence[int] | np.ndarray, values: np.ndarray) -> None:
        """Overwrite the values of ``keys`` with ``values``."""
        keys = self._validate_keys(keys)
        values = self._validate_deltas(keys, values)
        self._values[keys] = values
        # The version bumps once per occurrence, consistent with add
        # (fancy-index += would silently drop duplicate keys).
        scatter_add_rows(self._versions, keys, 1)

    def permute(self, new_key_of: Sequence[int] | np.ndarray) -> None:
        """Relabel the key space: old key ``k`` becomes key ``new_key_of[k]``.

        Values and version counters move with their key. Used by the scenario
        engine's hot-set drift: rotating the workload-to-key mapping (and
        moving the values along, so learning semantics are untouched) changes
        *which physical keys are hot* without touching the dataset — the
        management state of the parameter servers on top (owners, replicas,
        plans) intentionally does not move, which is exactly what forces them
        to re-adapt.
        """
        perm = np.asarray(new_key_of, dtype=np.int64)
        if perm.shape != (self.num_keys,):
            raise ValueError(
                f"permutation must have shape ({self.num_keys},), got {perm.shape}"
            )
        check = np.zeros(self.num_keys, dtype=bool)
        check[perm] = True
        if not check.all():
            raise ValueError("new_key_of is not a permutation of the key space")
        values = np.empty_like(self._values)
        versions = np.empty_like(self._versions)
        values[perm] = self._values
        versions[perm] = self._versions
        self._values = values
        self._versions = versions

    def version(self, key: int) -> int:
        """The number of writes applied to ``key`` so far."""
        self._validate_key(key)
        return int(self._versions[key])

    # ------------------------------------------------------------- inspection
    @property
    def values(self) -> np.ndarray:
        """The full value matrix (read-write; owned by the store)."""
        return self._values

    @property
    def versions(self) -> np.ndarray:
        """Per-key write counters (owned by the store).

        Direct writes through :attr:`values` bypass the counters: recovery
        code uses that to restore values without counting the restore itself
        as an update, so version deltas measure exactly the lost work.
        """
        return self._versions

    def value_bytes(self) -> int:
        """Wire size in bytes of one parameter value."""
        return self.value_length * 4

    def total_bytes(self) -> int:
        """Total size of the stored model in bytes."""
        return self.num_keys * self.value_bytes()

    def copy(self) -> "ParameterStore":
        """Deep copy (used by experiments that restart from a checkpoint)."""
        clone = ParameterStore(self.num_keys, self.value_length)
        clone._values = self._values.copy()
        clone._versions = self._versions.copy()
        return clone

    # ------------------------------------------------------------ validation
    def _validate_key(self, key: int) -> None:
        if not 0 <= key < self.num_keys:
            raise KeyError(f"key {key} out of range [0, {self.num_keys})")

    def _validate_keys(self, keys: Sequence[int] | np.ndarray) -> np.ndarray:
        keys = np.asarray(keys, dtype=np.int64)
        if keys.ndim != 1:
            raise ValueError(f"keys must be one-dimensional, got shape {keys.shape}")
        if not keys.size:
            return keys
        if keys.size <= 64:
            # Python min/max on a short list beats two NumPy reductions.
            as_list = keys.tolist()
            lo, hi = min(as_list), max(as_list)
        else:
            lo, hi = int(keys.min()), int(keys.max())
        if lo < 0 or hi >= self.num_keys:
            raise KeyError(
                f"keys out of range [0, {self.num_keys}): min={lo}, max={hi}"
            )
        return keys

    def _validate_deltas(self, keys: np.ndarray, deltas: np.ndarray) -> np.ndarray:
        deltas = np.asarray(deltas, dtype=np.float32)
        expected = (len(keys), self.value_length)
        if deltas.shape != expected:
            raise ValueError(
                f"deltas must have shape {expected}, got {deltas.shape}"
            )
        return deltas

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ParameterStore(num_keys={self.num_keys}, "
            f"value_length={self.value_length})"
        )
