"""Shared-memory single-node baseline.

The paper compares every distributed PS against a single node with 8 worker
threads that access the model through shared memory (Section 5.1). Here the
"single node" is a :class:`SingleNodePS` on a cluster configured with one
node: every access is a shared-memory access, there is no network cost, and
there is no staleness — workers always see the latest values.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.ps.base import ParameterServer
from repro.simulation.cluster import WorkerContext


class SingleNodePS(ParameterServer):
    """Shared-memory parameter access on a single node."""

    name = "single-node"

    def __init__(self, store, cluster, partitioner=None, seed: int = 0) -> None:
        super().__init__(store, cluster, partitioner, seed)
        if cluster.num_nodes != 1:
            raise ValueError(
                "SingleNodePS requires a single-node cluster; got "
                f"{cluster.num_nodes} nodes"
            )

    def pull(self, worker: WorkerContext, keys: Sequence[int] | np.ndarray) -> np.ndarray:
        keys = np.asarray(keys, dtype=np.int64)
        tracer = self.tracer
        if tracer is not None and tracer.access_events:
            tracer.event("pull", "access", worker.clock.now,
                         node=worker.node_id, worker=worker.worker_id,
                         keys=len(keys))
        self._charge_local(worker, len(keys), "pull")
        return self.store.get(keys)

    def push(self, worker: WorkerContext, keys: Sequence[int] | np.ndarray,
             deltas: np.ndarray) -> None:
        keys, deltas = self._validate_push(keys, deltas)
        tracer = self.tracer
        if tracer is not None and tracer.access_events:
            tracer.event("push", "access", worker.clock.now,
                         node=worker.node_id, worker=worker.worker_id,
                         keys=len(keys))
        self._charge_local(worker, len(keys), "push")
        self.store.add(keys, deltas)
