"""Classic parameter server (PS-Lite-like).

Parameters are allocated to servers statically (range partitioning) and never
replicated or relocated (Section 3.1.1). Servers are co-located with workers,
so accesses to the local partition go through shared memory while accesses to
any other partition pay the full two-message remote cost. There is exactly
one current copy of each value, so the classic PS provides per-key sequential
consistency.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.ps.base import ParameterServer
from repro.simulation.cluster import WorkerContext


class ClassicPS(ParameterServer):
    """Static allocation, no replication, no relocation."""

    name = "classic"

    def pull(self, worker: WorkerContext, keys: Sequence[int] | np.ndarray) -> np.ndarray:
        keys = np.asarray(keys, dtype=np.int64)
        self._charge_partitioned(worker, keys, "pull")
        return self.store.get(keys)

    def push(self, worker: WorkerContext, keys: Sequence[int] | np.ndarray,
             deltas: np.ndarray) -> None:
        keys, deltas = self._validate_push(keys, deltas)
        self._charge_partitioned(worker, keys, "push")
        self.store.add(keys, deltas)

    # --------------------------------------------------------------- helpers
    def _charge_partitioned(self, worker: WorkerContext, keys: np.ndarray,
                            kind: str) -> None:
        """Charge local cost for home-partition keys, remote cost otherwise."""
        if len(keys) == 0:
            return
        owners = self.partitioner.owners(keys)
        if len(keys) <= 64:
            # Group by server with a dict; masking tiny batches costs more.
            node_id = worker.node_id
            n_local = 0
            counts: dict[int, int] = {}
            for owner in owners.tolist():
                if owner == node_id:
                    n_local += 1
                else:
                    counts[owner] = counts.get(owner, 0) + 1
            self._charge_local(worker, n_local, kind)
            if counts:
                # Clocks are charged per serving node (in server order, as
                # the scalar oracle does); the additive metrics are written
                # once for the whole remote group.
                n_remote = 0
                for server in sorted(counts):
                    count = counts[server]
                    n_remote += count
                    worker.clock.advance(count * self._remote_access_cost)
                    self.cluster.node(server).server_clock.advance(
                        count * self._server_occupancy
                    )
                self.metrics.record_access(f"{kind}.remote", node_id, n_remote)
                self.metrics.increment("network.messages", 2 * n_remote,
                                       node=node_id)
                self.metrics.increment(
                    "network.bytes", n_remote * self._cached_value_bytes,
                    node=node_id,
                )
            return
        local_mask = owners == worker.node_id
        self._charge_local(worker, int(np.count_nonzero(local_mask)), kind)
        self._charge_remote_keys(worker, keys[~local_mask], kind)
